// Approximate weighted betweenness centrality (Brandes 2001) — the complex
// network analysis workload the paper's introduction cites as a driver for
// fast SSSP (refs [1], [2]). Each sampled source costs one distributed
// SSSP through the public Solver API; the sigma/dependency accumulation
// runs over the shortest-path DAG implied by the returned distances.
//
//   ./example_centrality [scale] [sources]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"

namespace {

using namespace parsssp;

// One Brandes pass: adds the dependency contributions of `source` into
// `centrality`. Weights are >= 1 here, so the shortest-path DAG edges all
// strictly increase the distance and the dist-sorted order is topological.
void accumulate_brandes(const CsrGraph& g, Solver& solver, vid_t source,
                        std::vector<double>& centrality) {
  const SsspResult r = solver.solve(source, SsspOptions::opt(25));

  std::vector<vid_t> order;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.dist[v] != kInfDist) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return r.dist[a] < r.dist[b];
  });

  // Path counts in ascending distance order.
  std::vector<double> sigma(g.num_vertices(), 0.0);
  sigma[source] = 1.0;
  for (const vid_t v : order) {
    if (v == source) continue;
    for (const Arc& a : g.neighbors(v)) {
      if (r.dist[a.to] != kInfDist && r.dist[a.to] + a.w == r.dist[v]) {
        sigma[v] += sigma[a.to];
      }
    }
  }
  // Dependencies in descending order.
  std::vector<double> delta(g.num_vertices(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const vid_t v = *it;
    if (v == source || sigma[v] == 0.0) continue;
    for (const Arc& a : g.neighbors(v)) {
      const vid_t u = a.to;
      if (r.dist[u] != kInfDist && r.dist[u] + a.w == r.dist[v] &&
          sigma[u] > 0.0) {
        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
      }
    }
  }
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v != source) centrality[v] += delta[v];
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t scale =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10;
  const std::size_t num_sources =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

  RmatConfig cfg;
  cfg.params = RmatParams::rmat2();
  cfg.scale = scale;
  cfg.edge_factor = 8;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));
  std::printf("graph: %llu vertices, %zu edges; sampling %zu sources\n",
              static_cast<unsigned long long>(g.num_vertices()),
              g.num_undirected_edges(), num_sources);

  Solver solver(g, {.machine = {.num_ranks = 8}});
  std::vector<double> centrality(g.num_vertices(), 0.0);
  for (const vid_t s : sample_roots(g, num_sources, 11)) {
    accumulate_brandes(g, solver, s, centrality);
  }

  // Report the top-10 most central vertices.
  std::vector<vid_t> by_centrality(g.num_vertices());
  std::iota(by_centrality.begin(), by_centrality.end(), vid_t{0});
  std::partial_sort(by_centrality.begin(), by_centrality.begin() + 10,
                    by_centrality.end(), [&](vid_t a, vid_t b) {
                      return centrality[a] > centrality[b];
                    });
  std::printf("\n%-6s %12s %8s\n", "rank", "vertex", "degree");
  for (int i = 0; i < 10; ++i) {
    const vid_t v = by_centrality[i];
    std::printf("%-6d %12llu %8zu   (score %.1f)\n", i + 1,
                static_cast<unsigned long long>(v), g.degree(v),
                centrality[v]);
  }
  std::printf("\nhigh-betweenness vertices should be high-degree hubs in a "
              "scale-free graph.\n");
  return 0;
}
