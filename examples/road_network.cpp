// Transportation-style workload (the paper's combinatorial-optimization
// motivation): a grid "road network" with large-diameter structure, the
// adversarial case for bucket-based SSSP. Shows how Delta and hybridization
// interact when shortest distances span a huge range — the opposite regime
// from scale-free graphs.
//
//   ./example_road_network [grid_side]
#include <cstdio>
#include <cstdlib>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/builders.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  using namespace parsssp;
  const vid_t side = argc > 1 ? static_cast<vid_t>(std::atoi(argv[1])) : 48;
  // Edge weights vary deterministically in [1, 100], like road segment
  // lengths.
  const CsrGraph graph = CsrGraph::from_edges(
      make_grid(side, [](vid_t a, vid_t b) {
        return static_cast<weight_t>(1 +
                                     rmat_hash(4242, a * 131071 + b) % 100);
      }));
  std::printf("road grid %llux%llu: %llu intersections, %zu segments\n",
              static_cast<unsigned long long>(side),
              static_cast<unsigned long long>(side),
              static_cast<unsigned long long>(graph.num_vertices()),
              graph.num_undirected_edges());

  Solver solver(graph, {.machine = {.num_ranks = 4}});
  const vid_t depot = 0;  // route from the top-left corner

  std::printf("\n%-12s %12s %8s %8s %12s\n", "algorithm", "relaxations",
              "phases", "buckets", "model-ms");
  struct Cfg {
    const char* name;
    SsspOptions options;
  };
  const Cfg configs[] = {
      {"dijkstra", SsspOptions::dijkstra()},
      {"bellman-ford", SsspOptions::bellman_ford()},
      {"del-25", SsspOptions::del(25)},
      {"del-100", SsspOptions::del(100)},
      {"opt-25", SsspOptions::opt(25)},
      {"opt-100", SsspOptions::opt(100)},
  };
  std::vector<dist_t> reference;
  for (const auto& cfg : configs) {
    const SsspResult r = solver.solve(depot, cfg.options);
    std::printf("%-12s %12llu %8llu %8llu %12.3f\n", cfg.name,
                static_cast<unsigned long long>(r.stats.total_relaxations()),
                static_cast<unsigned long long>(r.stats.phases),
                static_cast<unsigned long long>(r.stats.buckets),
                r.stats.model_time_s * 1e3);
    if (reference.empty()) {
      reference = r.dist;
    } else if (r.dist != reference) {
      std::printf("ERROR: %s disagrees with Dijkstra\n", cfg.name);
      return 1;
    }
  }

  // Route query: distance to the opposite corner.
  const vid_t far_corner = graph.num_vertices() - 1;
  std::printf("\nshortest travel cost depot -> opposite corner: %llu\n",
              static_cast<unsigned long long>(reference[far_corner]));
  const auto report = validate_against_dijkstra(graph, depot, reference);
  std::printf("validation: %s\n", report.ok ? "OK" : report.message.c_str());
  return report.ok ? 0 : 1;
}
