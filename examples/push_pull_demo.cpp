// Walk-through of the paper's Fig. 6 example: why the pull model beats the
// push model on a bucket holding a dense clique. Builds the exact example
// graph (root -> clique -> isolated vertices), runs Delta-stepping with
// Delta=5 under forced push, forced pull and the decision heuristic, and
// prints the relaxation cost of each strategy.
//
//   ./example_push_pull_demo
#include <cstdio>

#include "core/solver.hpp"
#include "graph/builders.hpp"

int main() {
  using namespace parsssp;
  // Paper Fig. 6: root -> 5-clique (weight-10 spokes, weight-5 clique
  // edges) -> one weight-10 tail vertex per clique vertex. With Delta=5 the
  // clique settles in bucket B_2 and the tails in B_4; B_2's long phase
  // costs 30 relaxations pushed but only 10 pulled.
  const CsrGraph graph = CsrGraph::from_edges(make_fig6_example());
  std::printf(
      "Fig 6 example graph: root + 5-clique + 5 tail vertices, Delta=5\n"
      "epochs: B_2 settles the clique; its long phase is where push and "
      "pull differ.\n\n");

  Solver solver(graph, {.machine = {.num_ranks = 2}});

  struct Mode {
    const char* name;
    PruneMode mode;
  };
  const Mode modes[] = {
      {"push-only", PruneMode::kPushOnly},
      {"pull-only", PruneMode::kPullOnly},
      {"heuristic", PruneMode::kHeuristic},
  };
  std::printf("%-10s %12s %10s %10s %10s\n", "mode", "total-relax",
              "long-push", "requests", "responses");
  for (const auto& m : modes) {
    SsspOptions o = SsspOptions::prune(5);
    o.ios = false;  // keep the example as simple as the paper's figure
    o.prune_mode = m.mode;
    const SsspResult r = solver.solve(0, o);
    std::printf("%-10s %12llu %10llu %10llu %10llu\n", m.name,
                static_cast<unsigned long long>(r.stats.total_relaxations()),
                static_cast<unsigned long long>(
                    r.stats.long_push_relaxations),
                static_cast<unsigned long long>(r.stats.pull_requests),
                static_cast<unsigned long long>(r.stats.pull_responses));
  }
  std::printf(
      "\nThe clique bucket relaxes far fewer edges under pull: requests come"
      "\nonly from the small tail, while push floods every clique edge.\n");
  return 0;
}
