// Quickstart: build a small weighted graph, run the paper's OPT algorithm
// on a simulated 4-rank machine, and print distances plus run statistics.
//
//   ./example_quickstart
#include <cstdio>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/edge_list.hpp"

int main() {
  using namespace parsssp;

  // A toy road map: weights are travel minutes.
  //
  //   0 --3-- 1 --4-- 2
  //   |       |       |
  //   7       2       5
  //   |       |       |
  //   3 --1-- 4 --6-- 5
  EdgeList edges;
  edges.add_edge(0, 1, 3);
  edges.add_edge(1, 2, 4);
  edges.add_edge(0, 3, 7);
  edges.add_edge(1, 4, 2);
  edges.add_edge(2, 5, 5);
  edges.add_edge(3, 4, 1);
  edges.add_edge(4, 5, 6);

  const CsrGraph graph = CsrGraph::from_edges(edges);

  // A solver owns the simulated distributed machine: here 4 logical ranks,
  // each with 2 worker lanes (the paper's node/thread structure).
  Solver solver(graph, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});

  // OPT-5: Delta-stepping with Delta=5 plus all of the paper's
  // optimizations (edge classification, IOS, push/pull pruning,
  // hybridization). See SsspOptions for the individual knobs.
  const SsspResult result = solver.solve(/*root=*/0, SsspOptions::opt(5));

  std::printf("shortest distances from vertex 0:\n");
  for (vid_t v = 0; v < graph.num_vertices(); ++v) {
    if (result.dist[v] == kInfDist) {
      std::printf("  %llu: unreachable\n", static_cast<unsigned long long>(v));
    } else {
      std::printf("  %llu: %llu\n", static_cast<unsigned long long>(v),
                  static_cast<unsigned long long>(result.dist[v]));
    }
  }

  std::printf("\nrun statistics:\n");
  std::printf("  relaxations: %llu\n",
              static_cast<unsigned long long>(
                  result.stats.total_relaxations()));
  std::printf("  phases:      %llu\n",
              static_cast<unsigned long long>(result.stats.phases));
  std::printf("  buckets:     %llu\n",
              static_cast<unsigned long long>(result.stats.buckets));

  // Self-check against the sequential Dijkstra oracle.
  const ValidationReport report =
      validate_against_dijkstra(graph, 0, result.dist);
  std::printf("\nvalidation: %s\n", report.ok ? "OK" : report.message.c_str());
  return report.ok ? 0 : 1;
}
