// Social-network analysis: the workload class the paper's introduction
// motivates. Generates an Orkut-like synthetic social graph, runs SSSP from
// a few seed users, and derives simple network analytics (closeness
// centrality of the seeds, hop/weighted-distance distributions) — all
// through the public Solver API.
//
//   ./example_social_network [scale_down_log2]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/solver.hpp"
#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/graph_algos.hpp"
#include "graph/social_gen.hpp"

int main(int argc, char** argv) {
  using namespace parsssp;

  SocialGraphSpec spec;
  spec.kind = SocialGraphKind::kOrkut;
  spec.scale_down_log2 = argc > 1
                             ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                             : 9;

  const SocialGraphInfo info = social_graph_info(spec);
  std::printf("generating %s stand-in (~%llu vertices, ~%llu edges)...\n",
              info.name.c_str(),
              static_cast<unsigned long long>(info.num_vertices),
              static_cast<unsigned long long>(info.num_edges));
  const CsrGraph graph =
      CsrGraph::from_edges(generate_social_graph(spec));

  const DegreeStats degrees = compute_degree_stats(graph);
  std::printf("degree: mean %.1f, max %zu (social-network skew)\n",
              degrees.mean_degree, degrees.max_degree);

  Solver solver(graph, {.machine = {.num_ranks = 8}});
  const SsspOptions options = SsspOptions::opt(40);  // the paper's best
                                                     // real-graph setting

  const std::vector<vid_t> seeds = sample_roots(graph, 4, 7);
  for (const vid_t seed : seeds) {
    const SsspResult r = solver.solve(seed, options);

    // Closeness centrality of the seed: reached / sum of distances.
    double sum = 0;
    std::size_t reached = 0;
    dist_t farthest = 0;
    for (vid_t v = 0; v < graph.num_vertices(); ++v) {
      if (v == seed || r.dist[v] == kInfDist) continue;
      sum += static_cast<double>(r.dist[v]);
      farthest = std::max(farthest, r.dist[v]);
      ++reached;
    }
    const double closeness = sum > 0 ? static_cast<double>(reached) / sum : 0;
    std::printf(
        "user %7llu: reaches %zu users, closeness %.6f, eccentricity %llu, "
        "%llu relaxations in %llu phases\n",
        static_cast<unsigned long long>(seed), reached, closeness,
        static_cast<unsigned long long>(farthest),
        static_cast<unsigned long long>(r.stats.total_relaxations()),
        static_cast<unsigned long long>(r.stats.phases));
  }
  return 0;
}
