#!/usr/bin/env python3
"""Self-test for scripts/lint.py (registered as the lint_selftest ctest).

Feeds synthetic files through lint.lint_text and asserts which rules fire.
Every rule has at least one firing and one non-firing case, so deleting,
loosening or path-scoping away a rule fails this test loudly instead of
silently turning the linter into a no-op.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint  # noqa: E402


FAILURES: list[str] = []


def expect(rel: str, text: str, rules: list[str], note: str) -> None:
    """Asserts lint_text(rel, text) fires exactly `rules` (in order)."""
    got = [e.split("[", 1)[1].split("]", 1)[0]
           for e in lint.lint_text(rel, text)]
    if got != rules:
        FAILURES.append(f"{note}: expected rules {rules}, got {got} "
                        f"(file {rel!r})")


HEADER = "#pragma once\n"

# --- R1: threading primitives stay inside src/runtime/ --------------------
expect("src/core/engine.cpp", "std::thread worker(fn);\n", ["R1"],
       "R1 fires on std::thread outside src/runtime/")
expect("src/serve/engine.cpp", "std::jthread worker(fn);\n", ["R1"],
       "R1 fires on std::jthread in src/serve/")
expect("tools/cli.cpp", "auto f = std::async(fn);\n", ["R1"],
       "R1 fires on std::async in tools/")
expect("src/runtime/machine.cpp", "std::thread worker(fn);\n", [],
       "R1 allows std::thread inside src/runtime/")
expect("tests/test_x.cpp", "std::thread worker(fn);\n", [],
       "R1 allows std::thread in tests/")
expect("bench/b.cpp", "std::thread worker(fn);\n", [],
       "R1 allows std::thread in bench/")
expect("tools/cli.cpp", "std::this_thread::sleep_for(1ms);\n", [],
       "R1 ignores std::this_thread")
expect("src/obs/trace.hpp", HEADER + "std::thread::id key;\n", [],
       "R1 ignores std::thread::id (a value type, not a spawn)")
expect("src/obs/trace.cpp", "map[std::this_thread::get_id()] = lane;\n", [],
       "R1 ignores std::this_thread::get_id()")
expect("src/core/engine.cpp", "// std::thread worker(fn);\n", [],
       "R1 ignores commented-out code")

# --- R2: determinism ------------------------------------------------------
expect("src/graph/gen.cpp", "int r = rand();\n", ["R2"],
       "R2 fires on rand() in src/")
expect("src/graph/gen.cpp", "srand(time(nullptr));\n", ["R2", "R2"],
       "R2 fires on srand(time(nullptr))")
expect("tools/cli.cpp", "int r = rand();\n", [],
       "R2 is scoped to src/")
expect("src/graph/gen.cpp", "h = my_rand(x);\n", [],
       "R2 ignores identifiers merely containing rand")

# --- R3: no volatile-as-synchronization -----------------------------------
expect("src/core/sync.cpp", "volatile int flag;\n", ["R3"],
       "R3 fires on volatile in src/")
expect("bench/b.cpp", "volatile int sink;\n", [],
       "R3 is scoped to src/")

# --- R4: include hygiene --------------------------------------------------
expect("src/core/a.hpp", "int x;\n", ["R4"],
       "R4 fires on a header without #pragma once")
expect("src/core/a.hpp", HEADER + "int x;\n", [],
       "R4 accepts #pragma once")
expect("src/core/a.cpp", '#include "../graph/csr.hpp"\n', ["R4"],
       "R4 fires on parent-relative includes")
expect("src/core/a.cpp", '// #include "../graph/csr.hpp"\n', [],
       "R4 ignores commented-out includes")

# --- R5: no using namespace in headers ------------------------------------
expect("src/core/a.hpp", HEADER + "using namespace std;\n", ["R5"],
       "R5 fires on using namespace in a header")
expect("src/core/a.cpp", "using namespace std::chrono_literals;\n", [],
       "R5 is scoped to headers")

# --- R6: serving-layer isolation ------------------------------------------
expect("src/serve/query_engine.cpp",
       '#include "runtime/machine.hpp"\n', ["R6"],
       "R6 fires when src/serve/ includes the raw machine")
expect("src/serve/query_engine.cpp",
       '#include "runtime/thread_pool.hpp"\n', ["R6"],
       "R6 fires when src/serve/ includes the thread pool")
expect("src/serve/query_engine.cpp",
       HEADER.replace("#pragma once\n", "")
       + '#include "runtime/machine_session.hpp"\n'
       + '#include "runtime/service_thread.hpp"\n'
       + '#include "runtime/partition.hpp"\n', [],
       "R6 allows the session facade includes")
expect("src/serve/query_engine.cpp", "Machine machine(config);\n", ["R6"],
       "R6 fires on the Machine token in src/serve/")
expect("src/serve/query_engine.cpp", "ThreadPool pool(4);\n", ["R6"],
       "R6 fires on the ThreadPool token in src/serve/")
expect("src/serve/query_engine.cpp",
       "MachineSession session(config.machine);\n", [],
       "R6 allows MachineSession / MachineConfig tokens")
expect("src/core/solver.cpp", "Machine machine(config);\n", [],
       "R6 is scoped to src/serve/")
expect("src/serve/query_engine.cpp", "// Machine is off-limits here\n", [],
       "R6 ignores comments")

# --- R9: update-layer isolation (the dynamic-graph mirror of R6) ----------
expect("src/update/dynamic_solver.cpp",
       '#include "runtime/machine.hpp"\n', ["R9"],
       "R9 fires when src/update/ includes the raw machine")
expect("src/update/dynamic_solver.cpp",
       '#include "runtime/thread_pool.hpp"\n', ["R9"],
       "R9 fires when src/update/ includes the thread pool")
expect("src/update/repair_engine.cpp",
       '#include "core/delta_engine.hpp"\n', ["R9"],
       "R9 fires when src/update/ includes an engine directly")
expect("src/update/dynamic_solver.cpp",
       '#include "core/split_solver.hpp"\n', ["R9"],
       "R9 fires on the split solver too")
expect("src/update/dynamic_solver.cpp",
       '#include "runtime/machine_session.hpp"\n'
       + '#include "runtime/partition.hpp"\n'
       + '#include "core/seeded_solve.hpp"\n'
       + '#include "core/solver.hpp"\n', [],
       "R9 allows the session facade and the solver/seeded-solve facades")
expect("src/update/dynamic_solver.cpp", "DeltaEngine engine(shared);\n",
       ["R9"],
       "R9 fires on the DeltaEngine token in src/update/")
expect("src/update/dynamic_solver.cpp", "Machine machine(config);\n", ["R9"],
       "R9 fires on the Machine token in src/update/")
expect("src/update/dynamic_solver.cpp",
       "MachineSession session(config.machine);\n"
       "job.seeds = std::vector<RelaxMsg>{};\n", [],
       "R9 allows MachineSession / MachineConfig / RelaxMsg tokens")
expect("src/core/solver.cpp", '#include "core/delta_engine.hpp"\n', [],
       "R9 is scoped to src/update/")
expect("src/update/dynamic_solver.cpp", "// DeltaEngine is banned here\n",
       [],
       "R9 ignores comments")

# --- R7: no nested send buffers in engine hot paths -----------------------
expect("src/core/delta_engine.cpp",
       "std::vector<std::vector<RelaxMsg>> out(ranks);\n", ["R7"],
       "R7 fires on a nested RelaxMsg buffer in the delta engine")
expect("src/core/bfs_engine.cpp",
       "auto buf = std::vector<std::vector<BfsMsg>>(ranks);\n", ["R7"],
       "R7 fires on a nested BfsMsg buffer in the bfs engine")
expect("src/core/multi_engine.cpp",
       "std::vector< std::vector< MultiRelaxMsg > > out;\n", ["R7"],
       "R7 fires with interior whitespace")
expect("src/core/multi_engine.cpp",
       "std::vector<std::vector<char>> settled_;\n", [],
       "R7 ignores nested vectors of non-message engine state")
expect("src/core/delta_engine.cpp",
       "std::vector<RelaxMsg>& shard = relax_pool_.shard(lane, d);\n", [],
       "R7 ignores flat message vectors (pool shards)")
expect("src/runtime/machine.hpp",
       HEADER + "std::vector<std::vector<RelaxMsg>> out(ranks);\n", [],
       "R7 is scoped to the engine hot-path files")
expect("src/core/delta_engine.cpp",
       "// std::vector<std::vector<RelaxMsg>> was the seed's shape\n", [],
       "R7 ignores comments")

# --- R8: no raw clock reads in engine timed paths --------------------------
expect("src/core/delta_engine.cpp",
       "const auto t0 = std::chrono::steady_clock::now();\n", ["R8"],
       "R8 fires on a qualified steady_clock::now() in the delta engine")
expect("src/core/bfs_engine.cpp",
       "auto t = steady_clock::now();\n", ["R8"],
       "R8 fires on the using-abbreviated spelling")
expect("src/core/multi_engine.hpp",
       HEADER + "auto t = std::chrono::high_resolution_clock::now();\n",
       ["R8"],
       "R8 fires on high_resolution_clock in an engine header")
expect("src/core/bfs_engine.hpp",
       HEADER + "clock_gettime(CLOCK_MONOTONIC, &ts);\n", ["R8"],
       "R8 fires on clock_gettime")
expect("src/core/delta_engine.cpp",
       "TimedSection sw(counters_.wall_bucket_time_s, tlane_, cat);\n", [],
       "R8 allows the obs helpers (they read the clock for the engine)")
expect("src/obs/trace.cpp",
       "return std::chrono::steady_clock::now();\n", [],
       "R8 is scoped to the engine timed paths (obs/ is where helpers "
       "bottom out)")
expect("src/core/solver.cpp",
       "const auto t0 = std::chrono::steady_clock::now();\n", [],
       "R8 leaves the solver shell free to read clocks")
expect("src/core/delta_engine.cpp",
       "// steady_clock::now() is banned here; see R8\n", [],
       "R8 ignores comments")

# --- the real tree must be clean (catches rule/code drift) ----------------
REPO = Path(__file__).resolve().parent.parent
for rel in ("src/serve/query_engine.hpp", "src/serve/query_engine.cpp",
            "src/serve/result_cache.cpp", "src/serve/workload.cpp",
            "src/update/dynamic_graph.hpp", "src/update/dynamic_graph.cpp",
            "src/update/dynamic_solver.hpp", "src/update/dynamic_solver.cpp",
            "src/update/repair_engine.hpp", "src/update/repair_engine.cpp",
            "src/update/edge_batch.hpp"):
    path = REPO / rel
    if not path.is_file():
        FAILURES.append(f"expected serving source {rel} to exist")
        continue
    errors = lint.lint_text(rel, path.read_text(encoding="utf-8"))
    if errors:
        FAILURES.append(f"{rel} violates its own layering rules: {errors}")

# The engines themselves must satisfy R7 (the pooled data path is not
# allowed to regress into per-phase nested buffers) and R8 (all timing
# goes through the obs/ helpers).
for rel in sorted(lint.ENGINE_HOT_PATHS | lint.ENGINE_TIMED_PATHS):
    path = REPO / rel
    if not path.is_file():
        FAILURES.append(f"expected engine source {rel} to exist")
        continue
    errors = lint.lint_text(rel, path.read_text(encoding="utf-8"))
    if errors:
        FAILURES.append(f"{rel} violates the hot-path rules: {errors}")


def main() -> int:
    for f in FAILURES:
        print(f"lint_selftest: FAIL: {f}")
    print(f"lint_selftest: {len(FAILURES)} failure(s)", file=sys.stderr)
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
