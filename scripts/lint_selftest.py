#!/usr/bin/env python3
"""Self-test for scripts/lint.py (registered as the lint_selftest ctest).

Feeds synthetic files through lint.lint_text and asserts which rules fire.
Every rule has at least one firing and one non-firing case, so deleting,
loosening or path-scoping away a rule fails this test loudly instead of
silently turning the linter into a no-op.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint  # noqa: E402


FAILURES: list[str] = []


def expect(rel: str, text: str, rules: list[str], note: str) -> None:
    """Asserts lint_text(rel, text) fires exactly `rules` (in order)."""
    got = [e.split("[", 1)[1].split("]", 1)[0]
           for e in lint.lint_text(rel, text)]
    if got != rules:
        FAILURES.append(f"{note}: expected rules {rules}, got {got} "
                        f"(file {rel!r})")


HEADER = "#pragma once\n"

# --- R1: threading primitives stay inside src/runtime/ --------------------
expect("src/core/engine.cpp", "std::thread worker(fn);\n", ["R1"],
       "R1 fires on std::thread outside src/runtime/")
expect("src/serve/engine.cpp", "std::jthread worker(fn);\n", ["R1"],
       "R1 fires on std::jthread in src/serve/")
expect("tools/cli.cpp", "auto f = std::async(fn);\n", ["R1"],
       "R1 fires on std::async in tools/")
expect("src/runtime/machine.cpp", "std::thread worker(fn);\n", [],
       "R1 allows std::thread inside src/runtime/")
expect("tests/test_x.cpp", "std::thread worker(fn);\n", [],
       "R1 allows std::thread in tests/")
expect("bench/b.cpp", "std::thread worker(fn);\n", [],
       "R1 allows std::thread in bench/")
expect("tools/cli.cpp", "std::this_thread::sleep_for(1ms);\n", [],
       "R1 ignores std::this_thread")
expect("src/obs/trace.hpp", HEADER + "std::thread::id key;\n", [],
       "R1 ignores std::thread::id (a value type, not a spawn)")
expect("src/obs/trace.cpp", "map[std::this_thread::get_id()] = lane;\n", [],
       "R1 ignores std::this_thread::get_id()")
expect("src/core/engine.cpp", "// std::thread worker(fn);\n", [],
       "R1 ignores commented-out code")

# --- R2: determinism ------------------------------------------------------
expect("src/graph/gen.cpp", "int r = rand();\n", ["R2"],
       "R2 fires on rand() in src/")
expect("src/graph/gen.cpp", "srand(time(nullptr));\n", ["R2", "R2"],
       "R2 fires on srand(time(nullptr))")
expect("tools/cli.cpp", "int r = rand();\n", [],
       "R2 is scoped to src/")
expect("src/graph/gen.cpp", "h = my_rand(x);\n", [],
       "R2 ignores identifiers merely containing rand")

# --- R3: no volatile-as-synchronization -----------------------------------
expect("src/core/sync.cpp", "volatile int flag;\n", ["R3"],
       "R3 fires on volatile in src/")
expect("bench/b.cpp", "volatile int sink;\n", [],
       "R3 is scoped to src/")

# --- R4: include hygiene --------------------------------------------------
expect("src/core/a.hpp", "int x;\n", ["R4"],
       "R4 fires on a header without #pragma once")
expect("src/core/a.hpp", HEADER + "int x;\n", [],
       "R4 accepts #pragma once")
expect("src/core/a.cpp", '#include "../graph/csr.hpp"\n', ["R4"],
       "R4 fires on parent-relative includes")
expect("src/core/a.cpp", '// #include "../graph/csr.hpp"\n', [],
       "R4 ignores commented-out includes")

# --- R5: no using namespace in headers ------------------------------------
expect("src/core/a.hpp", HEADER + "using namespace std;\n", ["R5"],
       "R5 fires on using namespace in a header")
expect("src/core/a.cpp", "using namespace std::chrono_literals;\n", [],
       "R5 is scoped to headers")

# R6/R9 (layer isolation) and R8 (engine clock reads) retired: they are
# now checks A3 and A5 of the AST-grade analyzer, exercised by
# scripts/analysis/selftest.py over its seeded fixture corpus.

# --- R7: no nested send buffers in engine hot paths -----------------------
expect("src/core/delta_engine.cpp",
       "std::vector<std::vector<RelaxMsg>> out(ranks);\n", ["R7"],
       "R7 fires on a nested RelaxMsg buffer in the delta engine")
expect("src/core/bfs_engine.cpp",
       "auto buf = std::vector<std::vector<BfsMsg>>(ranks);\n", ["R7"],
       "R7 fires on a nested BfsMsg buffer in the bfs engine")
expect("src/core/multi_engine.cpp",
       "std::vector< std::vector< MultiRelaxMsg > > out;\n", ["R7"],
       "R7 fires with interior whitespace")
expect("src/core/multi_engine.cpp",
       "std::vector<std::vector<char>> settled_;\n", [],
       "R7 ignores nested vectors of non-message engine state")
expect("src/core/delta_engine.cpp",
       "std::vector<RelaxMsg>& shard = relax_pool_.shard(lane, d);\n", [],
       "R7 ignores flat message vectors (pool shards)")
expect("src/runtime/machine.hpp",
       HEADER + "std::vector<std::vector<RelaxMsg>> out(ranks);\n", [],
       "R7 is scoped to the engine hot-path files")
expect("src/core/delta_engine.cpp",
       "// std::vector<std::vector<RelaxMsg>> was the seed's shape\n", [],
       "R7 ignores comments")

# --- the real tree must be clean (catches rule/code drift) ----------------
# The engines themselves must satisfy R7: the pooled data path is not
# allowed to regress into per-phase nested buffers.
REPO = Path(__file__).resolve().parent.parent
for rel in sorted(lint.ENGINE_HOT_PATHS):
    path = REPO / rel
    if not path.is_file():
        FAILURES.append(f"expected engine source {rel} to exist")
        continue
    errors = lint.lint_text(rel, path.read_text(encoding="utf-8"))
    if errors:
        FAILURES.append(f"{rel} violates the hot-path rules: {errors}")


def main() -> int:
    for f in FAILURES:
        print(f"lint_selftest: FAIL: {f}")
    print(f"lint_selftest: {len(FAILURES)} failure(s)", file=sys.stderr)
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
