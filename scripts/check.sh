#!/usr/bin/env sh
# Single entry point for the verification layers (docs/STATIC_ANALYSIS.md):
#
#   1. lint          scripts/lint.py project invariants
#   2. analyzer      scripts/analysis/ AST-grade checks A1-A5 (+ selftest)
#   3. clang-tidy    .clang-tidy profile (skipped if clang-tidy not installed)
#   4. plain         canonical build + ctest (the tier-1 configuration)
#   5. asan+ubsan    Debug build with -DMPS_SANITIZE=address;undefined + ctest
#   6. tsan          Debug build with -DMPS_SANITIZE=thread + ctest
#
# Usage:
#   scripts/check.sh            run everything
#   scripts/check.sh --quick    lint + plain build/ctest only (what
#                               scripts/reproduce.sh runs; tier-1 authority)
#   scripts/check.sh --analyze  lint + static analyzer only (no build needed;
#                               uses build/compile_commands.json if present)
#
# Build trees: build/ (plain, shared with the tier-1 command),
# build-asan/, build-tsan/. Sanitizer configs build as Debug so the checked
# exchange protocol (MPS_CHECKED_EXCHANGE) is active under the sanitizers.
set -eu

cd "$(dirname "$0")/.."

QUICK=0
ANALYZE_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --analyze) ANALYZE_ONLY=1 ;;
    *) echo "usage: scripts/check.sh [--quick|--analyze]" >&2; exit 2 ;;
  esac
done

step() {
  echo
  echo "=== check.sh: $* ==="
}

step "lint selftest (scripts/lint_selftest.py)"
python3 scripts/lint_selftest.py

step "lint (scripts/lint.py)"
python3 scripts/lint.py

step "analyzer selftest (scripts/analysis/selftest.py)"
python3 scripts/analysis/selftest.py

step "static analyzer (scripts/analysis/analyze.py)"
# set -e propagates the analyzer's exit code: findings or stale waivers
# fail the whole check run.
python3 scripts/analysis/analyze.py --compdb build/compile_commands.json

if [ "$ANALYZE_ONLY" -eq 1 ]; then
  echo
  echo "check.sh --analyze: OK"
  exit 0
fi

if [ "$QUICK" -eq 0 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    step "clang-tidy"
    cmake -B build -S . >/dev/null
    # Library sources only: tests/benches are covered by the build itself.
    find src -name '*.cpp' | xargs clang-tidy -p build --quiet
  else
    step "clang-tidy (skipped: not installed)"
  fi
fi

step "plain build + ctest (tier-1)"
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [ "$QUICK" -eq 1 ]; then
  echo
  echo "check.sh --quick: OK"
  exit 0
fi

step "ASan+UBSan build + ctest"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  "-DMPS_SANITIZE=address;undefined" >/dev/null
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

step "TSan build + ctest"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
  -DMPS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j
# TSan serializes poorly with oversubscribed test parallelism; keep -j low
# so each stress test gets real interleaving instead of scheduler noise.
ctest --test-dir build-tsan --output-on-failure -j 2

echo
echo "check.sh: all layers OK"
