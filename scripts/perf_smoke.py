#!/usr/bin/env python3
"""Non-flaky perf smoke over the micro-kernel benchmark pairs.

Reads a google-benchmark JSON file (BENCH_micro_kernels.json, written by
``scripts/reproduce.sh --micro``) and checks that the pooled relax data
path is not slower than the seed path it replaced. Thresholds are
deliberately loose — CI machines are noisy, virtualized, and sometimes
single-core — so this guards against catastrophic regressions (the pooled
path accidentally re-growing allocation churn or copies), not against
single-digit-percent drift. The tight >= 1.3x acceptance numbers are
measured locally and recorded in docs/PERFORMANCE.md, not enforced here.

Usage: scripts/perf_smoke.py [BENCH_micro_kernels.json]
Exit status 0 = pass, 1 = regression, 2 = malformed/missing input.
"""

import json
import sys

# (seed benchmark, pooled benchmark, minimum required seed/pooled wall-time
# ratio). 0.90 tolerates ~10% adverse noise; a genuine regression of the
# pooled path shows up as a ratio far below that (the local pairs sit at
# 1.4x-2.5x).
PAIRS = [
    ("BM_RelaxExchangeSeed", "BM_RelaxExchangePooled", 0.90),
    ("BM_RelaxApplySeed", "BM_RelaxApplyPooled", 0.90),
    ("BM_SolveOptSeedPath", "BM_SolveOptPooledPath", 0.85),
]


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_micro_kernels.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_smoke: cannot read {path}: {e}", file=sys.stderr)
        return 2

    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = float(bench["real_time"])

    failures = 0
    for seed, pooled, floor in PAIRS:
        if seed not in times or pooled not in times:
            print(f"perf_smoke: missing pair {seed} / {pooled} in {path}",
                  file=sys.stderr)
            failures += 1
            continue
        ratio = times[seed] / times[pooled] if times[pooled] > 0 else 0.0
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"perf_smoke: {seed} / {pooled} = {ratio:.2f}x "
              f"(floor {floor:.2f}x) {verdict}")
        if ratio < floor:
            failures += 1

    if failures:
        print(f"perf_smoke: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("perf_smoke: all pairs within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
