"""Zero-dependency lexical frontend: builds the TU model from tokens.

This is deliberately *not* a C++ parser. It is a scope-tracking walk over
the token stream (cpp_lexer.tokenize) with pattern heuristics tuned to
this repository's single-namespace, clang-format-shaped style. Where C++
is ambiguous the walk errs toward recording *more* events (extra call
sites, extra writes); the checks are designed so that over-approximated
events are filtered or harmless, while *missing* a lock acquisition or an
include would silently weaken a check — so those paths are kept simple
and total.

The libclang frontend (frontend_clang.py) produces the same model with a
real AST when libclang is installed; the fixture selftest runs both when
possible, pinning their behavior together.
"""

from __future__ import annotations

from pathlib import Path

from cpp_lexer import Token, parse_define, parse_include, tokenize
from model import (Acquire, BlockExit, Call, ClassInfo, Function, Include,
                   IterWalk, Member, RangeFor, Release, TU, Write)

_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "static_assert", "decltype", "new", "delete", "throw",
    "co_return", "co_await", "co_yield", "case", "do", "else", "goto",
}

_ANNOTATION_MACROS = {
    "MPS_GUARDED_BY", "GUARDED_BY", "MPS_PT_GUARDED_BY", "PT_GUARDED_BY",
    "MPS_REQUIRES", "MPS_REQUIRES_SHARED", "MPS_ACQUIRE", "MPS_RELEASE",
    "MPS_EXCLUDES", "MPS_ACQUIRED_BEFORE", "MPS_ACQUIRED_AFTER",
    "MPS_CAPABILITY", "MPS_SCOPED_CAPABILITY", "MPS_TRY_ACQUIRE",
    "MPS_RETURN_CAPABILITY", "MPS_NO_THREAD_SAFETY_ANALYSIS",
    "MPS_ASSERT_CAPABILITY", "MPS_THREAD_ANNOTATION",
}

_RAII_LOCKS = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}

_MUTATORS = {
    "push_back", "emplace_back", "push_front", "pop_front", "pop_back",
    "emplace", "insert", "erase", "clear", "resize", "reserve", "assign",
    "splice", "swap", "store", "reset", "emplace_front", "append",
}

_UNORDERED_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "flat_hash_map", "flat_hash_set",
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class _Scope:
    __slots__ = ("kind", "name", "cls", "fn", "open_idx")

    def __init__(self, kind: str, name: str = "", cls: ClassInfo | None = None,
                 fn: Function | None = None, open_idx: int = 0):
        self.kind = kind      # "namespace" | "class" | "function" | "block"
        self.name = name
        self.cls = cls
        self.fn = fn
        self.open_idx = open_idx


def parse_file(path: str | Path, rel: str) -> TU:
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    return parse_source(text, str(path), rel)


def parse_source(text: str, path: str, rel: str) -> TU:
    toks = tokenize(text)
    tu = TU(path=path, rel=rel)
    _scan_aliases(toks, tu)
    _Walker(toks, tu).walk()
    return tu


def _scan_aliases(toks: list[Token], tu: TU) -> None:
    """Records `using A = ...;` and `typedef ... A;` at *any* scope —
    function-local clock aliases are exactly what the clock check (A5)
    must see through."""
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].kind == "id" and toks[i].text == "using" \
                and i + 2 < n and toks[i + 1].kind == "id" \
                and toks[i + 2].text == "=":
            j = i + 3
            rhs = []
            while j < n and toks[j].text != ";":
                rhs.append(toks[j].text)
                j += 1
            tu.aliases[toks[i + 1].text] = " ".join(rhs)
            i = j
            continue
        if toks[i].kind == "id" and toks[i].text == "typedef":
            j = i + 1
            body = []
            while j < n and toks[j].text != ";":
                body.append(toks[j])
                j += 1
            if len(body) >= 2 and body[-1].kind == "id":
                tu.aliases[body[-1].text] = _text_of(body[:-1])
            i = j
            continue
        i += 1


def _text_of(toks: list[Token]) -> str:
    return " ".join(t.text for t in toks)


class _Walker:
    def __init__(self, toks: list[Token], tu: TU):
        self.toks = toks
        self.tu = tu
        self.scopes: list[_Scope] = []
        # Tokens accumulated since the last statement boundary at the
        # current scope; used to classify the next '{' and to parse
        # declarations when a ';' flushes them.
        self.pending: list[Token] = []

    # --- scope helpers ----------------------------------------------------

    def _enclosing_class(self) -> ClassInfo | None:
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.cls
        return None

    def _enclosing_fn(self) -> Function | None:
        for s in reversed(self.scopes):
            if s.kind in ("function", "block") and s.fn is not None:
                return s.fn
        return None

    def _block_depth(self) -> int:
        return sum(1 for s in self.scopes if s.kind in ("function", "block"))

    def _at_decl_scope(self) -> bool:
        """True outside any function body (namespace/class/global scope)."""
        return all(s.kind in ("namespace", "class", "other")
                   for s in self.scopes)

    # --- main walk --------------------------------------------------------

    def walk(self) -> None:
        toks = self.toks
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]

            if t.kind == "pp":
                inc = parse_include(t.text)
                if inc:
                    exported = ("IWYU pragma" in t.text
                                and "export" in t.text)
                    self.tu.includes.append(
                        Include(path=inc[0], line=t.line, is_system=inc[1],
                                exported=exported))
                d = parse_define(t.text)
                if d:
                    self.tu.defines.append(d)
                    self.tu.toplevel_names.add(d)
                i += 1
                continue

            if t.kind == "id":
                self.tu.identifiers.setdefault(t.text, t.line)

            fn = self._enclosing_fn()

            if t.text == "{" and t.kind == "punct":
                i = self._open_brace(i)
                continue
            if t.text == "}" and t.kind == "punct":
                self._close_brace(t.line)
                self.pending = []
                i += 1
                continue
            if t.text == ";" and t.kind == "punct":
                if self._at_decl_scope():
                    self._flush_declaration()
                self.pending = []
                i += 1
                continue

            if fn is not None:
                i = self._function_token(i, fn)
            else:
                self.pending.append(t)
                i += 1

        # Fixture/real files can end mid-scope on parse slips; nothing to do.

    # --- '{' classification ----------------------------------------------

    def _open_brace(self, i: int) -> int:
        toks = self.toks
        p = self.pending
        fn = self._enclosing_fn()
        line = toks[i].line

        if fn is not None:
            # Inside a function body every '{' is a plain block (control
            # flow, lambda body, aggregate init — all equivalent for us).
            self.scopes.append(_Scope("block", fn=fn, open_idx=i))
            return i + 1

        if sum(1 for t in p if t.text == "(") > \
                sum(1 for t in p if t.text == ")"):
            # The '{' sits inside a still-open paren group — a braced
            # default argument in a declaration's parameter list, e.g.
            # `void f(const std::function<int(int)>& g = {});`. Not a
            # scope opener: skip the balanced group so the declaration
            # flushes intact at its ';'.
            depth = 0
            j = i
            while j < len(toks):
                if toks[j].text == "{" and toks[j].kind == "punct":
                    depth += 1
                elif toks[j].text == "}" and toks[j].kind == "punct":
                    depth -= 1
                    if depth == 0:
                        return j + 1
                j += 1
            return j

        ptexts = [t.text for t in p]

        if "namespace" in ptexts:
            name = ptexts[-1] if ptexts[-1] != "namespace" else ""
            self.scopes.append(_Scope("namespace", name=name))
            self.pending = []
            return i + 1

        if "enum" in ptexts:
            ids = [t.text for t in p if t.kind == "id"
                   and t.text not in ("enum", "class", "struct")]
            if ids:
                self.tu.toplevel_names.add(ids[0])
            self.scopes.append(_Scope("other"))
            self.pending = []
            return i + 1

        cls_kw = next((k for k in ("class", "struct", "union")
                       if k in ptexts), None)
        has_params = self._find_params_group(p) is not None
        if cls_kw is not None and not has_params:
            name = self._class_name_from_pending(p, ptexts.index(cls_kw))
            cls = ClassInfo(name=name, line=line)
            # Re-opening (e.g. fixture reuse of a name) keeps the first.
            self.tu.classes.setdefault(name, cls)
            self.tu.toplevel_names.add(name)
            self.scopes.append(
                _Scope("class", name=name, cls=self.tu.classes[name]))
            self.pending = []
            return i + 1

        func = self._try_function_from_pending(p, line)
        if func is not None:
            self.tu.functions.append(func)
            if func.class_name is None:
                self.tu.toplevel_names.add(func.name)
            encl = self._enclosing_class()
            if encl is not None and func.class_name == encl.name:
                encl.method_names.add(func.name)
            self.scopes.append(_Scope("function", fn=func, open_idx=i))
            self.pending = []
            return i + 1

        # Aggregate initializer / brace-initialized declaration. A member
        # like `std::atomic<u64> version_{0};` reaches here because the
        # '{' interrupts the declaration — record it before discarding.
        if self._at_decl_scope() and cls_kw is None and not has_params:
            member = self._parse_member(p)
            if member is not None:
                encl = self._enclosing_class()
                if encl is not None:
                    encl.members[member.name] = member
                else:
                    self.tu.toplevel_names.add(member.name)
                if "unordered_" in member.type_text:
                    self.tu.unordered_vars[member.name] = member.line
        self.scopes.append(_Scope("other"))
        self.pending = []
        return i + 1

    def _close_brace(self, line: int) -> None:
        if not self.scopes:
            return
        s = self.scopes.pop()
        if s.kind == "block" and s.fn is not None:
            s.fn.events.append(
                BlockExit(depth=self._block_depth() + 1, line=line))
        elif s.kind == "function" and s.fn is not None:
            s.fn.events.append(BlockExit(depth=1, line=line))
            s.fn.body_text = _text_of(
                self.toks[s.open_idx:self._index_of_line(line, s.open_idx)])

    def _index_of_line(self, line: int, start: int) -> int:
        # Cheap upper bound: body text is only used for coarse substring
        # scans, so "until the first token past `line`" is fine.
        for j in range(start, len(self.toks)):
            if self.toks[j].line > line:
                return j
        return len(self.toks)

    # --- declaration-scope parsing ---------------------------------------

    def _class_name_from_pending(self, p: list[Token], kw_idx: int) -> str:
        """Name of `class ... NAME [final] [: bases] {`. Skips attribute
        macros with arguments and the base clause."""
        toks = p[kw_idx + 1:]
        depth = 0
        candidates: list[str] = []
        j = 0
        while j < len(toks):
            t = toks[j]
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
            elif depth == 0:
                if t.text == ":" and t.kind == "punct":
                    break  # base clause starts
                if t.kind == "id" and t.text not in ("final", "alignas"):
                    nxt = toks[j + 1].text if j + 1 < len(toks) else ""
                    if nxt == "(":  # attribute macro invocation
                        j += 1
                        continue
                    candidates.append(t.text)
            j += 1
        return candidates[-1] if candidates else "<anon>"

    def _find_params_group(self, p: list[Token]) -> tuple[int, int] | None:
        """Locates the parameter list `( ... )` of a would-be function
        definition in the pending tokens: the first top-level paren group
        preceded by an identifier or `operator`. Returns (open, close)."""
        depth = 0
        j = 0
        while j < len(p):
            t = p[j]
            if t.text == "(" and t.kind == "punct":
                if depth == 0 and j > 0:
                    prev = p[j - 1]
                    prev2 = p[j - 2].text if j >= 2 else ""
                    named = (prev.kind == "id"
                             and prev.text not in _KEYWORDS) or \
                            (prev.kind == "punct" and prev2 == "operator")
                    if named and prev.text not in _ANNOTATION_MACROS:
                        close = self._match_paren(p, j)
                        if close is not None:
                            return j, close
                depth += 1
            elif t.text == ")" and t.kind == "punct":
                depth = max(0, depth - 1)
            j += 1
        return None

    @staticmethod
    def _match_paren(p: list[Token], open_idx: int) -> int | None:
        depth = 0
        for j in range(open_idx, len(p)):
            if p[j].text == "(":
                depth += 1
            elif p[j].text == ")":
                depth -= 1
                if depth == 0:
                    return j
        return None

    def _try_function_from_pending(self, p: list[Token],
                                   line: int) -> Function | None:
        grp = self._find_params_group(p)
        if grp is None:
            return None
        op, cl = grp
        # Name: identifier (or operatorX) immediately left of the params.
        name_idx = op - 1
        name = p[name_idx].text
        if p[name_idx].kind == "punct" and name_idx >= 1 \
                and p[name_idx - 1].text == "operator":
            name = "operator" + name
            name_idx -= 1
        if name in _KEYWORDS or name in _ANNOTATION_MACROS:
            return None
        # Qualification: walk back over `Cls ::` pairs.
        cls_name: str | None = None
        j = name_idx - 1
        if j >= 1 and p[j].text == "::" and p[j - 1].kind == "id":
            cls_name = p[j - 1].text
        if cls_name is None:
            encl = self._enclosing_class()
            if encl is not None:
                cls_name = encl.name
        fn = Function(name=name, class_name=cls_name, line=line,
                      params_text=_text_of(p[op + 1:cl]))
        # Qualifier annotations after the params (MPS_REQUIRES etc.).
        k = cl + 1
        while k < len(p):
            t = p[k]
            if t.kind == "id" and t.text in ("MPS_REQUIRES",
                                             "MPS_REQUIRES_SHARED",
                                             "MPS_ACQUIRE"):
                close = self._match_paren(p, k + 1)
                if close is not None:
                    arg = _text_of(p[k + 2:close])
                    if t.text == "MPS_ACQUIRE" and arg:
                        # Functions annotated as acquiring hand the lock to
                        # their caller; model as acquire-on-entry is wrong,
                        # so record nothing (the *call site* wrappers like
                        # MutexLock are what matter).
                        pass
                    elif arg:
                        fn.requires.append(arg)
                    k = close
            k += 1
        return fn

    def _flush_declaration(self) -> None:
        """A ';' at namespace/class scope: record a member (class scope),
        an alias, or a provided top-level name."""
        p = self.pending
        if not p:
            return
        texts = [t.text for t in p]

        if texts[0] == "using" and "=" in texts:
            eq = texts.index("=")
            if eq >= 2 and p[eq - 1].kind == "id":
                self.tu.aliases[p[eq - 1].text] = _text_of(p[eq + 1:])
                self.tu.toplevel_names.add(p[eq - 1].text)
            return
        if texts[0] == "typedef" and len(p) >= 3 and p[-1].kind == "id":
            self.tu.aliases[p[-1].text] = _text_of(p[1:-1])
            self.tu.toplevel_names.add(p[-1].text)
            return
        if texts[0] in ("friend", "template", "static_assert", "extern",
                        "public", "private", "protected", "using"):
            return
        # Forward declarations / enum declarations provide their name.
        if texts[0] in ("class", "struct", "enum", "union"):
            ids = [t.text for t in p if t.kind == "id"
                   and t.text not in ("class", "struct", "enum", "union")]
            if ids:
                self.tu.toplevel_names.add(ids[0])
            # `enum class X : type { ... };` closed on one statement is
            # handled by the brace classifier; nothing else to record.
            return

        encl = self._enclosing_class()
        grp = self._find_params_group(p)
        if grp is not None:
            # Method declaration (class scope) or function declaration.
            op, _ = grp
            nm = p[op - 1].text
            if encl is not None:
                encl.method_names.add(nm)
            else:
                self.tu.toplevel_names.add(nm)
            return
        member = self._parse_member(p)
        if member is None:
            return
        if encl is not None:
            encl.members[member.name] = member
        else:
            self.tu.toplevel_names.add(member.name)
        if "unordered_" in member.type_text:
            self.tu.unordered_vars[member.name] = member.line

    def _parse_member(self, p: list[Token]) -> Member | None:
        """Parses `[static] [mutable] type NAME [MACRO(arg)] [= init];`
        pending tokens into a Member. Returns None when no name is found."""
        # Cut at the first top-level '=' or '{' (initializer).
        depth = angle = 0
        cut = len(p)
        for j, t in enumerate(p):
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
            elif depth == 0 and t.kind == "punct":
                if t.text == "<" and j > 0 and p[j - 1].kind == "id":
                    angle += 1
                elif t.text == ">" and angle > 0:
                    angle -= 1
                elif t.text == ">>" and angle > 0:
                    angle = max(0, angle - 2)
                elif angle == 0 and t.text in ("=", "{"):
                    cut = j
                    break
        decl = p[:cut]
        if not decl:
            return None
        annotations: dict[str, str] = {}
        core: list[Token] = []
        j = 0
        while j < len(decl):
            t = decl[j]
            if t.kind == "id" and t.text in _ANNOTATION_MACROS:
                close = self._match_paren(decl, j + 1) \
                    if j + 1 < len(decl) and decl[j + 1].text == "(" else None
                if close is not None:
                    annotations[t.text] = _text_of(decl[j + 2:close])
                    j = close + 1
                    continue
                annotations[t.text] = ""
                j += 1
                continue
            core.append(t)
            j += 1
        # Name = last identifier in the core declaration (arrays: skip
        # trailing [N] brackets).
        # Strip leading access specifiers that rode along in the pending
        # run ("public : std::uint64_t hits").
        while len(core) >= 2 and core[0].text in ("public", "private",
                                                  "protected") \
                and core[1].text == ":":
            core = core[2:]
        k = len(core) - 1
        while k >= 0 and (core[k].text in ("]", "[")
                          or core[k].kind == "num"):
            k -= 1
        while k >= 0 and core[k].kind != "id":
            k -= 1
        if k <= 0:   # a lone identifier is an expression, not a declaration
            return None
        name = core[k].text
        type_text = _text_of(core[:k])
        if not type_text or name in _KEYWORDS:
            return None
        return Member(
            name=name, type_text=type_text, line=core[k].line,
            annotations=annotations,
            is_static="static" in type_text.split(),
            is_const="const" in type_text.split(),
        )

    # --- function-body parsing --------------------------------------------

    def _function_token(self, i: int, fn: Function) -> int:
        toks = self.toks
        t = toks[i]
        depth = self._block_depth()

        if t.kind == "id":
            # RAII lock constructions.
            if t.text in _RAII_LOCKS:
                nxt = self._raii_acquire(i, fn, depth)
                if nxt is not None:
                    return nxt
            if t.text == "for":
                nxt = self._for_header(i, fn, depth)
                if nxt is not None:
                    return nxt
            if t.text in _UNORDERED_TYPES:
                self._unordered_decl(i)
            # Member/obj calls and manual lock/unlock.
            if i + 1 < len(toks) and toks[i + 1].text == "(" \
                    and t.text not in _KEYWORDS:
                self._call_like(i, fn, depth)
            # Writes: id followed by assignment/incdec.
            if i + 1 < len(toks):
                nt = toks[i + 1]
                if nt.kind == "punct" and nt.text in _ASSIGN_OPS:
                    fn.events.append(Write(name=t.text, line=t.line,
                                           depth=depth, via="assign"))
                elif nt.kind == "punct" and nt.text in ("++", "--"):
                    fn.events.append(Write(name=t.text, line=t.line,
                                           depth=depth, via="incdec"))
        elif t.kind == "punct" and t.text in ("++", "--"):
            if i + 1 < len(toks) and toks[i + 1].kind == "id":
                fn.events.append(Write(name=toks[i + 1].text, line=t.line,
                                       depth=depth, via="incdec"))
        return i + 1

    def _raii_acquire(self, i: int, fn: Function, depth: int) -> int | None:
        """`MutexLock name(expr)` / `std::lock_guard<...> name(expr)` /
        `std::scoped_lock name(a, b)`. Returns the index after the
        construction, or None if the shape doesn't match."""
        toks = self.toks
        j = i + 1
        # Skip template argument list.
        if j < len(toks) and toks[j].text == "<":
            angle = 0
            while j < len(toks):
                if toks[j].text == "<":
                    angle += 1
                elif toks[j].text == ">":
                    angle -= 1
                    if angle == 0:
                        j += 1
                        break
                elif toks[j].text == ">>":
                    angle -= 2
                    if angle <= 0:
                        j += 1
                        break
                j += 1
        if j >= len(toks) or toks[j].kind != "id":
            return None
        var_idx = j
        j += 1
        if j >= len(toks) or toks[j].text not in ("(", "{"):
            return None
        open_tok = toks[j].text
        close_tok = ")" if open_tok == "(" else "}"
        d = 0
        args_start = j + 1
        k = j
        while k < len(toks):
            if toks[k].text == open_tok:
                d += 1
            elif toks[k].text == close_tok:
                d -= 1
                if d == 0:
                    break
            k += 1
        if k >= len(toks):
            return None
        args = toks[args_start:k]
        # Split top-level commas: scoped_lock can take several mutexes.
        groups: list[list[Token]] = [[]]
        d2 = 0
        for tok in args:
            if tok.text in ("(", "{", "["):
                d2 += 1
            elif tok.text in (")", "}", "]"):
                d2 -= 1
            if tok.text == "," and d2 == 0:
                groups.append([])
            else:
                groups[-1].append(tok)
        texts = [_text_of(g) for g in groups if g]
        kind = "raii"
        locks = []
        for g in texts:
            if "defer_lock" in g:
                return k + 1  # deferred: no acquisition here
            if "adopt_lock" in g:
                kind = "adopt"
                continue
            locks.append(g)
        line = toks[var_idx].line
        for lk in locks:
            fn.events.append(Acquire(lock_expr=lk, line=line,
                                     depth=depth, kind=kind))
        return k + 1

    def _call_like(self, i: int, fn: Function, depth: int) -> None:
        """Records a call event for `name(`, resolving `obj.name(` /
        `obj->name(` / `Cls::name(` shapes, plus manual lock()/unlock()."""
        toks = self.toks
        name = toks[i].text
        obj = None
        qual = None
        j = i - 1
        if j >= 0 and toks[j].text in (".", "->"):
            # Walk the object chain backwards: a.b.c.name( -> obj "a.b.c"
            parts: list[str] = []
            k = j
            while k >= 1 and toks[k].text in (".", "->") \
                    and toks[k - 1].kind == "id":
                parts.append(toks[k - 1].text)
                k -= 2
            if k >= 0 and toks[k].text == "this":
                parts.append("this")
            obj = ".".join(reversed(parts)) if parts else None
            if name == "lock":
                if obj:
                    fn.events.append(Acquire(lock_expr=obj, line=toks[i].line,
                                             depth=depth, kind="manual"))
                return
            if name == "unlock":
                if obj:
                    fn.events.append(Release(lock_expr=obj,
                                             line=toks[i].line, depth=depth))
                return
            if name in _MUTATORS and obj:
                fn.events.append(Write(name=obj.split(".")[0],
                                       line=toks[i].line, depth=depth,
                                       via=f"mutate:{name}"))
        elif j >= 1 and toks[j].text == "::" and toks[j - 1].kind == "id":
            qual = toks[j - 1].text
        fn.events.append(Call(name=name, obj_expr=obj, qualifier=qual,
                              line=toks[i].line, depth=depth))

    def _for_header(self, i: int, fn: Function, depth: int) -> int | None:
        """Parses a for-statement header: records RangeFor for
        `for (decl : expr)` and IterWalk for `.begin()` in a classic for."""
        toks = self.toks
        j = i + 1
        if j >= len(toks) or toks[j].text != "(":
            return None
        d = 0
        colon = None
        k = j
        while k < len(toks):
            if toks[k].text == "(":
                d += 1
            elif toks[k].text == ")":
                d -= 1
                if d == 0:
                    break
            elif d == 1 and toks[k].kind == "punct" and toks[k].text == ":":
                colon = k
            k += 1
        if k >= len(toks):
            return None
        header = toks[j + 1:k]
        if colon is not None:
            expr = toks[colon + 1:k]
            expr_name = expr[0].text if expr and expr[0].kind == "id" else ""
            body_end = self._statement_end(k + 1)
            body = _text_of(toks[k + 1:body_end])
            fn.events.append(RangeFor(
                expr_text=_text_of(expr), expr_name=expr_name,
                line=toks[i].line, depth=depth, body_text=body))
        else:
            # Classic for: look for `x.begin(` / `x.cbegin(` in the header.
            for m in range(len(header) - 2):
                if header[m].kind == "id" \
                        and header[m + 1].text in (".", "->") \
                        and header[m + 2].text in ("begin", "cbegin"):
                    fn.events.append(IterWalk(expr_name=header[m].text,
                                              line=header[m].line,
                                              depth=depth))
        return None  # let the normal walk continue from i+1

    def _statement_end(self, start: int) -> int:
        toks = self.toks
        if start < len(toks) and toks[start].text == "{":
            d = 0
            for j in range(start, len(toks)):
                if toks[j].text == "{":
                    d += 1
                elif toks[j].text == "}":
                    d -= 1
                    if d == 0:
                        return j + 1
            return len(toks)
        for j in range(start, len(toks)):
            if toks[j].text == ";":
                return j + 1
        return len(toks)

    def _unordered_decl(self, i: int) -> None:
        """`unordered_map<K, V> name` (member or local): records the
        variable name so iteration checks can resolve it."""
        toks = self.toks
        j = i + 1
        if j >= len(toks) or toks[j].text != "<":
            return
        angle = 0
        while j < len(toks):
            if toks[j].text == "<":
                angle += 1
            elif toks[j].text == ">":
                angle -= 1
                if angle == 0:
                    j += 1
                    break
            elif toks[j].text == ">>":
                angle -= 2
                if angle <= 0:
                    j += 1
                    break
            j += 1
        if j < len(toks) and toks[j].kind == "id":
            self.tu.unordered_vars[toks[j].text] = toks[j].line
