#!/usr/bin/env python3
"""AST-grade static analysis for the parsssp tree.

Drives the check families A1-A5 (docs/STATIC_ANALYSIS.md) over the
project sources, discovered through the build's compile_commands.json
plus the header set under src/. Two frontends produce the shared TU
model:

  * frontend_clang (libclang via clang.cindex) — preferred when the
    Python bindings and a loadable libclang are installed;
  * frontend_lex — a zero-dependency lexical frontend, the deterministic
    reference that CI runs everywhere.

Findings print one per line as `path:line: [A#/rule] message`. Waivers
live in scripts/analysis/policy.toml ([[waiver]], matched on
check/file/symbol); a waiver matching no finding is itself an error so
the allowlist can only shrink unless consciously grown. Exit code 0 =
clean, 1 = findings or stale waivers, 2 = usage/configuration error.

Usage:
  scripts/analysis/analyze.py [--compdb build/compile_commands.json]
                              [--frontend auto|lex|clang]
                              [--json out.json] [--quiet]
"""

from __future__ import annotations

import argparse
import json
import sys
import tomllib
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import frontend_lex  # noqa: E402
from model import TU, Finding  # noqa: E402
from checks import clocks, determinism, layering, lock_order, signature  # noqa: E402

REPO = Path(__file__).resolve().parents[2]
HERE = Path(__file__).resolve().parent

# Analysis scope: the product tree. tests/ stays under scripts/lint.py;
# pulling gtest macro soup through the heuristic frontend buys noise, not
# coverage.
SCAN_DIRS = ("src", "tools", "bench")
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}


def discover_files(root: Path, compdb: Path | None,
                   quiet: bool) -> list[str]:
    """Repo-relative posix paths to analyze. compile_commands.json is the
    source of truth for translation units; headers are globbed (they have
    no compile commands)."""
    rels: set[str] = set()
    in_scope = lambda rel: any(  # noqa: E731
        rel == d or rel.startswith(d + "/") for d in SCAN_DIRS)
    if compdb is not None and compdb.is_file():
        for entry in json.loads(compdb.read_text()):
            p = Path(entry.get("file", ""))
            if not p.is_absolute():
                p = Path(entry.get("directory", ".")) / p
            try:
                rel = p.resolve().relative_to(root).as_posix()
            except ValueError:
                continue
            if in_scope(rel) and p.suffix in CPP_SUFFIXES:
                rels.add(rel)
    else:
        if not quiet:
            print("analyze: no compile_commands.json — falling back to a "
                  "tree scan (run cmake -B build to generate one)",
                  file=sys.stderr)
        for d in SCAN_DIRS:
            base = root / d
            if base.is_dir():
                rels.update(p.relative_to(root).as_posix()
                            for p in base.rglob("*.cpp"))
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            rels.update(p.relative_to(root).as_posix()
                        for suffix in (".hpp", ".h")
                        for p in base.rglob(f"*{suffix}"))
    return sorted(rels)


def pick_frontend(name: str):
    """Returns (module, label). `auto` prefers libclang, falls back."""
    if name in ("auto", "clang"):
        try:
            import frontend_clang
            if frontend_clang.available():
                return frontend_clang, "clang"
            if name == "clang":
                raise RuntimeError("libclang requested but not loadable")
        except ImportError:
            if name == "clang":
                raise
    return frontend_lex, "lex"


def load_tus(root: Path, rels: list[str], frontend,
             compdb: Path | None = None) -> dict[str, TU]:
    tus: dict[str, TU] = {}
    for rel in rels:
        path = root / rel
        if not path.is_file():
            continue
        if hasattr(frontend, "parse_file_compdb"):
            tus[rel] = frontend.parse_file_compdb(path, rel, compdb)
        else:
            tus[rel] = frontend.parse_file(path, rel)
    return tus


def run_checks(tus: dict[str, TU], layers_cfg: dict,
               policy: dict) -> list[Finding]:
    findings: list[Finding] = []
    findings += lock_order.run(tus)
    findings += signature.run(tus, policy)
    findings += layering.run(tus, layers_cfg)
    findings += determinism.run(tus, policy)
    findings += clocks.run(tus, policy)
    return findings


def apply_waivers(findings: list[Finding], policy: dict):
    """Splits findings into (kept, waived) and returns stale waivers —
    allowlist entries that matched nothing this run."""
    waivers = policy.get("waiver", [])
    kept: list[Finding] = []
    waived: list[Finding] = []
    used: set[int] = set()
    for f in findings:
        hit = None
        for idx, w in enumerate(waivers):
            if (w.get("check") == f.check and w.get("file") == f.file
                    and w.get("symbol") == f.symbol):
                hit = idx
                break
        if hit is None:
            kept.append(f)
        else:
            used.add(hit)
            waived.append(f)
    stale = [w for idx, w in enumerate(waivers) if idx not in used]
    return kept, waived, stale


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compdb", type=Path,
                    default=REPO / "build" / "compile_commands.json")
    ap.add_argument("--frontend", choices=("auto", "lex", "clang"),
                    default="auto")
    ap.add_argument("--json", type=Path, default=None,
                    help="write a findings artifact to this path")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args()

    layers_cfg = tomllib.loads((HERE / "layers.toml").read_text())
    policy = tomllib.loads((HERE / "policy.toml").read_text())

    try:
        frontend, label = pick_frontend(args.frontend)
    except Exception as exc:  # --frontend clang without libclang
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    rels = discover_files(REPO, args.compdb, args.quiet)
    tus = load_tus(REPO, rels, frontend, args.compdb)
    findings = run_checks(tus, layers_cfg, policy)
    findings.sort(key=lambda f: (f.file, f.line, f.check, f.rule))
    kept, waived, stale = apply_waivers(findings, policy)

    for f in kept:
        print(f.format())
    for w in stale:
        print(f"scripts/analysis/policy.toml:1: [waiver/stale] waiver "
              f"({w.get('check')}, {w.get('file')}, {w.get('symbol')}) "
              "matched no finding — remove it")

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps({
            "frontend": label,
            "files_analyzed": len(tus),
            "findings": [vars(f) for f in kept],
            "waived": [vars(f) for f in waived],
            "stale_waivers": stale,
        }, indent=2) + "\n")

    if not args.quiet:
        print(f"analyze: frontend={label} files={len(tus)} "
              f"findings={len(kept)} waived={len(waived)} "
              f"stale_waivers={len(stale)}", file=sys.stderr)
    return 1 if kept or stale else 0


if __name__ == "__main__":
    sys.exit(main())
