"""Translation-unit model shared by every analyzer frontend.

Both frontends (frontend_lex.py, frontend_clang.py) reduce a C++ file to
this model; the check families (checks/) consume only the model, so a
check behaves identically regardless of which frontend produced it. The
model is deliberately *flat* — lists of declarations and in-order event
streams, not a tree — because that is the least common denominator the
lexical frontend can produce reliably and it is sufficient for every
check the subsystem ships (lock graphs, include graphs, field
inventories, token scans).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Include:
    path: str          # as written between the quotes/brackets
    line: int
    is_system: bool    # <...> vs "..."
    # `// IWYU pragma: export` on the directive: this header re-exports
    # the included header's names as part of its own API (facade pattern;
    # see src/core/seeded_solve.hpp re-exporting RelaxMsg to src/update/).
    exported: bool = False


@dataclass
class Member:
    """One non-function data member of a class/struct."""
    name: str
    type_text: str               # declaration tokens left of the name
    line: int
    annotations: dict[str, str] = field(default_factory=dict)
    is_static: bool = False
    is_const: bool = False

    @property
    def is_mutex(self) -> bool:
        t = self.type_text
        return ("Mutex" in t.split() or "mutex" in t.replace("::", " ").split())

    @property
    def is_atomic(self) -> bool:
        return "atomic" in self.type_text

    def guarded_by(self) -> str | None:
        for macro in ("MPS_GUARDED_BY", "GUARDED_BY",
                      "MPS_PT_GUARDED_BY", "PT_GUARDED_BY"):
            if macro in self.annotations:
                return self.annotations[macro]
        return None


@dataclass
class ClassInfo:
    name: str                    # unqualified (project uses one namespace)
    line: int
    members: dict[str, Member] = field(default_factory=dict)
    method_names: set[str] = field(default_factory=set)

    def mutex_members(self) -> list[Member]:
        return [m for m in self.members.values() if m.is_mutex]


# --- In-order events inside a function body --------------------------------

@dataclass
class Acquire:
    lock_expr: str     # source text of the lock operand, e.g. "mutex_"
    line: int
    depth: int         # block depth at the acquisition (for RAII scoping)
    kind: str          # "raii" | "manual" | "adopt"


@dataclass
class Release:
    lock_expr: str
    line: int
    depth: int


@dataclass
class BlockExit:
    depth: int         # the depth of the block being exited
    line: int


@dataclass
class Call:
    name: str              # unqualified callee name
    obj_expr: str | None   # "cache_", "this" ... None for free calls
    qualifier: str | None  # "Cls" for Cls::name(...) calls
    line: int
    depth: int


@dataclass
class Write:
    """A mutation of a plain identifier: assignment, compound assignment,
    increment/decrement, or a call to a known mutating member function."""
    name: str
    line: int
    depth: int
    via: str           # "assign" | "incdec" | "mutate:<method>"


@dataclass
class RangeFor:
    expr_text: str     # the range expression after ':'
    expr_name: str     # leading identifier of the expression ("" if none)
    line: int
    depth: int
    body_text: str     # token text of the loop body (for classification)


@dataclass
class IterWalk:
    """`x.begin()` / `x.cbegin()` inside a for-statement header."""
    expr_name: str
    line: int
    depth: int


Event = Acquire | Release | BlockExit | Call | Write | RangeFor | IterWalk


@dataclass
class Function:
    name: str                  # unqualified
    class_name: str | None     # enclosing/qualifying class, if any
    line: int
    params_text: str = ""
    requires: list[str] = field(default_factory=list)  # MPS_REQUIRES args
    events: list[Event] = field(default_factory=list)
    body_text: str = ""        # full body token text (coarse scans)

    @property
    def qualname(self) -> str:
        return f"{self.class_name}::{self.name}" if self.class_name else self.name


@dataclass
class TU:
    path: str                   # absolute path
    rel: str                    # repo-relative posix path
    includes: list[Include] = field(default_factory=list)
    defines: list[str] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: list[Function] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)   # using A = B
    toplevel_names: set[str] = field(default_factory=set)   # provided names
    identifiers: dict[str, int] = field(default_factory=dict)  # id -> 1st line
    unordered_vars: dict[str, int] = field(default_factory=dict)  # name->line


@dataclass
class Finding:
    check: str      # "A1".."A5"
    rule: str       # slug within the family, e.g. "lock-cycle"
    file: str       # repo-relative path
    line: int
    message: str
    symbol: str = ""   # anchor for allowlisting (lock id, member, include)

    def key(self) -> tuple[str, str, str]:
        return (self.check, self.file, self.symbol)

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.check}/{self.rule}] {self.message}"
