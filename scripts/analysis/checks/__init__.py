"""Check families A1-A5 (see docs/STATIC_ANALYSIS.md).

Every module exposes `run(...) -> list[model.Finding]` and consumes only
the frontend-independent TU model, so a check behaves identically under
the libclang frontend and the lexical fallback.
"""
