"""A1: lock-order graph extraction and deadlock-potential detection.

Builds a lock-acquisition-order graph over the whole project: an edge
A -> B means some function acquires B while holding A (directly, or
transitively through a resolved call). A cycle in that graph is deadlock
potential; a self-edge is a re-entrant acquisition of a non-recursive
mutex. Lock identity is `Class::member`, resolved through the class
member tables, so two methods locking the same `mutex_` member agree on
the node and two different classes' `mutex_` members do not collide.

Noise control (the lexical frontend over-approximates events):
  * adopt_lock acquisitions are *held* (for guarded-field auditing) but
    never create order edges or transitive acquisitions — the real
    acquisition happened at the caller under its own name;
  * a lock expression that does not resolve to a known mutex member gets
    a per-function unique node, so unresolved locals can never fabricate
    a cross-function cycle;
  * calls whose callee cannot be resolved to a single known function are
    skipped rather than guessed.

The family also cross-checks the Clang thread-safety annotations:
  * unguarded-field — a member written while a mutex of its class is
    held, but carrying no GUARDED_BY annotation (atomics, constants and
    the synchronization primitives themselves are exempt);
  * bad-guard — a GUARDED_BY argument that names no mutex member of the
    class, i.e. an annotation that type-checks but guards nothing.
"""

from __future__ import annotations

from model import (Acquire, BlockExit, Call, ClassInfo, Finding, Function,
                   Release, TU, Write)

CHECK = "A1"

_SYNC_TYPES = ("CondVar", "condition_variable")


def run(tus: dict[str, TU]) -> list[Finding]:
    classes = _merge_classes(tus)
    free_defs: dict[str, list[Function]] = {}
    method_defs: dict[str, list[Function]] = {}
    all_defs: list[tuple[str, Function]] = []
    for rel, tu in tus.items():
        for fn in tu.functions:
            all_defs.append((rel, fn))
            (method_defs if fn.class_name else free_defs).setdefault(
                fn.qualname, []).append(fn)

    # Per-definition simulation: direct edges, resolved call sites with the
    # held set at the call, direct acquisitions, writes under lock.
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}  # witness
    acq_of: dict[str, set[str]] = {}
    calls_of: list[tuple[str, str, list[str], str, int]] = []
    writes: list[tuple[str, Function, str, int, list[str]]] = []
    for rel, fn in all_defs:
        sim = _simulate(rel, fn, classes, free_defs)
        for (a, b), wit in sim.edges.items():
            edges.setdefault((a, b), wit)
        acq_of.setdefault(fn.qualname, set()).update(sim.acquired)
        for callee, held, line in sim.calls:
            calls_of.append((fn.qualname, callee, held, rel, line))
        for name, line, held in sim.writes:
            writes.append((rel, fn, name, line, held))

    # Transitive closure: a function's acquisition set includes everything
    # its resolved callees acquire.
    changed = True
    while changed:
        changed = False
        for caller, callee, _held, _rel, _line in calls_of:
            extra = acq_of.get(callee, set()) - acq_of.setdefault(caller, set())
            if extra:
                acq_of[caller] |= extra
                changed = True
    # Self-edges are kept: holding A while calling something that
    # re-acquires A is a real self-deadlock on a non-recursive mutex.
    for _caller, callee, held, rel, line in calls_of:
        for b in acq_of.get(callee, ()):
            for a in held:
                edges.setdefault((a, b), (rel, line, callee))

    findings = _cycle_findings(edges)
    findings += _annotation_findings(classes, writes, tus)
    return findings


# --- model assembly ---------------------------------------------------------

def _merge_classes(tus: dict[str, TU]) -> dict[str, ClassInfo]:
    """One member table per class name across all TUs (hpp declares the
    members, cpp re-opens nothing but may add method definitions)."""
    merged: dict[str, ClassInfo] = {}
    for tu in tus.values():
        for name, ci in tu.classes.items():
            if name not in merged:
                merged[name] = ClassInfo(name=name, line=ci.line,
                                         members=dict(ci.members),
                                         method_names=set(ci.method_names))
            else:
                tgt = merged[name]
                for mn, m in ci.members.items():
                    tgt.members.setdefault(mn, m)
                tgt.method_names |= ci.method_names
    return merged


class _Sim:
    __slots__ = ("edges", "acquired", "calls", "writes")

    def __init__(self) -> None:
        self.edges: dict[tuple[str, str], tuple[str, int, str]] = {}
        self.acquired: set[str] = set()
        self.calls: list[tuple[str, list[str], int]] = []
        self.writes: list[tuple[str, int, list[str]]] = []


def _simulate(rel: str, fn: Function, classes: dict[str, ClassInfo],
              free_defs: dict[str, list[Function]]) -> _Sim:
    sim = _Sim()
    # held: (lock_id, depth, kind); kind "requires" locks are held at entry.
    held: list[tuple[str, int, str]] = []
    unresolved = 0
    for req in fn.requires:
        lid = _resolve_lock(fn, req, classes)
        if lid:
            held.append((lid, 0, "requires"))

    for ev in fn.events:
        if isinstance(ev, Acquire):
            lid = _resolve_lock(fn, ev.lock_expr, classes)
            if lid is None:
                unresolved += 1
                lid = f"<{rel}:{fn.qualname}:#{unresolved}>"
            if ev.kind != "adopt":
                for hid, _d, hkind in held:
                    if hkind != "adopt":
                        sim.edges.setdefault((hid, lid), (rel, ev.line,
                                                          fn.qualname))
                sim.acquired.add(lid)
            held.append((lid, ev.depth, ev.kind))
        elif isinstance(ev, Release):
            lid = _resolve_lock(fn, ev.lock_expr, classes)
            for idx in range(len(held) - 1, -1, -1):
                hid, _d, hkind = held[idx]
                if (lid is not None and hid == lid) or \
                        (lid is None and hkind == "manual"):
                    held.pop(idx)
                    break
        elif isinstance(ev, BlockExit):
            held = [h for h in held
                    if not (h[2] in ("raii", "adopt") and h[1] >= ev.depth)]
        elif isinstance(ev, Call):
            callee = _resolve_call(fn, ev, classes, free_defs)
            if callee is not None:
                sim.calls.append(
                    (callee, [h[0] for h in held if h[2] != "adopt"],
                     ev.line))
        elif isinstance(ev, Write):
            if held:
                sim.writes.append((ev.name, ev.line, [h[0] for h in held]))
    return sim


def _resolve_lock(fn: Function, expr: str,
                  classes: dict[str, ClassInfo]) -> str | None:
    """`mutex_` / `this->mutex_` / `session_.mutex_` -> "Class::member"
    when the chain types out to a known mutex member, else None."""
    e = expr.replace("->", ".").replace("*", " ").replace("&", " ")
    parts = [p.strip() for p in e.split(".")]
    parts = [p for p in parts if p]
    if parts and parts[0] == "this":
        parts = parts[1:]
    if not parts or any(" " in p or not p.isidentifier() for p in parts):
        return None
    cur = classes.get(fn.class_name) if fn.class_name else None
    for part in parts[:-1]:
        cur = _member_class(cur, part, classes)
        if cur is None:
            return None
    last = parts[-1]
    if cur is not None:
        m = cur.members.get(last)
        if m is not None and m.is_mutex:
            return f"{cur.name}::{last}"
    return None


def _member_class(cur: ClassInfo | None, member: str,
                  classes: dict[str, ClassInfo]) -> ClassInfo | None:
    if cur is None:
        return None
    m = cur.members.get(member)
    if m is None:
        return None
    for tok in m.type_text.split():
        if tok in classes:
            return classes[tok]
    return None


def _resolve_call(fn: Function, ev: Call, classes: dict[str, ClassInfo],
                  free_defs: dict[str, list[Function]]) -> str | None:
    if ev.qualifier is not None:
        cls = classes.get(ev.qualifier)
        if cls is not None and ev.name in cls.method_names:
            return f"{ev.qualifier}::{ev.name}"
        return None
    if ev.obj_expr is not None:
        parts = [p for p in ev.obj_expr.split(".") if p]
        if parts and parts[0] == "this":
            parts = parts[1:]
        cur = classes.get(fn.class_name) if fn.class_name else None
        for part in parts:
            cur = _member_class(cur, part, classes)
        if cur is not None and ev.name in cur.method_names:
            return f"{cur.name}::{ev.name}"
        return None
    # Unqualified: same-class method first, then a uniquely-named free
    # function; anything ambiguous is skipped, not guessed.
    if fn.class_name:
        cls = classes.get(fn.class_name)
        if cls is not None and ev.name in cls.method_names:
            return f"{fn.class_name}::{ev.name}"
    if ev.name in free_defs and len(free_defs[ev.name]) >= 1:
        return ev.name
    return None


# --- findings ---------------------------------------------------------------

def _cycle_findings(
        edges: dict[tuple[str, str], tuple[str, int, str]]) -> list[Finding]:
    graph: dict[str, set[str]] = {}
    for (a, b), _w in edges.items():
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    sccs = _tarjan(graph)
    findings: list[Finding] = []
    for scc in sccs:
        scc_set = set(scc)
        cyclic = len(scc) > 1
        for (a, b), (rel, line, ctx) in sorted(edges.items(),
                                               key=lambda kv: kv[1][:2]):
            if a == b and a in scc_set:
                findings.append(Finding(
                    check=CHECK, rule="reentrant-lock", file=rel, line=line,
                    message=f"re-entrant acquisition of {a} (via {ctx}) — "
                            "Mutex is non-recursive; this self-deadlocks",
                    symbol=f"reentrant:{a}"))
            elif cyclic and a in scc_set and b in scc_set:
                cycle = "->".join(sorted(scc_set))
                findings.append(Finding(
                    check=CHECK, rule="lock-cycle", file=rel, line=line,
                    message=f"lock-order cycle {{{cycle}}}: {a} held while "
                            f"acquiring {b} (via {ctx}) — deadlock "
                            "potential; pick one acquisition order",
                    symbol=f"cycle-edge:{a}->{b}"))
    return findings


def _tarjan(graph: dict[str, set[str]]) -> list[list[str]]:
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative Tarjan (fixture graphs are tiny but recursion limits
        # are not worth meeting halfway).
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                out.append(scc)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return out


def _annotation_findings(classes: dict[str, ClassInfo],
                         writes: list[tuple[str, Function, str, int,
                                            list[str]]],
                         tus: dict[str, TU]) -> list[Finding]:
    findings: list[Finding] = []

    # unguarded-field: written under a class mutex, no GUARDED_BY.
    reported: set[str] = set()
    for rel, fn, name, line, held in sorted(
            writes, key=lambda w: (w[0], w[3])):
        cls = classes.get(fn.class_name) if fn.class_name else None
        if cls is None or fn.name == cls.name:   # constructors initialize
            continue
        if not any(h.startswith(cls.name + "::") for h in held):
            continue
        m = cls.members.get(name)
        if m is None:
            continue
        if (m.guarded_by() is not None or m.is_atomic or m.is_const
                or m.is_static or m.is_mutex
                or any(s in m.type_text for s in _SYNC_TYPES)):
            continue
        key = f"{cls.name}::{name}"
        if key in reported:
            continue
        reported.add(key)
        findings.append(Finding(
            check=CHECK, rule="unguarded-field", file=rel, line=line,
            message=f"{key} is written while a {cls.name} mutex is held "
                    "but carries no GUARDED_BY annotation — the "
                    "thread-safety analysis cannot see this invariant",
            symbol=f"unguarded:{key}"))

    # bad-guard: a GUARDED_BY argument naming no mutex member.
    for rel, tu in sorted(tus.items()):
        for cname, ci in tu.classes.items():
            cls = classes.get(cname, ci)
            for m in ci.members.values():
                guard = m.guarded_by()
                if guard is None:
                    continue
                tokens = [t for t in guard.replace("->", " ").replace(
                    ".", " ").split() if t.isidentifier() and t != "this"]
                target = tokens[-1] if tokens else ""
                gm = cls.members.get(target)
                if gm is None or not gm.is_mutex:
                    findings.append(Finding(
                        check=CHECK, rule="bad-guard", file=rel, line=m.line,
                        message=f"{cname}::{m.name} is GUARDED_BY({guard}) "
                                "but that names no mutex member of "
                                f"{cname} — the annotation guards nothing",
                        symbol=f"bad-guard:{cname}::{m.name}"))
    return findings
