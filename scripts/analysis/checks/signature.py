"""A2: options-signature completeness.

Every non-static field of SsspOptions must be named inside
options_signature()'s body, or be listed on the policy's explicit
exclusion allowlist. Struct-valued fields named in [signature]
nested_structs get the same treatment field-by-field (serializing
`cost_model` alone would not prove each parameter is keyed). An
exclusion that matches no field is itself a finding, so the allowlist
cannot drift as fields are renamed — the exact failure mode this check
exists to prevent in the cache key.
"""

from __future__ import annotations

from model import Finding, TU

CHECK = "A2"


def run(tus: dict[str, TU], policy: dict) -> list[Finding]:
    cfg = policy.get("signature")
    if not cfg:
        return []
    findings: list[Finding] = []
    header = cfg["options_header"]
    struct = cfg["options_struct"]
    impl_file = cfg["impl_file"]
    impl_function = cfg["impl_function"]
    excludes = {e["field"]: e.get("reason", "")
                for e in cfg.get("exclude", [])}

    htu = tus.get(header)
    if htu is None or struct not in htu.classes:
        findings.append(Finding(
            check=CHECK, rule="config-error", file=header, line=1,
            message=f"struct {struct} not found in {header} — "
                    "[signature] policy is stale",
            symbol=f"missing-struct:{struct}"))
        return findings

    itu = tus.get(impl_file)
    body_tokens: set[str] | None = None
    if itu is not None:
        for fn in itu.functions:
            if fn.name == impl_function:
                body_tokens = set(fn.body_text.split())
                break
    if body_tokens is None:
        findings.append(Finding(
            check=CHECK, rule="config-error", file=impl_file, line=1,
            message=f"function {impl_function}() not found in {impl_file} — "
                    "[signature] policy is stale",
            symbol=f"missing-impl:{impl_function}"))
        return findings

    structs = [struct] + [s for s in cfg.get("nested_structs", [])
                          if s in htu.classes]
    known_fields: set[str] = set()
    for sname in structs:
        cls = htu.classes[sname]
        for m in cls.members.values():
            if m.is_static:
                continue
            known_fields.add(m.name)
            if m.name in excludes:
                continue
            if m.name not in body_tokens:
                findings.append(Finding(
                    check=CHECK, rule="unserialized-field", file=header,
                    line=m.line,
                    message=f"{sname}::{m.name} is not serialized by "
                            f"{impl_function}() and is not on the exclusion "
                            "allowlist — a query differing only in this "
                            "field would hit a stale cache entry",
                    symbol=f"field:{sname}::{m.name}"))

    for name in sorted(set(excludes) - known_fields):
        findings.append(Finding(
            check=CHECK, rule="stale-exclusion", file=header,
            line=htu.classes[struct].line,
            message=f"[signature] excludes field '{name}' but no such field "
                    f"exists on {' or '.join(structs)} — remove the stale "
                    "allowlist entry",
            symbol=f"exclude:{name}"))
    return findings
