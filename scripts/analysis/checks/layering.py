"""A3: layering enforcement from the real include graph.

Reads the declared DAG (layers.toml), assigns every analyzed file to a
layer (explicit `files` lists win over `dirs` prefixes, in declaration
order), and walks the actual #include edges:

  banned-include    an include path the layer explicitly bans
  facade-violation  an include into a layer the includer may only reach
                    through an enumerated facade (restrict.<layer>.only)
  layer-violation   any other include edge the DAG does not permit
  forbidden-token   an identifier the layer bans outright (e.g. serve/
                    naming the raw Machine) — token-accurate, so comments
                    and strings can no longer false-positive
  include-cycle     an include edge inside a strongly-connected component
                    of the project include graph
  unused-include    IWYU-lite: a project include none of whose provided
                    top-level names appears in the including file

unused-include is deliberately conservative: umbrella headers are
skipped (both directions, via [iwyu]), a file's own paired header is
always considered used, and a header whose provided names the frontend
cannot model at all is skipped rather than guessed at.
"""

from __future__ import annotations

import posixpath

from model import Finding, Include, TU

CHECK = "A3"


def run(tus: dict[str, TU], layers_cfg: dict) -> list[Finding]:
    layers: list[dict] = layers_cfg.get("layer", [])
    iwyu = layers_cfg.get("iwyu", {})
    if not layers:
        return []
    findings: list[Finding] = []
    project = set(tus)
    layer_by_name = {ly["name"]: ly for ly in layers}

    assignment = {rel: _layer_of(rel, layers) for rel in tus}
    resolved: dict[str, list[tuple[Include, str]]] = {}
    for rel, tu in tus.items():
        pairs = []
        for inc in tu.includes:
            if inc.is_system:
                continue
            target = _resolve_include(rel, inc.path, project)
            if target is not None:
                pairs.append((inc, target))
        resolved[rel] = pairs

    for rel in sorted(tus):
        lname = assignment[rel]
        if lname is None:
            continue
        layer = layer_by_name[lname]
        allow = set(layer.get("allow", []))
        restrict = layer.get("restrict", {})
        for inc, target in resolved[rel]:
            tname = assignment[target]
            if tname is None:
                continue
            tr = restrict.get(tname, {})
            if inc.path in tr.get("ban", ()):
                findings.append(Finding(
                    check=CHECK, rule="banned-include", file=rel,
                    line=inc.line,
                    message=f'layer {lname} bans "{inc.path}" — '
                            "see scripts/analysis/layers.toml",
                    symbol=f"include:{inc.path}"))
            elif tname != lname and tname not in allow and "*" not in allow:
                findings.append(Finding(
                    check=CHECK, rule="layer-violation", file=rel,
                    line=inc.line,
                    message=f'layer {lname} may not include layer {tname} '
                            f'("{inc.path}") — declared DAG in '
                            "scripts/analysis/layers.toml",
                    symbol=f"include:{inc.path}"))
            elif "only" in tr and inc.path not in tr["only"]:
                findings.append(Finding(
                    check=CHECK, rule="facade-violation", file=rel,
                    line=inc.line,
                    message=f'layer {lname} reaches {tname} only through '
                            f'its facade, not "{inc.path}" — allowed: '
                            f'{", ".join(sorted(tr["only"]))}',
                    symbol=f"include:{inc.path}"))
        for token in layer.get("forbid_tokens", ()):
            tu = tus[rel]
            if token in tu.identifiers:
                findings.append(Finding(
                    check=CHECK, rule="forbidden-token", file=rel,
                    line=tu.identifiers[token],
                    message=f"layer {lname} must not name {token} — "
                            "consume the facade instead "
                            "(scripts/analysis/layers.toml)",
                    symbol=f"token:{token}"))

    findings += _cycle_findings(resolved)
    findings += _unused_includes(tus, resolved, iwyu)
    return findings


def _layer_of(rel: str, layers: list[dict]) -> str | None:
    for ly in layers:
        if rel in ly.get("files", ()):
            return ly["name"]
    for ly in layers:
        for d in ly.get("dirs", ()):
            d = d.rstrip("/")
            if rel == d or rel.startswith(d + "/"):
                return ly["name"]
    return None


def _resolve_include(includer_rel: str, inc_path: str,
                     project: set[str]) -> str | None:
    for cand in (f"src/{inc_path}", inc_path,
                 posixpath.normpath(posixpath.join(
                     posixpath.dirname(includer_rel), inc_path))):
        if cand in project:
            return cand
    return None


def _cycle_findings(
        resolved: dict[str, list[tuple[Include, str]]]) -> list[Finding]:
    graph = {rel: {t for _i, t in pairs} for rel, pairs in resolved.items()}
    comp: dict[str, int] = {}
    for cid, scc in enumerate(_sccs(graph)):
        for node in scc:
            comp[node] = cid
    sizes: dict[int, int] = {}
    for node, cid in comp.items():
        sizes[cid] = sizes.get(cid, 0) + 1
    findings = []
    for rel in sorted(resolved):
        for inc, target in resolved[rel]:
            same = comp.get(rel) == comp.get(target)
            if (same and sizes.get(comp[rel], 0) > 1) or target == rel:
                findings.append(Finding(
                    check=CHECK, rule="include-cycle", file=rel,
                    line=inc.line,
                    message=f'"{inc.path}" closes an include cycle with '
                            f"{target} — break the cycle with a forward "
                            "declaration or an interface split",
                    symbol=f"cycle:{inc.path}"))
    return findings


def _sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]
    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in graph:
                    continue
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                low[work[-1][0]] = min(low[work[-1][0]], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                out.append(scc)
    return out


def _unused_includes(tus: dict[str, TU],
                     resolved: dict[str, list[tuple[Include, str]]],
                     iwyu: dict) -> list[Finding]:
    skip_files = set(iwyu.get("skip_files", ()))
    skip_includes = set(iwyu.get("skip_includes", ()))

    # Provided names per file, closed over `IWYU pragma: export` edges: a
    # facade header that exports an include provides that header's names
    # as its own API (src/core/seeded_solve.hpp re-exports RelaxMsg).
    provided_by: dict[str, set[str]] = {}
    for rel, tu in tus.items():
        provided_by[rel] = (tu.toplevel_names | set(tu.classes)
                            | set(tu.aliases) | set(tu.defines))
    changed = True
    while changed:
        changed = False
        for rel in resolved:
            for inc, target in resolved[rel]:
                if inc.exported:
                    extra = provided_by[target] - provided_by[rel]
                    if extra:
                        provided_by[rel] |= extra
                        changed = True

    findings = []
    for rel in sorted(resolved):
        if rel in skip_files:
            continue
        tu = tus[rel]
        used_names = set(tu.identifiers)
        for inc, target in resolved[rel]:
            if target == rel or target in skip_files \
                    or inc.path in skip_includes or inc.exported:
                continue
            if posixpath.splitext(posixpath.basename(rel))[0] == \
                    posixpath.splitext(posixpath.basename(target))[0]:
                continue  # own header pair (foo.cpp -> foo.hpp)
            provided = provided_by[target]
            if not provided:
                continue  # header the frontend cannot model: don't guess
            if provided & used_names:
                continue
            findings.append(Finding(
                check=CHECK, rule="unused-include", file=rel, line=inc.line,
                message=f'"{inc.path}" provides '
                        f"{len(provided)} name(s), none used in {rel} — "
                        "drop the include (or waive with a justification "
                        "if it is load-bearing transitively)",
                symbol=f"unused-include:{inc.path}"))
    return findings
