"""A5: direct clock reads in engine timed paths (regex rule R8, done right).

The engine timed paths may only sample wall-clock time through the obs/
helpers (PhaseTimer, TimedSection, ScopedSpan) so every measured
interval lands in exactly one accounting bucket and, under tracing, in
exactly one span. The retired regex rule matched raw lines, so a clock
name quoted in a log string false-positived and `using Clock =
std::chrono::steady_clock; Clock::now()` hid the read entirely. This
version works on the token model: string/comment text is gone before
matching, and the per-TU alias table is closed transitively so a clock
read keeps its identity through any chain of `using`/`typedef` renames.
"""

from __future__ import annotations

from model import Call, Finding, TU

CHECK = "A5"


def run(tus: dict[str, TU], policy: dict) -> list[Finding]:
    cfg = policy.get("clocks")
    if not cfg:
        return []
    files = set(cfg.get("files", []))
    clock_names = set(cfg.get("clock_names", []))
    banned = set(cfg.get("banned_functions", []))

    findings: list[Finding] = []
    for rel in sorted(files & set(tus)):
        tu = tus[rel]
        clocks = _alias_closure(clock_names, tu.aliases)
        for fn in tu.functions:
            for ev in fn.events:
                if not isinstance(ev, Call):
                    continue
                if ev.name == "now" and ev.qualifier in clocks:
                    findings.append(Finding(
                        check=CHECK, rule="direct-clock-read", file=rel,
                        line=ev.line,
                        message=f"{ev.qualifier}::now() in an engine timed "
                                "path — sample time through the obs/ "
                                "helpers (PhaseTimer, TimedSection, "
                                "ScopedSpan) so the interval lands in "
                                "exactly one accounting bucket",
                        symbol=f"clock:{ev.qualifier}"))
                elif ev.name in banned and ev.obj_expr is None:
                    findings.append(Finding(
                        check=CHECK, rule="banned-time-call", file=rel,
                        line=ev.line,
                        message=f"{ev.name}() in an engine timed path — "
                                "use the obs/ helpers, not raw OS time "
                                "calls",
                        symbol=f"clock:{ev.name}"))
    return findings


def _alias_closure(clock_names: set[str],
                   aliases: dict[str, str]) -> set[str]:
    """Every alias whose expansion (transitively) names a clock."""
    clocks = set(clock_names)
    changed = True
    while changed:
        changed = False
        for name, rhs in aliases.items():
            if name in clocks:
                continue
            if clocks & set(rhs.split()):
                clocks.add(name)
                changed = True
    return clocks
