"""A4: unordered-container iteration in determinism-scoped paths.

The engines' bit-exactness contract (identical distances *and* identical
statistics across runs and thread counts) survives only because nothing
order-sensitive ever walks a hash container: unordered maps/sets are
lookup tables, never iteration sources. Inside the scoped directories
([determinism] in policy.toml) this check flags every range-for or
iterator walk whose subject resolves to a variable declared with an
unordered container type — whether it feeds message emission, float
accumulation, or anything else, iteration order is load-bearing the
moment it exists, and the fix (switch to an ordered container, or sort
before walking) is the same.

Names are collected globally (locals, members, and across TUs) because
a member declared in a header is iterated from its .cpp; the cost is
that an *ordered* container sharing a name with an unordered one
elsewhere in scope would false-positive. The tree's naming makes that
collision empty today; if it ever happens, rename or waive.
"""

from __future__ import annotations

from model import Finding, IterWalk, RangeFor, TU

CHECK = "A4"


def run(tus: dict[str, TU], policy: dict) -> list[Finding]:
    cfg = policy.get("determinism")
    if not cfg:
        return []
    dirs = [d.rstrip("/") for d in cfg.get("dirs", [])]

    def in_scope(rel: str) -> bool:
        return any(d in ("", ".") or rel == d or rel.startswith(d + "/")
                   for d in dirs)

    scoped = {rel: tu for rel, tu in tus.items() if in_scope(rel)}
    unordered: set[str] = set()
    for tu in scoped.values():
        unordered.update(tu.unordered_vars)

    findings: list[Finding] = []
    for rel in sorted(scoped):
        for fn in scoped[rel].functions:
            for ev in fn.events:
                if isinstance(ev, RangeFor) and ev.expr_name in unordered:
                    findings.append(Finding(
                        check=CHECK, rule="unordered-iteration", file=rel,
                        line=ev.line,
                        message=f"range-for over unordered container "
                                f"'{ev.expr_name}' in a determinism-scoped "
                                "path — iteration order is unspecified and "
                                "breaks the bit-exactness contract; use an "
                                "ordered container or sort first",
                        symbol=f"unordered-iter:{ev.expr_name}"))
                elif isinstance(ev, IterWalk) and ev.expr_name in unordered:
                    findings.append(Finding(
                        check=CHECK, rule="unordered-iteration", file=rel,
                        line=ev.line,
                        message=f"iterator walk over unordered container "
                                f"'{ev.expr_name}' in a determinism-scoped "
                                "path — iteration order is unspecified and "
                                "breaks the bit-exactness contract",
                        symbol=f"unordered-iter:{ev.expr_name}"))
    return findings
