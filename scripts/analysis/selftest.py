#!/usr/bin/env python3
"""Analyzer selftest (registered as the `analysis_selftest` ctest).

Runs every check family over the seeded-violation fixture corpus
(fixtures/<group>/) and asserts the findings match the `SEED(check/rule)`
markers *exactly* — every seeded violation detected on its marked line,
and nothing unmarked flagged. A silently-disabled or over-firing check
fails here, not in review. Also unit-tests the waiver machinery (match,
stale detection) since the real tree intentionally carries no waivers to
exercise it.

When libclang is loadable the whole corpus additionally runs under the
clang frontend and must produce identical findings, pinning the two
frontends together.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import tomllib  # noqa: E402

import frontend_lex  # noqa: E402
from analyze import apply_waivers, run_checks  # noqa: E402
from model import Finding  # noqa: E402

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
SEED = re.compile(r"SEED\((A\d)/([a-z0-9-]+)\)")
CPP_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}


def fixture_files(group: Path) -> list[Path]:
    return sorted(p for p in group.rglob("*")
                  if p.suffix in CPP_SUFFIXES and p.is_file())


def expected_markers(group: Path) -> set[tuple[str, str, str, int]]:
    exp = set()
    for p in fixture_files(group):
        rel = p.relative_to(group).as_posix()
        for lineno, line in enumerate(
                p.read_text(encoding="utf-8").splitlines(), start=1):
            for m in SEED.finditer(line):
                exp.add((m.group(1), m.group(2), rel, lineno))
    return exp


def run_group(group: Path, frontend) -> tuple[bool, list[str]]:
    layers_path = group / "layers.toml"
    policy_path = group / "policy.toml"
    layers_cfg = tomllib.loads(layers_path.read_text()) \
        if layers_path.is_file() else {}
    policy = tomllib.loads(policy_path.read_text()) \
        if policy_path.is_file() else {}
    tus = {}
    for p in fixture_files(group):
        rel = p.relative_to(group).as_posix()
        tus[rel] = frontend.parse_file(p, rel)
    findings = run_checks(tus, layers_cfg, policy)
    got = {(f.check, f.rule, f.file, f.line) for f in findings}
    exp = expected_markers(group)
    problems = []
    for item in sorted(exp - got):
        problems.append(f"  MISSED  {group.name}: expected "
                        f"[{item[0]}/{item[1]}] at {item[2]}:{item[3]}")
    for item in sorted(got - exp):
        problems.append(f"  SPURIOUS {group.name}: unexpected "
                        f"[{item[0]}/{item[1]}] at {item[2]}:{item[3]}")
    return not problems, problems


def waiver_unit_test() -> tuple[bool, list[str]]:
    findings = [
        Finding(check="A3", rule="unused-include", file="src/a.hpp",
                line=3, message="m", symbol="unused-include:b.hpp"),
        Finding(check="A4", rule="unordered-iteration", file="src/c.cpp",
                line=9, message="m", symbol="unordered-iter:delta_"),
    ]
    policy = {"waiver": [
        {"check": "A3", "file": "src/a.hpp",
         "symbol": "unused-include:b.hpp", "reason": "test"},
        {"check": "A5", "file": "src/never.cpp",
         "symbol": "clock:steady_clock", "reason": "stale"},
    ]}
    kept, waived, stale = apply_waivers(findings, policy)
    problems = []
    if [f.check for f in kept] != ["A4"]:
        problems.append("  waiver: matching finding was not suppressed")
    if [f.check for f in waived] != ["A3"]:
        problems.append("  waiver: suppressed finding not reported as waived")
    if len(stale) != 1 or stale[0]["file"] != "src/never.cpp":
        problems.append("  waiver: stale entry not detected")
    return not problems, problems


def main() -> int:
    frontends = [("lex", frontend_lex)]
    try:
        import frontend_clang
        if frontend_clang.available():
            frontends.append(("clang", frontend_clang))
    except ImportError:
        pass

    groups = sorted(p for p in FIXTURES.iterdir() if p.is_dir())
    if not groups:
        print("analysis_selftest: no fixture groups found", file=sys.stderr)
        return 1

    failures: list[str] = []
    checks_seen: set[str] = set()
    for label, frontend in frontends:
        for group in groups:
            ok, problems = run_group(group, frontend)
            exp = expected_markers(group)
            checks_seen.update(item[0] for item in exp)
            status = "ok" if ok else "FAIL"
            print(f"analysis_selftest [{label}] {group.name}: "
                  f"{len(exp)} seeded finding(s) {status}")
            failures.extend(problems)

    ok, problems = waiver_unit_test()
    print(f"analysis_selftest waiver machinery: {'ok' if ok else 'FAIL'}")
    failures.extend(problems)

    missing_families = {"A1", "A2", "A3", "A4", "A5"} - checks_seen
    if missing_families:
        failures.append("  corpus gap: no seeded fixture exercises "
                        + ", ".join(sorted(missing_families)))

    for line in failures:
        print(line)
    print(f"analysis_selftest: {len(groups)} group(s), "
          f"{len(frontends)} frontend(s), "
          f"{len(failures)} problem(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
