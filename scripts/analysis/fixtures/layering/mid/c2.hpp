// A3 fixture: the other half of the include cycle.
#pragma once

#include "mid/c1.hpp"  // SEED(A3/include-cycle)

struct C2 {
  C1* peer = nullptr;
};
