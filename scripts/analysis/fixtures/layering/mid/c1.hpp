// A3 fixture: one half of an include cycle.
#pragma once

#include "mid/c2.hpp"  // SEED(A3/include-cycle)

struct C1 {
  C2* peer = nullptr;
};
