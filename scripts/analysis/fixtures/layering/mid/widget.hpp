// A3 fixture: mid/ may use base only through base/api.hpp. The impl
// include bypasses the facade, the secret include is banned outright,
// and RawEngine is a forbidden token in this layer.
#pragma once

#include "base/api.hpp"
#include "base/impl.hpp"    // SEED(A3/facade-violation)
#include "base/secret.hpp"  // SEED(A3/banned-include)

using RawEngine = int;  // SEED(A3/forbidden-token)

struct Widget {
  Api api;
  Impl impl;
  Secret secret;
};
