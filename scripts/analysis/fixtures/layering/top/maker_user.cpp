// A3 negative control: maker.hpp provides make_thing despite the braced
// default argument in its parameter list, and it is used here — no
// unused-include finding.
#include "top/maker.hpp"

int build_thing() {
  return make_thing(3);
}
