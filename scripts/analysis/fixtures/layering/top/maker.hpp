// A3 negative control (frontend): a prototype whose parameter list
// carries a braced default argument. The '{' of `= {}` is not a scope
// opener; the declaration must flush intact at its ';' so make_thing is
// recorded as a provided name (otherwise maker_user.cpp's include would
// be falsely flagged unused).
#pragma once

struct ThingOpts {
  int n = 0;
};

int make_thing(int side, const ThingOpts& opts = {});
