// A3 fixture: top/ may include anything layer-wise, but the api.hpp
// include is unused — IWYU-lite must flag it.
#include "base/api.hpp"  // SEED(A3/unused-include)
#include "mid/widget.hpp"

int poke(Widget& w) {
  return w.impl.detail;
}
