// A3 fixture: the facade header mid/ is allowed to use.
#pragma once

struct Api {
  int go();
};
