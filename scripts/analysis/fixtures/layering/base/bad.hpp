// A3 fixture: base may include nothing above itself — this edge inverts
// the declared DAG.
#pragma once

#include "mid/widget.hpp"  // SEED(A3/layer-violation)

struct UpwardDependency {
  Widget* w = nullptr;
};
