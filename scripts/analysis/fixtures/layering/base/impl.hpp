// A3 fixture: base-internal header; mid/ reaching it bypasses the facade.
#pragma once

struct Impl {
  int detail = 0;
};
