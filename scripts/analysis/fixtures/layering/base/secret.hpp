// A3 fixture: explicitly banned header.
#pragma once

struct Secret {
  int key = 0;
};
