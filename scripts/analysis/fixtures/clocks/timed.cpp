// A5 fixture: direct clock reads in a file the group policy declares an
// engine timed path. The alias chain (Clock -> Tick) must not hide the
// read, and the clock name inside a string literal must not fire — the
// two failure modes of the retired regex rule R8.
#include <chrono>
#include <ctime>

using Clock = std::chrono::steady_clock;
using Tick = Clock;

long direct_read() {
  auto t0 = std::chrono::steady_clock::now();  // SEED(A5/direct-clock-read)
  return t0.time_since_epoch().count();
}

long aliased_read() {
  auto t0 = Tick::now();  // SEED(A5/direct-clock-read)
  return t0.time_since_epoch().count();
}

long os_read() {
  timespec ts{};
  clock_gettime(0, &ts);  // SEED(A5/banned-time-call)
  return ts.tv_sec;
}

const char* innocent() {
  return "calling steady_clock::now() here would be a bug";
}
