// A2 fixture: an option struct whose signature function (sig.cpp) misses
// two fields, plus a stale allowlist entry (policy.toml excludes a field
// named `ghost` that does not exist). Markers as in the other groups.
#pragma once

struct Knobs {
  double t_cost = 1.0;
  double t_skip = 2.0;  // SEED(A2/unserialized-field)
};

struct Opts {  // SEED(A2/stale-exclusion)
  double delta = 0.0;
  bool fast = false;  // SEED(A2/unserialized-field)
  void* debug_hook = nullptr;  // excluded by policy: observability only
  Knobs knobs;
  static constexpr double kBig = 1.0;  // static: never part of the key
};
