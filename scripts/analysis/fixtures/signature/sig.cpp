// A2 fixture: serializes delta and knobs.t_cost, misses fast and
// knobs.t_skip (seeded in opts.hpp).
#include <string>

#include "opts.hpp"

std::string signature_of(const Opts& o) {
  std::string s;
  s += "d=" + std::to_string(o.delta) + ";";
  s += "kc=" + std::to_string(o.knobs.t_cost) + ";";
  return s;
}
