// A4 fixture: iteration over unordered containers in a determinism-scoped
// path (group policy scopes the whole directory). The vector walk at the
// bottom is the negative control.
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Acc {
  std::unordered_map<int, double> pending_;
  std::unordered_set<int> touched_;
  std::vector<double> out_;
  void flush();
  double total();
  void drain();
};

void Acc::flush() {
  for (const auto& kv : pending_) {  // SEED(A4/unordered-iteration)
    out_.push_back(kv.second);
  }
}

double Acc::total() {
  double t = 0.0;
  for (auto it = touched_.begin(); it != touched_.end(); ++it) {  // SEED(A4/unordered-iteration)
    t += static_cast<double>(*it);
  }
  return t;
}

void Acc::drain() {
  // Ordered container: iteration order is defined, no finding.
  for (double v : out_) {
    (void)v;
  }
}
