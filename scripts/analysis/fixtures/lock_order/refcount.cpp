// Out-of-line definitions for refcount.hpp (markers explained there).
#include "refcount.hpp"

void Publisher::publish() {
  MutexLock guard(mu_);
  head_seq_ += 1;  // SEED(A1/unguarded-field)
  live_ += 1;
  refs_published_ += 1;
  // Dropping the superseded slot's reference while holding mu_: release
  // acquires Slot::mu_ (order edge) and, on last reference, re-enters
  // collect() which re-acquires mu_ (self-deadlock). Both fire here.
  slot_->release();  // SEED(A1/lock-cycle) SEED(A1/reentrant-lock)
}

void Publisher::collect() {
  MutexLock guard(mu_);
  live_ -= 1;
}

void Slot::release() {
  MutexLock guard(mu_);
  refs_ -= 1;
  owner_->collect();  // SEED(A1/lock-cycle)
}

// Negative: publish-then-retire done right — the head swap commits and the
// lock is released before the superseded reference is dropped, so the
// callback into collect() runs with nothing held. No ordering edge.
void Publisher::publish_then_retire() {
  {
    MutexLock guard(mu_);
    live_ += 1;
  }
  slot_->release();
}
