// Out-of-line definitions for ledger.hpp (markers explained there).
#include "ledger.hpp"

void Vault::settle() {
  MutexLock self(mu_);
  MutexLock other(bank_->mu_);  // SEED(A1/lock-cycle)
}

void Bank::audit() {
  MutexLock self(mu_);
  MutexLock other(vault_->mu_);  // SEED(A1/lock-cycle)
}

void Journal::append() {
  MutexLock guard(jmu_);
}

void Journal::flush() {
  MutexLock guard(jmu_);
  append();  // SEED(A1/reentrant-lock)
}

void Counter::bump() {
  MutexLock guard(mu_);
  total_ += 1;
  dropped_ += 1;  // SEED(A1/unguarded-field)
}

// Negative: a lock taken and dropped before the second acquisition is not
// an ordering edge — no finding here.
void ordered_fine(Vault& v) {
  {
    MutexLock first(v.mu_);
  }
  MutexLock second(v.bank_->mu_);
}
