// A1 fixture: the refcount-publish pattern (MVCC snapshot managers).
// Publisher::publish swaps the head under mu_ and drops the superseded
// slot's reference while still holding it; if that was the last reference,
// Slot::release calls back into Publisher::collect, which re-acquires
// mu_ — the classic publish/retire callback deadlock (see refcount.cpp).
// The safe shape (drop the lock, then release) is seeded as a negative.
#pragma once

#include "ledger.hpp"

struct Slot;

struct Publisher {
  void publish();
  void publish_then_retire();
  void collect();
  Mutex mu_;
  Slot* slot_;
  // head_seq_ is written under mu_ but carries no GUARDED_BY; live_ is
  // annotated and must NOT fire; refs_published_ is atomic and exempt.
  long head_seq_;
  long live_ MPS_GUARDED_BY(mu_);
  std::atomic<long> refs_published_;
};

struct Slot {
  void release();
  Mutex mu_;
  Publisher* owner_;
  std::atomic<long> refs_;
};
