// A1 fixture: seeded lock-order violations. Each `SEED(A1/<rule>)` marker
// names the finding the analyzer must produce on exactly that line;
// everything unmarked must stay clean (the selftest asserts both
// directions). The file is parsed, never compiled.
#pragma once

struct Mutex {
  void lock();
  void unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

#define MPS_GUARDED_BY(x) __attribute__((guarded_by(x)))

struct Bank;

// Vault and Bank acquire each other's mutexes in opposite orders: the
// classic AB/BA deadlock (see ledger.cpp).
struct Vault {
  void settle();
  Mutex mu_;
  Bank* bank_;
};

struct Bank {
  void audit();
  Mutex mu_;
  Vault* vault_;
};

// flush() holds jmu_ and calls append(), which re-acquires it: a
// transitive self-deadlock on a non-recursive mutex (see ledger.cpp).
struct Journal {
  void append();
  void flush();
  Mutex jmu_;
};

// dropped_ is written under mu_ but carries no GUARDED_BY (ledger.cpp);
// total_ is annotated and must NOT fire.
struct Counter {
  void bump();
  Mutex mu_;
  long total_ MPS_GUARDED_BY(mu_);
  long dropped_;
};

// size_ claims to be guarded by a member that does not exist: the
// annotation type-checks (macro swallows anything) but guards nothing.
struct Registry {
  Mutex mu_;
  int size_ MPS_GUARDED_BY(lock_);  // SEED(A1/bad-guard)
};
