// Out-of-line definitions for token_ring.hpp (markers explained there).
#include "token_ring.hpp"

void RankBox::forward_token() {
  MutexLock guard(mu_);
  round_ += 1;  // SEED(A1/unguarded-field)
  balance_ -= 1;
  hops_ += 1;
  // Posting into the successor's slot while this rank's inbox lock is
  // still held: post acquires TokenSlot::mu_ (order edge) and delivers
  // back into an inbox, re-acquiring RankBox::mu_ (self-deadlock when the
  // ring wraps). Both fire here.
  next_slot_->post();  // SEED(A1/lock-cycle) SEED(A1/reentrant-lock)
}

void RankBox::accept() {
  MutexLock guard(mu_);
  balance_ += 1;
}

void TokenSlot::post() {
  MutexLock guard(mu_);
  parked_ += 1;
  owner_->accept();  // SEED(A1/lock-cycle)
}

// Negative: the detector's real shape — the token's fate is decided under
// the inbox lock, the lock is dropped, and only then is the token posted
// to the successor, so the slot/inbox locks never nest. No ordering edge.
void RankBox::forward_token_safe() {
  {
    MutexLock guard(mu_);
    balance_ -= 1;
  }
  next_slot_->post();
}
