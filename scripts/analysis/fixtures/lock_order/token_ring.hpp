// A1 fixture: the token-under-inbox-lock pattern (asynchronous quiescence
// rings, runtime/quiescence.hpp + runtime/async_channel.hpp).
// RankBox::forward_token decides the token's fate and posts it to the ring
// successor's slot while still holding its own inbox mutex; TokenSlot::post
// takes the slot lock and delivers back into the owning rank's inbox,
// which re-acquires an inbox mutex — the slot/inbox AB/BA cycle, plus a
// re-entrant inbox acquisition when the ring wraps (see token_ring.cpp).
// The production shape (decide under the lock, drop it, then post) is
// seeded as a negative.
#pragma once

#include "ledger.hpp"

struct RankBox;

// One parked token per rank: post parks a token under the slot lock and
// hands it to the owning rank's inbox.
struct TokenSlot {
  void post();
  Mutex mu_;
  RankBox* owner_;
  long parked_ MPS_GUARDED_BY(mu_);
};

struct RankBox {
  void forward_token();
  void forward_token_safe();
  void accept();
  Mutex mu_;
  TokenSlot* next_slot_;
  // round_ is written under mu_ but carries no GUARDED_BY; balance_ is
  // annotated and must NOT fire; hops_ is atomic and exempt.
  long round_;
  long balance_ MPS_GUARDED_BY(mu_);
  std::atomic<long> hops_;
};
