"""libclang frontend: builds the TU model from a real AST when available.

Uses the `clang.cindex` Python bindings, with compile flags pulled from
compile_commands.json, to produce the declaration side of the model with
compiler accuracy: class member tables carry the *resolved* type
spelling (so the A1 lock resolver types out member chains exactly),
includes come from the preprocessing record, and aliases from real
TYPEDEF/TYPE_ALIAS cursors.

Function-body *events* (acquisitions, calls, writes, loops) reuse the
lexical walker on the same source: the event stream is deliberately a
shared code path so both frontends disagree only where the AST is
genuinely more precise (declarations), never in what counts as an
event. The fixture selftest runs both frontends when libclang is
loadable and asserts identical findings, pinning them together.

This module must import cleanly without libclang installed; everything
clang-specific happens lazily inside available()/parse_file_compdb().
"""

from __future__ import annotations

from pathlib import Path

import frontend_lex
from model import ClassInfo, Include, Member, TU

_INDEX = None
_AVAILABLE: bool | None = None

_DEFAULT_ARGS = ["-std=c++20", "-xc++"]


def available() -> bool:
    """True when clang.cindex imports AND libclang actually loads."""
    global _AVAILABLE, _INDEX
    if _AVAILABLE is not None:
        return _AVAILABLE
    try:
        from clang import cindex
        _INDEX = cindex.Index.create()
        _AVAILABLE = True
    except Exception:
        _AVAILABLE = False
    return _AVAILABLE


def _args_for(path: Path, compdb: Path | None) -> list[str]:
    from clang import cindex
    if compdb is not None and compdb.is_file():
        try:
            db = cindex.CompilationDatabase.fromDirectory(str(compdb.parent))
            cmds = db.getCompileCommands(str(path))
            if cmds:
                args = list(cmds[0].arguments)[1:]  # drop the compiler
                # Drop the output/input operands; keep flags and -I/-D.
                cleaned, skip = [], False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a == str(path) or a.endswith(path.name):
                        continue
                    cleaned.append(a)
                return cleaned
        except Exception:
            pass
    # Headers and files without a compile command: project-shaped defaults.
    src = path
    while src.name != "src" and src.parent != src:
        src = src.parent
    inc = str(src) if src.name == "src" else str(path.parent)
    return _DEFAULT_ARGS + [f"-I{inc}"]


def parse_file_compdb(path: str | Path, rel: str,
                      compdb: Path | None = None) -> TU:
    if not available():
        raise RuntimeError("libclang is not loadable")
    from clang import cindex

    path = Path(path)
    # Shared event extraction first (see module docstring).
    tu = frontend_lex.parse_file(path, rel)

    ast = _INDEX.parse(str(path), args=_args_for(path, compdb),
                       options=cindex.TranslationUnit
                       .PARSE_DETAILED_PROCESSING_RECORD)

    # Includes from the preprocessing record: only directives written in
    # this file, with system-ness from the include style.
    includes = []
    for inc in ast.get_includes():
        if inc.depth != 1:
            continue
        loc = inc.location
        if loc.file is None or Path(loc.file.name) != path:
            continue
        spelling = _include_spelling(path, loc.line)
        if spelling is not None:
            includes.append(Include(path=spelling[0], line=loc.line,
                                    is_system=spelling[1]))
    if includes:
        tu.includes = includes

    _walk(ast.cursor, path, tu)
    return tu


def parse_file(path: str | Path, rel: str) -> TU:
    return parse_file_compdb(path, rel, None)


def _include_spelling(path: Path, line: int) -> tuple[str, bool] | None:
    try:
        text = path.read_text(encoding="utf-8",
                              errors="replace").splitlines()[line - 1]
    except IndexError:
        return None
    from cpp_lexer import parse_include
    return parse_include(text.strip())


def _walk(cursor, path: Path, tu: TU) -> None:
    from clang import cindex
    K = cindex.CursorKind
    for c in cursor.get_children():
        if c.location.file is None or Path(c.location.file.name) != path:
            continue
        if c.kind in (K.NAMESPACE, K.LINKAGE_SPEC):
            _walk(c, path, tu)
        elif c.kind in (K.CLASS_DECL, K.STRUCT_DECL) and c.is_definition():
            _record_class(c, path, tu)
            tu.toplevel_names.add(c.spelling)
            _walk(c, path, tu)  # nested classes
        elif c.kind in (K.TYPEDEF_DECL, K.TYPE_ALIAS_DECL):
            tu.aliases[c.spelling] = \
                c.underlying_typedef_type.spelling.replace("::", " :: ")
            tu.toplevel_names.add(c.spelling)
        elif c.kind in (K.ENUM_DECL, K.FUNCTION_DECL, K.VAR_DECL):
            if c.spelling:
                tu.toplevel_names.add(c.spelling)


def _record_class(cursor, path: Path, tu: TU) -> None:
    from clang import cindex
    K = cindex.CursorKind
    name = cursor.spelling or "<anon>"
    # The lexical pass already recorded this class; clang's member table
    # (resolved type spellings) overrides field-by-field.
    ci = tu.classes.get(name)
    if ci is None:
        ci = ClassInfo(name=name, line=cursor.location.line)
        tu.classes[name] = ci
    for c in cursor.get_children():
        if c.kind == K.FIELD_DECL or (c.kind == K.VAR_DECL):
            ci.members[c.spelling] = _field_to_member(c)
        elif c.kind in (K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR):
            ci.method_names.add(c.spelling.lstrip("~"))


def _field_to_member(cursor) -> Member:
    from clang import cindex
    type_text = cursor.type.spelling.replace("::", " :: ").replace(
        "<", " < ").replace(">", " > ")
    annotations: dict[str, str] = {}
    # Thread-safety attributes survive as tokens on the declaration; scan
    # them the same way the lexical frontend does so guarded_by() agrees.
    toks = [t.spelling for t in cursor.get_tokens()]
    for i, t in enumerate(toks):
        if t in frontend_lex._ANNOTATION_MACROS:
            arg = ""
            if i + 1 < len(toks) and toks[i + 1] == "(":
                depth, j = 0, i + 1
                parts = []
                while j < len(toks):
                    if toks[j] == "(":
                        depth += 1
                    elif toks[j] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif depth >= 1:
                        parts.append(toks[j])
                    j += 1
                arg = " ".join(parts)
            annotations[t] = arg
    storage = getattr(cursor, "storage_class", None)
    is_static = storage == cindex.StorageClass.STATIC \
        if storage is not None else False
    return Member(
        name=cursor.spelling,
        type_text=type_text,
        line=cursor.location.line,
        annotations=annotations,
        is_static=is_static,
        is_const=cursor.type.is_const_qualified(),
    )
