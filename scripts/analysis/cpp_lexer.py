"""C++ token stream for the AST-lite frontend (scripts/analysis/).

Produces a flat list of tokens with line numbers, with comments and the
*contents* of string/character literals removed — the two classic sources
of regex-lint false positives (a clock call quoted in a log message, a
banned token in a comment). Raw strings, line continuations and
preprocessor directives are handled; the preprocessor line survives as a
single `pp` token so include paths and macro definitions stay visible to
the model builder.

This is a lexer, not a parser: it guarantees token identity and line
numbers, nothing else. frontend_lex.py layers the structural heuristics
(scopes, declarations, call sites) on top.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Token kinds:
#   id     identifier / keyword
#   num    numeric literal
#   str    string literal (text replaced by "")
#   char   character literal (text replaced by '')
#   punct  operator / punctuation (longest-match, e.g. '::', '->', '+=')
#   pp     one whole preprocessor directive (continuations folded)
KINDS = ("id", "num", "str", "char", "punct", "pp")

# Longest-first so '::' wins over ':', '+=' over '+', etc.
_PUNCTS = sorted(
    [
        "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
        "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "##", "{", "}", "(", ")", "[", "]", ";", ",",
        ":", "?", ".", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
        "=", "<", ">", "#",
    ],
    key=len,
    reverse=True,
)

_ID_START = re.compile(r"[A-Za-z_]")
_ID = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*")
_RAW_OPEN = re.compile(r'(?:u8|[uUL])?R"([^()\\ \t\n]*)\(')
_LITERAL_PREFIX = re.compile(r'(?:u8|[uUL])["\']')


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.text}@{self.line}"


def tokenize(source: str) -> list[Token]:
    """Tokenizes one translation-unit's worth of text."""
    toks: list[Token] = []
    i = 0
    n = len(source)
    line = 1

    def advance_lines(text: str) -> None:
        nonlocal line
        line += text.count("\n")

    while i < n:
        c = source[i]

        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Line comment.
        if source.startswith("//", i):
            j = source.find("\n", i)
            # A backslash-continued line comment swallows the next line too.
            while j >= 0 and source[:j].endswith("\\"):
                j = source.find("\n", j + 1)
            if j < 0:
                break
            advance_lines(source[i:j])
            i = j
            continue

        # Block comment.
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                break
            advance_lines(source[i:j + 2])
            i = j + 2
            continue

        # Preprocessor directive: one token, continuations folded.
        if c == "#" and _at_line_start(toks, source, i):
            start_line = line
            j = i
            while True:
                nl = source.find("\n", j)
                if nl < 0:
                    nl = n
                seg = source[j:nl]
                # Strip trailing comment from the directive segment (a
                # // comment does not continue the directive even if the
                # comment text ends in a backslash).
                seg_no_comment = _strip_directive_comment(seg)
                if seg_no_comment.rstrip().endswith("\\"):
                    j = nl + 1
                    continue
                end = nl
                break
            text = source[i:end]
            toks.append(Token("pp", text, start_line))
            advance_lines(text)
            i = end
            continue

        # Raw string literal.
        m = _RAW_OPEN.match(source, i)
        if m:
            delim = m.group(1)
            close = ')' + delim + '"'
            j = source.find(close, m.end())
            if j < 0:
                j = n - len(close)
            full = source[i:j + len(close)]
            toks.append(Token("str", '""', line))
            advance_lines(full)
            i = j + len(close)
            continue

        # String / char literals (with encoding prefixes u8 / u / U / L).
        if c in "\"'" or _LITERAL_PREFIX.match(source, i):
            j = i
            while j < n and source[j] not in "\"'":
                j += 1
            quote = source[j]
            k = j + 1
            while k < n:
                if source[k] == "\\":
                    k += 2
                    continue
                if source[k] == quote:
                    break
                if source[k] == "\n" and quote == "'":
                    break  # unterminated char literal: bail at newline
                k += 1
            tok_kind = "str" if quote == '"' else "char"
            toks.append(Token(tok_kind, quote + quote, line))
            advance_lines(source[i:min(k + 1, n)])
            i = min(k + 1, n)
            continue

        # Identifier / keyword.
        if _ID_START.match(c):
            m = _ID.match(source, i)
            assert m is not None
            toks.append(Token("id", m.group(0), line))
            i = m.end()
            continue

        # Number.
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            m = _NUM.match(source, i)
            assert m is not None
            toks.append(Token("num", m.group(0), line))
            i = m.end()
            continue

        # Punctuation, longest match.
        for p in _PUNCTS:
            if source.startswith(p, i):
                toks.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            i += 1  # unknown byte: skip

    return toks


def _at_line_start(toks: list[Token], source: str, i: int) -> bool:
    """True if only whitespace precedes position i on its line."""
    j = source.rfind("\n", 0, i)
    return source[j + 1:i].strip() == ""


def _strip_directive_comment(seg: str) -> str:
    """Removes a trailing // comment from a directive segment, ignoring
    comment markers inside string literals ("path//x" stays intact)."""
    in_str = False
    k = 0
    while k < len(seg):
        ch = seg[k]
        if in_str:
            if ch == "\\":
                k += 2
                continue
            if ch == '"':
                in_str = False
        elif ch == '"':
            in_str = True
        elif ch == "/" and seg.startswith("//", k):
            return seg[:k]
        k += 1
    return seg


_INCLUDE_RE = re.compile(r'#\s*include\s+(<([^>]+)>|"([^"]+)")')
_DEFINE_RE = re.compile(r"#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)")


def parse_include(pp_text: str) -> tuple[str, bool] | None:
    """Returns (path, is_system) for an #include directive, else None."""
    m = _INCLUDE_RE.match(pp_text.strip())
    if not m:
        return None
    if m.group(2) is not None:
        return m.group(2), True
    return m.group(3), False


def parse_define(pp_text: str) -> str | None:
    """Returns the macro name for a #define directive, else None."""
    m = _DEFINE_RE.match(pp_text.strip())
    return m.group(1) if m else None
