#!/usr/bin/env sh
# Full reproduction pipeline: configure, build, test, run every
# figure/table bench and the three CLI demos, writing the canonical output
# files the repository documents (test_output.txt, bench_output.txt).
#
# Verification is delegated to scripts/check.sh --quick (lint + the
# canonical tier-1 build/ctest); run scripts/check.sh with no flags for the
# full sanitizer matrix.
#
# Usage:
#   scripts/reproduce.sh            figure/table benches + CLI demos
#   scripts/reproduce.sh --serve    also run the serving acceptance bench
#                                   (bench/serve_throughput), writing
#                                   BENCH_serve_throughput.json at the repo
#                                   root and failing if its comparisons fail
#   scripts/reproduce.sh --micro    only build + run bench/micro_kernels,
#                                   writing BENCH_micro_kernels.json at the
#                                   repo root and failing if the data-path
#                                   perf smoke (scripts/perf_smoke.py)
#                                   detects a regression
set -eu

cd "$(dirname "$0")/.."

SERVE=0
MICRO=0
for arg in "$@"; do
  case "$arg" in
    --serve) SERVE=1 ;;
    --micro) MICRO=1 ;;
    *) echo "usage: scripts/reproduce.sh [--serve] [--micro]" >&2; exit 2 ;;
  esac
done

if [ "$MICRO" -eq 1 ]; then
  # Fast path for CI perf smoke: no test sweep, no figure benches.
  cmake -B build -S . >/dev/null
  cmake --build build -j --target micro_kernels
  ./build/bench/micro_kernels \
    --benchmark_out=BENCH_micro_kernels.json \
    --benchmark_out_format=json
  python3 scripts/perf_smoke.py BENCH_micro_kernels.json
  echo "wrote BENCH_micro_kernels.json"
  exit 0
fi

scripts/check.sh --quick 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    # serve_throughput is the serving acceptance bench with a JSON side
    # effect; it runs under --serve below, not in the figure sweep.
    case "$b" in *serve_throughput*) continue ;; esac
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "===== $b ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "=== examples smoke ==="
./build/examples/example_quickstart
./build/examples/example_push_pull_demo
./build/tools/graph500_sssp 11 16 8 8

if [ "$SERVE" -eq 1 ]; then
  echo
  echo "=== serving benchmark (--serve) ==="
  ./build/bench/serve_throughput BENCH_serve_throughput.json
  echo "wrote BENCH_serve_throughput.json"
fi

echo
echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
