#!/usr/bin/env sh
# Full reproduction pipeline: configure, build, test, run every
# figure/table bench and the three CLI demos, writing the canonical output
# files the repository documents (test_output.txt, bench_output.txt).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "===== $b ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "=== examples smoke ==="
./build/examples/example_quickstart
./build/examples/example_push_pull_demo
./build/tools/graph500_sssp 11 16 8 8

echo
echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
