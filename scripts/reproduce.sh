#!/usr/bin/env sh
# Full reproduction pipeline: configure, build, test, run every
# figure/table bench and the three CLI demos, writing the canonical output
# files the repository documents (test_output.txt, bench_output.txt).
#
# Verification is delegated to scripts/check.sh --quick (lint + the
# canonical tier-1 build/ctest); run scripts/check.sh with no flags for the
# full sanitizer matrix.
set -eu

cd "$(dirname "$0")/.."

scripts/check.sh --quick 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "===== $b ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "=== examples smoke ==="
./build/examples/example_quickstart
./build/examples/example_push_pull_demo
./build/tools/graph500_sssp 11 16 8 8

echo
echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
