#!/usr/bin/env sh
# Full reproduction pipeline: configure, build, test, run every
# figure/table bench and the three CLI demos, writing the canonical output
# files the repository documents (test_output.txt, bench_output.txt).
#
# Verification is delegated to scripts/check.sh --quick (lint + the
# canonical tier-1 build/ctest); run scripts/check.sh with no flags for the
# full sanitizer matrix.
#
# Usage:
#   scripts/reproduce.sh            figure/table benches + CLI demos
#   scripts/reproduce.sh --serve    also run the serving acceptance bench
#                                   (bench/serve_throughput), writing
#                                   BENCH_serve_throughput.json at the repo
#                                   root and failing if its comparisons fail
#   scripts/reproduce.sh --micro    only build + run bench/micro_kernels,
#                                   writing BENCH_micro_kernels.json at the
#                                   repo root and failing if the data-path
#                                   perf smoke (scripts/perf_smoke.py)
#                                   detects a regression
#   scripts/reproduce.sh --trace    only build + run a traced, validated
#                                   solve (tools/sssp_cli --trace), writing
#                                   trace.json at the repo root; fails if
#                                   the trace JSON does not parse or the
#                                   per-root accounting self-check
#                                   (check_engine_accounting) fails
#   scripts/reproduce.sh --update   only build + run the dynamic-update
#                                   acceptance bench (bench/
#                                   update_throughput), writing
#                                   BENCH_update_throughput.json at the repo
#                                   root; fails if repair is not
#                                   bit-identical to a fresh solve or the
#                                   median repair speedup is below the bar
#   scripts/reproduce.sh --mvcc     only build + run the MVCC serving
#                                   acceptance bench (bench/mvcc_serving),
#                                   writing BENCH_mvcc_serving.json at the
#                                   repo root; fails if the mixed-stream
#                                   query p99 exceeds 1.2x the update-free
#                                   control run or any sampled answer is
#                                   stale (dist/parent mismatch vs a fresh
#                                   solve of its stamped version)
#   scripts/reproduce.sh --async    only build + run the asynchronous-
#                                   engine acceptance bench (bench/
#                                   async_latency), writing
#                                   BENCH_async_latency.json at the repo
#                                   root; fails if ASYNC distances are not
#                                   bit-identical to OPT, the global-sync
#                                   reduction is below 10x on RMAT-1, or
#                                   ASYNC wins cold single-root p50 on no
#                                   row (docs/ASYNC.md)
#   scripts/reproduce.sh --tuner    only build + run the auto-tuner bake-off
#                                   bench (bench/tuner_bakeoff), writing
#                                   BENCH_tuner.json at the repo root; fails
#                                   if any engine's distances are not
#                                   bit-identical to OPT, the tuned config
#                                   loses more than 10% to the best
#                                   hand-picked config on any row, or it
#                                   beats the best single global config by
#                                   >5% on no row (docs/STEPPING.md)
set -eu

cd "$(dirname "$0")/.."

SERVE=0
MICRO=0
TRACE=0
UPDATE=0
MVCC=0
ASYNC=0
TUNER=0
for arg in "$@"; do
  case "$arg" in
    --serve) SERVE=1 ;;
    --micro) MICRO=1 ;;
    --trace) TRACE=1 ;;
    --update) UPDATE=1 ;;
    --mvcc) MVCC=1 ;;
    --async) ASYNC=1 ;;
    --tuner) TUNER=1 ;;
    *) echo "usage: scripts/reproduce.sh [--serve] [--micro] [--trace]" \
            "[--update] [--mvcc] [--async] [--tuner]" >&2
       exit 2 ;;
  esac
done

if [ "$TRACE" -eq 1 ]; then
  # Fast path for CI observability smoke: a traced + validated solve whose
  # exit status already encodes the accounting self-check (exit 3 = a
  # root's span sum disagreed with its reported BktTime/OtherTime).
  cmake -B build -S . >/dev/null
  cmake --build build -j --target sssp_cli
  ./build/tools/sssp_cli --scale 13 --ranks 4 --lanes 2 --algo opt \
    --roots 2 --validate --trace trace.json
  python3 - <<'EOF'
import json
with open("trace.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
complete = [e for e in events if e["ph"] == "X"]
assert complete, "trace.json has no complete ('X') span events"
names = {e["name"] for e in complete}
for needed in ("solve", "bucket_scan", "exchange"):
    assert needed in names, f"span {needed!r} missing from trace"
assert all(e["dur"] >= 0 for e in complete), "negative span duration"
print(f"trace.json OK: {len(complete)} spans, names: {sorted(names)}")
EOF
  echo "wrote trace.json (load it at ui.perfetto.dev)"
  exit 0
fi

if [ "$UPDATE" -eq 1 ]; then
  # Fast path for CI dynamic-update smoke: the bench's exit status encodes
  # both acceptance gates (repair/fresh bit-identity and the >=5x median
  # small-batch repair speedup over RMAT-1).
  cmake -B build -S . >/dev/null
  cmake --build build -j --target update_throughput
  ./build/bench/update_throughput BENCH_update_throughput.json
  echo "wrote BENCH_update_throughput.json"
  exit 0
fi

if [ "$MVCC" -eq 1 ]; then
  # Fast path for CI perf smoke: the bench's exit status encodes the MVCC
  # acceptance gates (query p99 within 1.2x of the update-free control and
  # zero stale answers across the sampled versions).
  cmake -B build -S . >/dev/null
  cmake --build build -j --target mvcc_serving
  ./build/bench/mvcc_serving BENCH_mvcc_serving.json
  echo "wrote BENCH_mvcc_serving.json"
  exit 0
fi

if [ "$ASYNC" -eq 1 ]; then
  # Fast path for CI perf smoke: the bench's exit status encodes the
  # asynchronous engine's acceptance gates (bit-exact distances vs OPT on
  # every measured solve, >=10x fewer global syncs on RMAT-1, and a cold
  # single-root p50 win on at least one row).
  cmake -B build -S . >/dev/null
  cmake --build build -j --target async_latency
  ./build/bench/async_latency BENCH_async_latency.json
  echo "wrote BENCH_async_latency.json"
  exit 0
fi

if [ "$TUNER" -eq 1 ]; then
  # Fast path for CI perf smoke: the bench's exit status encodes the
  # stepping/auto-tuner acceptance gates (every engine bit-identical to
  # OPT, tuned config within 10% of the best hand-picked config on every
  # row, and a >5% win over the best single global config somewhere).
  cmake -B build -S . >/dev/null
  cmake --build build -j --target tuner_bakeoff
  ./build/bench/tuner_bakeoff BENCH_tuner.json
  echo "wrote BENCH_tuner.json"
  exit 0
fi

if [ "$MICRO" -eq 1 ]; then
  # Fast path for CI perf smoke: no test sweep, no figure benches.
  cmake -B build -S . >/dev/null
  cmake --build build -j --target micro_kernels
  ./build/bench/micro_kernels \
    --benchmark_out=BENCH_micro_kernels.json \
    --benchmark_out_format=json
  python3 scripts/perf_smoke.py BENCH_micro_kernels.json
  echo "wrote BENCH_micro_kernels.json"
  exit 0
fi

scripts/check.sh --quick 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    # serve_throughput / update_throughput are acceptance benches with JSON
    # side effects; they run under --serve / --update, not the figure sweep.
    case "$b" in
      *serve_throughput*|*update_throughput*|*mvcc_serving*|*async_latency*|*tuner_bakeoff*)
        continue ;;
    esac
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "===== $b ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "=== examples smoke ==="
./build/examples/example_quickstart
./build/examples/example_push_pull_demo
./build/tools/graph500_sssp 11 16 8 8

if [ "$SERVE" -eq 1 ]; then
  echo
  echo "=== serving benchmark (--serve) ==="
  ./build/bench/serve_throughput BENCH_serve_throughput.json
  echo "wrote BENCH_serve_throughput.json"
fi

echo
echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
