#!/usr/bin/env sh
# Full reproduction pipeline: configure, build, test, run every
# figure/table bench and the three CLI demos, writing the canonical output
# files the repository documents (test_output.txt, bench_output.txt).
#
# Verification is delegated to scripts/check.sh --quick (lint + the
# canonical tier-1 build/ctest); run scripts/check.sh with no flags for the
# full sanitizer matrix.
#
# Usage:
#   scripts/reproduce.sh            figure/table benches + CLI demos
#   scripts/reproduce.sh --serve    also run the serving acceptance bench
#                                   (bench/serve_throughput), writing
#                                   BENCH_serve_throughput.json at the repo
#                                   root and failing if its comparisons fail
set -eu

cd "$(dirname "$0")/.."

SERVE=0
for arg in "$@"; do
  case "$arg" in
    --serve) SERVE=1 ;;
    *) echo "usage: scripts/reproduce.sh [--serve]" >&2; exit 2 ;;
  esac
done

scripts/check.sh --quick 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    # serve_throughput is the serving acceptance bench with a JSON side
    # effect; it runs under --serve below, not in the figure sweep.
    case "$b" in *serve_throughput*) continue ;; esac
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "===== $b ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "=== examples smoke ==="
./build/examples/example_quickstart
./build/examples/example_push_pull_demo
./build/tools/graph500_sssp 11 16 8 8

if [ "$SERVE" -eq 1 ]; then
  echo
  echo "=== serving benchmark (--serve) ==="
  ./build/bench/serve_throughput BENCH_serve_throughput.json
  echo "wrote BENCH_serve_throughput.json"
fi

echo
echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
