#!/usr/bin/env python3
"""Project-invariant lint for the parsssp tree (scripts/check.sh step 1).

Machine-checks repository rules that neither the compiler nor clang-tidy
enforce (see docs/STATIC_ANALYSIS.md):

  R1  no naked std::thread / std::jthread / std::async outside src/runtime/
      — all parallelism (including session/queue service threads) goes
      through Machine / ThreadPool / MachineSession / ServiceThread so the
      concurrency layer stays auditable;
  R2  no rand()/srand()/time(nullptr) in src/ — generators are hash-based
      and deterministic (graph/rmat.hpp), wall-clock seeding breaks
      reproducibility;
  R3  no volatile-as-synchronization in src/ — volatile is not a memory
      fence; use std::atomic or a GUARDED_BY mutex;
  R4  include hygiene: headers use #pragma once; no parent-relative
      ("../") includes; project includes use quoted module-relative paths;
  R5  no using namespace at file scope in headers;
  R6  serving-layer isolation: src/serve/ may consume the runtime only
      through its session facade (machine_session.hpp, service_thread.hpp,
      partition.hpp) and must not name the raw Machine or ThreadPool — the
      serving layer schedules work, it never owns threads;
  R7  engine hot paths (the files listed in ENGINE_HOT_PATHS) must not
      build nested vector-of-vector send buffers of message types — relax
      emission goes through SendBufferPool so buffers are pooled and
      exchanged zero-copy (docs/PERFORMANCE.md); the seed's per-phase
      std::vector<std::vector<RelaxMsg>> churn must not creep back in;
  R8  engine timed paths (the files listed in ENGINE_TIMED_PATHS) must not
      read std::chrono clocks directly — all wall-clock sampling goes
      through the obs/ helpers (PhaseTimer, TimedSection, ScopedSpan) so
      every measured interval lands in exactly one accounting bucket and,
      when tracing is on, in exactly one span (docs/OBSERVABILITY.md); ad
      hoc Stopwatch-style timing is how the hybrid-switch double-count
      bug happened;
  R9  update-layer isolation (the dynamic-graph mirror of R6): src/update/
      may consume the runtime only through the session facade and must not
      include the engines (delta_engine, multi_engine, bfs_engine,
      split_solver) or name Machine / ThreadPool / DeltaEngine — the repair
      path reaches the engines exclusively through core/seeded_solve.hpp
      and the Solver facade, so engine internals stay swappable.

Exit code 0 = clean, 1 = violations (printed one per line as
path:line: [rule] message).

The rule implementations live in lint_text() so scripts/lint_selftest.py
(registered as the lint_selftest ctest) can exercise each rule on synthetic
inputs; a silently-disabled rule fails that test, not just this linter.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# (rule, regex, message). Patterns are applied to comment-stripped lines.
# `std::thread` as a type is banned; `std::thread::id` (a plain value type,
# used by the obs/ trace recorder to key lanes) is not a way to spawn work
# and stays legal everywhere — hence the (?!\s*::) lookahead.
STD_THREAD = re.compile(r"\bstd::(?:thread(?!\s*::)|jthread|async)\b")
RAND = re.compile(r"(?<![:\w])(rand|srand)\s*\(")
TIME_SEED = re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)")
VOLATILE = re.compile(r"\bvolatile\b")
PARENT_INCLUDE = re.compile(r'#\s*include\s+"\.\./')
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s+\w")
RUNTIME_INCLUDE = re.compile(r'#\s*include\s+"runtime/([^"]+)"')
SERVE_FORBIDDEN = re.compile(r"\bMachine\b|\bThreadPool\b")
# R7: a nested vector whose inner element is a message type (RelaxMsg,
# PullReqMsg, BfsMsg, MultiRelaxMsg, ...). Deliberately narrow: nested
# vectors of non-message types (per-slot engine state like
# vector<vector<char>>) are legitimate and must not fire.
NESTED_MSG_VECTOR = re.compile(
    r"std::vector<\s*std::vector<\s*\w*Msg\s*>")
# R8: any direct std::chrono clock read. Matches both qualified
# (std::chrono::steady_clock::now()) and using-abbreviated
# (steady_clock::now()) spellings, and clock_gettime for good measure.
CLOCK_CALL = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
    r"|\bclock_gettime\s*\(")

# Files allowed to spawn threads: the simulated machine's runtime and the
# tests/benches that exercise it directly.
THREAD_ALLOWED_PREFIXES = ("src/runtime/",)
THREAD_ALLOWED_DIRS = ("tests/", "bench/")

# The runtime facade src/serve/ is allowed to build on (R6). Everything
# else in runtime/ (Machine, ThreadPool, the exchange board internals) is
# off-limits to the serving layer.
SERVE_ALLOWED_RUNTIME_INCLUDES = frozenset(
    {"machine_session.hpp", "service_thread.hpp", "partition.hpp"})

# R9: src/update/ gets the same runtime facade as src/serve/, and on top of
# that may not include the engines directly — seeded sweeps go through
# core/seeded_solve.hpp, fresh solves through core/solver.hpp.
UPDATE_ALLOWED_RUNTIME_INCLUDES = SERVE_ALLOWED_RUNTIME_INCLUDES
UPDATE_BANNED_CORE_INCLUDES = frozenset({
    "delta_engine.hpp",
    "multi_engine.hpp",
    "bfs_engine.hpp",
    "split_solver.hpp",
})
CORE_INCLUDE = re.compile(r'#\s*include\s+"core/([^"]+)"')
UPDATE_FORBIDDEN = re.compile(r"\bMachine\b|\bThreadPool\b|\bDeltaEngine\b")

# R7 applies to the engine hot paths — the files whose relax emission the
# pooled data path rebuilt. The generic plumbing (RankCtx::exchange_merged,
# SendBufferPool::merged) legitimately names vector<vector<T>>; engines may
# only reach it through a SendBufferPool.
ENGINE_HOT_PATHS = frozenset({
    "src/core/delta_engine.cpp",
    "src/core/delta_engine.hpp",
    "src/core/bfs_engine.cpp",
    "src/core/multi_engine.cpp",
    "src/core/multi_engine.hpp",
})

# R8 applies to the engine timed paths — the files whose wall-clock
# accounting the trace self-check (check_engine_accounting) certifies.
# A raw clock read here is an interval the helpers cannot attribute, which
# is exactly how the pre-fix hybrid switch double-counted BktTime. The obs
# helpers themselves (src/obs/) and the solver shell are free to read
# clocks; they are where the helpers bottom out.
ENGINE_TIMED_PATHS = frozenset({
    "src/core/delta_engine.cpp",
    "src/core/delta_engine.hpp",
    "src/core/bfs_engine.cpp",
    "src/core/bfs_engine.hpp",
    "src/core/multi_engine.cpp",
    "src/core/multi_engine.hpp",
})


def strip_comments(text: str) -> list[str]:
    """Removes // and /* */ comments and string literals, keeping line
    structure so reported line numbers match the file."""
    out: list[str] = []
    in_block = False
    for line in text.splitlines():
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = line[end + 2:]
            in_block = False
        # String/char literals can contain comment tokens; drop them first.
        line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
        line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
        while True:
            block = line.find("/*")
            linec = line.find("//")
            if linec >= 0 and (block < 0 or linec < block):
                line = line[:linec]
                break
            if block >= 0:
                end = line.find("*/", block + 2)
                if end < 0:
                    line = line[:block]
                    in_block = True
                    break
                line = line[:block] + line[end + 2:]
                continue
            break
        out.append(line)
    return out


def lint_text(rel: str, raw: str) -> list[str]:
    """Lints one file's contents; `rel` is its repo-relative posix path.

    Pure function of its arguments (no filesystem access) so the selftest
    can feed synthetic files through the exact production rule set.
    """
    lines = strip_comments(raw)
    errors: list[str] = []

    def err(lineno: int, rule: str, msg: str) -> None:
        errors.append(f"{rel}:{lineno}: [{rule}] {msg}")

    in_src = rel.startswith("src/")
    in_serve = rel.startswith("src/serve/")
    in_update = rel.startswith("src/update/")
    is_header = rel.endswith((".hpp", ".h"))

    if is_header and "#pragma once" not in raw:
        err(1, "R4", "header is missing #pragma once")

    thread_ok = rel.startswith(THREAD_ALLOWED_PREFIXES) or rel.startswith(
        THREAD_ALLOWED_DIRS)

    raw_lines = raw.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        # Comment stripping blanks string literals, which hides #include
        # paths; when the directive survives stripping (i.e. it is not
        # commented out), re-check the raw line for path-based rules.
        include_line = (raw_lines[lineno - 1]
                        if re.search(r"#\s*include", line) else "")
        if STD_THREAD.search(line) and not thread_ok:
            err(lineno, "R1",
                "naked std::thread/jthread/async outside src/runtime/ — use "
                "Machine, ThreadPool, MachineSession or ServiceThread")
        if in_src and RAND.search(line):
            err(lineno, "R2", "rand()/srand() in src/ — use the hash-based "
                "deterministic generators")
        if in_src and TIME_SEED.search(line):
            err(lineno, "R2", "time(nullptr) seeding in src/ breaks "
                "reproducibility")
        if in_src and VOLATILE.search(line):
            err(lineno, "R3", "volatile is not synchronization — use "
                "std::atomic or a GUARDED_BY mutex")
        if PARENT_INCLUDE.search(include_line):
            err(lineno, "R4", 'parent-relative #include "../..." — use a '
                "module-relative path")
        if is_header and USING_NAMESPACE.match(line):
            err(lineno, "R5", "using namespace at file scope in a header")
        if in_serve:
            m = RUNTIME_INCLUDE.search(include_line)
            if m and m.group(1) not in SERVE_ALLOWED_RUNTIME_INCLUDES:
                err(lineno, "R6",
                    f'src/serve/ may not include "runtime/{m.group(1)}" — '
                    "only the session facade (machine_session.hpp, "
                    "service_thread.hpp, partition.hpp)")
            if SERVE_FORBIDDEN.search(line):
                err(lineno, "R6",
                    "src/serve/ must not name Machine or ThreadPool — "
                    "consume MachineSession instead")
        if in_update:
            m = RUNTIME_INCLUDE.search(include_line)
            if m and m.group(1) not in UPDATE_ALLOWED_RUNTIME_INCLUDES:
                err(lineno, "R9",
                    f'src/update/ may not include "runtime/{m.group(1)}" — '
                    "only the session facade (machine_session.hpp, "
                    "service_thread.hpp, partition.hpp)")
            m = CORE_INCLUDE.search(include_line)
            if m and m.group(1) in UPDATE_BANNED_CORE_INCLUDES:
                err(lineno, "R9",
                    f'src/update/ may not include "core/{m.group(1)}" — '
                    "seeded sweeps go through core/seeded_solve.hpp, fresh "
                    "solves through core/solver.hpp")
            if UPDATE_FORBIDDEN.search(line):
                err(lineno, "R9",
                    "src/update/ must not name Machine, ThreadPool or "
                    "DeltaEngine — consume the solver/session facades "
                    "instead")
        if rel in ENGINE_HOT_PATHS and NESTED_MSG_VECTOR.search(line):
            err(lineno, "R7",
                "nested vector-of-vector send buffer of a message type in "
                "an engine hot path — emit into a SendBufferPool shard "
                "(docs/PERFORMANCE.md)")
        if rel in ENGINE_TIMED_PATHS and CLOCK_CALL.search(line):
            err(lineno, "R8",
                "direct clock read in an engine timed path — sample time "
                "through the obs/ helpers (PhaseTimer, TimedSection, "
                "ScopedSpan) so the interval lands in exactly one "
                "accounting bucket (docs/OBSERVABILITY.md)")

    return errors


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    return lint_text(rel, raw)


def main() -> int:
    files: list[Path] = []
    for d in SOURCE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        files.extend(p for p in sorted(root.rglob("*"))
                     if p.suffix in CPP_SUFFIXES and p.is_file())

    all_errors: list[str] = []
    for f in files:
        all_errors.extend(lint_file(f))

    for e in all_errors:
        print(e)
    print(f"lint: {len(files)} files checked, {len(all_errors)} violation(s)",
          file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
