#!/usr/bin/env python3
"""Project-invariant lint for the parsssp tree (scripts/check.sh step 1).

Machine-checks repository rules that neither the compiler nor clang-tidy
enforce (see docs/STATIC_ANALYSIS.md):

  R1  no naked std::thread outside src/runtime/ — all parallelism goes
      through Machine / ThreadPool so the concurrency layer stays auditable;
  R2  no rand()/srand()/time(nullptr) in src/ — generators are hash-based
      and deterministic (graph/rmat.hpp), wall-clock seeding breaks
      reproducibility;
  R3  no volatile-as-synchronization in src/ — volatile is not a memory
      fence; use std::atomic or a GUARDED_BY mutex;
  R4  include hygiene: headers use #pragma once; no parent-relative
      ("../") includes; project includes use quoted module-relative paths;
  R5  no using namespace at file scope in headers.

Exit code 0 = clean, 1 = violations (printed one per line as
path:line: [rule] message).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# (rule, regex, message). Patterns are applied to comment-stripped lines.
STD_THREAD = re.compile(r"\bstd::thread\b")
RAND = re.compile(r"(?<![:\w])(rand|srand)\s*\(")
TIME_SEED = re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)")
VOLATILE = re.compile(r"\bvolatile\b")
PARENT_INCLUDE = re.compile(r'#\s*include\s+"\.\./')
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s+\w")

# Files allowed to use std::thread: the simulated machine's runtime and the
# tests/benches that exercise it directly.
THREAD_ALLOWED_PREFIXES = ("src/runtime/",)
THREAD_ALLOWED_DIRS = ("tests/", "bench/")


def strip_comments(text: str) -> list[str]:
    """Removes // and /* */ comments and string literals, keeping line
    structure so reported line numbers match the file."""
    out: list[str] = []
    in_block = False
    for line in text.splitlines():
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = line[end + 2:]
            in_block = False
        # String/char literals can contain comment tokens; drop them first.
        line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
        line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
        while True:
            block = line.find("/*")
            linec = line.find("//")
            if linec >= 0 and (block < 0 or linec < block):
                line = line[:linec]
                break
            if block >= 0:
                end = line.find("*/", block + 2)
                if end < 0:
                    line = line[:block]
                    in_block = True
                    break
                line = line[:block] + line[end + 2:]
                continue
            break
        out.append(line)
    return out


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    lines = strip_comments(raw)
    errors: list[str] = []

    def err(lineno: int, rule: str, msg: str) -> None:
        errors.append(f"{rel}:{lineno}: [{rule}] {msg}")

    in_src = rel.startswith("src/")
    is_header = path.suffix in {".hpp", ".h"}

    if is_header and "#pragma once" not in raw:
        err(1, "R4", "header is missing #pragma once")

    thread_ok = rel.startswith(THREAD_ALLOWED_PREFIXES) or rel.startswith(
        THREAD_ALLOWED_DIRS)

    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        if STD_THREAD.search(line) and not thread_ok:
            err(lineno, "R1",
                "naked std::thread outside src/runtime/ — use Machine or "
                "ThreadPool")
        if in_src and RAND.search(line):
            err(lineno, "R2", "rand()/srand() in src/ — use the hash-based "
                "deterministic generators")
        if in_src and TIME_SEED.search(line):
            err(lineno, "R2", "time(nullptr) seeding in src/ breaks "
                "reproducibility")
        if in_src and VOLATILE.search(line):
            err(lineno, "R3", "volatile is not synchronization — use "
                "std::atomic or a GUARDED_BY mutex")
        if PARENT_INCLUDE.search(line):
            err(lineno, "R4", 'parent-relative #include "../..." — use a '
                "module-relative path")
        if is_header and USING_NAMESPACE.match(line):
            err(lineno, "R5", "using namespace at file scope in a header")

    return errors


def main() -> int:
    files: list[Path] = []
    for d in SOURCE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        files.extend(p for p in sorted(root.rglob("*"))
                     if p.suffix in CPP_SUFFIXES and p.is_file())

    all_errors: list[str] = []
    for f in files:
        all_errors.extend(lint_file(f))

    for e in all_errors:
        print(e)
    print(f"lint: {len(files)} files checked, {len(all_errors)} violation(s)",
          file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
