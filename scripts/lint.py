#!/usr/bin/env python3
"""Project-invariant lint for the parsssp tree (scripts/check.sh step 1).

Machine-checks repository rules that neither the compiler nor clang-tidy
enforce (see docs/STATIC_ANALYSIS.md):

  R1  no naked std::thread / std::jthread / std::async outside src/runtime/
      — all parallelism (including session/queue service threads) goes
      through Machine / ThreadPool / MachineSession / ServiceThread so the
      concurrency layer stays auditable;
  R2  no rand()/srand()/time(nullptr) in src/ — generators are hash-based
      and deterministic (graph/rmat.hpp), wall-clock seeding breaks
      reproducibility;
  R3  no volatile-as-synchronization in src/ — volatile is not a memory
      fence; use std::atomic or a GUARDED_BY mutex;
  R4  include hygiene: headers use #pragma once; no parent-relative
      ("../") includes; project includes use quoted module-relative paths;
  R5  no using namespace at file scope in headers;
  R7  engine hot paths (the files listed in ENGINE_HOT_PATHS) must not
      build nested vector-of-vector send buffers of message types — relax
      emission goes through SendBufferPool so buffers are pooled and
      exchanged zero-copy (docs/PERFORMANCE.md); the seed's per-phase
      std::vector<std::vector<RelaxMsg>> churn must not creep back in.

Retired rules (numbers are not reused):

  R6, R9  the serve/ and update/ isolation rules are now enforced from the
      real include graph by the AST-grade analyzer's layering check
      (scripts/analysis/, check A3 against scripts/analysis/layers.toml),
      which also catches transitive leaks the per-line regexes missed;
  R8  the engine timed-path clock rule is now check A5 in the analyzer,
      which resolves type aliases (a `using Tick = Clock;` chain no longer
      hides a read) and never fires on comments or string literals.

Exit code 0 = clean, 1 = violations (printed one per line as
path:line: [rule] message).

The rule implementations live in lint_text() so scripts/lint_selftest.py
(registered as the lint_selftest ctest) can exercise each rule on synthetic
inputs; a silently-disabled rule fails that test, not just this linter.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# (rule, regex, message). Patterns are applied to comment-stripped lines.
# `std::thread` as a type is banned; `std::thread::id` (a plain value type,
# used by the obs/ trace recorder to key lanes) is not a way to spawn work
# and stays legal everywhere — hence the (?!\s*::) lookahead.
STD_THREAD = re.compile(r"\bstd::(?:thread(?!\s*::)|jthread|async)\b")
RAND = re.compile(r"(?<![:\w])(rand|srand)\s*\(")
TIME_SEED = re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)")
VOLATILE = re.compile(r"\bvolatile\b")
PARENT_INCLUDE = re.compile(r'#\s*include\s+"\.\./')
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s+\w")
# R7: a nested vector whose inner element is a message type (RelaxMsg,
# PullReqMsg, BfsMsg, MultiRelaxMsg, ...). Deliberately narrow: nested
# vectors of non-message types (per-slot engine state like
# vector<vector<char>>) are legitimate and must not fire.
NESTED_MSG_VECTOR = re.compile(
    r"std::vector<\s*std::vector<\s*\w*Msg\s*>")

# Files allowed to spawn threads: the simulated machine's runtime and the
# tests/benches that exercise it directly.
THREAD_ALLOWED_PREFIXES = ("src/runtime/",)
THREAD_ALLOWED_DIRS = ("tests/", "bench/")

# R7 applies to the engine hot paths — the files whose relax emission the
# pooled data path rebuilt. The generic plumbing (RankCtx::exchange_merged,
# SendBufferPool::merged) legitimately names vector<vector<T>>; engines may
# only reach it through a SendBufferPool.
ENGINE_HOT_PATHS = frozenset({
    "src/core/delta_engine.cpp",
    "src/core/delta_engine.hpp",
    "src/core/bfs_engine.cpp",
    "src/core/multi_engine.cpp",
    "src/core/multi_engine.hpp",
})


def strip_comments(text: str) -> list[str]:
    """Removes // and /* */ comments and string literals, keeping line
    structure so reported line numbers match the file."""
    out: list[str] = []
    in_block = False
    for line in text.splitlines():
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = line[end + 2:]
            in_block = False
        # String/char literals can contain comment tokens; drop them first.
        line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
        line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
        while True:
            block = line.find("/*")
            linec = line.find("//")
            if linec >= 0 and (block < 0 or linec < block):
                line = line[:linec]
                break
            if block >= 0:
                end = line.find("*/", block + 2)
                if end < 0:
                    line = line[:block]
                    in_block = True
                    break
                line = line[:block] + line[end + 2:]
                continue
            break
        out.append(line)
    return out


def lint_text(rel: str, raw: str) -> list[str]:
    """Lints one file's contents; `rel` is its repo-relative posix path.

    Pure function of its arguments (no filesystem access) so the selftest
    can feed synthetic files through the exact production rule set.
    """
    lines = strip_comments(raw)
    errors: list[str] = []

    def err(lineno: int, rule: str, msg: str) -> None:
        errors.append(f"{rel}:{lineno}: [{rule}] {msg}")

    in_src = rel.startswith("src/")
    is_header = rel.endswith((".hpp", ".h"))

    if is_header and "#pragma once" not in raw:
        err(1, "R4", "header is missing #pragma once")

    thread_ok = rel.startswith(THREAD_ALLOWED_PREFIXES) or rel.startswith(
        THREAD_ALLOWED_DIRS)

    raw_lines = raw.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        # Comment stripping blanks string literals, which hides #include
        # paths; when the directive survives stripping (i.e. it is not
        # commented out), re-check the raw line for path-based rules.
        include_line = (raw_lines[lineno - 1]
                        if re.search(r"#\s*include", line) else "")
        if STD_THREAD.search(line) and not thread_ok:
            err(lineno, "R1",
                "naked std::thread/jthread/async outside src/runtime/ — use "
                "Machine, ThreadPool, MachineSession or ServiceThread")
        if in_src and RAND.search(line):
            err(lineno, "R2", "rand()/srand() in src/ — use the hash-based "
                "deterministic generators")
        if in_src and TIME_SEED.search(line):
            err(lineno, "R2", "time(nullptr) seeding in src/ breaks "
                "reproducibility")
        if in_src and VOLATILE.search(line):
            err(lineno, "R3", "volatile is not synchronization — use "
                "std::atomic or a GUARDED_BY mutex")
        if PARENT_INCLUDE.search(include_line):
            err(lineno, "R4", 'parent-relative #include "../..." — use a '
                "module-relative path")
        if is_header and USING_NAMESPACE.match(line):
            err(lineno, "R5", "using namespace at file scope in a header")
        if rel in ENGINE_HOT_PATHS and NESTED_MSG_VECTOR.search(line):
            err(lineno, "R7",
                "nested vector-of-vector send buffer of a message type in "
                "an engine hot path — emit into a SendBufferPool shard "
                "(docs/PERFORMANCE.md)")

    return errors


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    return lint_text(rel, raw)


def main() -> int:
    files: list[Path] = []
    for d in SOURCE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        files.extend(p for p in sorted(root.rglob("*"))
                     if p.suffix in CPP_SUFFIXES and p.is_file())

    all_errors: list[str] = []
    for f in files:
        all_errors.extend(lint_file(f))

    for e in all_errors:
        print(e)
    print(f"lint: {len(files)} files checked, {len(all_errors)} violation(s)",
          file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
