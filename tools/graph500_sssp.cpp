// Graph 500 SSSP benchmark driver: the full benchmark flow on the simulated
// machine — generation, construction, NROOTS search keys, per-key
// validation (distances against Dijkstra, parent tree structurally), and
// the harmonic-mean TEPS report, following the Graph 500 methodology the
// paper's evaluation is built on.
//
//   graph500_sssp [scale] [edge_factor] [ranks] [nroots]
#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.hpp"
#include "core/delta_choice.hpp"
#include "core/dist_validate.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"

int main(int argc, char** argv) {
  using namespace parsssp;

  const std::uint32_t scale =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 13;
  const std::uint32_t edge_factor =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
  const rank_t ranks =
      argc > 3 ? static_cast<rank_t>(std::atoi(argv[3])) : 8;
  const std::size_t nroots =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 16;

  // --- Generation (untimed in Graph 500) -------------------------------
  RmatConfig cfg = family_config(RmatFamily::kRmat2, scale);  // SSSP spec
  cfg.edge_factor = edge_factor;
  std::printf("generating scale-%u RMAT-2 graph (edge factor %u)...\n",
              scale, edge_factor);
  const EdgeList edges = generate_rmat(cfg);

  // --- Construction (kernel 1) ------------------------------------------
  const auto t0 = std::chrono::steady_clock::now();
  const CsrGraph g = CsrGraph::from_edges(edges);
  const double construction_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("construction: %.3fs (%llu vertices, %zu edges)\n",
              construction_s,
              static_cast<unsigned long long>(g.num_vertices()),
              g.num_undirected_edges());

  // --- SSSP runs (kernel 3) ----------------------------------------------
  const DeltaSuggestion ds = suggest_delta(g);
  std::printf("delta: %u (suggested; mean degree %.1f, w_max %u)\n",
              ds.delta, ds.mean_degree, ds.max_weight);
  SsspOptions options = SsspOptions::opt(ds.delta);
  options.track_parents = true;

  Solver solver(g, {.machine = {.num_ranks = ranks}});
  const std::vector<vid_t> roots = sample_roots(g, nroots, 2);

  std::vector<double> gteps;
  std::size_t validated = 0;
  Machine check_machine({.num_ranks = ranks});
  for (const vid_t root : roots) {
    const SsspResult r = solver.solve(root, options);
    // Both validation paths: the sequential oracle (feasible at this
    // scale) and the distributed certificate (what a real at-scale run
    // relies on — see core/dist_validate.hpp).
    const auto dist_ok = validate_against_dijkstra(g, root, r.dist);
    const auto tree_ok = check_parent_tree(g, root, r.dist, r.parent);
    const auto dist_cert = validate_distributed(
        g, check_machine, solver.partition(), root, r.dist, r.parent);
    if (!dist_ok.ok || !tree_ok.ok || !dist_cert.ok) {
      std::printf("VALIDATION FAILED for root %llu: %s%s%s\n",
                  static_cast<unsigned long long>(root),
                  dist_ok.message.c_str(), tree_ok.message.c_str(),
                  dist_cert.message.c_str());
      return 1;
    }
    ++validated;
    gteps.push_back(r.stats.gteps(g.num_undirected_edges()));
  }

  // --- Report (Graph 500 statistics over the TEPS sample) ----------------
  std::sort(gteps.begin(), gteps.end());
  double inv = 0;
  for (const double x : gteps) inv += 1.0 / x;
  const double harmonic = static_cast<double>(gteps.size()) / inv;
  std::printf("\nvalidated %zu/%zu roots\n", validated, roots.size());
  std::printf("GTEPS(model): min %.4f  firstquartile %.4f  median %.4f  "
              "thirdquartile %.4f  max %.4f\n",
              gteps.front(), gteps[gteps.size() / 4],
              gteps[gteps.size() / 2], gteps[(3 * gteps.size()) / 4],
              gteps.back());
  std::printf("harmonic_mean_GTEPS(model): %.4f\n", harmonic);
  return 0;
}
