// Command-line driver for the SSSP library.
//
//   sssp_cli [options]
//     --family rmat1|rmat2      synthetic family (default rmat1)
//     --scale N                 log2 vertices (default 12)
//     --edge-factor N           undirected edges per vertex (default 16)
//     --load PATH               load a SNAP edge list instead of generating
//     --algo NAME               dijkstra|bf|del|prune|opt|lbopt|async|
//                               rho|dstar|radius|auto
//                               (default opt; async = barrier-free engine,
//                               docs/ASYNC.md; rho/dstar/radius = stepping
//                               family, docs/STEPPING.md; auto = probe the
//                               graph once and pick an engine online)
//     --delta N                 bucket width (default 25)
//     --ranks N                 simulated ranks (default 8)
//     --lanes N                 worker lanes per rank (default 1)
//     --roots N                 number of sampled roots (default 4)
//     --root V                  explicit root (overrides --roots)
//     --tau X                   hybridization threshold (algo opt/lbopt)
//     --split N                 split vertices with degree > N first
//     --parents                 build + validate the shortest-path tree
//     --validate                check distances against Dijkstra
//     --csv                     print per-root rows as CSV
//     --json                    additionally print one JSON line per root
//     --trace PATH              record spans; write Chrome trace JSON of the
//                               last root's solve to PATH and self-check
//                               every solve's accounting (exit 3 on failure)
//     --seed N                  generator seed (default 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "bench_util/runner.hpp"
#include "bench_util/stats_io.hpp"
#include "bench_util/table.hpp"
#include "core/auto_tune.hpp"
#include "core/solver.hpp"
#include "core/split_solver.hpp"
#include "core/validate.hpp"
#include "graph/graph_algos.hpp"
#include "graph/snap_io.hpp"
#include "graph/weights.hpp"
#include "obs/trace.hpp"

namespace {

using namespace parsssp;

struct CliConfig {
  std::string family = "rmat1";
  std::uint32_t scale = 12;
  std::uint32_t edge_factor = 16;
  std::string load_path;
  std::string algo = "opt";
  std::uint32_t delta = 25;
  rank_t ranks = 8;
  unsigned lanes = 1;
  std::size_t roots = 4;
  std::optional<vid_t> explicit_root;
  std::optional<double> tau;
  std::size_t split_threshold = 0;
  bool parents = false;
  bool validate = false;
  bool csv = false;
  bool json = false;
  std::string trace_path;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--family rmat1|rmat2] [--scale N] "
               "[--edge-factor N] [--load PATH] [--algo NAME] [--delta N] "
               "[--ranks N] [--lanes N] [--roots N] [--root V] [--tau X] "
               "[--split N] [--parents] [--validate] [--csv] [--json] "
               "[--trace PATH] [--seed N]\n",
               argv0);
  std::exit(2);
}

CliConfig parse_args(int argc, char** argv) {
  CliConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--family") {
      cfg.family = value();
    } else if (arg == "--scale") {
      cfg.scale = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--edge-factor") {
      cfg.edge_factor = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--load") {
      cfg.load_path = value();
    } else if (arg == "--algo") {
      cfg.algo = value();
    } else if (arg == "--delta") {
      cfg.delta = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--ranks") {
      cfg.ranks = static_cast<rank_t>(std::atoi(value()));
    } else if (arg == "--lanes") {
      cfg.lanes = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--roots") {
      cfg.roots = static_cast<std::size_t>(std::atoi(value()));
    } else if (arg == "--root") {
      cfg.explicit_root = static_cast<vid_t>(std::atoll(value()));
    } else if (arg == "--tau") {
      cfg.tau = std::atof(value());
    } else if (arg == "--split") {
      cfg.split_threshold = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--parents") {
      cfg.parents = true;
    } else if (arg == "--validate") {
      cfg.validate = true;
    } else if (arg == "--csv") {
      cfg.csv = true;
    } else if (arg == "--json") {
      cfg.json = true;
    } else if (arg == "--trace") {
      cfg.trace_path = value();
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else {
      usage(argv[0]);
    }
  }
  return cfg;
}

SsspOptions make_options(const CliConfig& cfg) {
  SsspOptions o;
  if (cfg.algo == "dijkstra") {
    o = SsspOptions::dijkstra();
  } else if (cfg.algo == "bf") {
    o = SsspOptions::bellman_ford();
  } else if (cfg.algo == "del") {
    o = SsspOptions::del(cfg.delta);
  } else if (cfg.algo == "prune") {
    o = SsspOptions::prune(cfg.delta);
  } else if (cfg.algo == "opt") {
    o = SsspOptions::opt(cfg.delta);
  } else if (cfg.algo == "lbopt") {
    o = SsspOptions::lb_opt(cfg.delta);
  } else if (cfg.algo == "async") {
    o = SsspOptions::async_opt(cfg.delta);
  } else if (cfg.algo == "rho") {
    o = SsspOptions::rho_stepping(2048, cfg.delta);
  } else if (cfg.algo == "dstar") {
    o = SsspOptions::delta_star(cfg.delta);
  } else if (cfg.algo == "radius") {
    o = SsspOptions::radius_stepping(4, cfg.delta);
  } else if (cfg.algo == "auto") {
    // Placeholder: main() runs the auto-tuner once the solver exists and
    // rewrites these options with the learned config.
    o = SsspOptions::opt(cfg.delta);
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", cfg.algo.c_str());
    std::exit(2);
  }
  if (cfg.tau) o.hybrid_tau = *cfg.tau;
  o.track_parents = cfg.parents;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cfg = parse_args(argc, argv);

  EdgeList list;
  if (!cfg.load_path.empty()) {
    list = compact_vertex_ids(load_snap_file(cfg.load_path));
    assign_uniform_weights(list, {1, 255, cfg.seed});
    list.dedup_and_strip_self_loops();
  } else {
    RmatConfig rc = family_config(
        cfg.family == "rmat2" ? RmatFamily::kRmat2 : RmatFamily::kRmat1,
        cfg.scale, cfg.seed);
    rc.edge_factor = cfg.edge_factor;
    list = generate_rmat(rc);
  }
  const CsrGraph graph = CsrGraph::from_edges(list);
  std::printf("# graph: %llu vertices, %zu edges\n",
              static_cast<unsigned long long>(graph.num_vertices()),
              graph.num_undirected_edges());

  SsspOptions options = make_options(cfg);
  std::unique_ptr<TraceRecorder> recorder;
  if (!cfg.trace_path.empty()) {
    recorder = std::make_unique<TraceRecorder>();
    options.trace = recorder.get();
  }
  std::vector<vid_t> roots;
  if (cfg.explicit_root) {
    roots.push_back(*cfg.explicit_root);
  } else {
    roots = sample_roots(graph, cfg.roots, cfg.seed);
  }

  SolverConfig solver_cfg;
  solver_cfg.machine.num_ranks = cfg.ranks;
  solver_cfg.machine.lanes_per_rank = cfg.lanes;

  std::unique_ptr<SplitSolver> split_solver;
  std::unique_ptr<Solver> plain_solver;
  if (cfg.split_threshold != 0) {
    split_solver = std::make_unique<SplitSolver>(
        list, SplitSolverConfig{solver_cfg, cfg.split_threshold, 99});
    std::printf("# split: %llu vertices -> %llu proxies (threshold %zu)\n",
                static_cast<unsigned long long>(
                    split_solver->num_split_vertices()),
                static_cast<unsigned long long>(split_solver->num_proxies()),
                split_solver->threshold_used());
  } else {
    plain_solver = std::make_unique<Solver>(graph, solver_cfg);
  }

  std::string algo_label = cfg.algo;
  if (cfg.algo == "auto") {
    // One probe pass over the first root picks the engine for every root.
    AutoTuner tuner;
    const vid_t probe_root = roots.empty() ? vid_t{0} : roots[0];
    const TunedConfig tuned = tuner.tune(
        0, graph, options, [&](const SsspOptions& candidate) {
          return (split_solver ? split_solver->solve(probe_root, candidate)
                               : plain_solver->solve(probe_root, candidate))
              .stats;
        });
    options = tuned.apply(options);
    algo_label += " -> " + tuned.name();
    std::printf("# auto-tune: picked %s\n", tuned.name().c_str());
  }

  TextTable table("per-root results (" + algo_label + ")");
  // "syncs" counts global synchronizations (allreduces + barriers) of the
  // solve — the --validate evidence that async really is barrier-free.
  table.set_header({"root", "reached", "relaxations", "phases", "buckets",
                    "syncs", "model-ms", "GTEPS(model)", "checks"});
  int failures = 0;
  int trace_failures = 0;
  for (const vid_t root : roots) {
    // One recorder window per root: the exported trace holds the last
    // root's solve, but every solve gets self-checked.
    if (recorder) recorder->clear();
    const SsspResult r = split_solver ? split_solver->solve(root, options)
                                      : plain_solver->solve(root, options);
    if (recorder) {
      if (options.algo == SsspAlgo::kAsync) {
        // The accounting self-check sums top-level phase spans against the
        // solve span; the async engine has no phase tiling (or solve span)
        // to audit. Its spans still land in the exported trace.
        std::printf("# trace check (root %llu): skipped (async engine has "
                    "no phase tiling to audit)\n",
                    static_cast<unsigned long long>(root));
      } else {
        const TraceCheckReport rep =
            check_engine_accounting(*recorder, r.stats);
        std::printf("# trace check (root %llu): %s\n",
                    static_cast<unsigned long long>(root), rep.detail.c_str());
        trace_failures += !rep.ok;
      }
    }
    std::size_t reached = 0;
    for (const dist_t d : r.dist) reached += d != kInfDist;

    std::string checks = "-";
    if (cfg.validate || cfg.parents) {
      checks.clear();
      if (cfg.validate) {
        const auto rep = validate_against_dijkstra(graph, root, r.dist);
        checks += rep.ok ? "dist:OK" : "dist:FAIL(" + rep.message + ")";
        failures += !rep.ok;
      }
      if (cfg.parents) {
        const auto rep = check_parent_tree(graph, root, r.dist, r.parent);
        if (!checks.empty()) checks += " ";
        checks += rep.ok ? "tree:OK" : "tree:FAIL(" + rep.message + ")";
        failures += !rep.ok;
      }
    }
    if (cfg.json) {
      std::cout << "{\"root\":" << root << ",\"stats\":";
      write_json(std::cout, r.stats, graph.num_undirected_edges());
      std::cout << "}\n";
    }
    table.add_row(
        {std::to_string(root), std::to_string(reached),
         TextTable::num(r.stats.total_relaxations()),
         TextTable::num(r.stats.phases), TextTable::num(r.stats.buckets),
         TextTable::num(r.stats.global_syncs()),
         TextTable::num(r.stats.model_time_s * 1e3, 3),
         TextTable::num(r.stats.gteps(graph.num_undirected_edges()), 4),
         checks});
  }
  if (cfg.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (recorder) {
    std::ofstream out(cfg.trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cfg.trace_path.c_str());
      return 2;
    }
    write_chrome_trace(out, *recorder);
    std::printf("# trace: wrote %s (load it at ui.perfetto.dev)\n",
                cfg.trace_path.c_str());
  }
  if (failures != 0) return 1;
  return trace_failures == 0 ? 0 : 3;
}
