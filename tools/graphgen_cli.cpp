// Graph generator / converter CLI.
//
//   graphgen_cli --out PATH [options]
//     --family rmat1|rmat2|friendster|orkut|livejournal   (default rmat1)
//     --scale N          log2 vertices for R-MAT (default 12)
//     --edge-factor N    (default 16)
//     --seed N           (default 1)
//     --format text|bin  output format (default text)
//     --in PATH          convert an existing SNAP text file instead
//     --stats            print degree statistics and exit (no --out needed)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/rmat.hpp"
#include "graph/snap_io.hpp"
#include "graph/social_gen.hpp"

namespace {

using namespace parsssp;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--family NAME] [--scale N] "
               "[--edge-factor N] [--seed N] [--format text|bin] "
               "[--in PATH] [--stats]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string in_path;
  std::string family = "rmat1";
  std::string format = "text";
  std::uint32_t scale = 12;
  std::uint32_t edge_factor = 16;
  std::uint64_t seed = 1;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = value();
    } else if (arg == "--in") {
      in_path = value();
    } else if (arg == "--family") {
      family = value();
    } else if (arg == "--scale") {
      scale = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--edge-factor") {
      edge_factor = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--format") {
      format = value();
    } else if (arg == "--stats") {
      stats = true;
    } else {
      usage(argv[0]);
    }
  }
  if (out_path.empty() && !stats) usage(argv[0]);

  EdgeList list;
  if (!in_path.empty()) {
    list = load_snap_file(in_path);
  } else if (family == "rmat1" || family == "rmat2") {
    RmatConfig cfg;
    cfg.params =
        family == "rmat1" ? RmatParams::rmat1() : RmatParams::rmat2();
    cfg.scale = scale;
    cfg.edge_factor = edge_factor;
    cfg.seed = seed;
    list = generate_rmat(cfg);
  } else {
    SocialGraphSpec spec;
    if (family == "friendster") {
      spec.kind = SocialGraphKind::kFriendster;
    } else if (family == "orkut") {
      spec.kind = SocialGraphKind::kOrkut;
    } else if (family == "livejournal") {
      spec.kind = SocialGraphKind::kLiveJournal;
    } else {
      usage(argv[0]);
    }
    spec.seed = seed;
    spec.scale_down_log2 = scale;  // reinterpreted as the down-scaling
    list = generate_social_graph(spec);
  }

  if (stats) {
    const CsrGraph g = CsrGraph::from_edges(list);
    const DegreeStats s = compute_degree_stats(g);
    std::printf("vertices:  %llu\n",
                static_cast<unsigned long long>(g.num_vertices()));
    std::printf("edges:     %zu\n", g.num_undirected_edges());
    std::printf("mean deg:  %.2f\n", s.mean_degree);
    std::printf("max deg:   %zu (vertex %llu)\n", s.max_degree,
                static_cast<unsigned long long>(s.argmax_vertex));
    std::printf("isolated:  %zu\n", s.num_isolated);
    std::printf("log2-degree histogram:");
    for (std::size_t i = 0; i < s.log2_histogram.size(); ++i) {
      std::printf(" %zu:%zu", i, s.log2_histogram[i]);
    }
    std::printf("\n");
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path,
                      format == "bin" ? std::ios::binary : std::ios::out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    if (format == "bin") {
      write_binary(out, list);
    } else {
      write_snap_text(out, list);
    }
    std::printf("wrote %zu edges to %s (%s)\n", list.num_edges(),
                out_path.c_str(), format.c_str());
  }
  return 0;
}
