// Load driver for the query-serving subsystem: replays a synthetic query
// stream against a QueryEngine and reports throughput, batching, cache and
// latency-SLO statistics.
//
//   serve_cli [options]
//     --family rmat1|rmat2      synthetic family (default rmat1)
//     --scale N                 log2 vertices (default 12)
//     --edge-factor N           undirected edges per vertex (default 16)
//     --algo NAME               dijkstra|bf|del|prune|opt (default del)
//     --delta N                 bucket width (default 25)
//     --ranks N                 simulated ranks (default 8)
//     --lanes N                 worker lanes per rank (default 1)
//     --queries N               stream length (default 200)
//     --rate QPS                open-loop arrival rate; 0 = closed loop
//                               (default 0)
//     --dist uniform|zipf       root popularity (default zipf)
//     --zipf-s S                Zipf exponent (default 1.2)
//     --domain N                distinct candidate roots (default 64)
//     --batch N                 max queries per batch (default 8)
//     --window-us N             batch-window deadline in us (default 200)
//     --cache N                 result-cache capacity; 0 disables
//                               (default 1024)
//     --updates N               mixed-stream mode: interleave N edge-update
//                               batches evenly into the query stream (runs
//                               the engine on a DynamicGraph; default 0)
//     --update-ops M            ops per update batch (default 8)
//     --fence                   serialize updates through the query FIFO
//                               (ServeConfig::fence_updates) instead of the
//                               default MVCC concurrent serving
//     --no-baseline             skip the update-free control run that the
//                               mixed-stream degradation ratios compare
//                               against
//     --slo-p99-ms X            fail (exit 1) if p99 latency exceeds X ms
//     --json PATH               also write the report as JSON
//     --metrics-json PATH       append periodic metrics snapshots (one JSON
//                               object per line) while the stream replays
//     --metrics-every-ms N      snapshot cadence for --metrics-json
//                               (default 500)
//     --seed N                  stream + generator seed (default 1)
//
// Latency is measured per query from submit to completion; under an
// open-loop rate the driver sleeps queries into the engine at their
// scheduled arrival times, so queueing delay is part of the number (that
// is the point of an open-loop driver: overload shows up as latency, not
// as a slower offered rate).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/stats_io.hpp"
#include "bench_util/table.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "update/dynamic_graph.hpp"

namespace {

using namespace parsssp;

struct CliConfig {
  std::string family = "rmat1";
  std::uint32_t scale = 12;
  std::uint32_t edge_factor = 16;
  std::string algo = "del";
  std::uint32_t delta = 25;
  rank_t ranks = 8;
  unsigned lanes = 1;
  WorkloadConfig workload{.num_queries = 200,
                          .rate_qps = 0,
                          .dist = RootDist::kZipf,
                          .zipf_s = 1.2,
                          .num_roots_domain = 64,
                          .seed = 1};
  std::size_t max_batch = 8;
  std::uint64_t window_us = 200;
  std::size_t cache = 1024;
  std::size_t updates = 0;     // >0 switches to the dynamic engine
  std::size_t update_ops = 8;  // ops per interleaved batch
  bool fence = false;          // fenced (PR-5) ordering instead of MVCC
  bool baseline = true;        // mixed mode: also run an update-free control
  double slo_p99_ms = 0;  // 0 = no SLO gate
  std::string json_path;
  std::string metrics_json_path;
  std::uint64_t metrics_every_ms = 500;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--family rmat1|rmat2] [--scale N] "
               "[--edge-factor N] [--algo NAME] [--delta N] [--ranks N] "
               "[--lanes N] [--queries N] [--rate QPS] [--dist uniform|zipf] "
               "[--zipf-s S] [--domain N] [--batch N] [--window-us N] "
               "[--cache N] [--updates N] [--update-ops M] [--fence] "
               "[--no-baseline] [--slo-p99-ms X] [--json PATH] "
               "[--metrics-json PATH] [--metrics-every-ms N] [--seed N]\n",
               argv0);
  std::exit(2);
}

CliConfig parse_args(int argc, char** argv) {
  CliConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--family") {
      cfg.family = value();
    } else if (arg == "--scale") {
      cfg.scale = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--edge-factor") {
      cfg.edge_factor = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--algo") {
      cfg.algo = value();
    } else if (arg == "--delta") {
      cfg.delta = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--ranks") {
      cfg.ranks = static_cast<rank_t>(std::atoi(value()));
    } else if (arg == "--lanes") {
      cfg.lanes = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--queries") {
      cfg.workload.num_queries = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--rate") {
      cfg.workload.rate_qps = std::atof(value());
    } else if (arg == "--dist") {
      const std::string d = value();
      if (d == "uniform") {
        cfg.workload.dist = RootDist::kUniform;
      } else if (d == "zipf") {
        cfg.workload.dist = RootDist::kZipf;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--zipf-s") {
      cfg.workload.zipf_s = std::atof(value());
    } else if (arg == "--domain") {
      cfg.workload.num_roots_domain =
          static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--batch") {
      cfg.max_batch = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--window-us") {
      cfg.window_us = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--cache") {
      cfg.cache = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--updates") {
      cfg.updates = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--update-ops") {
      cfg.update_ops = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--fence") {
      cfg.fence = true;
    } else if (arg == "--no-baseline") {
      cfg.baseline = false;
    } else if (arg == "--slo-p99-ms") {
      cfg.slo_p99_ms = std::atof(value());
    } else if (arg == "--json") {
      cfg.json_path = value();
    } else if (arg == "--metrics-json") {
      cfg.metrics_json_path = value();
    } else if (arg == "--metrics-every-ms") {
      cfg.metrics_every_ms = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--seed") {
      cfg.workload.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else {
      usage(argv[0]);
    }
  }
  return cfg;
}

SsspOptions make_options(const CliConfig& cfg) {
  if (cfg.algo == "dijkstra") return SsspOptions::dijkstra();
  if (cfg.algo == "bf") return SsspOptions::bellman_ford();
  if (cfg.algo == "del") return SsspOptions::del(cfg.delta);
  if (cfg.algo == "prune") return SsspOptions::prune(cfg.delta);
  if (cfg.algo == "opt") return SsspOptions::opt(cfg.delta);
  std::fprintf(stderr, "unknown --algo %s\n", cfg.algo.c_str());
  std::exit(2);
}

/// Host-side mirror of the engine graph's edge set. Update batches are
/// generated against the mirror (which tracks their cumulative effect), so
/// every batch is valid by construction when the dispatcher applies it —
/// the driver never has to read the DynamicGraph while the engine owns it.
class HostMirror {
 public:
  explicit HostMirror(const CsrGraph& g) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      for (const Arc& a : g.neighbors(v)) {
        if (v < a.to) {
          index_[{v, a.to}] = edges_.size();
          edges_.emplace_back(v, a.to, a.w);
        }
      }
    }
  }

  EdgeBatch make_batch(std::size_t ops, vid_t n, std::mt19937_64& rng) {
    EdgeBatch batch;
    std::uniform_int_distribution<vid_t> pick_vertex(0, n - 1);
    std::uniform_int_distribution<weight_t> pick_weight(1, 255);
    while (batch.size() < ops) {
      const auto roll = rng() % 4;
      if (roll == 0 || edges_.empty()) {
        vid_t u, v;
        do {
          u = pick_vertex(rng);
          v = pick_vertex(rng);
          if (u > v) std::swap(u, v);
        } while (u == v || index_.count({u, v}) != 0);
        const weight_t w = pick_weight(rng);
        batch.insert_edge(u, v, w);
        index_[{u, v}] = edges_.size();
        edges_.emplace_back(u, v, w);
      } else {
        std::uniform_int_distribution<std::size_t> pick(0, edges_.size() - 1);
        const std::size_t i = pick(rng);
        const auto [u, v, w] = edges_[i];
        if (roll == 1) {
          batch.delete_edge(u, v);
          index_[{std::get<0>(edges_.back()), std::get<1>(edges_.back())}] = i;
          edges_[i] = edges_.back();
          edges_.pop_back();
          index_.erase({u, v});
        } else {
          const weight_t nw = pick_weight(rng);
          batch.update_weight(u, v, nw);
          std::get<2>(edges_[i]) = nw;
        }
      }
    }
    return batch;
  }

 private:
  std::vector<std::tuple<vid_t, vid_t, weight_t>> edges_;
  std::map<std::pair<vid_t, vid_t>, std::size_t> index_;
};

struct ReplayReport {
  double elapsed_s = 0;
  double queries_per_s = 0;
  double aggregate_gteps = 0;  ///< wall-clock edges*queries/elapsed
  LatencyStats latency;         ///< query job class (submit → completion)
  LatencyStats update_latency;  ///< update job class (mixed-stream mode)
  ServeStats stats;
  std::size_t updates_applied = 0;
  std::uint64_t final_version = 0;
};

ReplayReport replay(QueryEngine& engine, const std::vector<QueryEvent>& stream,
                    const SsspOptions& options, std::uint64_t edges,
                    const std::vector<EdgeBatch>& updates,
                    const MetricsRegistry* registry, std::ostream* metrics_out,
                    std::chrono::milliseconds metrics_every) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::future<QueryResult>> futures;
  std::vector<Clock::time_point> submitted;
  futures.reserve(stream.size());
  submitted.reserve(stream.size());

  const auto start = Clock::now();
  // Periodic metrics snapshots, emitted inline from the submit loop (this
  // layer spawns no threads — lint rule R1); a final snapshot after the
  // stream drains closes the series.
  auto next_snapshot = start + metrics_every;
  const auto maybe_snapshot = [&](Clock::time_point now) {
    if (metrics_out == nullptr || registry == nullptr) return;
    if (now < next_snapshot) return;
    write_json(*metrics_out, registry->snapshot());
    while (next_snapshot <= now) next_snapshot += metrics_every;
  };

  // Mixed-stream mode: update batches are spread evenly over the query
  // stream. Under MVCC they build new versions concurrently with serving;
  // under --fence they ride the query FIFO as barriers. Either way every
  // query is answered against a well-defined (version-stamped) snapshot.
  std::vector<std::future<UpdateResult>> update_futures;
  std::vector<Clock::time_point> update_submitted;
  update_futures.reserve(updates.size());
  update_submitted.reserve(updates.size());
  const std::size_t update_stride =
      updates.empty() ? 0 : std::max<std::size_t>(
                                1, stream.size() / (updates.size() + 1));

  for (std::size_t qi = 0; qi < stream.size(); ++qi) {
    const QueryEvent& ev = stream[qi];
    if (update_stride != 0 && qi % update_stride == 0) {
      const std::size_t ui = qi / update_stride;
      if (ui >= 1 && ui - 1 < updates.size() &&
          update_futures.size() == ui - 1) {
        update_submitted.push_back(Clock::now());
        update_futures.push_back(engine.apply_updates(updates[ui - 1]));
      }
    }
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(ev.arrival_s));
    if (due > Clock::now()) std::this_thread::sleep_until(due);
    const auto now = Clock::now();
    maybe_snapshot(now);
    submitted.push_back(now);
    futures.push_back(engine.submit(ev.root, options));
  }
  // Any batches the stride never reached (short streams) go in at the end.
  for (std::size_t ui = update_futures.size(); ui < updates.size(); ++ui) {
    update_submitted.push_back(Clock::now());
    update_futures.push_back(engine.apply_updates(updates[ui]));
  }

  ReplayReport report;
  std::vector<double> latencies;
  latencies.reserve(stream.size());
  Clock::time_point last_done = start;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResult r = futures[i].get();
    latencies.push_back(
        std::chrono::duration<double>(r.completed_at - submitted[i]).count());
    last_done = std::max(last_done, r.completed_at);
  }
  report.elapsed_s = std::chrono::duration<double>(last_done - start).count();
  report.queries_per_s =
      report.elapsed_s > 0
          ? static_cast<double>(stream.size()) / report.elapsed_s
          : 0;
  report.aggregate_gteps = report.elapsed_s > 0
                               ? static_cast<double>(edges) *
                                     static_cast<double>(stream.size()) /
                                     report.elapsed_s / 1e9
                               : 0;
  std::vector<double> update_latencies;
  update_latencies.reserve(update_futures.size());
  for (std::size_t ui = 0; ui < update_futures.size(); ++ui) {
    const UpdateResult ur = update_futures[ui].get();
    ++report.updates_applied;
    report.final_version = std::max(report.final_version, ur.version);
    update_latencies.push_back(std::chrono::duration<double>(
        ur.completed_at - update_submitted[ui]).count());
  }
  report.latency = percentile_stats(std::move(latencies));
  if (!update_latencies.empty()) {
    report.update_latency = percentile_stats(std::move(update_latencies));
  }
  report.stats = engine.stats();
  if (metrics_out != nullptr && registry != nullptr) {
    write_json(*metrics_out, registry->snapshot());
  }
  return report;
}

/// The registry's log-bucketed latency percentiles, for the exact-vs-
/// histogram cross-check rows (they must agree to within one histogram
/// growth factor, ~19%).
const MetricsSnapshot::HistogramValue* find_histogram(
    const MetricsSnapshot& snap, std::string_view name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void write_report_json(std::ostream& out, const CliConfig& cfg,
                       const CsrGraph& g, const ReplayReport& r,
                       const ReplayReport* baseline,
                       const MetricsSnapshot& metrics, bool slo_pass) {
  JsonWriter w(out);
  w.begin_object();
  w.field("bench", std::string_view{"serve_cli"});
  w.field("family", std::string_view{cfg.family});
  w.field("scale", std::uint64_t{cfg.scale});
  w.field("vertices", static_cast<std::uint64_t>(g.num_vertices()));
  w.field("edges", static_cast<std::uint64_t>(g.num_undirected_edges()));
  w.field("algo", std::string_view{cfg.algo});
  w.field("delta", std::uint64_t{cfg.delta});
  w.field("ranks", std::uint64_t{cfg.ranks});
  w.field("lanes", std::uint64_t{cfg.lanes});
  w.field("queries", static_cast<std::uint64_t>(cfg.workload.num_queries));
  w.field("rate_qps", cfg.workload.rate_qps);
  w.field("dist", std::string_view{cfg.workload.dist == RootDist::kZipf
                                       ? "zipf"
                                       : "uniform"});
  w.field("zipf_s", cfg.workload.zipf_s);
  w.field("root_domain",
          static_cast<std::uint64_t>(cfg.workload.num_roots_domain));
  w.field("max_batch", static_cast<std::uint64_t>(cfg.max_batch));
  w.field("batch_window_us", cfg.window_us);
  w.field("cache_capacity", static_cast<std::uint64_t>(cfg.cache));
  w.field("seed", cfg.workload.seed);

  w.field("elapsed_s", r.elapsed_s);
  w.field("queries_per_s", r.queries_per_s);
  w.field("aggregate_gteps_wall", r.aggregate_gteps);
  w.field("latency_mean_s", r.latency.mean);
  w.field("latency_p50_s", r.latency.p50);
  w.field("latency_p95_s", r.latency.p95);
  w.field("latency_p99_s", r.latency.p99);
  w.field("latency_max_s", r.latency.max);

  w.field("batches", r.stats.batches);
  w.begin_array("batch_size_histogram");
  for (const auto count : r.stats.batch_size_histogram) {
    w.value(static_cast<double>(count));
  }
  w.end_array();
  w.field("single_solves", r.stats.single_solves);
  w.field("multi_sweeps", r.stats.multi_sweeps);
  w.field("cache_hits", r.stats.cache.hits);
  w.field("cache_misses", r.stats.cache.misses);
  w.field("cache_evictions", r.stats.cache.evictions);
  w.field("cache_hit_rate", r.stats.cache.hit_rate());
  w.field("updates", static_cast<std::uint64_t>(r.updates_applied));
  w.field("update_ops", static_cast<std::uint64_t>(cfg.update_ops));
  w.field("graph_version", r.final_version);
  w.field("cache_version_misses", r.stats.cache.version_misses);
  w.field("cache_invalidations", r.stats.cache.invalidations);
  if (r.updates_applied > 0) {
    w.field("mode", std::string_view{cfg.fence ? "fenced" : "mvcc"});
    // Per-job-class latency split: queries above, updates here.
    w.field("update_latency_mean_s", r.update_latency.mean);
    w.field("update_latency_p50_s", r.update_latency.p50);
    w.field("update_latency_p95_s", r.update_latency.p95);
    w.field("update_latency_p99_s", r.update_latency.p99);
    w.field("snapshots_published", r.stats.snapshots_published);
    w.field("snapshots_reclaimed", r.stats.snapshots_reclaimed);
    w.field("snapshots_live", r.stats.snapshots_live);
    w.field("oldest_pinned_version", r.stats.oldest_pinned_version);
  }
  if (baseline != nullptr) {
    // Update-free control replay of the same stream (same seed, arrivals
    // and engine shape): the degradation ratios are what mixing updates
    // into the stream cost each query percentile.
    w.field("baseline_latency_p50_s", baseline->latency.p50);
    w.field("baseline_latency_p95_s", baseline->latency.p95);
    w.field("baseline_latency_p99_s", baseline->latency.p99);
    const auto ratio = [](double mixed, double control) {
      return control > 0 ? mixed / control : 0.0;
    };
    w.field("degradation_p50", ratio(r.latency.p50, baseline->latency.p50));
    w.field("degradation_p95", ratio(r.latency.p95, baseline->latency.p95));
    w.field("degradation_p99", ratio(r.latency.p99, baseline->latency.p99));
  }

  // Histogram-estimated percentiles next to the exact ones above: the
  // continuous cross-check of the log-bucketed estimator.
  if (const auto* h = find_histogram(metrics, "serve.latency_s")) {
    w.field("latency_p50_hist_s", h->p50);
    w.field("latency_p95_hist_s", h->p95);
    w.field("latency_p99_hist_s", h->p99);
  }

  w.field("slo_p99_ms", cfg.slo_p99_ms);
  w.field("slo_pass", slo_pass);
  w.end_object();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cfg = parse_args(argc, argv);
  const RmatFamily family =
      cfg.family == "rmat2" ? RmatFamily::kRmat2 : RmatFamily::kRmat1;
  RmatConfig gen = family_config(family, cfg.scale, cfg.workload.seed);
  gen.edge_factor = cfg.edge_factor;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(gen));
  const SsspOptions options = make_options(cfg);

  MetricsRegistry registry;
  ServeConfig serve;
  serve.machine.num_ranks = cfg.ranks;
  serve.machine.lanes_per_rank = cfg.lanes;
  serve.max_batch = cfg.max_batch;
  serve.batch_window = std::chrono::microseconds(cfg.window_us);
  serve.cache_capacity = cfg.cache;
  serve.fence_updates = cfg.fence;
  serve.metrics = &registry;

  // With --updates the engine runs over a DynamicGraph (mixed stream);
  // otherwise the static fast path is unchanged.
  std::optional<DynamicGraph> dynamic;
  std::optional<QueryEngine> engine_store;
  std::vector<EdgeBatch> updates;
  if (cfg.updates > 0) {
    dynamic.emplace(strip_self_loops(g));
    engine_store.emplace(*dynamic, serve);
    HostMirror mirror(dynamic->base());
    std::mt19937_64 rng(cfg.workload.seed * 0x9E3779B97F4A7C15ull + 1);
    for (std::size_t i = 0; i < cfg.updates; ++i) {
      updates.push_back(
          mirror.make_batch(cfg.update_ops, g.num_vertices(), rng));
    }
  } else {
    engine_store.emplace(g, serve);
  }
  QueryEngine& engine = *engine_store;

  std::ofstream metrics_out;
  if (!cfg.metrics_json_path.empty()) {
    metrics_out.open(cfg.metrics_json_path);
    if (!metrics_out) {
      std::fprintf(stderr, "cannot write %s\n",
                   cfg.metrics_json_path.c_str());
      return 2;
    }
  }

  const auto stream = make_open_loop_stream(cfg.workload, g.num_vertices());

  // Update-free control: the same stream on a fresh engine of the same
  // shape (dynamic, same config, its own metrics-free registry slot), run
  // first so the measured engine's caches/threads are untouched. The mixed
  // run's degradation ratios are relative to this.
  std::optional<ReplayReport> baseline;
  if (cfg.updates > 0 && cfg.baseline) {
    DynamicGraph control_graph(strip_self_loops(g));
    ServeConfig control_serve = serve;
    control_serve.metrics = nullptr;
    QueryEngine control(control_graph, control_serve);
    baseline = replay(control, stream, options, g.num_undirected_edges(),
                      /*updates=*/{}, nullptr, nullptr,
                      std::chrono::milliseconds(cfg.metrics_every_ms));
  }

  const ReplayReport report =
      replay(engine, stream, options, g.num_undirected_edges(), updates,
             &registry, metrics_out.is_open() ? &metrics_out : nullptr,
             std::chrono::milliseconds(cfg.metrics_every_ms));
  const MetricsSnapshot metrics = registry.snapshot();

  const bool slo_pass =
      cfg.slo_p99_ms <= 0 || report.latency.p99 * 1e3 <= cfg.slo_p99_ms;

  TextTable table("serve_cli: " + cfg.family + " scale " +
                  std::to_string(cfg.scale) + ", " + cfg.algo + ", " +
                  std::to_string(cfg.ranks) + " ranks");
  table.set_header({"metric", "value"});
  table.add_row({"queries", TextTable::num(
                                static_cast<std::uint64_t>(stream.size()))});
  table.add_row({"elapsed (s)", TextTable::num(report.elapsed_s, 4)});
  table.add_row({"queries/s", TextTable::num(report.queries_per_s, 4)});
  table.add_row(
      {"aggregate GTEPS (wall)", TextTable::num(report.aggregate_gteps, 4)});
  table.add_row({"latency p50 (ms)",
                 TextTable::num(report.latency.p50 * 1e3, 4)});
  table.add_row({"latency p95 (ms)",
                 TextTable::num(report.latency.p95 * 1e3, 4)});
  table.add_row({"latency p99 (ms)",
                 TextTable::num(report.latency.p99 * 1e3, 4)});
  if (const auto* h = find_histogram(metrics, "serve.latency_s")) {
    // Exact vs log-bucketed estimate: should agree within ~one growth
    // factor (~19%) — a drift beyond that means a percentile bug.
    table.add_row({"latency p50 (ms, histogram)",
                   TextTable::num(h->p50 * 1e3, 4)});
    table.add_row({"latency p95 (ms, histogram)",
                   TextTable::num(h->p95 * 1e3, 4)});
    table.add_row({"latency p99 (ms, histogram)",
                   TextTable::num(h->p99 * 1e3, 4)});
  }
  table.add_row({"batches", TextTable::num(report.stats.batches)});
  table.add_row({"multi sweeps", TextTable::num(report.stats.multi_sweeps)});
  table.add_row({"single solves",
                 TextTable::num(report.stats.single_solves)});
  table.add_row({"cache hit rate",
                 TextTable::num(report.stats.cache.hit_rate(), 4)});
  if (cfg.updates > 0) {
    table.add_row({"mode", cfg.fence ? "fenced" : "mvcc"});
    table.add_row({"update batches", TextTable::num(static_cast<std::uint64_t>(
                                         report.updates_applied))});
    table.add_row({"update p50 (ms)",
                   TextTable::num(report.update_latency.p50 * 1e3, 4)});
    table.add_row({"update p95 (ms)",
                   TextTable::num(report.update_latency.p95 * 1e3, 4)});
    table.add_row({"update p99 (ms)",
                   TextTable::num(report.update_latency.p99 * 1e3, 4)});
    table.add_row({"graph version", TextTable::num(report.final_version)});
    table.add_row({"cache version misses",
                   TextTable::num(report.stats.cache.version_misses)});
    table.add_row({"snapshots published",
                   TextTable::num(report.stats.snapshots_published)});
    table.add_row({"snapshots reclaimed",
                   TextTable::num(report.stats.snapshots_reclaimed)});
    if (baseline) {
      const auto ratio = [](double mixed, double control) {
        return control > 0 ? mixed / control : 0.0;
      };
      table.add_row({"baseline p99 (ms)",
                     TextTable::num(baseline->latency.p99 * 1e3, 4)});
      table.add_row(
          {"query degradation p50",
           TextTable::num(ratio(report.latency.p50, baseline->latency.p50),
                          4)});
      table.add_row(
          {"query degradation p99",
           TextTable::num(ratio(report.latency.p99, baseline->latency.p99),
                          4)});
    }
  }
  table.print(std::cout);

  std::cout << "batch size histogram:";
  for (std::size_t s = 1; s < report.stats.batch_size_histogram.size(); ++s) {
    if (report.stats.batch_size_histogram[s] > 0) {
      std::cout << "  " << s << ":" << report.stats.batch_size_histogram[s];
    }
  }
  std::cout << "\n";
  if (cfg.slo_p99_ms > 0) {
    std::cout << "SLO p99 <= " << cfg.slo_p99_ms << " ms: "
              << (slo_pass ? "PASS" : "FAIL") << "\n";
  }

  if (!cfg.json_path.empty()) {
    std::ofstream out(cfg.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 2;
    }
    write_report_json(out, cfg, g, report, baseline ? &*baseline : nullptr,
                      metrics, slo_pass);
    std::cout << "wrote " << cfg.json_path << "\n";
  }
  if (metrics_out.is_open()) {
    std::cout << "wrote " << cfg.metrics_json_path << "\n";
  }
  return slo_pass ? 0 : 1;
}
