// Solver facade over a DynamicGraph (docs/DYNAMIC.md).
//
// Owns the mutable graph, a persistent MachineSession and the per-rank edge
// views, and keeps the three consistent across mutations:
//
//   solve()   fresh SSSP of the current graph (canonical parents whenever
//             parents are tracked — the contract repair() builds on),
//   apply()   mutates the graph and splices the batch into the cached
//             views (per-vertex patches; full rebuild after a compaction),
//   repair()  incremental SSSP: plans the invalidation/seed set from a
//             prior result (obs span `repair_frontier`), runs the seeded
//             sweep only when something can improve (`repair_sweep`), and
//             re-derives canonical parents for exactly the dirty region.
//
// Bit-identity contract: repair(root, prior, batches, options) equals
// solve(root, options) on the mutated graph, bit for bit in dist and
// parent, for every option set — provided `prior` came from solve() or
// repair() of this solver at the pre-batch version and `batches` are
// exactly the apply() receipts since, in order.
//
// Thread-compatible: one operation at a time (the serving layer serializes
// through its dispatcher; tests and benches call from one thread).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/options.hpp"
#include "core/solver.hpp"
#include "runtime/machine_session.hpp"
#include "runtime/partition.hpp"
#include "update/dynamic_graph.hpp"
#include "update/edge_batch.hpp"
#include "update/repair_engine.hpp"

namespace parsssp {

struct DynamicSolverConfig {
  MachineConfig machine;
  DynamicGraph::Config graph;
};

class DynamicSolver {
 public:
  /// Takes the starting graph by value (it becomes the DynamicGraph base).
  DynamicSolver(CsrGraph base, DynamicSolverConfig config);

  /// Fresh SSSP of the current graph. Parents, when tracked, are always
  /// canonical (core/parent_canon.hpp). Throws std::out_of_range on a bad
  /// root, std::invalid_argument on malformed options.
  SsspResult solve(vid_t root, const SsspOptions& options);

  /// Applies one batch to the graph and patches the cached views. Returns
  /// the receipt to pass to repair(). Strong guarantee (DynamicGraph).
  AppliedBatch apply(const EdgeBatch& batch);

  /// Incremental re-solve; see the bit-identity contract above. Requires
  /// options.track_parents and a `prior` with full dist/parent vectors
  /// (throws std::invalid_argument otherwise).
  SsspResult repair(vid_t root, const SsspResult& prior,
                    std::span<const AppliedBatch> batches,
                    const SsspOptions& options);

  const DynamicGraph& graph() const { return graph_; }
  const BlockPartition& partition() const { return part_; }
  MachineSession& session() { return session_; }
  std::uint64_t version() const { return graph_.version(); }

  /// Planner statistics of the most recent repair().
  const RepairStats& last_repair_stats() const { return repair_stats_; }

 private:
  void ensure_views(std::uint32_t delta);
  void canonicalize_dirty(vid_t root, const std::vector<char>& dirty,
                          std::vector<dist_t>& dist,
                          std::vector<vid_t>& parent) const;

  DynamicGraph graph_;
  DynamicSolverConfig config_;
  MachineSession session_;
  BlockPartition part_;
  std::vector<LocalEdgeView> views_;
  std::uint32_t views_delta_ = 0;
  bool views_ready_ = false;
  RepairStats repair_stats_;
};

}  // namespace parsssp
