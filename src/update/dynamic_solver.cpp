#include "update/dynamic_solver.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/parent_canon.hpp"
#include "obs/trace.hpp"

namespace parsssp {

namespace {

void check_root(const char* where, vid_t root, vid_t n) {
  if (root >= n) {
    throw std::out_of_range(std::string(where) + ": root " +
                            std::to_string(root) + " out of range (graph has " +
                            std::to_string(n) + " vertices)");
  }
}

void accumulate_counters(const std::vector<RankCounters>& rank_counters,
                         SsspStats& stats) {
  for (const RankCounters& c : rank_counters) {
    stats.short_relaxations += c.short_relaxations;
    stats.long_push_relaxations += c.long_push_relaxations;
    stats.pull_requests += c.pull_requests;
    stats.pull_responses += c.pull_responses;
    stats.bf_relaxations += c.bf_relaxations;
  }
}

}  // namespace

DynamicSolver::DynamicSolver(CsrGraph base, DynamicSolverConfig config)
    : graph_(std::move(base), config.graph),
      config_(config),
      session_(config.machine),
      part_(graph_.num_vertices(), config.machine.num_ranks) {}

void DynamicSolver::ensure_views(std::uint32_t delta) {
  if (views_ready_ && views_delta_ == delta) return;
  views_.assign(session_.num_ranks(), LocalEdgeView{});
  session_.run([this, delta](RankCtx& ctx) {
    views_[ctx.rank()] = graph_.build_local_view(part_, ctx.rank(), delta);
  });
  views_delta_ = delta;
  views_ready_ = true;
}

SsspResult DynamicSolver::solve(vid_t root, const SsspOptions& options) {
  check_root("DynamicSolver::solve", root, graph_.num_vertices());
  if (options.delta == 0) {
    throw std::invalid_argument("DynamicSolver::solve: delta must be >= 1");
  }
  ensure_views(options.delta);

  const vid_t n = graph_.num_vertices();
  SsspResult result;
  result.dist.assign(n, kInfDist);
  if (options.track_parents) result.parent.assign(n, kInvalidVid);
  std::vector<RankCounters> rank_counters(session_.num_ranks());

  // A fresh solve is the degenerate seeded sweep: nothing preset, one seed
  // relaxing the root to 0. Identical distances to Solver::solve of the
  // materialized graph (distances are option- and schedule-independent).
  const std::vector<char> settled(n, 0);
  const std::vector<RelaxMsg> seeds{RelaxMsg{root, 0, root}};

  SeededSolveJob job;
  job.graph = &graph_.base();
  job.part = part_;
  job.views = &views_;
  job.dist = &result.dist;
  job.parent = options.track_parents ? &result.parent : nullptr;
  job.root = root;
  job.settled_init = &settled;
  job.seeds = &seeds;
  job.max_weight = graph_.max_weight();
  job.rank_counters = &rank_counters;
  job.stats = &result.stats;
  run_seeded_solve(session_, job, options);

  if (options.track_parents) {
    // Always canonical on the dynamic path (see header): repair()'s
    // suspect detection and dirty-region re-parenting both assume it.
    for (vid_t v = 0; v < n; ++v) {
      result.parent[v] = canonical_parent_of(
          v, root, result.dist,
          [&](auto&& fn) { graph_.for_each_arc(v, fn); });
    }
  }
  accumulate_counters(rank_counters, result.stats);
  return result;
}

AppliedBatch DynamicSolver::apply(const EdgeBatch& batch) {
  AppliedBatch applied = graph_.apply(batch);
  if (!views_ready_) return applied;
  if (applied.compacted) {
    // The base was rebuilt; per-vertex patches can no longer describe the
    // delta. Rebuild lazily at the next solve/repair.
    views_ready_ = false;
    return applied;
  }
  for (const vid_t v : applied.touched) {
    const rank_t r = part_.owner(v);
    views_[r].patch_vertex(v - part_.begin(r), graph_.arcs_of(v));
  }
  return applied;
}

SsspResult DynamicSolver::repair(vid_t root, const SsspResult& prior,
                                 std::span<const AppliedBatch> batches,
                                 const SsspOptions& options) {
  const vid_t n = graph_.num_vertices();
  check_root("DynamicSolver::repair", root, n);
  if (options.delta == 0) {
    throw std::invalid_argument("DynamicSolver::repair: delta must be >= 1");
  }
  if (!options.track_parents) {
    throw std::invalid_argument(
        "DynamicSolver::repair: requires options.track_parents (the planner "
        "reads the shortest-path tree)");
  }
  if (prior.dist.size() != n || prior.parent.size() != n) {
    throw std::invalid_argument(
        "DynamicSolver::repair: prior result does not match this graph "
        "(need full dist and parent vectors)");
  }
  ensure_views(options.delta);

  TraceLane* lane = options.trace != nullptr
                        ? &options.trace->thread_lane("repair-planner")
                        : nullptr;

  SsspResult result;
  result.dist = prior.dist;
  result.parent = prior.parent;

  RepairPlan plan;
  {
    ScopedSpan span(lane, SpanCat::kRepairFrontier, batches.size());
    plan = plan_repair(graph_, root, result.dist, result.parent, batches,
                       &repair_stats_);
  }

  std::vector<char> changed(n, 0);
  if (plan.needs_sweep) {
    ScopedSpan span(lane, SpanCat::kRepairSweep, plan.seeds.size());
    std::vector<RankCounters> rank_counters(session_.num_ranks());
    SeededSolveJob job;
    job.graph = &graph_.base();
    job.part = part_;
    job.views = &views_;
    job.dist = &result.dist;
    job.parent = &result.parent;
    job.root = root;
    job.settled_init = &plan.settled;
    job.seeds = &plan.seeds;
    job.changed = &changed;
    job.max_weight = graph_.max_weight();
    job.rank_counters = &rank_counters;
    job.stats = &result.stats;
    run_seeded_solve(session_, job, options);
    accumulate_counters(rank_counters, result.stats);
  }

  // Canonical re-parenting of exactly the dirty region: vertices whose
  // incident edges changed (touched), whose distances were wiped
  // (invalidated) or rewritten (changed), and the neighbors of the latter
  // two (their tight-predecessor sets saw a distance change). Everything
  // else keeps its prior canonical parent: unchanged own distance,
  // unchanged neighbor distances, unchanged incident edges.
  std::vector<char> dirty(n, 0);
  for (const AppliedBatch& batch : batches) {
    for (const vid_t v : batch.touched) dirty[v] = 1;
  }
  const auto mark_with_neighbors = [&](vid_t v) {
    dirty[v] = 1;
    graph_.for_each_arc(v, [&](const Arc& a) { dirty[a.to] = 1; });
  };
  for (const vid_t v : plan.invalidated) mark_with_neighbors(v);
  if (plan.needs_sweep) {
    for (vid_t v = 0; v < n; ++v) {
      if (changed[v]) mark_with_neighbors(v);
    }
  }
  canonicalize_dirty(root, dirty, result.dist, result.parent);
  return result;
}

void DynamicSolver::canonicalize_dirty(vid_t root,
                                       const std::vector<char>& dirty,
                                       std::vector<dist_t>& dist,
                                       std::vector<vid_t>& parent) const {
  for (vid_t v = 0; v < graph_.num_vertices(); ++v) {
    if (!dirty[v]) continue;
    parent[v] = canonical_parent_of(
        v, root, dist, [&](auto&& fn) { graph_.for_each_arc(v, fn); });
  }
}

}  // namespace parsssp
