// Mutable front-end over the immutable CSR graph (docs/DYNAMIC.md).
//
// A DynamicGraph is a clean base CsrGraph plus a sparse per-vertex delta:
// overlay arcs added since the base was built and tombstones killing base
// arcs. Mutations arrive as atomic EdgeBatches; each successful apply()
// bumps a monotone version (the cache-invalidation token of the serving
// layer). When the delta grows past a configurable fraction of the base,
// apply() compacts — rebuilds a clean CSR from the effective edge set and
// drops the delta — so read amortized cost stays CSR-like under sustained
// update streams.
//
// Invariants:
//   * at most one effective edge per vertex pair (apply() enforces insert
//     on absent / delete and reweight on present),
//   * no self loops (rejected at construction and in every batch),
//   * the logical edge set equals materialize_edges() at all times, and
//     compact() never changes it (nor the version).
//
// MVCC snapshots (docs/SNAPSHOTS.md): unless Config::snapshots is turned
// off, the graph owns a SnapshotManager and publishes an immutable
// GraphSnapshot after construction and every apply()/compact(). snapshot()
// pins the latest version; pinned readers keep their version — including
// its base CSR — alive across any number of later mutations and
// compactions, which is what lets a serving layer run queries concurrently
// with updates.
//
// Thread safety: apply()/compact() require external exclusion against each
// other and against the direct read accessors below (one writer; the
// serving layer funnels mutations through a single builder thread).
// Concurrent readers use snapshot(): pinning is lock-free and the returned
// view is immutable. With snapshots disabled the PR-5 contract stands —
// external exclusion against everything.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/types.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "runtime/partition.hpp"
#include "snapshot/graph_snapshot.hpp"
#include "snapshot/snapshot_manager.hpp"
#include "update/edge_batch.hpp"

namespace parsssp {

struct DynamicGraphConfig {
  /// apply() auto-compacts when delta entries (overlay arcs + tombstones)
  /// exceed this fraction of the base's stored arcs...
  double compact_ratio = 0.25;
  /// ...but never before this many entries accumulate (small graphs would
  /// otherwise compact on every batch).
  std::size_t compact_min = 4096;
  /// MVCC snapshots (docs/SNAPSHOTS.md): publish an immutable
  /// GraphSnapshot per mutation so readers can pin versions concurrently
  /// with updates. On by default; turning it off saves the per-apply
  /// delta-freeze copy but restores the PR-5 exclusive-access contract
  /// (and makes explicit compact() illegal — see below).
  bool snapshots = true;
};

/// Copy of `g` with self loops dropped. Generated graphs (RMAT, social)
/// may carry them; DynamicGraph rejects them, and they never affect SSSP
/// (positive weights), so sanitize at the boundary.
CsrGraph strip_self_loops(const CsrGraph& g);

class DynamicGraph {
 public:
  using Config = DynamicGraphConfig;

  struct Counters {
    std::uint64_t applied_batches = 0;
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;
    std::uint64_t reweights = 0;
    std::uint64_t compactions = 0;
  };

  /// Takes the starting graph by value (the base evolves via compact()).
  /// Throws std::invalid_argument if `base` contains a self loop.
  explicit DynamicGraph(CsrGraph base, Config config = {});

  vid_t num_vertices() const { return base_->num_vertices(); }
  std::size_t num_undirected_edges() const { return num_undirected_; }

  /// Monotone graph version: 0 at construction, +1 per successful apply().
  /// compact() does not change it (the logical graph is unchanged).
  std::uint64_t version() const { return version_; }

  /// Monotone upper bound on the effective max edge weight (exact right
  /// after construction or compact(); deletions never lower it in between).
  weight_t max_weight() const { return max_weight_ub_; }

  /// Applies the batch atomically: validates every op against the graph
  /// *as mutated by the batch's earlier ops*, then applies. Throws
  /// std::invalid_argument (naming the offending op) without modifying
  /// anything when any op is invalid: out-of-range or equal endpoints,
  /// zero weight on insert/reweight, insert of a present edge, delete or
  /// reweight of an absent one.
  AppliedBatch apply(const EdgeBatch& batch);

  /// Rebuilds a clean base CSR from the effective edge set and clears the
  /// delta, publishing the rebuilt base through the SnapshotManager
  /// (publish-then-retire: readers pinned to the old base keep it alive).
  /// Logical no-op; version unchanged. Throws std::logic_error when the
  /// graph was constructed with Config::snapshots off — without the
  /// manager there is no way to retire the old base safely under
  /// concurrent readers (apply()'s auto-compaction remains available
  /// there: it runs under apply()'s exclusive-access contract).
  void compact();

  /// Current effective weight of edge {u, v}, or nullopt when absent.
  std::optional<weight_t> find_edge(vid_t u, vid_t v) const;
  bool has_edge(vid_t u, vid_t v) const { return find_edge(u, v).has_value(); }

  std::size_t degree(vid_t v) const;

  /// Invokes fn(Arc) for every effective arc out of `v`: base arcs in CSR
  /// order minus tombstoned neighbors, then overlay arcs in insertion
  /// order. Deterministic for a fixed op history.
  template <typename Fn>
  void for_each_arc(vid_t v, Fn&& fn) const {
    const VertexDelta* d = delta_of(v);
    if (d == nullptr) {
      for (const Arc& a : base_->neighbors(v)) fn(a);
      return;
    }
    for (const Arc& a : base_->neighbors(v)) {
      if (!std::binary_search(d->tombstones.begin(), d->tombstones.end(),
                              a.to)) {
        fn(a);
      }
    }
    for (const Arc& a : d->overlay) fn(a);
  }

  /// The effective adjacency of `v`, materialized (for_each_arc order).
  std::vector<Arc> arcs_of(vid_t v) const;

  /// The effective undirected edge set, canonicalized (each edge once with
  /// u < v, sorted). materialize() builds the equivalent CSR.
  EdgeList materialize_edges() const;
  CsrGraph materialize() const { return CsrGraph::from_edges(materialize_edges()); }

  /// Builds rank `rank`'s engine view of the *effective* graph (the
  /// dynamic-path equivalent of LocalEdgeView::build).
  LocalEdgeView build_local_view(const BlockPartition& part, rank_t rank,
                                 std::uint32_t delta) const;

  /// Current base (changes only at compact()). Exposed for sizing and for
  /// the estimator fallback; its arcs may lag the logical graph.
  const CsrGraph& base() const { return *base_; }

  /// Overlay arcs + tombstones currently held (0 right after compact()).
  std::size_t delta_entries() const { return delta_entries_; }

  const Counters& counters() const { return counters_; }

  // --- MVCC snapshots (docs/SNAPSHOTS.md) -------------------------------

  bool snapshots_enabled() const { return snapshots_ != nullptr; }

  /// Pins the latest published snapshot (lock-free; safe concurrently
  /// with apply()). Throws std::logic_error when snapshots are disabled.
  SnapshotRef snapshot() const;

  /// The owned manager, or null when snapshots are disabled. The serving
  /// layer uses it for pinning, patch-log queries and reclamation stats.
  SnapshotManager* snapshot_manager() const { return snapshots_.get(); }

 private:
  struct VertexDelta {
    std::vector<Arc> overlay;       ///< arcs added on top of the base
    std::vector<vid_t> tombstones;  ///< sorted neighbor ids with dead base arcs
  };

  const VertexDelta* delta_of(vid_t v) const {
    if (delta_.empty()) return nullptr;
    const auto it = delta_.find(v);
    return it == delta_.end() ? nullptr : &it->second;
  }

  bool base_has_arc(vid_t u, vid_t v) const;
  /// Removes the effective edge {u, v} (must exist). One endpoint's half.
  /// Returns the number of live arcs killed on this side: >1 when the base
  /// CSR carries parallel arcs for the pair, all suppressed by one
  /// tombstone, so the undirected-edge counter can account exactly.
  std::size_t kill_half(vid_t from, vid_t to);
  /// Adds overlay arc from->to (edge must be effectively absent).
  void add_half(vid_t from, vid_t to, weight_t w);
  /// compact() without the snapshots-enabled guard (auto-compact path).
  void do_compact();
  /// Flat immutable copy of the current delta map (publish payload).
  FrozenDelta freeze_delta() const;
  /// Assembles the publish payload for the current state.
  GraphSnapshot::Build make_build(std::vector<vid_t> touched,
                                  bool new_base) const;

  std::shared_ptr<const CsrGraph> base_;
  Config config_;
  /// Never iterated in map order (determinism): lookups only.
  std::unordered_map<vid_t, VertexDelta> delta_;
  std::size_t delta_entries_ = 0;
  std::size_t num_undirected_ = 0;
  std::uint64_t version_ = 0;
  weight_t max_weight_ub_ = 0;
  Counters counters_;
  /// Null when Config::snapshots is off.
  std::unique_ptr<SnapshotManager> snapshots_;
};

}  // namespace parsssp
