#include "update/repair_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace parsssp {

RepairPlan plan_repair(const DynamicGraph& g, vid_t root,
                       std::vector<dist_t>& dist, std::vector<vid_t>& parent,
                       std::span<const AppliedBatch> batches,
                       RepairStats* stats) {
  const vid_t n = g.num_vertices();
  if (root >= n || parent.size() != n || dist.size() != n ||
      parent[root] != root || dist[root] != 0) {
    throw std::invalid_argument(
        "plan_repair: prior result is not a rooted SSSP of this graph");
  }
  RepairPlan plan;
  RepairStats local;

  // 1. Suspects: endpoints whose prior tree edge a delete/increase broke.
  // The root is never a suspect (parent[root] == root), so dist[root] == 0
  // survives every plan.
  std::vector<vid_t> suspects;
  std::vector<std::pair<vid_t, vid_t>> pairs;  // mutated pairs, normalized
  for (const AppliedBatch& batch : batches) {
    for (const AppliedOp& rec : batch.ops) {
      ++local.ops;
      const EdgeOp& op = rec.op;
      pairs.push_back(std::minmax(op.u, op.v));
      const bool breaks =
          op.kind == EdgeOp::Kind::kDelete ||
          (op.kind == EdgeOp::Kind::kUpdateWeight && op.w > rec.w_old);
      if (!breaks) continue;
      if (parent[op.v] == op.u) suspects.push_back(op.v);
      if (parent[op.u] == op.v) suspects.push_back(op.u);
    }
  }
  std::sort(suspects.begin(), suspects.end());
  suspects.erase(std::unique(suspects.begin(), suspects.end()),
                 suspects.end());
  local.suspects = suspects.size();

  // 2. Downward closure of the suspects over the tree (CSR-style children
  // index, built only when needed).
  std::vector<char> invalid(n, 0);
  if (!suspects.empty()) {
    std::vector<std::uint64_t> child_off(n + 1, 0);
    for (vid_t v = 0; v < n; ++v) {
      const vid_t p = parent[v];
      if (p != kInvalidVid && p != v) ++child_off[p + 1];
    }
    for (vid_t v = 0; v < n; ++v) child_off[v + 1] += child_off[v];
    std::vector<vid_t> children(child_off[n]);
    {
      std::vector<std::uint64_t> head(child_off.begin(), child_off.end() - 1);
      for (vid_t v = 0; v < n; ++v) {
        const vid_t p = parent[v];
        if (p != kInvalidVid && p != v) children[head[p]++] = v;
      }
    }
    std::vector<vid_t> stack;
    for (const vid_t s : suspects) {
      if (invalid[s]) continue;
      invalid[s] = 1;
      stack.push_back(s);
      while (!stack.empty()) {
        const vid_t v = stack.back();
        stack.pop_back();
        plan.invalidated.push_back(v);
        for (std::uint64_t i = child_off[v]; i < child_off[v + 1]; ++i) {
          const vid_t c = children[i];
          if (!invalid[c]) {
            invalid[c] = 1;
            stack.push_back(c);
          }
        }
      }
    }
    std::sort(plan.invalidated.begin(), plan.invalidated.end());
  }
  local.invalidated = plan.invalidated.size();

  // 3. Invalidate in place; everything else is preset-settled (its prior
  // entry is a valid upper bound on the new distance — see header).
  plan.settled.assign(n, 1);
  for (const vid_t v : plan.invalidated) {
    plan.settled[v] = 0;
    dist[v] = kInfDist;
    parent[v] = kInvalidVid;
  }

  // 4a. Boundary seeds: clean finite neighbors relaxing into the
  // invalidated region (the only way it can be reattached).
  for (const vid_t t : plan.invalidated) {
    g.for_each_arc(t, [&](const Arc& a) {
      const vid_t s = a.to;
      if (invalid[s] || dist[s] == kInfDist) return;
      plan.seeds.push_back(RelaxMsg{t, dist[s] + a.w, s});
      ++local.boundary_seeds;
    });
  }

  // 4b. Mutated-pair seeds: every touched pair still present in the final
  // graph is relaxed both ways (inserts and net decreases propagate from
  // here; stale intra-stream weights are irrelevant because only the final
  // effective weight is consulted).
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [u, v] : pairs) {
    const auto w = g.find_edge(u, v);
    if (!w) continue;
    local.edge_seeds += 2;
    if (dist[u] != kInfDist) plan.seeds.push_back(RelaxMsg{v, dist[u] + *w, u});
    if (dist[v] != kInfDist) plan.seeds.push_back(RelaxMsg{u, dist[v] + *w, v});
  }

  // Host-side filter: only strictly improving seeds reach the sweep. With
  // none, the post-invalidation state is already the exact answer.
  std::erase_if(plan.seeds,
                [&](const RelaxMsg& m) { return m.nd >= dist[m.v]; });
  local.seeds = plan.seeds.size();
  plan.needs_sweep = !plan.seeds.empty();

  if (stats != nullptr) {
    local.swept = plan.needs_sweep;
    *stats = local;
  }
  return plan;
}

}  // namespace parsssp
