// Batched edge mutations against a dynamic graph (docs/DYNAMIC.md).
//
// An EdgeBatch is an ordered list of undirected edge operations that is
// applied atomically by DynamicGraph::apply: either every op validates and
// the whole batch lands under one new graph version, or the batch throws
// and the graph is untouched. The applied form (AppliedBatch) carries what
// the repair planner needs and the batch itself cannot know — the graph
// version the batch produced and each op's prior weight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

/// One undirected edge mutation. Endpoints are unordered (u-v == v-u).
struct EdgeOp {
  enum class Kind : std::uint8_t {
    kInsert,        ///< add edge {u, v} with weight w (edge must be absent)
    kDelete,        ///< remove edge {u, v} (edge must be present; w unused)
    kUpdateWeight,  ///< set weight of existing edge {u, v} to w
  };
  Kind kind = Kind::kInsert;
  vid_t u = 0;
  vid_t v = 0;
  weight_t w = 0;
};

/// Builder for one atomic mutation batch. Ops apply in insertion order, so
/// a batch may insert and later delete the same edge.
class EdgeBatch {
 public:
  EdgeBatch& insert_edge(vid_t u, vid_t v, weight_t w) {
    ops_.push_back({EdgeOp::Kind::kInsert, u, v, w});
    return *this;
  }
  EdgeBatch& delete_edge(vid_t u, vid_t v) {
    ops_.push_back({EdgeOp::Kind::kDelete, u, v, 0});
    return *this;
  }
  EdgeBatch& update_weight(vid_t u, vid_t v, weight_t w) {
    ops_.push_back({EdgeOp::Kind::kUpdateWeight, u, v, w});
    return *this;
  }

  const std::vector<EdgeOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

 private:
  std::vector<EdgeOp> ops_;
};

/// One op as applied: the original op plus the effective weight the edge had
/// immediately before this op (0 for inserts — the edge did not exist).
struct AppliedOp {
  EdgeOp op;
  weight_t w_old = 0;
};

/// Receipt of one successful DynamicGraph::apply.
struct AppliedBatch {
  /// Graph version the batch produced (DynamicGraph::version() after apply).
  std::uint64_t version = 0;
  std::vector<AppliedOp> ops;
  /// Endpoints whose adjacency the batch changed, sorted and deduplicated.
  /// This is the view-patch set and part of the repair dirty set.
  std::vector<vid_t> touched;
  /// True when this apply() triggered an auto-compact: per-vertex view
  /// patching is insufficient, views must be rebuilt.
  bool compacted = false;
};

}  // namespace parsssp
