// Incremental SSSP repair planning (docs/DYNAMIC.md).
//
// Given a prior exact solve (dist/parent with canonical parents) and the
// batches applied since, plan_repair computes the starting state of a
// seeded Delta-stepping sweep whose result is bit-identical to a fresh
// solve of the mutated graph:
//
//   1. Suspects: a deleted or weight-increased edge {u, v} can only break
//      shortest paths that use it, and a tree path uses it iff parent[v]==u
//      or parent[u]==v.
//   2. Downward closure: every tree descendant of a suspect routes through
//      it, so the whole subtree's distances are invalidated (dist := inf,
//      parent := invalid, unsettled). Everything else keeps its prior
//      entry as a *preset-settled upper bound*: its tree path contains no
//      deleted/increased edge, so its old distance is still achievable.
//   3. Seeds: the relaxations that (re)connect the invalidated region and
//      propagate improvements — clean finite vertices relaxing into
//      invalidated neighbors, plus both directions of every mutated pair
//      still present in the final graph (weight decreases and fresh
//      inserts). Non-improving seeds are filtered out host-side.
//
// The seeded engine (core/seeded_solve.hpp) unsettles any preset vertex a
// strictly better distance reaches, so decreases cascade exactly like a
// fresh solve's relaxations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/seeded_solve.hpp"  // IWYU pragma: export (RelaxMsg seeds API)
#include "core/types.hpp"
#include "update/dynamic_graph.hpp"
#include "update/edge_batch.hpp"

namespace parsssp {

struct RepairStats {
  std::uint64_t ops = 0;             ///< mutation ops across the batches
  std::uint64_t suspects = 0;        ///< tree edges broken by the batches
  std::uint64_t invalidated = 0;     ///< vertices in the downward closure
  std::uint64_t boundary_seeds = 0;  ///< clean->invalidated relaxations
  std::uint64_t edge_seeds = 0;      ///< mutated-pair relaxations (pre-filter)
  std::uint64_t seeds = 0;           ///< improving seeds handed to the sweep
  bool swept = false;                ///< false = repair resolved at planning
};

/// Starting state of the repair sweep over the current graph.
struct RepairPlan {
  /// Per-vertex preset-settled flags (0 exactly on invalidated vertices).
  std::vector<char> settled;
  /// Improving seed relaxations (nd strictly below the post-invalidation
  /// tentative distance of the target).
  std::vector<RelaxMsg> seeds;
  /// The invalidated vertices (part of the canonical re-parent dirty set).
  std::vector<vid_t> invalidated;
  /// False when no seed improves anything: dist/parent are already final
  /// (pure deletions that disconnected nothing reconnectable, no-op
  /// batches) and the sweep can be skipped entirely.
  bool needs_sweep = false;
};

/// Plans the repair and *applies the invalidation* to dist/parent in place
/// (invalidated entries become kInfDist / kInvalidVid — their final values
/// unless the sweep improves them). `dist`/`parent` must be the exact
/// result of a solve of `g` as it was before `batches` were applied, with
/// canonical parents; `batches` must be exactly the applies since, in
/// order.
RepairPlan plan_repair(const DynamicGraph& g, vid_t root,
                       std::vector<dist_t>& dist, std::vector<vid_t>& parent,
                       std::span<const AppliedBatch> batches,
                       RepairStats* stats = nullptr);

}  // namespace parsssp
