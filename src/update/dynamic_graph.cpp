#include "update/dynamic_graph.hpp"

#include <map>
#include <stdexcept>
#include <string>

namespace parsssp {

namespace {

const char* kind_name(EdgeOp::Kind k) {
  switch (k) {
    case EdgeOp::Kind::kInsert: return "insert";
    case EdgeOp::Kind::kDelete: return "delete";
    case EdgeOp::Kind::kUpdateWeight: return "reweight";
  }
  return "?";
}

[[noreturn]] void bad_op(std::size_t index, const EdgeOp& op,
                         const std::string& why) {
  throw std::invalid_argument(
      "DynamicGraph::apply: op " + std::to_string(index) + " (" +
      kind_name(op.kind) + " " + std::to_string(op.u) + "-" +
      std::to_string(op.v) + "): " + why);
}

}  // namespace

CsrGraph strip_self_loops(const CsrGraph& g) {
  EdgeList edges(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const Arc& a : g.neighbors(v)) {
      if (v < a.to) edges.add_edge(v, a.to, a.w);
    }
  }
  edges.canonicalize();
  return CsrGraph::from_edges(edges);
}

DynamicGraph::DynamicGraph(CsrGraph base, Config config)
    : base_(std::make_shared<const CsrGraph>(std::move(base))),
      config_(config),
      num_undirected_(base_->num_undirected_edges()),
      max_weight_ub_(base_->max_weight()) {
  for (vid_t v = 0; v < base_->num_vertices(); ++v) {
    for (const Arc& a : base_->neighbors(v)) {
      if (a.to == v) {
        throw std::invalid_argument(
            "DynamicGraph: base graph has a self loop at vertex " +
            std::to_string(v));
      }
    }
  }
  if (config_.snapshots) {
    snapshots_ = std::make_unique<SnapshotManager>(
        make_build(/*touched=*/{}, /*new_base=*/true));
  }
}

bool DynamicGraph::base_has_arc(vid_t u, vid_t v) const {
  for (const Arc& a : base_->neighbors(u)) {
    if (a.to == v) return true;
  }
  return false;
}

std::optional<weight_t> DynamicGraph::find_edge(vid_t u, vid_t v) const {
  if (u >= num_vertices() || v >= num_vertices()) return std::nullopt;
  const VertexDelta* d = delta_of(u);
  if (d != nullptr) {
    for (const Arc& a : d->overlay) {
      if (a.to == v) return a.w;
    }
    if (std::binary_search(d->tombstones.begin(), d->tombstones.end(), v)) {
      return std::nullopt;
    }
  }
  // Base arcs: the pair invariant makes any parallel base arcs all-dead or
  // all-alive, and an alive base pair has no overlay arc; min() over the
  // (normally single) arc keeps the pre-invariant base case well defined.
  std::optional<weight_t> best;
  for (const Arc& a : base_->neighbors(u)) {
    if (a.to == v && (!best || a.w < *best)) best = a.w;
  }
  return best;
}

std::size_t DynamicGraph::degree(vid_t v) const {
  const VertexDelta* d = delta_of(v);
  if (d == nullptr) return base_->degree(v);
  std::size_t n = d->overlay.size();
  for (const Arc& a : base_->neighbors(v)) {
    if (!std::binary_search(d->tombstones.begin(), d->tombstones.end(),
                            a.to)) {
      ++n;
    }
  }
  return n;
}

std::size_t DynamicGraph::kill_half(vid_t from, vid_t to) {
  VertexDelta& d = delta_[from];
  const auto overlay_end =
      std::remove_if(d.overlay.begin(), d.overlay.end(),
                     [to](const Arc& a) { return a.to == to; });
  std::size_t killed =
      static_cast<std::size_t>(d.overlay.end() - overlay_end);
  delta_entries_ -= killed;
  d.overlay.erase(overlay_end, d.overlay.end());
  if (base_has_arc(from, to)) {
    const auto it =
        std::lower_bound(d.tombstones.begin(), d.tombstones.end(), to);
    if (it == d.tombstones.end() || *it != to) {
      d.tombstones.insert(it, to);
      ++delta_entries_;
      // A fresh tombstone suppresses every parallel base arc at once.
      for (const Arc& a : base_->neighbors(from)) {
        if (a.to == to) ++killed;
      }
    }
  }
  if (d.overlay.empty() && d.tombstones.empty()) delta_.erase(from);
  return killed;
}

void DynamicGraph::add_half(vid_t from, vid_t to, weight_t w) {
  delta_[from].overlay.push_back(Arc{to, w});
  ++delta_entries_;
}

AppliedBatch DynamicGraph::apply(const EdgeBatch& batch) {
  // Phase 1 (validate, no mutation): simulate the batch against a per-pair
  // state map seeded lazily from the graph, so intra-batch sequences
  // (insert then delete the same edge) validate exactly as they will apply
  // and an invalid op leaves the graph untouched (strong guarantee).
  struct PairState {
    bool present = false;
    weight_t w = 0;
  };
  std::map<std::pair<vid_t, vid_t>, PairState> sim;
  AppliedBatch applied;
  applied.ops.reserve(batch.size());
  for (std::size_t i = 0; i < batch.ops().size(); ++i) {
    const EdgeOp& op = batch.ops()[i];
    if (op.u >= num_vertices() || op.v >= num_vertices()) {
      bad_op(i, op,
             "endpoint out of range (graph has " +
                 std::to_string(num_vertices()) + " vertices)");
    }
    if (op.u == op.v) bad_op(i, op, "self loops are not allowed");
    if (op.kind != EdgeOp::Kind::kDelete && op.w == 0) {
      bad_op(i, op, "weight must be >= 1");
    }
    const auto key = std::minmax(op.u, op.v);
    auto [it, fresh] = sim.try_emplace(key);
    if (fresh) {
      if (const auto w = find_edge(op.u, op.v)) {
        it->second = {true, *w};
      }
    }
    PairState& st = it->second;
    AppliedOp rec{op, st.present ? st.w : weight_t{0}};
    switch (op.kind) {
      case EdgeOp::Kind::kInsert:
        if (st.present) bad_op(i, op, "edge already present");
        st = {true, op.w};
        break;
      case EdgeOp::Kind::kDelete:
        if (!st.present) bad_op(i, op, "edge not present");
        st = {false, 0};
        break;
      case EdgeOp::Kind::kUpdateWeight:
        if (!st.present) bad_op(i, op, "edge not present");
        st.w = op.w;
        break;
    }
    applied.ops.push_back(rec);
  }

  // Phase 2 (apply): cannot fail.
  for (const AppliedOp& rec : applied.ops) {
    const EdgeOp& op = rec.op;
    switch (op.kind) {
      case EdgeOp::Kind::kInsert:
        add_half(op.u, op.v, op.w);
        add_half(op.v, op.u, op.w);
        ++num_undirected_;
        max_weight_ub_ = std::max(max_weight_ub_, op.w);
        ++counters_.inserts;
        break;
      case EdgeOp::Kind::kDelete: {
        // kill_half reports how many live arcs it removed; with parallel
        // base arcs for the pair, one tombstone kills all of them, so the
        // undirected count drops by the pair's multiplicity (sides match
        // by arc symmetry).
        const std::size_t killed = kill_half(op.u, op.v);
        kill_half(op.v, op.u);
        num_undirected_ -= killed;
        ++counters_.deletes;
        break;
      }
      case EdgeOp::Kind::kUpdateWeight: {
        // Reweight collapses a parallel pair to one arc: -killed, +1.
        const std::size_t killed = kill_half(op.u, op.v);
        kill_half(op.v, op.u);
        add_half(op.u, op.v, op.w);
        add_half(op.v, op.u, op.w);
        num_undirected_ -= killed - 1;
        max_weight_ub_ = std::max(max_weight_ub_, op.w);
        ++counters_.reweights;
        break;
      }
    }
    applied.touched.push_back(op.u);
    applied.touched.push_back(op.v);
  }
  std::sort(applied.touched.begin(), applied.touched.end());
  applied.touched.erase(
      std::unique(applied.touched.begin(), applied.touched.end()),
      applied.touched.end());
  ++counters_.applied_batches;
  applied.version = ++version_;

  const auto threshold = static_cast<std::size_t>(
      config_.compact_ratio * static_cast<double>(base_->num_arcs()));
  const bool will_compact =
      delta_entries_ > std::max(threshold, config_.compact_min);
  if (will_compact) {
    // do_compact publishes the rebuilt base under this same version; a
    // separate pre-compaction delta publish would be dead on arrival.
    do_compact();
    applied.compacted = true;
  } else if (snapshots_ != nullptr) {
    snapshots_->publish(make_build(applied.touched, /*new_base=*/false));
  }
  return applied;
}

void DynamicGraph::compact() {
  if (snapshots_ == nullptr) {
    throw std::logic_error(
        "DynamicGraph::compact: snapshots are disabled "
        "(DynamicGraphConfig::snapshots = false), so the old base cannot "
        "be retired safely under concurrent readers — enable snapshots, "
        "or rebuild explicitly via materialize() under your own "
        "exclusion");
  }
  do_compact();
}

void DynamicGraph::do_compact() {
  base_ = std::make_shared<const CsrGraph>(materialize());
  delta_.clear();
  delta_entries_ = 0;
  max_weight_ub_ = base_->max_weight();
  ++counters_.compactions;
  if (snapshots_ != nullptr) {
    // Publish-then-retire: the rebuilt base goes out under the unchanged
    // logical version; readers pinned to pre-compaction snapshots keep the
    // old base alive through their shared_ptr until the last pin drops.
    snapshots_->publish(make_build(/*touched=*/{}, /*new_base=*/true));
  }
}

SnapshotRef DynamicGraph::snapshot() const {
  if (snapshots_ == nullptr) {
    throw std::logic_error(
        "DynamicGraph::snapshot: snapshots are disabled "
        "(DynamicGraphConfig::snapshots = false)");
  }
  return snapshots_->current();
}

FrozenDelta DynamicGraph::freeze_delta() const {
  FrozenDelta frozen;
  if (delta_.empty()) return frozen;
  std::vector<vid_t> verts;
  verts.reserve(delta_.size());
  for (const auto& [v, d] : delta_) verts.push_back(v);
  std::sort(verts.begin(), verts.end());
  for (const vid_t v : verts) {
    const VertexDelta& d = delta_.at(v);
    frozen.append(v, d.overlay, d.tombstones);
  }
  return frozen;
}

GraphSnapshot::Build DynamicGraph::make_build(std::vector<vid_t> touched,
                                              bool new_base) const {
  GraphSnapshot::Build build;
  build.base = base_;
  build.delta = freeze_delta();
  build.version = version_;
  build.max_weight = max_weight_ub_;
  build.num_undirected = num_undirected_;
  build.touched = std::move(touched);
  build.new_base = new_base;
  return build;
}

std::vector<Arc> DynamicGraph::arcs_of(vid_t v) const {
  std::vector<Arc> arcs;
  arcs.reserve(degree(v));
  for_each_arc(v, [&](const Arc& a) { arcs.push_back(a); });
  return arcs;
}

EdgeList DynamicGraph::materialize_edges() const {
  EdgeList list(num_vertices());
  list.reserve(num_undirected_);
  for (vid_t v = 0; v < num_vertices(); ++v) {
    for_each_arc(v, [&](const Arc& a) {
      if (v < a.to) list.add_edge(v, a.to, a.w);
    });
  }
  list.canonicalize();
  return list;
}

LocalEdgeView DynamicGraph::build_local_view(const BlockPartition& part,
                                             rank_t rank,
                                             std::uint32_t delta) const {
  const vid_t begin = part.begin(rank);
  const vid_t end = part.end(rank);
  std::vector<std::pair<vid_t, Arc>> pairs;
  for (vid_t v = begin; v < end; ++v) {
    for_each_arc(v, [&](const Arc& a) { pairs.emplace_back(v - begin, a); });
  }
  return LocalEdgeView::from_arcs(end - begin, std::move(pairs), delta);
}

}  // namespace parsssp
