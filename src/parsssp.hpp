// Umbrella header: the library's full public API.
//
//   #include "parsssp.hpp"
//
// For faster builds, include the specific headers instead; this file
// exists for quickstart code, examples and downstream prototypes.
#pragma once

// Graph substrate.
#include "graph/builders.hpp"       // IWYU pragma: export
#include "graph/csr.hpp"            // IWYU pragma: export
#include "graph/degree_stats.hpp"   // IWYU pragma: export
#include "graph/edge_list.hpp"      // IWYU pragma: export
#include "graph/graph_algos.hpp"    // IWYU pragma: export
#include "graph/rmat.hpp"           // IWYU pragma: export
#include "graph/snap_io.hpp"        // IWYU pragma: export
#include "graph/social_gen.hpp"     // IWYU pragma: export
#include "graph/vertex_split.hpp"   // IWYU pragma: export
#include "graph/weights.hpp"        // IWYU pragma: export

// Simulated machine.
#include "runtime/collectives.hpp"    // IWYU pragma: export
#include "runtime/machine.hpp"        // IWYU pragma: export
#include "runtime/partition.hpp"      // IWYU pragma: export
#include "runtime/topology.hpp"       // IWYU pragma: export
#include "runtime/traffic_stats.hpp"  // IWYU pragma: export

// Sequential baselines.
#include "seq/bellman_ford.hpp"    // IWYU pragma: export
#include "seq/delta_stepping.hpp"  // IWYU pragma: export
#include "seq/dial.hpp"            // IWYU pragma: export
#include "seq/dijkstra.hpp"        // IWYU pragma: export

// The distributed SSSP core.
#include "core/async_solve.hpp"    // IWYU pragma: export
#include "core/bfs_engine.hpp"     // IWYU pragma: export
#include "core/delta_choice.hpp"   // IWYU pragma: export
#include "core/dist_builder.hpp"   // IWYU pragma: export
#include "core/lb_thresholds.hpp"  // IWYU pragma: export
#include "core/options.hpp"        // IWYU pragma: export
#include "core/parent_canon.hpp"   // IWYU pragma: export
#include "core/seeded_solve.hpp"   // IWYU pragma: export
#include "core/solver.hpp"         // IWYU pragma: export
#include "core/split_solver.hpp"   // IWYU pragma: export
#include "core/dist_validate.hpp"  // IWYU pragma: export
#include "core/validate.hpp"       // IWYU pragma: export

// Dynamic-graph update subsystem (docs/DYNAMIC.md).
#include "update/dynamic_graph.hpp"   // IWYU pragma: export
#include "update/dynamic_solver.hpp"  // IWYU pragma: export
#include "update/edge_batch.hpp"      // IWYU pragma: export
#include "update/repair_engine.hpp"   // IWYU pragma: export
