#include "runtime/protocol_check.hpp"

#include <cstdio>

namespace parsssp {

ProtocolError::ProtocolError(const std::string& diagnostic)
    : std::logic_error(diagnostic) {}

void protocol_violation(const std::string& diagnostic) {
  // stderr first: if the violator is a worker-lane thread the exception
  // below ends in std::terminate, and the diagnostic must already be out.
  std::fprintf(stderr, "parsssp protocol violation: %s\n", diagnostic.c_str());
  std::fflush(stderr);
  throw ProtocolError(diagnostic);
}

}  // namespace parsssp
