// A persistent variant of Machine for query serving.
//
// Machine::run spawns and joins R std::threads per job, which is fine for
// batch benchmarking but dominates the latency of small back-to-back
// queries. A MachineSession spawns the R rank threads once; they park on a
// job queue and execute submitted jobs in FIFO order, each job running
// collectively on every rank exactly as under Machine::run. The per-rank
// RankCtx (and with it the intra-rank ThreadPool and the checked-exchange
// round counter) lives for the whole session, so
//
//   * back-to-back jobs pay no thread create/join,
//   * Delta-dependent state built by one job (e.g. LocalEdgeViews) is
//     naturally reusable by later jobs, and
//   * the PR-1 protocol checks (exchange epochs, rank ownership, lane
//     handoff) extend across job boundaries: a rank whose collective calls
//     diverge between two jobs is caught just like one diverging inside a
//     job.
//
// Concurrency contract: submit()/cancel_pending() are thread-safe and may
// be called from any thread. Jobs never run concurrently with each other —
// the session executes one job at a time, in submission order. Traffic
// counters accumulate across jobs (the serving-relevant aggregate); call
// reset_traffic() between jobs when per-job numbers are needed, and read
// traffic() only while no job is in flight (synchronized by the job future).
//
// Error handling mirrors Machine::run: the first exception thrown by any
// rank of a job is rethrown from that job's future. The same caveat
// applies — jobs are internally bulk-synchronous, so a rank that throws
// while its peers are at a barrier deadlocks the job; library jobs throw
// only on programming errors, and tests that exercise propagation throw on
// every rank.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "runtime/machine.hpp"

namespace parsssp {

/// Thrown through the future of a job that was cancelled (cancel_pending)
/// or never started because the session was destroyed first.
class JobCancelled : public std::runtime_error {
 public:
  explicit JobCancelled(const std::string& what) : std::runtime_error(what) {}
};

class MachineSession {
 public:
  /// Spawns the rank threads immediately; they park until the first submit.
  explicit MachineSession(MachineConfig config);

  /// Cancels all queued-but-unstarted jobs (their futures receive
  /// JobCancelled), waits for the in-flight job to finish, joins.
  ~MachineSession();

  MachineSession(const MachineSession&) = delete;
  MachineSession& operator=(const MachineSession&) = delete;

  const MachineConfig& config() const { return config_; }
  rank_t num_ranks() const { return config_.num_ranks; }

  /// Enqueues `job` for collective execution on every rank. The returned
  /// future becomes ready when all ranks finished the job (value) or any
  /// rank threw (the first exception). Thread-safe.
  ///
  /// `keepalive` is an opaque resource pinned for the job's whole lifetime
  /// and released only after the job leaves the session (fulfilled or
  /// cancelled). The serving layer passes the GraphSnapshot its job reads
  /// through, so the data a rank may touch can never be reclaimed mid-job
  /// — whatever the submitting thread does with its own reference.
  std::future<void> submit(std::function<void(RankCtx&)> job,
                           std::shared_ptr<void> keepalive = nullptr);

  /// Convenience: submit + wait, rethrowing the job's error. The
  /// session-backed equivalent of Machine::run.
  void run(std::function<void(RankCtx&)> job) { submit(std::move(job)).get(); }

  /// Removes every queued-but-unstarted job; their futures receive
  /// JobCancelled. The in-flight job (if any) is not affected. Returns the
  /// number of jobs cancelled. Thread-safe.
  std::size_t cancel_pending();

  /// Jobs that ran to completion (successfully or with an error).
  std::size_t jobs_completed() const;

  /// Cumulative traffic of all completed jobs since construction or the
  /// last reset_traffic(). Only meaningful while no job is in flight.
  const TrafficStats& traffic() const { return traffic_; }
  void reset_traffic() { traffic_.reset(); }

  /// Per-(source, destination) cumulative message counts, row-major
  /// num_ranks x num_ranks; empty unless MachineConfig::record_pair_traffic.
  const std::vector<std::uint64_t>& pair_messages() const {
    return pair_messages_;
  }

 private:
  /// One queued collective job. `finished` and `error` are guarded by the
  /// session mutex_ (not annotatable on a nested struct member).
  struct Job {
    std::function<void(RankCtx&)> fn;
    /// Pinned resource (e.g. a serving snapshot), released at Job death.
    std::shared_ptr<void> keepalive;
    std::promise<void> done;
    std::exception_ptr error;
    rank_t finished = 0;
  };

  void rank_main(rank_t r);
  /// Moves the queue head into the active slot and wakes the ranks.
  void publish_next_locked() MPS_REQUIRES(mutex_);
  /// Fulfils a finished job's promise (outside the lock).
  static void complete(std::unique_ptr<Job> job);

  MachineConfig config_;
  // Written by rank threads only inside jobs (each rank its own slot / row);
  // reads are synchronized by the job futures. See traffic().
  TrafficStats traffic_;
  std::vector<std::uint64_t> pair_messages_;
  ExchangeBoard board_;
  CollectiveContext collectives_;

  mutable Mutex mutex_;
  CondVar work_cv_;  ///< rank threads wait here for a new generation
  std::deque<std::unique_ptr<Job>> queue_ MPS_GUARDED_BY(mutex_);
  std::unique_ptr<Job> active_ MPS_GUARDED_BY(mutex_);
  std::uint64_t generation_ MPS_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ MPS_GUARDED_BY(mutex_) = false;
  std::size_t jobs_completed_ MPS_GUARDED_BY(mutex_) = 0;

  std::vector<std::thread> threads_;  ///< last member: joins before the rest
};

}  // namespace parsssp
