#include "runtime/machine.hpp"

#include <thread>

namespace parsssp {

Machine::Machine(MachineConfig config)
    : config_(config), traffic_(config.num_ranks) {
  if (config_.num_ranks == 0) config_.num_ranks = 1;
  if (config_.lanes_per_rank == 0) config_.lanes_per_rank = 1;
}

void Machine::run(const std::function<void(RankCtx&)>& job) {
  traffic_.reset();
  if (config_.record_pair_traffic) {
    pair_messages_.assign(
        static_cast<std::size_t>(config_.num_ranks) * config_.num_ranks, 0);
  } else {
    pair_messages_.clear();
  }
  ExchangeBoard board(config_.num_ranks, config_.checked_exchange);
  CollectiveContext collectives(config_.num_ranks);

  ErrorSlot error;

  auto rank_main = [&](rank_t r) {
    RankCtx ctx(r, board, collectives, traffic_.rank(r),
                config_.lanes_per_rank, config_.checked_exchange,
                config_.record_pair_traffic ? &pair_messages_ : nullptr);
    try {
      job(ctx);
    } catch (...) {
      error.capture();
      // Best effort: jobs are internally bulk-synchronous, so a throwing
      // rank would normally deadlock its peers at the next barrier. Jobs in
      // this library throw only on programming errors; tests that exercise
      // propagation throw on every rank.
    }
  };

  if (config_.num_ranks == 1) {
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(config_.num_ranks);
    for (rank_t r = 0; r < config_.num_ranks; ++r) {
      threads.emplace_back(rank_main, r);
    }
    for (auto& t : threads) t.join();
  }

  if (auto first = error.get()) std::rethrow_exception(first);
}

}  // namespace parsssp
