// Communication accounting for the simulated machine. Counters are kept
// per rank (each written only by its owning rank thread, so no atomics are
// needed) and merged after a job completes.
//
// Ownership contract (audited; enforced in checked builds): the only
// writers of a rank's TrafficCounters during Machine::run are
// RankCtx::exchange() and the collective wrappers, all of which execute on
// the rank thread — worker lanes never touch counters. RankCtx::traffic()
// asserts this in checked mode (see RankCtx::check_owner). Merged views are
// read after the rank threads joined, so thread creation/join provide the
// only synchronization the counters need.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace parsssp {

/// What kind of algorithm step a message exchange belongs to. Mirrors the
/// phase taxonomy of the paper (short phases, long push phase, pull
/// request/response, Bellman-Ford tail, control collectives).
enum class PhaseKind : std::uint8_t {
  kShortPhase = 0,
  kLongPush,
  kPullRequest,
  kPullResponse,
  kBellmanFord,
  kControl,
  kAsync,  ///< barrier-free relax batches (runtime/async_channel.hpp)
  kCount   // sentinel
};

std::string_view phase_kind_name(PhaseKind kind);

/// Per-kind message/byte totals, plus the global-synchronization tally the
/// asynchronous engine exists to eliminate (docs/ASYNC.md): every barrier
/// and every collective a rank participates in is counted here, so a
/// solve's synchronization cost is a first-class measured quantity
/// (SsspStats::sync_allreduces / sync_barriers), not a guess.
struct TrafficCounters {
  std::array<std::uint64_t, static_cast<std::size_t>(PhaseKind::kCount)>
      messages{};
  std::array<std::uint64_t, static_cast<std::size_t>(PhaseKind::kCount)>
      bytes{};
  /// Collective reductions (allreduce/broadcast/allgather) entered.
  std::uint64_t allreduces = 0;
  /// Barrier waits entered, the two inside each exchange round included.
  std::uint64_t barriers = 0;

  void add(PhaseKind kind, std::uint64_t msg_count, std::uint64_t byte_count) {
    messages[static_cast<std::size_t>(kind)] += msg_count;
    bytes[static_cast<std::size_t>(kind)] += byte_count;
  }
  /// Global synchronization points this rank participated in.
  std::uint64_t global_syncs() const { return allreduces + barriers; }
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  TrafficCounters& operator+=(const TrafficCounters& other);
};

/// One slot per rank plus a merged view.
class TrafficStats {
 public:
  explicit TrafficStats(std::size_t num_ranks) : per_rank_(num_ranks) {}

  TrafficCounters& rank(std::size_t r) { return per_rank_[r]; }
  const TrafficCounters& rank(std::size_t r) const { return per_rank_[r]; }

  TrafficCounters merged() const;

  /// Largest per-rank message total: the load-imbalance signal the push/pull
  /// heuristic cares about.
  std::uint64_t max_rank_messages() const;

  void reset();

 private:
  std::vector<TrafficCounters> per_rank_;
};

}  // namespace parsssp
