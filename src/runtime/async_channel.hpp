// Message-driven rank-to-rank transport for the asynchronous data path
// (docs/ASYNC.md) — the barrier-free sibling of the ExchangeBoard.
//
// The bulk-synchronous board moves one all-to-all per collective round and
// ends every round with two barriers. AsyncChannel moves batches the
// moment a sender flushes them: each destination rank owns an inbox (a
// mutex-guarded vector of batches plus a parked-token slot and a condition
// variable), senders push and notify, receivers swap the whole inbox out
// under one short lock and apply at leisure. There is no round structure,
// no collective discipline, and no global synchronization anywhere in the
// data plane — termination is the quiescence detector's job
// (runtime/quiescence.hpp), whose token rides this same channel as a
// control message.
//
// Buffer discipline: batches are std::vector<T> moved in whole — on the
// pooled data path the sender moves SendBufferPool shards straight into
// post(), and the receiver retires drained batches back into its own
// pool, so vector capacity keeps circulating exactly as it does across
// bulk-synchronous phases (the PR-3 recycling story, minus the barriers).
//
// Lock-order contract (seeded as an A1 fixture in scripts/analysis/
// fixtures/lock_order/token_ring.*): every channel method takes exactly
// one inbox mutex and calls nothing that locks while holding it. In
// particular a receiver must never forward the token — which locks the
// *next* rank's inbox — from inside its own drain; drain() therefore swaps
// and returns, and token forwarding happens from the engine loop with no
// lock held.
//
// Thread-safety: post/post_token/announce_done may be called by any rank
// thread for any destination; drain/take_token/wait are receiver-side and
// called by the owning rank thread only (same single-owner discipline as
// RankCtx, but not runtime-checked — the inbox mutex makes violations
// merely slow, not racy).
#pragma once

#include <chrono>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "core/types.hpp"
#include "runtime/quiescence.hpp"

namespace parsssp {

template <typename T>
class AsyncChannel {
 public:
  /// One received batch, tagged with its sender.
  struct Batch {
    rank_t source = 0;
    std::vector<T> msgs;
  };

  explicit AsyncChannel(rank_t num_ranks) : inboxes_(num_ranks) {}

  rank_t num_ranks() const { return static_cast<rank_t>(inboxes_.size()); }

  /// Delivers a batch to `dest`'s inbox and wakes it. Empty batches are
  /// dropped (they carry no information and would skew the quiescence
  /// message balance for nothing). The caller counts the send with its
  /// QuiescenceRank *before* posting: the receiver may drain and count
  /// the receive the instant the lock drops.
  void post(rank_t source, rank_t dest, std::vector<T> msgs) {
    if (msgs.empty()) return;
    Inbox& in = inboxes_[dest].value;
    {
      MutexLock lock(in.mutex);
      in.data.push_back(Batch{source, std::move(msgs)});
    }
    in.cv.notify_one();
  }

  /// Parks the quiescence token at `dest`. At most one token circulates
  /// per ring, so the slot never queues more than one.
  void post_token(rank_t dest, const QuiescenceToken& token) {
    Inbox& in = inboxes_[dest].value;
    {
      MutexLock lock(in.mutex);
      in.token = token;
      in.has_token = true;
    }
    in.cv.notify_one();
  }

  /// Broadcasts termination: every current and future wait() returns
  /// immediately and done() reads true on every rank.
  void announce_done() {
    for (auto& slot : inboxes_) {
      Inbox& in = slot.value;
      {
        MutexLock lock(in.mutex);
        in.done = true;
      }
      in.cv.notify_all();
    }
  }

  /// Swaps the inbox's pending batches into `out` (appending, preserving
  /// arrival order) and returns the total message count taken. One short
  /// critical section; the apply loop runs lock-free afterwards.
  std::size_t drain(rank_t rank, std::vector<Batch>& out) {
    Inbox& in = inboxes_[rank].value;
    scratch_of(rank).clear();
    {
      MutexLock lock(in.mutex);
      std::swap(in.data, scratch_of(rank));
    }
    std::size_t msgs = 0;
    for (Batch& b : scratch_of(rank)) {
      msgs += b.msgs.size();
      out.push_back(std::move(b));
    }
    return msgs;
  }

  /// Takes the parked token, if any.
  bool take_token(rank_t rank, QuiescenceToken& out) {
    Inbox& in = inboxes_[rank].value;
    MutexLock lock(in.mutex);
    if (!in.has_token) return false;
    out = in.token;
    in.has_token = false;
    return true;
  }

  bool done(rank_t rank) {
    Inbox& in = inboxes_[rank].value;
    MutexLock lock(in.mutex);
    return in.done;
  }

  /// Parks the rank until a batch, token or the done flag arrives, or
  /// `timeout` elapses. Returns true if anything is pending (callers
  /// re-check via drain/take_token/done either way — wakeups may be
  /// spurious and arrivals may race the return).
  bool wait(rank_t rank, std::chrono::nanoseconds timeout) {
    Inbox& in = inboxes_[rank].value;
    MutexLock lock(in.mutex);
    if (!in.data.empty() || in.has_token || in.done) return true;
    in.cv.wait_for(in.mutex, timeout);
    return !in.data.empty() || in.has_token || in.done;
  }

  /// Pending payload messages across all inboxes (tests only; racy unless
  /// the ranks are quiescent).
  std::size_t pending_messages() {
    std::size_t n = 0;
    for (auto& slot : inboxes_) {
      Inbox& in = slot.value;
      MutexLock lock(in.mutex);
      for (const Batch& b : in.data) n += b.msgs.size();
    }
    return n;
  }

 private:
  struct Inbox {
    Mutex mutex;
    CondVar cv;
    std::vector<Batch> data MPS_GUARDED_BY(mutex);
    QuiescenceToken token MPS_GUARDED_BY(mutex);
    bool has_token MPS_GUARDED_BY(mutex) = false;
    bool done MPS_GUARDED_BY(mutex) = false;
    /// Receiver-side swap target, owned by the inbox's rank thread; lives
    /// here so drain() reuses its capacity across calls.
    std::vector<Batch> scratch;
  };

  std::vector<Batch>& scratch_of(rank_t rank) {
    return inboxes_[rank].value.scratch;
  }

  /// Cache-line padded: inboxes of different ranks are hot from different
  /// threads.
  std::vector<CacheAligned<Inbox>> inboxes_;
};

}  // namespace parsssp
