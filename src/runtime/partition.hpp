// Block distribution of vertices over ranks (paper §II: "the vertices are
// equally distributed among the processors using block distribution").
#pragma once

#include <algorithm>
#include <cassert>

#include "core/types.hpp"

namespace parsssp {

/// Maps global vertex ids to (owner rank, local id) and back. Blocks are
/// ceil(n/R) wide; the last rank's block may be short.
class BlockPartition {
 public:
  BlockPartition() = default;
  BlockPartition(vid_t num_vertices, rank_t num_ranks)
      : n_(num_vertices),
        ranks_(num_ranks),
        block_((num_vertices + num_ranks - 1) / num_ranks) {
    assert(num_ranks > 0);
    if (block_ == 0) block_ = 1;  // empty graph corner case
  }

  vid_t num_vertices() const { return n_; }
  rank_t num_ranks() const { return ranks_; }
  vid_t block_size() const { return block_; }

  rank_t owner(vid_t v) const { return static_cast<rank_t>(v / block_); }
  vid_t local_id(vid_t v) const { return v % block_; }

  /// First global id owned by `r`.
  vid_t begin(rank_t r) const { return std::min<vid_t>(n_, block_ * r); }
  /// One past the last global id owned by `r`.
  vid_t end(rank_t r) const { return std::min<vid_t>(n_, block_ * (r + 1)); }
  /// Number of vertices owned by `r`.
  vid_t count(rank_t r) const { return end(r) - begin(r); }

  vid_t global_id(rank_t r, vid_t local) const { return begin(r) + local; }

 private:
  vid_t n_ = 0;
  rank_t ranks_ = 1;
  vid_t block_ = 1;
};

}  // namespace parsssp
