// Pooled send/receive buffers for the relax data path.
//
// The engines used to build `vector<vector<vector<Msg>>>` (lane x dest)
// from scratch every phase, merge the lane shards serially on the rank
// thread, and round-trip each message through two memcpys in
// ExchangeBoard::pack/unpack. SendBufferPool replaces all of that:
//
//   * shards: one message vector per (lane, destination rank), cache-line
//     padded per lane so concurrent push_backs from worker lanes never
//     share a line. begin_phase() clears sizes but keeps capacity, so a
//     bucket's phases stop allocating once the high-water mark is reached.
//   * zero-copy exchange (RankCtx::exchange_pooled): shards are moved into
//     the board as independent segments — no lane merge, no pack/unpack —
//     and land here as `incoming()` batches tagged with their source rank.
//   * recycling: begin_phase() moves applied incoming buffers onto a free
//     list and re-seats empty shards from it, so vector capacity circulates
//     sender -> board -> receiver -> receiver's own shards across phases,
//     buckets, and (under MachineSession) jobs.
//
// The pool is rank-thread-owned state, like the TrafficCounters it feeds:
// worker lanes may only touch their own lane's shards (during emission) or
// the disjoint slices an apply partition assigns them. Canonical message
// order — the order the pre-pool engine applied messages in — is source
// rank ascending (self included in place), lane ascending within a source,
// push order within a shard. exchange_pooled preserves it by posting and
// taking segments in exactly that order, which is what lets the pooled
// path reproduce the reference path bit for bit.
//
// SenderReducer implements sender-side reduction (see docs/PERFORMANCE.md):
// within one destination's canonical stream it keeps only the messages
// that strictly improve on every earlier message for the same key (the
// running-minimum subsequence). A dropped message m satisfies
// value(m) >= value(k) for some earlier kept k with the same key, so at
// the receiver — whose apply is a strict `<` running min seeded with the
// current distance — m can improve nothing, insert nothing into the
// frontier, and write no parent, *whatever* the receiver's state is.
// Dropping it is therefore a provable no-op elimination, and the reduced
// stream is bit-identical to the full one in effect, not just in outcome
// distribution. The table is epoch-stamped (no clearing, no hashing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/sync.hpp"
#include "core/types.hpp"

namespace parsssp {

template <typename T>
class SendBufferPool {
 public:
  /// (Re)shapes the pool. Idempotent for equal geometry; changing geometry
  /// retires existing shard capacity to the free list.
  void configure(unsigned lanes, rank_t ranks) {
    if (lanes_.size() == lanes && ranks_ == ranks) return;
    for (auto& lane : lanes_) {
      for (auto& shard : lane.value) retire(std::move(shard));
    }
    lanes_.assign(lanes, {});
    for (auto& lane : lanes_) lane.value.resize(ranks);
    ranks_ = ranks;
  }

  unsigned lanes() const { return static_cast<unsigned>(lanes_.size()); }
  rank_t ranks() const { return ranks_; }

  /// The (lane, dest) emission buffer. Worker lane `lane` may push into its
  /// own shards during a parallel emission; the rank thread may use any.
  std::vector<T>& shard(unsigned lane, rank_t dest) {
    return lanes_[lane].value[dest];
  }

  /// Starts a phase: recycles the previous phase's incoming buffers onto
  /// the free list, re-seats capacity-less shards from it, and clears every
  /// shard's size. No deallocation happens here — capacity is retained.
  void begin_phase() {
    recycle_incoming();
    for (auto& lane : lanes_) {
      for (auto& shard : lane.value) {
        if (shard.capacity() == 0 && !free_.empty()) {
          shard = std::move(free_.back());
          free_.pop_back();
        }
        shard.clear();
      }
    }
  }

  /// Sum of shard sizes across all lanes and destinations (what an
  /// exchange would post, plus the self-destined messages).
  std::uint64_t pending_messages() const {
    std::uint64_t n = 0;
    for (const auto& lane : lanes_) {
      for (const auto& shard : lane.value) n += shard.size();
    }
    return n;
  }

  // -- incoming side (filled by RankCtx::exchange_pooled/_merged) ---------

  /// Received batches, in canonical order: source rank ascending, lane
  /// ascending within a source. Parallel to incoming_sources().
  std::vector<std::vector<T>>& incoming() { return incoming_; }
  const std::vector<std::vector<T>>& incoming() const { return incoming_; }

  /// Source rank of each incoming() batch (a source appears once per
  /// non-empty lane shard it sent).
  const std::vector<rank_t>& incoming_sources() const {
    return incoming_sources_;
  }

  void clear_incoming() {
    recycle_incoming();
  }

  void push_incoming(rank_t source, std::vector<T> batch) {
    incoming_.push_back(std::move(batch));
    incoming_sources_.push_back(source);
  }

  /// Drops all pooled capacity (shards, free list, incoming). The pool
  /// keeps its geometry.
  void release() {
    for (auto& lane : lanes_) {
      for (auto& shard : lane.value) {
        shard = std::vector<T>();
      }
    }
    free_.clear();
    incoming_.clear();
    incoming_sources_.clear();
  }

  /// Buffers currently parked on the free list (observability for tests).
  std::size_t free_buffers() const { return free_.size(); }

  /// Merges the lane shards into one dense per-destination table, in
  /// canonical lane order — the exact structure (and allocation behavior)
  /// of the pre-pool engines. This is the reference data path's sender
  /// side; it intentionally forfeits pooling so the pooled path can be
  /// benchmarked against it.
  std::vector<std::vector<T>> merged() {
    std::vector<std::vector<T>> out(ranks_);
    if (!lanes_.empty()) {
      out = std::move(lanes_[0].value);
      lanes_[0].value.assign(ranks_, {});
      for (std::size_t l = 1; l < lanes_.size(); ++l) {
        for (rank_t d = 0; d < ranks_; ++d) {
          std::vector<T>& shard = lanes_[l].value[d];
          out[d].insert(out[d].end(), shard.begin(), shard.end());
          shard.clear();
        }
      }
    }
    return out;
  }

 private:
  void recycle_incoming() {
    for (auto& batch : incoming_) retire(std::move(batch));
    incoming_.clear();
    incoming_sources_.clear();
  }

  void retire(std::vector<T> buf) {
    if (buf.capacity() == 0) return;
    buf.clear();
    free_.push_back(std::move(buf));
  }

  /// Per-lane shard block, padded so two lanes' vector headers (size/
  /// capacity words mutated on every push_back) never share a cache line.
  std::vector<CacheAligned<std::vector<std::vector<T>>>> lanes_;
  rank_t ranks_ = 0;
  std::vector<std::vector<T>> free_;
  std::vector<std::vector<T>> incoming_;
  std::vector<rank_t> incoming_sources_;
};

/// Epoch-stamped sender-side reducer; see the file comment for why keeping
/// the per-key running-minimum subsequence is an exact (bit-identical)
/// transformation. One instance per engine; the key space is the receiver's
/// local-id range (times the slot count for the multi-root engine).
template <typename Value>
class SenderReducer {
 public:
  /// Grows the stamp table to cover keys [0, key_space). Stamps persist
  /// across calls; no clearing ever happens (epoch advance invalidates).
  void ensure(std::size_t key_space) {
    if (stamp_.size() < key_space) {
      stamp_.resize(key_space, 0);
      best_.resize(key_space);
    }
  }

  /// Opens a destination's canonical stream: subsequent reduce() calls (one
  /// per lane shard, in lane order) share one running-min table.
  void begin_dest() { ++epoch_; }

  /// In-place compaction of one shard of the current destination's stream:
  /// keeps message i iff value(i) strictly improves on every kept earlier
  /// message with the same key. Returns the number of messages dropped.
  /// Stable: kept messages retain their relative order.
  template <typename T, typename KeyFn, typename ValueFn>
  std::size_t reduce(std::vector<T>& shard, KeyFn key_of, ValueFn value_of) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < shard.size(); ++i) {
      const std::size_t k = key_of(shard[i]);
      const Value v = value_of(shard[i]);
      if (stamp_[k] == epoch_ && v >= best_[k]) continue;
      stamp_[k] = epoch_;
      best_[k] = v;
      if (w != i) shard[w] = shard[i];
      ++w;
    }
    const std::size_t dropped = shard.size() - w;
    shard.resize(w);
    return dropped;
  }

 private:
  std::vector<std::uint64_t> stamp_;
  std::vector<Value> best_;
  std::uint64_t epoch_ = 0;
};

}  // namespace parsssp
