// Distributed quiescence detection for the asynchronous data path
// (docs/ASYNC.md): a Safra-style token ring in the EWD-998 formulation.
//
// The asynchronous engine has no bucket barriers, so "everyone is done" is
// itself a distributed predicate: a rank with an empty queue may be
// reactivated at any moment by a relaxation still in flight. Safra's
// algorithm detects the stable state "every rank passive AND no message in
// flight" with plain point-to-point token passes:
//
//   * every rank keeps a cumulative message balance c_i = sent - received
//     and a color; *receiving* a message blackens the rank;
//   * rank 0, when passive, launches a white token carrying a balance
//     accumulator; each rank holds the token until passive, then folds in
//     its balance, dyes the token black if it is black itself, whitens,
//     and forwards to the next rank on the ring;
//   * when the token returns to rank 0: if the token is white, rank 0 is
//     white, and the accumulated balance plus c_0 is zero, the ring was
//     globally passive with no message in flight for the whole circuit —
//     termination. Otherwise rank 0 launches a fresh round.
//
// The color rule is what makes the count sound: a message can be received
// by a rank the token already passed (so the token's balance sum misses
// it and can read zero with traffic still in flight), but that delivery
// blackens the receiver, which either dyes this token on a later hop or
// forces the next round. test_quiescence.cpp drives exactly that
// false-termination shape as a must-fail negative case.
//
// This class is the *protocol state machine only*: it owns no queues, no
// locks and no threads. The engine (or a test harness) delivers events —
// on_send / on_receive / receive_token — and asks poll() what to do next.
// That keeps the detector exhaustively unit-testable under adversarial
// message schedules, and keeps token handling outside any queue lock (the
// deadlock shape seeded in scripts/analysis/fixtures/lock_order/).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace parsssp {

/// The probe token. `balance` accumulates the visited ranks' message
/// balances; `black` records whether any visited rank was black when it
/// forwarded; `round` counts completed circuits (diagnostics only).
struct QuiescenceToken {
  std::int64_t balance = 0;
  bool black = false;
  std::uint32_t round = 0;
};

/// Per-rank Safra state. One instance per rank, driven by that rank only.
class QuiescenceRank {
 public:
  QuiescenceRank(rank_t rank, rank_t num_ranks)
      : rank_(rank), num_ranks_(num_ranks) {}

  /// `n` payload messages handed to the transport for another rank.
  /// Self-delivered work never crosses the network and must not be
  /// counted (the harness contract: every on_send(n) is matched by
  /// exactly one on_receive(n) at the destination, eventually).
  void on_send(std::uint64_t n) { balance_ += static_cast<std::int64_t>(n); }

  /// `n` payload messages taken off the transport. Blackens the rank:
  /// this delivery may have happened behind the token's back.
  void on_receive(std::uint64_t n) {
    balance_ -= static_cast<std::int64_t>(n);
    black_ = true;
  }

  /// The ring delivered the token to this rank; it parks here until the
  /// next passive poll(). At most one token exists per ring.
  void receive_token(const QuiescenceToken& token) {
    token_ = token;
    holds_token_ = true;
  }

  bool holds_token() const { return holds_token_; }

  /// What poll() wants the caller to do.
  enum class ActionKind : std::uint8_t {
    kNone,       ///< keep working (or keep holding the token)
    kForward,    ///< pass `token` to rank `dest`
    kTerminate,  ///< global quiescence proven; announce shutdown
  };
  struct Action {
    ActionKind kind = ActionKind::kNone;
    rank_t dest = 0;
    QuiescenceToken token;
  };

  /// Drives the protocol. `passive` means: inbound queue drained empty AND
  /// no local work pending — the caller must re-check this every loop
  /// iteration, since a delivery can reactivate the rank at any time.
  /// Active ranks always get kNone (the token waits). A passive rank 0
  /// launches the first probe; a passive token holder folds its balance
  /// and forwards (whitening itself); rank 0 closing a clean circuit
  /// returns kTerminate, otherwise relaunches.
  Action poll(bool passive) {
    if (!passive || num_ranks_ == 1) {
      if (passive) return {ActionKind::kTerminate, 0, token_};
      return {};
    }
    if (rank_ == 0 && !probing_) {
      // Launch the first probe: a white token with an empty accumulator.
      probing_ = true;
      black_ = false;
      ++rounds_started_;
      return {ActionKind::kForward, 1, QuiescenceToken{}};
    }
    if (!holds_token_) return {};
    if (rank_ == 0) {
      // The circuit closed. Clean iff nobody (token or self) is black and
      // the ring-wide message balance — every other rank's fold plus our
      // own — is zero: no delivery can be outstanding.
      token_.round += 1;
      if (!token_.black && !black_ && token_.balance + balance_ == 0) {
        holds_token_ = false;
        return {ActionKind::kTerminate, 0, token_};
      }
      // Relaunch: fresh accumulator, rank 0 whitens.
      holds_token_ = false;
      black_ = false;
      ++rounds_started_;
      return {ActionKind::kForward, 1,
              QuiescenceToken{0, false, token_.round}};
    }
    // Interior rank: fold, dye, whiten, pass on.
    QuiescenceToken out = token_;
    out.balance += balance_;
    out.black = out.black || black_;
    black_ = false;
    holds_token_ = false;
    return {ActionKind::kForward,
            static_cast<rank_t>((rank_ + 1) % num_ranks_), out};
  }

  /// Probe circuits started by rank 0 (0 on other ranks): the async
  /// path's analogue of a global synchronization, reported as
  /// SsspStats::quiescence_rounds.
  std::uint32_t rounds_started() const { return rounds_started_; }

  /// Cumulative sent - received (tests / diagnostics).
  std::int64_t balance() const { return balance_; }
  bool black() const { return black_; }

 private:
  rank_t rank_;
  rank_t num_ranks_;
  std::int64_t balance_ = 0;
  /// A rank starts black: it may not certify a circuit it has not been
  /// whitened into (EWD 998's initial condition).
  bool black_ = true;
  bool holds_token_ = false;
  bool probing_ = false;
  QuiescenceToken token_;
  std::uint32_t rounds_started_ = 0;
};

}  // namespace parsssp
