// The message substrate of the simulated machine: an R x R board of byte
// buffers, our stand-in for Blue Gene/Q's per-thread SPI injection and
// reception queues. Each (source, destination) slot is written by exactly
// one rank and read by exactly one rank, with a barrier separating the two
// sides — so the board needs no locks, mirroring the paper's lock-free SPI
// usage.
//
// That safety argument is a *protocol*, not a property of the data
// structure, so in checked mode (see runtime/protocol_check.hpp) the board
// validates it with a per-slot epoch state machine:
//
//   posted == taken   : slot empty, the only state in which post() is legal
//   posted == taken+1 : slot holds one round's payload, take() is legal
//
// post() advances `posted`, take() advances `taken`. Any other transition
// is a protocol violation: a second post before the payload was consumed
// (double post / cross-round leakage), a take of an empty slot (take before
// the exchange barrier, or of a stale epoch), or out-of-range ranks. The
// caller may additionally pass its own 1-based round number; a mismatch
// against the slot epoch catches ranks whose exchange() calls have diverged
// (a rank skipping or repeating a collective round). Epoch fields are
// themselves unsynchronized — under the correct protocol they inherit the
// payload's barrier separation; a violating program may race on them, but
// checked mode exists precisely to abort such programs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "runtime/protocol_check.hpp"

namespace parsssp {

class ExchangeBoard {
 public:
  /// Round value meaning "caller does not track rounds" (direct board use).
  static constexpr std::uint64_t kAnyRound = ~std::uint64_t{0};

  explicit ExchangeBoard(rank_t num_ranks,
                         bool checked = checked_runtime_default())
      : num_ranks_(num_ranks),
        checked_(checked),
        slots_(static_cast<std::size_t>(num_ranks) * num_ranks),
        epochs_(checked ? slots_.size() : 0) {}

  rank_t num_ranks() const { return num_ranks_; }
  bool checked() const { return checked_; }

  /// Deposits `source`'s outgoing bytes for `dest`. Must be called between
  /// the barriers of an exchange round, once per destination at most.
  /// `round` is the caller's 1-based exchange round (kAnyRound to skip the
  /// cross-rank round consistency check).
  void post(rank_t source, rank_t dest, std::vector<std::byte> data,
            std::uint64_t round = kAnyRound) {
    if (checked_) check_post(source, dest, round);
    slots_[index(source, dest)] = std::move(data);
  }

  /// Takes (moves out) the bytes `source` sent to `dest`, leaving the slot
  /// empty for the next round.
  std::vector<std::byte> take(rank_t source, rank_t dest,
                              std::uint64_t round = kAnyRound) {
    if (checked_) check_take(source, dest, round);
    return std::exchange(slots_[index(source, dest)], {});
  }

  /// Serialization helpers for trivially copyable message types.
  template <typename T>
  static std::vector<std::byte> pack(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(items.size_bytes());
    if (!items.empty()) {
      std::memcpy(bytes.data(), items.data(), items.size_bytes());
    }
    return bytes;
  }

  template <typename T>
  static std::vector<T> unpack(const std::vector<std::byte>& bytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> items(bytes.size() / sizeof(T));
    if (!items.empty()) {
      std::memcpy(items.data(), bytes.data(), items.size() * sizeof(T));
    }
    return items;
  }

 private:
  /// Per-slot protocol state; see the class comment for the state machine.
  struct SlotEpochs {
    std::uint64_t posted = 0;
    std::uint64_t taken = 0;
  };

  void check_post(rank_t source, rank_t dest, std::uint64_t round);
  void check_take(rank_t source, rank_t dest, std::uint64_t round);
  void check_ranks(const char* op, rank_t source, rank_t dest) const;

  std::size_t index(rank_t source, rank_t dest) const {
    return static_cast<std::size_t>(source) * num_ranks_ + dest;
  }

  rank_t num_ranks_;
  bool checked_;
  std::vector<std::vector<std::byte>> slots_;
  std::vector<SlotEpochs> epochs_;  ///< empty unless checked_
};

}  // namespace parsssp
