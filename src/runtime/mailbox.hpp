// The message substrate of the simulated machine: an R x R board of typed
// buffer segments, our stand-in for Blue Gene/Q's per-thread SPI injection
// and reception queues. Each (source, destination) slot is written by
// exactly one rank and read by exactly one rank, with a barrier separating
// the two sides — so the board needs no locks, mirroring the paper's
// lock-free SPI usage.
//
// Payloads move through the board zero-copy: a slot holds a list of
// ErasedBuffer segments, each a moved-in std::vector<T> (the sender's lane
// shards, posted without merging), and take_segments() moves them back out.
// No pack/unpack memcpy happens on this path. The byte-oriented post()/
// take() + pack()/unpack() API is kept for payloads that genuinely need
// serialization framing and for existing callers; it rides on the same
// slots as a single byte segment.
//
// That safety argument is a *protocol*, not a property of the data
// structure, so in checked mode (see runtime/protocol_check.hpp) the board
// validates it with a per-slot epoch state machine:
//
//   posted == taken   : slot empty, the only state in which post() is legal
//   posted == taken+1 : slot holds one round's payload, take() is legal
//
// post() advances `posted`, take() advances `taken`. Any other transition
// is a protocol violation: a second post before the payload was consumed
// (double post / cross-round leakage), a take of an empty slot (take before
// the exchange barrier, or of a stale epoch), or out-of-range ranks. The
// caller may additionally pass its own 1-based round number; a mismatch
// against the slot epoch catches ranks whose exchange() calls have diverged
// (a rank skipping or repeating a collective round). Taking a segment as
// the wrong element type is always fatal, checked mode or not: it is type
// confusion, not a timing bug. Epoch fields are themselves unsynchronized —
// under the correct protocol they inherit the payload's barrier separation;
// a violating program may race on them, but checked mode exists precisely
// to abort such programs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "runtime/protocol_check.hpp"

namespace parsssp {

/// Move-only type-erased holder of one std::vector<T> payload segment. The
/// element type is recorded and re-checked on extraction, so a receiver
/// that disagrees with the sender about the wire type fails loudly instead
/// of reinterpreting memory.
class ErasedBuffer {
 public:
  ErasedBuffer() = default;

  template <typename T>
  explicit ErasedBuffer(std::vector<T> items)
      : self_(std::make_unique<Model<T>>(std::move(items))) {}

  ErasedBuffer(ErasedBuffer&&) noexcept = default;
  ErasedBuffer& operator=(ErasedBuffer&&) noexcept = default;
  ErasedBuffer(const ErasedBuffer&) = delete;
  ErasedBuffer& operator=(const ErasedBuffer&) = delete;

  bool holds_value() const { return self_ != nullptr; }

  /// Element type of the held vector; null when empty.
  const std::type_info* type() const {
    return self_ ? &self_->type() : nullptr;
  }

  std::size_t size() const { return self_ ? self_->size() : 0; }

  /// Moves the payload out, asserting the element type the sender put in.
  /// A mismatch is type confusion on the wire: always a protocol violation.
  template <typename T>
  std::vector<T> take_as() {
    if (self_ == nullptr) return {};
    if (self_->type() != typeid(T)) {
      protocol_violation(std::string("ErasedBuffer type confusion: held ") +
                         self_->type().name() + ", taken as " +
                         typeid(T).name());
    }
    auto* model = static_cast<Model<T>*>(self_.get());
    std::vector<T> out = std::move(model->items);
    self_.reset();
    return out;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual const std::type_info& type() const = 0;
    virtual std::size_t size() const = 0;
  };
  template <typename T>
  struct Model final : Concept {
    explicit Model(std::vector<T> v) : items(std::move(v)) {}
    const std::type_info& type() const override { return typeid(T); }
    std::size_t size() const override { return items.size(); }
    std::vector<T> items;
  };

  std::unique_ptr<Concept> self_;
};

class ExchangeBoard {
 public:
  /// Round value meaning "caller does not track rounds" (direct board use).
  static constexpr std::uint64_t kAnyRound = ~std::uint64_t{0};

  explicit ExchangeBoard(rank_t num_ranks,
                         bool checked = checked_runtime_default())
      : num_ranks_(num_ranks),
        checked_(checked),
        slots_(static_cast<std::size_t>(num_ranks) * num_ranks),
        epochs_(checked ? slots_.size() : 0) {}

  rank_t num_ranks() const { return num_ranks_; }
  bool checked() const { return checked_; }

  /// Deposits `source`'s outgoing segments for `dest` — the zero-copy path:
  /// the vectors inside the segments move through the board untouched. Must
  /// be called between the barriers of an exchange round, once per
  /// destination at most; an empty segment list is a valid round payload
  /// (it still advances the slot epoch). `round` is the caller's 1-based
  /// exchange round (kAnyRound to skip the cross-rank consistency check).
  void post_segments(rank_t source, rank_t dest,
                     std::vector<ErasedBuffer> segments,
                     std::uint64_t round = kAnyRound) {
    if (checked_) check_post(source, dest, round);
    slots_[index(source, dest)] = std::move(segments);
  }

  /// Takes (moves out) the segments `source` sent to `dest`, leaving the
  /// slot empty for the next round.
  std::vector<ErasedBuffer> take_segments(rank_t source, rank_t dest,
                                          std::uint64_t round = kAnyRound) {
    if (checked_) check_take(source, dest, round);
    return std::exchange(slots_[index(source, dest)], {});
  }

  /// Byte-oriented compatibility API: one byte segment per round.
  void post(rank_t source, rank_t dest, std::vector<std::byte> data,
            std::uint64_t round = kAnyRound) {
    std::vector<ErasedBuffer> segments;
    segments.push_back(ErasedBuffer(std::move(data)));
    post_segments(source, dest, std::move(segments), round);
  }

  /// Takes the bytes `source` sent to `dest` via post(). On an unchecked
  /// board an un-posted slot yields an empty vector (as before).
  std::vector<std::byte> take(rank_t source, rank_t dest,
                              std::uint64_t round = kAnyRound) {
    std::vector<ErasedBuffer> segments = take_segments(source, dest, round);
    if (segments.empty()) return {};
    return segments.front().take_as<std::byte>();
  }

  /// Serialization helpers for trivially copyable message types.
  template <typename T>
  static std::vector<std::byte> pack(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(items.size_bytes());
    if (!items.empty()) {
      std::memcpy(bytes.data(), items.data(), items.size_bytes());
    }
    return bytes;
  }

  template <typename T>
  static std::vector<T> unpack(const std::vector<std::byte>& bytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t n = bytes.size() / sizeof(T);
    std::vector<T> items;
    if (n != 0) {
      // Pointer-range insert so libstdc++/libc++ lower the copy to one
      // memmove — no value-initialization pass over the destination first
      // (the old `vector<T> items(n)` zeroed every element before memcpy).
      items.reserve(n);
      const T* first = reinterpret_cast<const T*>(bytes.data());
      items.insert(items.end(), first, first + n);
    }
    return items;
  }

 private:
  /// Per-slot protocol state; see the class comment for the state machine.
  struct SlotEpochs {
    std::uint64_t posted = 0;
    std::uint64_t taken = 0;
  };

  void check_post(rank_t source, rank_t dest, std::uint64_t round);
  void check_take(rank_t source, rank_t dest, std::uint64_t round);
  void check_ranks(const char* op, rank_t source, rank_t dest) const;

  std::size_t index(rank_t source, rank_t dest) const {
    return static_cast<std::size_t>(source) * num_ranks_ + dest;
  }

  rank_t num_ranks_;
  bool checked_;
  std::vector<std::vector<ErasedBuffer>> slots_;
  std::vector<SlotEpochs> epochs_;  ///< empty unless checked_
};

}  // namespace parsssp
