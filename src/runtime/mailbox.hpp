// The message substrate of the simulated machine: an R x R board of byte
// buffers, our stand-in for Blue Gene/Q's per-thread SPI injection and
// reception queues. Each (source, destination) slot is written by exactly
// one rank and read by exactly one rank, with a barrier separating the two
// sides — so the board needs no locks, mirroring the paper's lock-free SPI
// usage.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

class ExchangeBoard {
 public:
  explicit ExchangeBoard(rank_t num_ranks)
      : num_ranks_(num_ranks),
        slots_(static_cast<std::size_t>(num_ranks) * num_ranks) {}

  rank_t num_ranks() const { return num_ranks_; }

  /// Deposits `source`'s outgoing bytes for `dest`. Must be called between
  /// the barriers of an exchange round, once per destination at most.
  void post(rank_t source, rank_t dest, std::vector<std::byte> data) {
    slots_[index(source, dest)] = std::move(data);
  }

  /// Takes (moves out) the bytes `source` sent to `dest`, leaving the slot
  /// empty for the next round.
  std::vector<std::byte> take(rank_t source, rank_t dest) {
    return std::exchange(slots_[index(source, dest)], {});
  }

  /// Serialization helpers for trivially copyable message types.
  template <typename T>
  static std::vector<std::byte> pack(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(items.size_bytes());
    if (!items.empty()) {
      std::memcpy(bytes.data(), items.data(), items.size_bytes());
    }
    return bytes;
  }

  template <typename T>
  static std::vector<T> unpack(const std::vector<std::byte>& bytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> items(bytes.size() / sizeof(T));
    if (!items.empty()) {
      std::memcpy(items.data(), bytes.data(), items.size() * sizeof(T));
    }
    return items;
  }

 private:
  std::size_t index(rank_t source, rank_t dest) const {
    return static_cast<std::size_t>(source) * num_ranks_ + dest;
  }

  rank_t num_ranks_;
  std::vector<std::vector<std::byte>> slots_;
};

}  // namespace parsssp
