// Torus network topology model.
//
// Blue Gene/Q connects nodes in a 5D torus; a message between two nodes
// traverses one link per hop of Manhattan-with-wraparound distance. This
// module maps logical ranks onto a k-dimensional torus and computes hop
// distances and hop-weighted communication volumes — used by the topology
// ablation bench to show how the push and pull models differ not just in
// message counts but in the link traffic they induce.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

class TorusTopology {
 public:
  /// `dims` are the per-dimension extents; their product must cover every
  /// rank that will be queried (ranks are laid out row-major).
  explicit TorusTopology(std::vector<std::uint32_t> dims);

  /// Builds a near-cubic torus for `ranks` ranks in `dimensions` dims.
  static TorusTopology balanced(rank_t ranks, std::uint32_t dimensions = 3);

  std::uint32_t dimensions() const {
    return static_cast<std::uint32_t>(dims_.size());
  }
  const std::vector<std::uint32_t>& dims() const { return dims_; }
  rank_t capacity() const { return capacity_; }

  /// Torus coordinates of a rank (row-major layout).
  std::vector<std::uint32_t> coordinates(rank_t r) const;

  /// Minimal hop count between two ranks (sum over dimensions of the
  /// shorter way around each ring).
  std::uint32_t hops(rank_t a, rank_t b) const;

  /// Network diameter (maximum hop distance between any two ranks).
  std::uint32_t diameter() const;

  /// Mean hop distance from a rank to all others (uniform-traffic average).
  double mean_hops() const;

  /// Hop-weighted volume of a traffic matrix: sum over (src, dst) of
  /// matrix[src * ranks + dst] * hops(src, dst). The matrix may be message
  /// counts or bytes.
  double weighted_volume(const std::vector<std::uint64_t>& matrix,
                         rank_t ranks) const;

 private:
  std::vector<std::uint32_t> dims_;
  rank_t capacity_ = 1;
};

}  // namespace parsssp
