#include "runtime/mailbox.hpp"

// ExchangeBoard is header-only; this translation unit anchors the target and
// hosts compile-time checks on the message contract.
namespace parsssp {
static_assert(std::is_trivially_copyable_v<std::byte>);
}  // namespace parsssp
