#include "runtime/mailbox.hpp"

#include <string>

namespace parsssp {
namespace {

std::string slot_name(rank_t source, rank_t dest) {
  return "slot " + std::to_string(source) + " -> " + std::to_string(dest);
}

}  // namespace

static_assert(std::is_trivially_copyable_v<std::byte>);

void ExchangeBoard::check_ranks(const char* op, rank_t source,
                                rank_t dest) const {
  if (source >= num_ranks_ || dest >= num_ranks_) {
    protocol_violation(std::string("exchange ") + op + " out of range: " +
                       slot_name(source, dest) + " on a board of " +
                       std::to_string(num_ranks_) + " ranks");
  }
}

void ExchangeBoard::check_post(rank_t source, rank_t dest,
                               std::uint64_t round) {
  check_ranks("post", source, dest);
  SlotEpochs& e = epochs_[index(source, dest)];
  if (e.posted != e.taken) {
    protocol_violation("double post on " + slot_name(source, dest) +
                       ": payload of round " + std::to_string(e.posted) +
                       " was never taken (cross-round leakage)");
  }
  ++e.posted;
  if (round != kAnyRound && e.posted != round) {
    protocol_violation("cross-round post on " + slot_name(source, dest) +
                       ": rank " + std::to_string(source) +
                       " is in exchange round " + std::to_string(round) +
                       " but the slot is at epoch " + std::to_string(e.posted) +
                       " (a rank skipped or repeated an exchange)");
  }
}

void ExchangeBoard::check_take(rank_t source, rank_t dest,
                               std::uint64_t round) {
  check_ranks("take", source, dest);
  SlotEpochs& e = epochs_[index(source, dest)];
  if (e.posted == e.taken) {
    protocol_violation("take of empty " + slot_name(source, dest) +
                       " at epoch " + std::to_string(e.taken) +
                       ": take before the exchange barrier, double take, or "
                       "a missing post");
  }
  ++e.taken;
  if (round != kAnyRound && e.taken != round) {
    protocol_violation("stale-epoch take on " + slot_name(source, dest) +
                       ": rank " + std::to_string(dest) +
                       " is in exchange round " + std::to_string(round) +
                       " but took the payload of epoch " +
                       std::to_string(e.taken));
  }
}

}  // namespace parsssp
