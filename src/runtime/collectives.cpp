#include "runtime/collectives.hpp"

// CollectiveContext is header-only; this translation unit anchors the target.
namespace parsssp {
static_assert(sizeof(CollectiveContext) > 0);
}  // namespace parsssp
