#include "runtime/machine_session.hpp"

#include <utility>

namespace parsssp {

MachineSession::MachineSession(MachineConfig config)
    : config_([&] {
        if (config.num_ranks == 0) config.num_ranks = 1;
        if (config.lanes_per_rank == 0) config.lanes_per_rank = 1;
        return config;
      }()),
      traffic_(config_.num_ranks),
      board_(config_.num_ranks, config_.checked_exchange),
      collectives_(config_.num_ranks) {
  if (config_.record_pair_traffic) {
    pair_messages_.assign(
        static_cast<std::size_t>(config_.num_ranks) * config_.num_ranks, 0);
  }
  threads_.reserve(config_.num_ranks);
  for (rank_t r = 0; r < config_.num_ranks; ++r) {
    threads_.emplace_back([this, r] { rank_main(r); });
  }
}

MachineSession::~MachineSession() {
  std::deque<std::unique_ptr<Job>> cancelled;
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
    cancelled.swap(queue_);
  }
  work_cv_.notify_all();
  for (auto& job : cancelled) {
    job->done.set_exception(std::make_exception_ptr(
        JobCancelled("MachineSession destroyed before the job started")));
  }
  for (auto& t : threads_) t.join();
}

std::future<void> MachineSession::submit(std::function<void(RankCtx&)> job,
                                         std::shared_ptr<void> keepalive) {
  auto j = std::make_unique<Job>();
  j->fn = std::move(job);
  j->keepalive = std::move(keepalive);
  std::future<void> fut = j->done.get_future();
  bool published = false;
  {
    MutexLock lock(mutex_);
    if (shutting_down_) {
      throw std::logic_error(
          "MachineSession::submit on a session that is shutting down");
    }
    queue_.push_back(std::move(j));
    if (active_ == nullptr) {
      publish_next_locked();
      published = true;
    }
  }
  if (published) work_cv_.notify_all();
  return fut;
}

std::size_t MachineSession::cancel_pending() {
  std::deque<std::unique_ptr<Job>> cancelled;
  {
    MutexLock lock(mutex_);
    cancelled.swap(queue_);
  }
  for (auto& job : cancelled) {
    job->done.set_exception(
        std::make_exception_ptr(JobCancelled("job cancelled before start")));
  }
  return cancelled.size();
}

std::size_t MachineSession::jobs_completed() const {
  MutexLock lock(mutex_);
  return jobs_completed_;
}

void MachineSession::publish_next_locked() {
  active_ = std::move(queue_.front());
  queue_.pop_front();
  ++generation_;
}

void MachineSession::complete(std::unique_ptr<Job> job) {
  if (job->error) {
    job->done.set_exception(job->error);
  } else {
    job->done.set_value();
  }
}

void MachineSession::rank_main(rank_t r) {
  // The RankCtx — and with it the lane pool, the rank's exchange round
  // counter and the ownership thread id — persists for the session's whole
  // lifetime; this is what makes back-to-back jobs cheap and lets the
  // checked exchange protocol span job boundaries.
  RankCtx ctx(r, board_, collectives_, traffic_.rank(r),
              config_.lanes_per_rank, config_.checked_exchange,
              config_.record_pair_traffic ? &pair_messages_ : nullptr);
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (true) {
        if (active_ != nullptr && generation_ != seen) break;
        if (shutting_down_) return;
        work_cv_.wait(mutex_);
      }
      seen = generation_;
      job = active_.get();
    }
    // Outside the lock: `job` stays alive until the last rank's `finished`
    // increment below moves it out of the active slot.
    try {
      job->fn(ctx);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!job->error) job->error = std::current_exception();
    }
    std::unique_ptr<Job> done;
    bool published = false;
    {
      MutexLock lock(mutex_);
      if (++job->finished == config_.num_ranks) {
        done = std::move(active_);
        ++jobs_completed_;
        if (!queue_.empty() && !shutting_down_) {
          publish_next_locked();
          published = true;
        }
      }
    }
    // Promise fulfilment and peer wakeup happen outside the lock so waiters
    // resume into an uncontended mutex.
    if (published) work_cv_.notify_all();
    if (done != nullptr) complete(std::move(done));
  }
}

}  // namespace parsssp
