#include "runtime/topology.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace parsssp {

TorusTopology::TorusTopology(std::vector<std::uint32_t> dims)
    : dims_(std::move(dims)) {
  if (dims_.empty()) throw std::invalid_argument("torus needs >= 1 dim");
  for (const auto d : dims_) {
    if (d == 0) throw std::invalid_argument("torus dimension of extent 0");
    capacity_ *= d;
  }
}

TorusTopology TorusTopology::balanced(rank_t ranks, std::uint32_t dimensions) {
  if (dimensions == 0) dimensions = 1;
  std::vector<std::uint32_t> dims(dimensions, 1);
  // Grow the smallest dimension until the torus covers every rank.
  while (std::accumulate(dims.begin(), dims.end(), std::uint64_t{1},
                         std::multiplies<>()) < ranks) {
    *std::min_element(dims.begin(), dims.end()) += 1;
  }
  return TorusTopology(dims);
}

std::vector<std::uint32_t> TorusTopology::coordinates(rank_t r) const {
  std::vector<std::uint32_t> coords(dims_.size());
  for (std::size_t d = dims_.size(); d-- > 0;) {
    coords[d] = r % dims_[d];
    r /= dims_[d];
  }
  return coords;
}

std::uint32_t TorusTopology::hops(rank_t a, rank_t b) const {
  const auto ca = coordinates(a);
  const auto cb = coordinates(b);
  std::uint32_t total = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const std::uint32_t direct =
        ca[d] > cb[d] ? ca[d] - cb[d] : cb[d] - ca[d];
    total += std::min(direct, dims_[d] - direct);
  }
  return total;
}

std::uint32_t TorusTopology::diameter() const {
  std::uint32_t total = 0;
  for (const auto d : dims_) total += d / 2;
  return total;
}

double TorusTopology::mean_hops() const {
  if (capacity_ <= 1) return 0.0;
  double sum = 0;
  for (rank_t b = 1; b < capacity_; ++b) {
    sum += hops(0, b);  // vertex-transitive: rank 0 is representative
  }
  return sum / static_cast<double>(capacity_ - 1);
}

double TorusTopology::weighted_volume(
    const std::vector<std::uint64_t>& matrix, rank_t ranks) const {
  double total = 0;
  for (rank_t s = 0; s < ranks; ++s) {
    for (rank_t d = 0; d < ranks; ++d) {
      const std::uint64_t v = matrix[static_cast<std::size_t>(s) * ranks + d];
      if (v != 0) total += static_cast<double>(v) * hops(s, d);
    }
  }
  return total;
}

}  // namespace parsssp
