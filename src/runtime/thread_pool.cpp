#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace parsssp {

ThreadPool::ThreadPool(unsigned lanes) : lanes_(std::max(1u, lanes)) {
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen;
      });
      if (shutting_down_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(lane);
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_on_lanes(const std::function<void(unsigned)>& fn) {
  if (lanes_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    pending_ = lanes_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);  // lane 0 runs on the caller
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn) {
  if (lanes_ == 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t chunk = (n + lanes_ - 1) / lanes_;
  run_on_lanes([&](unsigned lane) {
    const std::size_t begin = std::min(n, chunk * lane);
    const std::size_t end = std::min(n, begin + chunk);
    fn(lane, begin, end);
  });
}

}  // namespace parsssp
