#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <string>

namespace parsssp {

ThreadPool::ThreadPool(unsigned lanes, bool checked)
    : lanes_(std::max(1u, lanes)), checked_(checked) {
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && generation_ == seen) start_cv_.wait(mutex_);
      if (shutting_down_) return;
      seen = generation_;
      job = job_;
    }
    // Outside the lock: `*job` stays alive until this worker's decrement
    // below is observed by the dispatcher's pending_ == 0 wait.
    (*job)(lane);
    {
      MutexLock lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::dispatch(const std::function<void(unsigned)>& fn) {
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    pending_ = lanes_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);  // lane 0 runs on the caller
  MutexLock lock(mutex_);
  while (pending_ != 0) done_cv_.wait(mutex_);
  job_ = nullptr;
}

void ThreadPool::run_on_lanes(const std::function<void(unsigned)>& fn) {
  if (lanes_ == 1) {
    fn(0);
    return;
  }
  if (!checked_) {
    dispatch(fn);
    return;
  }
  // Checked handoff: each lane id must be in range and enter exactly once
  // per generation. Entry counts are atomics because a violating dispatch
  // could run the same lane concurrently with another.
  std::vector<std::atomic<unsigned>> entries(lanes_);
  const std::function<void(unsigned)> checked_fn = [&](unsigned lane) {
    if (lane >= lanes_) {
      protocol_violation("lane handoff out of range: lane " +
                         std::to_string(lane) + " on a pool of " +
                         std::to_string(lanes_) + " lanes");
    }
    if (entries[lane].fetch_add(1) != 0) {
      protocol_violation("lane " + std::to_string(lane) +
                         " entered the same job twice");
    }
    fn(lane);
  };
  dispatch(checked_fn);
  for (unsigned lane = 0; lane < lanes_; ++lane) {
    if (entries[lane].load() != 1) {
      protocol_violation("lane " + std::to_string(lane) +
                         " never ran its share of the job");
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn) {
  if (lanes_ == 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t chunk = (n + lanes_ - 1) / lanes_;
  std::atomic<std::size_t> covered{0};
  run_on_lanes([&](unsigned lane) {
    const std::size_t begin = std::min(n, chunk * lane);
    const std::size_t end = std::min(n, begin + chunk);
    if (checked_) covered.fetch_add(end - begin, std::memory_order_relaxed);
    fn(lane, begin, end);
  });
  if (checked_ && covered.load() != n) {
    protocol_violation("parallel_for chunk handoff covered " +
                       std::to_string(covered.load()) + " of " +
                       std::to_string(n) + " indices");
  }
}

}  // namespace parsssp
