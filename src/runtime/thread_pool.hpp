// Intra-rank worker lanes: the stand-in for the paper's 64 Pthreads per
// Blue Gene/Q node. A pool with L lanes runs lane 0 on the calling (rank)
// thread and lanes 1..L-1 on persistent workers; parallel_for chunks an
// index range across lanes. With L == 1 everything runs inline with zero
// synchronization, which is the default on this single-core harness.
//
// Shared state discipline: everything the rank thread and the workers both
// touch (job_, generation_, pending_, shutting_down_) is GUARDED_BY mutex_
// and verified by Clang's -Wthread-safety when available. The job function
// itself is *not* guarded — workers call it outside the lock — but its
// lifetime is protected by the generation/pending protocol: run_on_lanes
// keeps the function alive until pending_ drops to zero, and a worker only
// reaches that decrement after its call returned. In checked mode
// (runtime/protocol_check.hpp) the lane handoff is verified at runtime:
// every lane must enter each job exactly once with a valid lane id, and
// parallel_for must hand out chunks covering the index range exactly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "runtime/protocol_check.hpp"

namespace parsssp {

class ThreadPool {
 public:
  /// Creates a pool with `lanes` lanes (clamped to >= 1). `checked` turns
  /// on runtime verification of the lane-handoff protocol.
  explicit ThreadPool(unsigned lanes, bool checked = checked_runtime_default());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned lanes() const { return lanes_; }
  bool checked() const { return checked_; }

  /// Runs fn(lane) once on every lane; returns when all lanes finished.
  /// Must be called from the thread that owns the pool (the rank thread);
  /// calling it from inside a lane would deadlock.
  void run_on_lanes(const std::function<void(unsigned)>& fn);

  /// Splits [0, n) into contiguous chunks, one per lane, and runs
  /// fn(lane, begin, end) on each. Empty chunks still invoke fn so lanes can
  /// participate in shared epilogues.
  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, std::size_t,
                                             std::size_t)>& fn);

 private:
  void worker_loop(unsigned lane);
  /// The un-checked dispatch path shared by checked and unchecked jobs.
  void dispatch(const std::function<void(unsigned)>& fn);

  unsigned lanes_;
  bool checked_;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  /// Current job; points at the caller's function for the duration of one
  /// generation (lifetime protected by pending_, see the class comment).
  const std::function<void(unsigned)>* job_ MPS_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ MPS_GUARDED_BY(mutex_) = 0;
  unsigned pending_ MPS_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ MPS_GUARDED_BY(mutex_) = false;
};

}  // namespace parsssp
