// Intra-rank worker lanes: the stand-in for the paper's 64 Pthreads per
// Blue Gene/Q node. A pool with L lanes runs lane 0 on the calling (rank)
// thread and lanes 1..L-1 on persistent workers; parallel_for chunks an
// index range across lanes. With L == 1 everything runs inline with zero
// synchronization, which is the default on this single-core harness.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parsssp {

class ThreadPool {
 public:
  /// Creates a pool with `lanes` lanes (clamped to >= 1).
  explicit ThreadPool(unsigned lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned lanes() const { return lanes_; }

  /// Runs fn(lane) once on every lane; returns when all lanes finished.
  void run_on_lanes(const std::function<void(unsigned)>& fn);

  /// Splits [0, n) into contiguous chunks, one per lane, and runs
  /// fn(lane, begin, end) on each. Empty chunks still invoke fn so lanes can
  /// participate in shared epilogues.
  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, std::size_t,
                                             std::size_t)>& fn);

 private:
  void worker_loop(unsigned lane);

  unsigned lanes_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool shutting_down_ = false;
};

}  // namespace parsssp
