// A single named background service loop — the only dispatcher-thread
// primitive in the repository. Layers above the runtime (notably
// src/serve/) are forbidden from spawning threads directly (lint rule R1);
// they express "a loop that reacts to work" as a ServiceThread step
// function and keep all policy on their side.
//
// The loop alternates step() calls with idle waits:
//
//   * step() returns true  -> more work is immediately pending; loop again
//                             without waiting.
//   * step() returns false -> nothing to do right now; park until wake() or
//                             for at most `idle_wait`, then poll again. The
//                             timed poll is what lets steps implement
//                             deadline policies (e.g. "close this batch
//                             after 200us") without owning a timer.
//
// wake() calls are never lost: a wake that arrives while step() is running
// is consumed by skipping the next idle wait. step() must not throw — an
// escaping exception leaves the loop thread and terminates the process.
#pragma once

#include <chrono>
#include <functional>
#include <thread>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace parsssp {

class ServiceThread {
 public:
  /// `step` is called repeatedly from the service thread; see the file
  /// comment for its contract.
  ServiceThread(std::function<bool()> step, std::chrono::nanoseconds idle_wait);

  /// Stops the loop (after any in-flight step() returns) and joins.
  ~ServiceThread();

  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  /// Signals that work is available: the loop runs step() again promptly
  /// instead of sleeping out its idle wait. Thread-safe.
  void wake();

 private:
  void loop();

  std::function<bool()> step_;
  std::chrono::nanoseconds idle_wait_;

  Mutex mutex_;
  CondVar cv_;
  bool stop_ MPS_GUARDED_BY(mutex_) = false;
  bool wake_pending_ MPS_GUARDED_BY(mutex_) = false;

  std::thread thread_;  ///< last member: started after all state exists
};

}  // namespace parsssp
