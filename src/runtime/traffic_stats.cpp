#include "runtime/traffic_stats.hpp"

#include <algorithm>
#include <numeric>

namespace parsssp {

std::string_view phase_kind_name(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kShortPhase:
      return "short";
    case PhaseKind::kLongPush:
      return "long-push";
    case PhaseKind::kPullRequest:
      return "pull-request";
    case PhaseKind::kPullResponse:
      return "pull-response";
    case PhaseKind::kBellmanFord:
      return "bellman-ford";
    case PhaseKind::kControl:
      return "control";
    case PhaseKind::kAsync:
      return "async";
    case PhaseKind::kCount:
      break;
  }
  return "?";
}

std::uint64_t TrafficCounters::total_messages() const {
  return std::accumulate(messages.begin(), messages.end(), std::uint64_t{0});
}

std::uint64_t TrafficCounters::total_bytes() const {
  return std::accumulate(bytes.begin(), bytes.end(), std::uint64_t{0});
}

TrafficCounters& TrafficCounters::operator+=(const TrafficCounters& other) {
  for (std::size_t i = 0; i < messages.size(); ++i) {
    messages[i] += other.messages[i];
    bytes[i] += other.bytes[i];
  }
  allreduces += other.allreduces;
  barriers += other.barriers;
  return *this;
}

TrafficCounters TrafficStats::merged() const {
  TrafficCounters sum;
  for (const auto& c : per_rank_) sum += c;
  return sum;
}

std::uint64_t TrafficStats::max_rank_messages() const {
  std::uint64_t best = 0;
  for (const auto& c : per_rank_) best = std::max(best, c.total_messages());
  return best;
}

void TrafficStats::reset() {
  for (auto& c : per_rank_) c = TrafficCounters{};
}

}  // namespace parsssp
