// Collective operations over the simulated machine: barrier, allreduce,
// broadcast, allgather. These model the Allreduce/termination-check traffic
// the paper's bulk-synchronous epochs rely on.
//
// Protocol: every rank deposits its contribution into a cache-line-sized
// scratch slot, a barrier separates writes from reads, every rank folds all
// slots *in rank order* (so each rank computes bit-identical results), and a
// second barrier releases the slots for reuse.
#pragma once

#include <array>
#include <barrier>
#include <cstddef>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

class CollectiveContext {
 public:
  explicit CollectiveContext(rank_t num_ranks)
      : num_ranks_(num_ranks),
        barrier_(static_cast<std::ptrdiff_t>(num_ranks)),
        scratch_(num_ranks) {}

  rank_t num_ranks() const { return num_ranks_; }

  void barrier() { barrier_.arrive_and_wait(); }

  template <typename T, typename Op>
  T allreduce(rank_t rank, T value, Op op) {
    store(rank, value);
    barrier();
    T acc = load<T>(0);
    for (rank_t r = 1; r < num_ranks_; ++r) acc = op(acc, load<T>(r));
    barrier();
    return acc;
  }

  template <typename T>
  T broadcast(rank_t rank, T value, rank_t root) {
    if (rank == root) store(rank, value);
    barrier();
    T result = load<T>(root);
    barrier();
    return result;
  }

  template <typename T>
  std::vector<T> allgather(rank_t rank, T value) {
    store(rank, value);
    barrier();
    std::vector<T> result(num_ranks_);
    for (rank_t r = 0; r < num_ranks_; ++r) result[r] = load<T>(r);
    barrier();
    return result;
  }

 private:
  static constexpr std::size_t kSlotBytes = 64;
  struct alignas(64) Slot {
    std::array<std::byte, kSlotBytes> bytes;
  };

  template <typename T>
  void store(rank_t rank, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= kSlotBytes, "collective payload too large");
    std::memcpy(scratch_[rank].bytes.data(), &value, sizeof(T));
  }

  template <typename T>
  T load(rank_t rank) const {
    T value;
    std::memcpy(&value, scratch_[rank].bytes.data(), sizeof(T));
    return value;
  }

  rank_t num_ranks_;
  std::barrier<> barrier_;
  std::vector<Slot> scratch_;
};

/// Reduction functors with the value semantics of MPI_SUM / MPI_MIN / ...
struct SumOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a + b;
  }
};
struct MinOp {
  template <typename T>
  T operator()(T a, T b) const {
    return b < a ? b : a;
  }
};
struct MaxOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? b : a;
  }
};
struct OrOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a || b;
  }
};
struct AndOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a && b;
  }
};

}  // namespace parsssp
