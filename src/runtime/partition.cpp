#include "runtime/partition.hpp"

// BlockPartition is header-only; this translation unit anchors the target.
namespace parsssp {
static_assert(sizeof(BlockPartition) > 0);
}  // namespace parsssp
