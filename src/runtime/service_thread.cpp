#include "runtime/service_thread.hpp"

#include <utility>

namespace parsssp {

ServiceThread::ServiceThread(std::function<bool()> step,
                             std::chrono::nanoseconds idle_wait)
    : step_(std::move(step)),
      idle_wait_(idle_wait),
      thread_([this] { loop(); }) {}

ServiceThread::~ServiceThread() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void ServiceThread::wake() {
  {
    MutexLock lock(mutex_);
    wake_pending_ = true;
  }
  cv_.notify_all();
}

void ServiceThread::loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stop_) return;
      // Consume any wake that arrived since the last step: that work is
      // about to be observed by the step() call below.
      wake_pending_ = false;
    }
    const bool busy = step_();
    MutexLock lock(mutex_);
    if (stop_) return;
    if (!busy && !wake_pending_) cv_.wait_for(mutex_, idle_wait_);
  }
}

}  // namespace parsssp
