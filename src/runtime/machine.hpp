// The simulated massively-parallel machine.
//
// Machine::run(job) executes `job` on R logical ranks, one std::thread per
// rank (our stand-in for a Blue Gene/Q partition). Each rank receives a
// RankCtx giving it:
//   * its identity (rank(), num_ranks()),
//   * bulk-synchronous point-to-point exchange() over the ExchangeBoard
//     (the "SPI" substitute),
//   * typed collectives (allreduce / broadcast / allgather / barrier),
//   * an intra-rank ThreadPool of worker lanes (the "64 threads per node"),
//   * per-rank traffic accounting.
//
// Algorithms written against RankCtx are bulk-synchronous programs in the
// exact shape of the paper's distributed Delta-stepping: they would port to
// MPI by replacing exchange() with MPI_Alltoallv and the collectives with
// their MPI counterparts.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/collectives.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/traffic_stats.hpp"

namespace parsssp {

struct MachineConfig {
  rank_t num_ranks = 4;
  unsigned lanes_per_rank = 1;
  /// Record the full (source rank, destination rank) message-count matrix
  /// of each run — the input to topology analyses (runtime/topology.hpp).
  bool record_pair_traffic = false;
};

class Machine;

/// Per-rank execution context handed to a job. Valid only for the duration
/// of the job invocation; not copyable.
class RankCtx {
 public:
  rank_t rank() const { return rank_; }
  rank_t num_ranks() const { return board_.num_ranks(); }
  ThreadPool& pool() { return pool_; }
  TrafficCounters& traffic() { return traffic_; }

  void barrier() { collectives_.barrier(); }

  template <typename T, typename Op>
  T allreduce(T value, Op op) {
    count_control<T>();
    return collectives_.allreduce(rank_, value, op);
  }

  template <typename T>
  T broadcast(T value, rank_t root) {
    count_control<T>();
    return collectives_.broadcast(rank_, value, root);
  }

  template <typename T>
  std::vector<T> allgather(T value) {
    count_control<T>();
    return collectives_.allgather(rank_, value);
  }

  /// Bulk-synchronous all-to-all: out[d] holds this rank's messages for rank
  /// d; the returned vector holds in[s], the messages rank s sent here.
  /// Self-addressed messages are delivered without touching the board (they
  /// model intra-node work, not network traffic). Collective: every rank
  /// must call exchange() the same number of times.
  template <typename T>
  std::vector<std::vector<T>> exchange(std::vector<std::vector<T>> out,
                                       PhaseKind kind) {
    static_assert(std::is_trivially_copyable_v<T>);
    const rank_t r = rank_;
    const rank_t ranks = num_ranks();
    out.resize(ranks);
    for (rank_t d = 0; d < ranks; ++d) {
      if (d == r) continue;
      traffic_.add(kind, out[d].size(), out[d].size() * sizeof(T));
      if (pair_messages_ != nullptr) {
        // Row r is written only by rank r: no synchronization needed.
        (*pair_messages_)[static_cast<std::size_t>(r) * ranks + d] +=
            out[d].size();
      }
      board_.post(r, d,
                  ExchangeBoard::pack(std::span<const T>(out[d])));
    }
    collectives_.barrier();
    std::vector<std::vector<T>> in(ranks);
    for (rank_t s = 0; s < ranks; ++s) {
      if (s == r) {
        in[s] = std::move(out[s]);
      } else {
        in[s] = ExchangeBoard::unpack<T>(board_.take(s, r));
      }
    }
    collectives_.barrier();
    return in;
  }

 private:
  friend class Machine;
  RankCtx(rank_t rank, ExchangeBoard& board, CollectiveContext& collectives,
          TrafficCounters& traffic, unsigned lanes,
          std::vector<std::uint64_t>* pair_messages)
      : rank_(rank),
        board_(board),
        collectives_(collectives),
        traffic_(traffic),
        pair_messages_(pair_messages),
        pool_(lanes) {}

  RankCtx(const RankCtx&) = delete;
  RankCtx& operator=(const RankCtx&) = delete;

  template <typename T>
  void count_control() {
    traffic_.add(PhaseKind::kControl, num_ranks() - 1,
                 (num_ranks() - 1) * sizeof(T));
  }

  rank_t rank_;
  ExchangeBoard& board_;
  CollectiveContext& collectives_;
  TrafficCounters& traffic_;
  std::vector<std::uint64_t>* pair_messages_;
  ThreadPool pool_;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  const MachineConfig& config() const { return config_; }
  rank_t num_ranks() const { return config_.num_ranks; }

  /// Runs `job` on every rank and waits for completion. Traffic counters are
  /// reset at the start of each run. The first exception thrown by any rank
  /// is rethrown here after all ranks finished or aborted at a barrier.
  void run(const std::function<void(RankCtx&)>& job);

  /// Traffic of the most recent run.
  const TrafficStats& traffic() const { return traffic_; }

  /// Per-(source, destination) message counts of the most recent run,
  /// row-major num_ranks x num_ranks. Empty unless
  /// MachineConfig::record_pair_traffic.
  const std::vector<std::uint64_t>& pair_messages() const {
    return pair_messages_;
  }

 private:
  MachineConfig config_;
  TrafficStats traffic_;
  std::vector<std::uint64_t> pair_messages_;
};

}  // namespace parsssp
