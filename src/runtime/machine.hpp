// The simulated massively-parallel machine.
//
// Machine::run(job) executes `job` on R logical ranks, one std::thread per
// rank (our stand-in for a Blue Gene/Q partition). Each rank receives a
// RankCtx giving it:
//   * its identity (rank(), num_ranks()),
//   * bulk-synchronous point-to-point exchange() over the ExchangeBoard
//     (the "SPI" substitute),
//   * typed collectives (allreduce / broadcast / allgather / barrier),
//   * an intra-rank ThreadPool of worker lanes (the "64 threads per node"),
//   * per-rank traffic accounting.
//
// Algorithms written against RankCtx are bulk-synchronous programs in the
// exact shape of the paper's distributed Delta-stepping: they would port to
// MPI by replacing exchange() with MPI_Alltoallv and the collectives with
// their MPI counterparts.
//
// Ownership discipline: a RankCtx is owned by the rank thread that Machine
// spawned it on. Its traffic counters, exchange round counter, and pool
// dispatch are single-owner state — worker lanes must not touch them. In
// checked mode (MachineConfig::checked_exchange) that ownership is asserted
// at runtime, and exchange() stamps each post/take with the rank's round
// number so the ExchangeBoard can catch ranks whose collective calls
// diverged. See runtime/protocol_check.hpp.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "obs/trace.hpp"
#include "runtime/collectives.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/protocol_check.hpp"
#include "runtime/send_buffer_pool.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/traffic_stats.hpp"

namespace parsssp {

struct MachineConfig {
  rank_t num_ranks = 4;
  unsigned lanes_per_rank = 1;
  /// Record the full (source rank, destination rank) message-count matrix
  /// of each run — the input to topology analyses (runtime/topology.hpp).
  bool record_pair_traffic = false;
  /// Runtime-check the exchange/lane/ownership protocols (Debug default).
  bool checked_exchange = checked_runtime_default();
};

class Machine;

/// Per-rank execution context handed to a job. Valid only for the duration
/// of the job invocation; not copyable. Owned by its rank thread: all
/// methods except num_ranks() must be called from that thread.
class RankCtx {
 public:
  rank_t rank() const { return rank_; }
  rank_t num_ranks() const { return board_.num_ranks(); }
  ThreadPool& pool() {
    check_owner("pool()");
    return pool_;
  }
  TrafficCounters& traffic() {
    check_owner("traffic()");
    return traffic_;
  }

  /// Observability: exchange spans are recorded into `lane` (null = off).
  /// Engines set this at the start of a traced job and clear it before
  /// returning — the lane must outlive the interval in between. Rank-owned
  /// state, like the traffic counters.
  void set_trace(TraceLane* lane) {
    check_owner("set_trace()");
    trace_ = lane;
  }

  void barrier() {
    check_owner("barrier()");
    ++traffic_.barriers;
    collectives_.barrier();
  }

  template <typename T, typename Op>
  T allreduce(T value, Op op) {
    check_owner("allreduce()");
    count_control<T>();
    return collectives_.allreduce(rank_, value, op);
  }

  template <typename T>
  T broadcast(T value, rank_t root) {
    check_owner("broadcast()");
    count_control<T>();
    return collectives_.broadcast(rank_, value, root);
  }

  template <typename T>
  std::vector<T> allgather(T value) {
    check_owner("allgather()");
    count_control<T>();
    return collectives_.allgather(rank_, value);
  }

  /// Bulk-synchronous all-to-all: out[d] holds this rank's messages for rank
  /// d; the returned vector holds in[s], the messages rank s sent here.
  /// Self-addressed messages are delivered without touching the board (they
  /// model intra-node work, not network traffic). Collective: every rank
  /// must call exchange() the same number of times — enforced in checked
  /// mode by stamping posts/takes with this rank's round counter.
  template <typename T>
  std::vector<std::vector<T>> exchange(std::vector<std::vector<T>> out,
                                       PhaseKind kind) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_owner("exchange()");
    ScopedSpan span(trace_, SpanCat::kExchange);
    traffic_.barriers += 2;  // the post/take fences below
    const rank_t r = rank_;
    const rank_t ranks = num_ranks();
    const std::uint64_t round = ++exchange_round_;
    out.resize(ranks);
    for (rank_t d = 0; d < ranks; ++d) {
      if (d == r) continue;
      traffic_.add(kind, out[d].size(), out[d].size() * sizeof(T));
      if (pair_messages_ != nullptr) {
        // Row r is written only by rank r: no synchronization needed.
        (*pair_messages_)[static_cast<std::size_t>(r) * ranks + d] +=
            out[d].size();
      }
      board_.post(r, d, ExchangeBoard::pack(std::span<const T>(out[d])),
                  round);
    }
    collectives_.barrier();
    std::vector<std::vector<T>> in(ranks);
    for (rank_t s = 0; s < ranks; ++s) {
      if (s == r) {
        in[s] = std::move(out[s]);
      } else {
        in[s] = ExchangeBoard::unpack<T>(board_.take(s, r, round));
      }
    }
    collectives_.barrier();
    return in;
  }

  /// Zero-copy bulk-synchronous all-to-all over a SendBufferPool: each
  /// non-empty (lane, dest) shard moves through the board as its own
  /// segment — no lane merge, no pack/unpack memcpy. Results land in
  /// `pool.incoming()` in canonical order (source rank ascending, self
  /// in place, lane ascending within a source); the previous round's
  /// incoming buffers are recycled onto the pool's free list. Collective:
  /// same round discipline as exchange(), and in checked mode every slot
  /// is stamped even when the segment list is empty.
  ///
  /// TrafficCounters see exactly what crosses the board — message counts
  /// and bytes *after* any sender-side reduction the caller performed.
  template <typename T>
  void exchange_pooled(SendBufferPool<T>& pool, PhaseKind kind) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_owner("exchange_pooled()");
    ScopedSpan span(trace_, SpanCat::kExchange);
    traffic_.barriers += 2;  // the post/take fences below
    const rank_t r = rank_;
    const rank_t ranks = num_ranks();
    const unsigned lanes = pool.lanes();
    const std::uint64_t round = ++exchange_round_;
    pool.clear_incoming();
    for (rank_t d = 0; d < ranks; ++d) {
      if (d == r) continue;
      std::vector<ErasedBuffer> segments;
      std::uint64_t msgs = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        std::vector<T>& shard = pool.shard(l, d);
        if (shard.empty()) continue;
        msgs += shard.size();
        segments.push_back(ErasedBuffer(std::move(shard)));
      }
      traffic_.add(kind, msgs, msgs * sizeof(T));
      if (pair_messages_ != nullptr) {
        (*pair_messages_)[static_cast<std::size_t>(r) * ranks + d] += msgs;
      }
      board_.post_segments(r, d, std::move(segments), round);
    }
    collectives_.barrier();
    for (rank_t s = 0; s < ranks; ++s) {
      if (s == r) {
        // Self-delivery stays off the board, but in canonical position.
        for (unsigned l = 0; l < lanes; ++l) {
          std::vector<T>& shard = pool.shard(l, r);
          if (shard.empty()) continue;
          pool.push_incoming(s, std::move(shard));
        }
      } else {
        for (ErasedBuffer& seg : board_.take_segments(s, r, round)) {
          pool.push_incoming(s, seg.take_as<T>());
        }
      }
    }
    collectives_.barrier();
  }

  /// Reference-path counterpart of exchange_pooled(): merges the pool's
  /// lane shards into dense per-destination vectors (the pre-pool engine's
  /// serial lane merge) and runs the byte-packing exchange(), then parks
  /// the results in `pool.incoming()`. Exists so the pooled path has a
  /// seed-faithful baseline to be verified and benchmarked against.
  template <typename T>
  void exchange_merged(SendBufferPool<T>& pool, PhaseKind kind) {
    std::vector<std::vector<T>> in = exchange(pool.merged(), kind);
    pool.clear_incoming();
    for (rank_t s = 0; s < num_ranks(); ++s) {
      pool.push_incoming(s, std::move(in[s]));
    }
  }

 private:
  friend class Machine;
  friend class MachineSession;
  RankCtx(rank_t rank, ExchangeBoard& board, CollectiveContext& collectives,
          TrafficCounters& traffic, unsigned lanes, bool checked,
          std::vector<std::uint64_t>* pair_messages)
      : rank_(rank),
        board_(board),
        collectives_(collectives),
        traffic_(traffic),
        pair_messages_(pair_messages),
        checked_(checked),
        owner_(std::this_thread::get_id()),
        pool_(lanes, checked) {}

  RankCtx(const RankCtx&) = delete;
  RankCtx& operator=(const RankCtx&) = delete;

  /// Checked mode: asserts the caller is the owning rank thread (catches,
  /// e.g., a worker lane touching traffic counters or issuing collectives).
  void check_owner(const char* what) const {
    if (checked_ && std::this_thread::get_id() != owner_) {
      protocol_violation(std::string("RankCtx::") + what +
                         " called from a thread that does not own rank " +
                         std::to_string(rank_) +
                         " (worker lanes must not touch rank-owned state)");
    }
  }

  template <typename T>
  void count_control() {
    // Every collective is one global synchronization point, whatever its
    // payload — the latency term the async engine eliminates.
    ++traffic_.allreduces;
    traffic_.add(PhaseKind::kControl, num_ranks() - 1,
                 (num_ranks() - 1) * sizeof(T));
  }

  rank_t rank_;
  ExchangeBoard& board_;
  CollectiveContext& collectives_;
  // Owned by the rank thread; see the class comment. Never touched by
  // worker lanes (checked at runtime via check_owner()).
  TrafficCounters& traffic_;
  std::vector<std::uint64_t>* pair_messages_;
  bool checked_;
  std::thread::id owner_;
  std::uint64_t exchange_round_ = 0;
  TraceLane* trace_ = nullptr;  ///< rank-owned; see set_trace()
  ThreadPool pool_;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  const MachineConfig& config() const { return config_; }
  rank_t num_ranks() const { return config_.num_ranks; }

  /// Runs `job` on every rank and waits for completion. Traffic counters are
  /// reset at the start of each run. The first exception thrown by any rank
  /// is rethrown here after all ranks finished or aborted at a barrier.
  void run(const std::function<void(RankCtx&)>& job);

  /// Traffic of the most recent run.
  const TrafficStats& traffic() const { return traffic_; }

  /// Per-(source, destination) message counts of the most recent run,
  /// row-major num_ranks x num_ranks. Empty unless
  /// MachineConfig::record_pair_traffic.
  const std::vector<std::uint64_t>& pair_messages() const {
    return pair_messages_;
  }

 private:
  /// First-error capture shared by the rank threads of one run.
  struct ErrorSlot {
    Mutex mutex;
    std::exception_ptr first MPS_GUARDED_BY(mutex);

    void capture() {
      MutexLock lock(mutex);
      if (!first) first = std::current_exception();
    }
    std::exception_ptr get() {
      MutexLock lock(mutex);
      return first;
    }
  };

  MachineConfig config_;
  // Written by rank threads during run() (each rank its own slot / matrix
  // row), read after join: synchronized by thread creation and join.
  TrafficStats traffic_;
  std::vector<std::uint64_t> pair_messages_;
};

}  // namespace parsssp
