// Runtime protocol checking for the simulated machine (MPS_CHECKED_EXCHANGE).
//
// The runtime's lock-free structures (ExchangeBoard slots, per-rank traffic
// counters, lane-chunk handoff) are safe only under usage protocols that the
// type system cannot express: "each slot is written by exactly one rank per
// round, with a barrier between post and take", "counters are touched only
// by their owning rank thread", "every lane runs its chunk exactly once".
// In checked mode those protocols become machine-enforced state machines
// that fail loudly at the first violation instead of corrupting memory.
//
// Checked mode is a per-object runtime flag whose default is
// checked_runtime_default(): on in builds that define MPS_CHECKED_EXCHANGE
// (the Debug default, see the top-level CMakeLists.txt), off otherwise so
// release hot paths pay nothing but a predictable branch. Tests construct
// checked objects explicitly, so protocol violations are caught in every
// build configuration.
#pragma once

#include <stdexcept>
#include <string>

namespace parsssp {

/// Error thrown when a checked runtime protocol is violated: double post,
/// take before the exchange barrier, cross-round leakage, out-of-range
/// ranks, cross-thread use of rank-owned state, or a broken lane handoff.
class ProtocolError : public std::logic_error {
 public:
  explicit ProtocolError(const std::string& diagnostic);
};

/// Prints `diagnostic` to stderr and throws ProtocolError. On the rank (or
/// test) thread the error is catchable and Machine::run rethrows it; if a
/// worker-lane thread violates a protocol the exception escapes the lane
/// loop and terminates the process — the promised abort-with-diagnostic.
[[noreturn]] void protocol_violation(const std::string& diagnostic);

/// Default for the `checked` flag of runtime objects.
constexpr bool checked_runtime_default() {
#if defined(MPS_CHECKED_EXCHANGE)
  return true;
#else
  return false;
#endif
}

}  // namespace parsssp
