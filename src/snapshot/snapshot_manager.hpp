// Publication and reclamation of GraphSnapshots (docs/SNAPSHOTS.md).
//
// The manager owns the MVCC machinery of one dynamic graph:
//
//   * current()  — the reader hot path: pins and returns the latest
//     published snapshot without taking any lock (an EpochGate closes the
//     load-then-pin window against concurrent retirement).
//   * publish()  — the writer path, serialized by an internal mutex:
//     installs a new head with a unique monotone publish sequence, drains
//     the reader gate, stamps the superseded head's retire clock and
//     opportunistically reclaims every snapshot whose last external pin
//     has dropped (epoch-style deferred reclamation — nothing is freed
//     while any reader can still reach it).
//   * touched_between() — the bounded patch log: which vertices' adjacency
//     changed between two publish sequences, so a serving layer can patch
//     its per-rank edge views instead of rebuilding them (nullopt across a
//     base swap or when the log no longer covers the range).
//
// The manager keeps one reference per live snapshot; dropping the manager
// releases those references but never invalidates outstanding SnapshotRefs
// — a pinned snapshot is fully self-contained (shared base CSR + own
// frozen delta) and reclaims itself when its last ref drops.
//
// Stats surface the health of the scheme: live snapshot count, the oldest
// pinned version (a leaked SnapshotRef shows up as this gauge going stale)
// and retire latencies (supersession to reclamation).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"
#include "snapshot/epoch_gate.hpp"
#include "snapshot/graph_snapshot.hpp"

namespace parsssp {

class SnapshotManager {
 public:
  struct Stats {
    std::uint64_t published = 0;         ///< publish() calls (incl. the seed)
    std::uint64_t reclaimed = 0;         ///< snapshots freed so far
    std::uint64_t live = 0;              ///< published minus reclaimed
    std::uint64_t head_version = 0;
    std::uint64_t head_seq = 0;
    /// Smallest version still reachable through a pin (== head_version
    /// when nothing old is pinned). A leaked SnapshotRef pins this gauge.
    std::uint64_t oldest_pinned_version = 0;
    double retire_latency_last_s = 0.0;
    double retire_latency_mean_s = 0.0;
    double retire_latency_max_s = 0.0;
  };

  /// Publishes the seed snapshot (sequence 1) immediately.
  explicit SnapshotManager(GraphSnapshot::Build first);

  /// Releases the manager's references. Snapshots still pinned elsewhere
  /// survive and reclaim themselves when their last SnapshotRef drops.
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Pins and returns the latest published snapshot. Lock-free reader hot
  /// path; safe from any thread, any time before the manager dies.
  SnapshotRef current() const;

  /// Publishes a new version and returns it pinned. Thread-safe, but
  /// publishes serialize on the writer mutex; the caller (DynamicGraph)
  /// already guarantees one writer. Blocks only for the reader-gate drain
  /// (readers hold the gate for a handful of instructions).
  SnapshotRef publish(GraphSnapshot::Build build);

  /// Union of touched vertices over publishes in (from_seq, to_seq],
  /// sorted and deduplicated — the set a view built at from_seq must
  /// re-patch to reach to_seq. nullopt when the range crosses a base swap
  /// or has aged out of the bounded log (rebuild instead).
  std::optional<std::vector<vid_t>> touched_between(std::uint64_t from_seq,
                                                    std::uint64_t to_seq) const;

  /// Reclaims every superseded snapshot whose external pins are gone.
  /// publish() does this too; call it from serving checkpoints so gauges
  /// do not wait for the next update. Returns snapshots freed.
  std::size_t collect();

  Stats stats() const;

  /// Publish/retire spans go to this lane. Owned by the (single) publish
  /// thread; call from that thread only.
  void set_trace_lane(TraceLane* lane);

 private:
  std::size_t collect_locked(TraceLane* lane) MPS_REQUIRES(mutex_);

  struct PatchEntry {
    std::uint64_t seq = 0;
    bool new_base = false;
    std::vector<vid_t> touched;
  };
  /// Patch entries beyond this age out; ensure_views falls back to a full
  /// rebuild across larger gaps.
  static constexpr std::size_t kPatchLogCap = 64;

  std::shared_ptr<SnapshotTallies> tallies_;
  EpochGate gate_;
  std::atomic<const GraphSnapshot*> head_{nullptr};

  mutable Mutex mutex_;
  std::vector<const GraphSnapshot*> live_ MPS_GUARDED_BY(mutex_);
  std::deque<PatchEntry> patches_ MPS_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ MPS_GUARDED_BY(mutex_) = 1;
  std::uint64_t published_ MPS_GUARDED_BY(mutex_) = 0;
  TraceLane* lane_ MPS_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace parsssp
