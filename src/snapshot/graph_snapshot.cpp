#include "snapshot/graph_snapshot.hpp"

#include <chrono>

namespace parsssp {

void FrozenDelta::append(vid_t v, std::span<const Arc> overlay,
                         std::span<const vid_t> tombstones) {
  verts_.push_back(v);
  overlay_.insert(overlay_.end(), overlay.begin(), overlay.end());
  tombs_.insert(tombs_.end(), tombstones.begin(), tombstones.end());
  overlay_off_.push_back(overlay_.size());
  tomb_off_.push_back(tombs_.size());
}

std::optional<std::size_t> FrozenDelta::find(vid_t v) const {
  const auto it = std::lower_bound(verts_.begin(), verts_.end(), v);
  if (it == verts_.end() || *it != v) return std::nullopt;
  return static_cast<std::size_t>(it - verts_.begin());
}

GraphSnapshot::GraphSnapshot(Build build, std::uint64_t publish_seq,
                             std::shared_ptr<SnapshotTallies> tallies)
    : base_(std::move(build.base)),
      delta_(std::move(build.delta)),
      version_(build.version),
      publish_seq_(publish_seq),
      max_weight_(build.max_weight),
      num_undirected_(build.num_undirected),
      touched_(std::move(build.touched)),
      new_base_(build.new_base),
      tallies_(std::move(tallies)) {}

void GraphSnapshot::unpin() const {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Last reference: record how long the snapshot lingered past its
  // supersession (0 when it was never superseded — manager shutdown).
  const std::int64_t retired_at =
      retired_at_ns_.load(std::memory_order_relaxed);
  if (retired_at != 0 && tallies_ != nullptr) {
    const std::int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count();
    const auto lat = static_cast<std::uint64_t>(
        now > retired_at ? now - retired_at : 0);
    tallies_->reclaimed.fetch_add(1, std::memory_order_relaxed);
    tallies_->retire_ns_total.fetch_add(lat, std::memory_order_relaxed);
    tallies_->retire_ns_last.store(lat, std::memory_order_relaxed);
    std::uint64_t prev = tallies_->retire_ns_max.load(std::memory_order_relaxed);
    while (prev < lat && !tallies_->retire_ns_max.compare_exchange_weak(
                             prev, lat, std::memory_order_relaxed)) {
    }
  }
  delete this;
}

std::vector<Arc> GraphSnapshot::arcs_of(vid_t v) const {
  std::vector<Arc> arcs;
  arcs.reserve(degree(v));
  for_each_arc(v, [&](const Arc& a) { arcs.push_back(a); });
  return arcs;
}

std::size_t GraphSnapshot::degree(vid_t v) const {
  const auto index = delta_.find(v);
  if (!index) return base_->degree(v);
  const std::span<const vid_t> tombs = delta_.tombstones_of(*index);
  std::size_t n = delta_.overlay_of(*index).size();
  for (const Arc& a : base_->neighbors(v)) {
    if (!std::binary_search(tombs.begin(), tombs.end(), a.to)) ++n;
  }
  return n;
}

std::optional<weight_t> GraphSnapshot::find_edge(vid_t u, vid_t v) const {
  if (u >= num_vertices() || v >= num_vertices()) return std::nullopt;
  if (const auto index = delta_.find(u)) {
    for (const Arc& a : delta_.overlay_of(*index)) {
      if (a.to == v) return a.w;
    }
    const std::span<const vid_t> tombs = delta_.tombstones_of(*index);
    if (std::binary_search(tombs.begin(), tombs.end(), v)) return std::nullopt;
  }
  std::optional<weight_t> best;
  for (const Arc& a : base_->neighbors(u)) {
    if (a.to == v && (!best || a.w < *best)) best = a.w;
  }
  return best;
}

LocalEdgeView GraphSnapshot::build_local_view(const BlockPartition& part,
                                              rank_t rank,
                                              std::uint32_t delta) const {
  const vid_t begin = part.begin(rank);
  const vid_t end = part.end(rank);
  std::vector<std::pair<vid_t, Arc>> pairs;
  for (vid_t v = begin; v < end; ++v) {
    for_each_arc(v, [&](const Arc& a) { pairs.emplace_back(v - begin, a); });
  }
  return LocalEdgeView::from_arcs(end - begin, std::move(pairs), delta);
}

}  // namespace parsssp
