// The reader/writer handshake behind SnapshotManager::current()
// (docs/SNAPSHOTS.md). Internal to src/snapshot/ — the serving layer sees
// only the GraphSnapshot / SnapshotManager facade (analyzer rule A3).
//
// Problem: a reader that loads the published head pointer and increments
// its refcount in two steps can be preempted between them; a writer that
// swaps the head and immediately drops its reference would then free the
// snapshot under the reader's feet. Classic epoch/hazard territory — but
// the serving hot path may not take a lock (the whole point of the MVCC
// layer is that queries never wait on updates).
//
// Scheme: two reader counters selected by epoch parity, with validation.
//
//   reader                                writer (after swapping head)
//   ------                                ----------------------------
//   e = epoch                             e = epoch++            (seq_cst)
//   active[e&1]++          (seq_cst)      spin until active[e&1] == 0
//   if epoch != e: undo, retry
//   p = head; p->pin()
//   active[e&1]--          (release)
//
// Why this is safe (all marked operations are seq_cst, so they have one
// total order): a reader that passed validation saw epoch == e *after* its
// increment, so the increment precedes the writer's epoch bump to e+1 in
// the total order, and therefore precedes the writer's drain reads — the
// writer waits for that reader. The pointer the reader then loads is
// either the head published at epoch e or (harmlessly) a newer one whose
// writer has not finished its own drain yet; in both cases the manager's
// reference on that snapshot cannot be dropped before the reader's pin()
// lands, because dropping it happens strictly after the drain completes
// and publishes are serialized by the manager's writer mutex. A reader
// that fails validation touched no pointer and retries on the fresh
// parity, which also keeps the drained (stale) counter from being
// re-entered forever — the writer's wait is bounded by the readers already
// in their ~4-instruction window.
//
// TSan-clean by construction: every shared access is an atomic with
// explicit ordering, no fences, no dependent loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/sync.hpp"

namespace parsssp {

class EpochGate {
 public:
  /// Runs `fn()` inside a validated reader window. `fn` must load the
  /// protected pointer and take its own reference before returning; the
  /// window is the only time that two-step sequence is safe. Retries
  /// (without having called `fn`) when a writer moved the epoch mid-entry.
  template <typename Fn>
  auto read(Fn&& fn) const {
    for (;;) {
      const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      std::atomic<std::uint64_t>& slot = active_[e & 1].value;
      slot.fetch_add(1, std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) == e) {
        auto result = fn();
        slot.fetch_sub(1, std::memory_order_release);
        return result;
      }
      // Stale parity: no pointer was touched, so plain undo is enough.
      slot.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Writer side, called *after* unpublishing the old pointer (and with
  /// publishes externally serialized): advances the epoch and waits until
  /// every reader that might still observe the old pointer has left its
  /// window. On return the caller may drop its reference to the old
  /// snapshot — any reader that got to it holds a pin of its own.
  void advance_and_drain() {
    const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_seq_cst);
    const std::atomic<std::uint64_t>& slot = active_[e & 1].value;
    while (slot.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  /// Ping-pong reader counters, cache-line padded: the reader fast path
  /// and the writer's drain spin must not false-share.
  mutable CacheAligned<std::atomic<std::uint64_t>> active_[2];
};

}  // namespace parsssp
