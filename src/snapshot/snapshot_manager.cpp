#include "snapshot/snapshot_manager.hpp"

#include <algorithm>
#include <chrono>

namespace parsssp {

namespace {

/// Absolute steady-clock nanoseconds — the retire stamp's timebase (shared
/// with GraphSnapshot::unpin, which computes the latency).
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::chrono::steady_clock::time_point steady_point(std::int64_t ns) {
  return std::chrono::steady_clock::time_point(std::chrono::nanoseconds(ns));
}

}  // namespace

SnapshotManager::SnapshotManager(GraphSnapshot::Build first)
    : tallies_(std::make_shared<SnapshotTallies>()) {
  publish(std::move(first));  // seed: sequence 1, the caller's version
}

SnapshotManager::~SnapshotManager() {
  MutexLock lock(mutex_);
  head_.store(nullptr, std::memory_order_seq_cst);
  gate_.advance_and_drain();
  // Drop the manager's references. Snapshots without external pins die
  // here; pinned ones live on self-contained until their last ref drops.
  for (const GraphSnapshot* s : live_) s->unpin();
  live_.clear();
}

SnapshotRef SnapshotManager::current() const {
  const GraphSnapshot* snap = gate_.read([this] {
    const GraphSnapshot* p = head_.load(std::memory_order_seq_cst);
    p->pin();
    return p;
  });
  return SnapshotRef::adopt(snap);
}

SnapshotRef SnapshotManager::publish(GraphSnapshot::Build build) {
  MutexLock lock(mutex_);
  const std::int64_t t0 = lane_ != nullptr ? lane_->now_ns() : 0;
  auto* snap = new GraphSnapshot(std::move(build), next_seq_++, tallies_);
  patches_.push_back(PatchEntry{
      snap->publish_seq(), snap->new_base(),
      std::vector<vid_t>(snap->touched().begin(), snap->touched().end())});
  while (patches_.size() > kPatchLogCap) patches_.pop_front();
  live_.push_back(snap);
  ++published_;
  const GraphSnapshot* old = head_.exchange(snap, std::memory_order_seq_cst);
  // After the drain every in-flight current() holds its own pin (or will
  // re-read the new head); the old head's manager reference may now be
  // reclaimed as soon as its external pins drop.
  gate_.advance_and_drain();
  if (old != nullptr) old->mark_retired(steady_now_ns());
  collect_locked(lane_);
  if (lane_ != nullptr) {
    lane_->record(SpanCat::kSnapshotPublish, t0, lane_->now_ns() - t0,
                  snap->version());
  }
  snap->pin();
  return SnapshotRef::adopt(snap);
}

std::optional<std::vector<vid_t>> SnapshotManager::touched_between(
    std::uint64_t from_seq, std::uint64_t to_seq) const {
  if (from_seq > to_seq) return std::nullopt;
  if (from_seq == to_seq) return std::vector<vid_t>{};
  MutexLock lock(mutex_);
  // Publish sequences are contiguous, so coverage is a range check against
  // the bounded log's ends.
  if (patches_.empty() || patches_.front().seq > from_seq + 1 ||
      patches_.back().seq < to_seq) {
    return std::nullopt;
  }
  std::vector<vid_t> touched;
  for (const PatchEntry& e : patches_) {
    if (e.seq <= from_seq || e.seq > to_seq) continue;
    if (e.new_base) return std::nullopt;  // view patching cannot bridge it
    touched.insert(touched.end(), e.touched.begin(), e.touched.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

std::size_t SnapshotManager::collect() {
  MutexLock lock(mutex_);
  return collect_locked(nullptr);
}

std::size_t SnapshotManager::collect_locked(TraceLane* lane) {
  const GraphSnapshot* head = head_.load(std::memory_order_relaxed);
  std::size_t freed = 0;
  auto it = live_.begin();
  while (it != live_.end()) {
    const GraphSnapshot* s = *it;
    // Reclaimable iff superseded and only the manager's reference remains:
    // current() can no longer return it (not head, and the publish that
    // superseded it drained the reader gate) and external pins only ever
    // copy existing ones — the acquire load makes the last reader's
    // accesses happen-before the delete.
    if (s == head || s->ref_count() > 1) {
      ++it;
      continue;
    }
    if (lane != nullptr) {
      // Span = the snapshot's limbo interval: supersession to reclamation.
      const std::int64_t retired_at =
          lane->to_ns(steady_point(s->retired_at_ns()));
      lane->record(SpanCat::kSnapshotRetire, retired_at,
                   lane->now_ns() - retired_at, s->version());
    }
    ++freed;
    it = live_.erase(it);
    s->unpin();  // 1 -> 0: records retire tallies and deletes
  }
  return freed;
}

SnapshotManager::Stats SnapshotManager::stats() const {
  MutexLock lock(mutex_);
  Stats out;
  out.published = published_;
  out.reclaimed = tallies_->reclaimed.load(std::memory_order_relaxed);
  out.live = live_.size();
  const GraphSnapshot* head = head_.load(std::memory_order_relaxed);
  if (head != nullptr) {
    out.head_version = head->version();
    out.head_seq = head->publish_seq();
    out.oldest_pinned_version = head->version();
  }
  for (const GraphSnapshot* s : live_) {
    if (s != head && s->ref_count() > 1) {
      out.oldest_pinned_version =
          std::min(out.oldest_pinned_version, s->version());
    }
  }
  const auto ns_total =
      tallies_->retire_ns_total.load(std::memory_order_relaxed);
  const auto ns_last = tallies_->retire_ns_last.load(std::memory_order_relaxed);
  const auto ns_max = tallies_->retire_ns_max.load(std::memory_order_relaxed);
  out.retire_latency_last_s = static_cast<double>(ns_last) * 1e-9;
  out.retire_latency_max_s = static_cast<double>(ns_max) * 1e-9;
  out.retire_latency_mean_s =
      out.reclaimed > 0
          ? static_cast<double>(ns_total) * 1e-9 /
                static_cast<double>(out.reclaimed)
          : 0.0;
  return out;
}

void SnapshotManager::set_trace_lane(TraceLane* lane) {
  MutexLock lock(mutex_);
  lane_ = lane;
}

}  // namespace parsssp
