// One immutable version of a dynamic graph, shared by reference counting
// (docs/SNAPSHOTS.md).
//
// A GraphSnapshot is a compacted CSR base (held by shared_ptr — several
// snapshot generations typically share one base) plus a FrozenDelta: a
// flat, immutable copy of the overlay/tombstone state the DynamicGraph had
// at publish time. Together they answer adjacency queries for exactly one
// logical graph version, forever — queries pin a snapshot and keep solving
// on it while newer versions are published and older ones are reclaimed.
//
// Lifetime is intrusive atomic refcounting: the SnapshotManager holds one
// reference from publish until reclamation, every SnapshotRef holds one,
// and the last unpin() deletes the snapshot (recording its retire latency
// into the shared SnapshotTallies block, which outlives both the manager
// and the snapshots). A snapshot is therefore fully self-contained — a
// SnapshotRef stays valid after the DynamicGraph, the SnapshotManager and
// the QueryEngine that produced it are all gone.
//
// Thread safety: everything const is safe from any number of threads
// concurrently (the whole object is immutable after construction except
// the refcount and the retire stamp, which are atomics).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/types.hpp"
#include "graph/csr.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

/// Reclamation tallies shared by every snapshot of one manager. Held by
/// shared_ptr from the manager *and* from each snapshot, so a snapshot
/// that outlives its manager still has somewhere safe to record its own
/// reclamation. Plain atomics; meaningful under concurrent readers.
struct SnapshotTallies {
  std::atomic<std::uint64_t> reclaimed{0};
  std::atomic<std::uint64_t> retire_ns_total{0};
  std::atomic<std::uint64_t> retire_ns_last{0};
  std::atomic<std::uint64_t> retire_ns_max{0};
};

/// Immutable flat copy of a DynamicGraph's per-vertex delta: for each
/// touched vertex (sorted), the overlay arcs added on top of the base and
/// the sorted neighbor ids whose base arcs are dead. Lookup is one binary
/// search over the touched-vertex index.
class FrozenDelta {
 public:
  FrozenDelta() = default;

  /// Build-time only: vertices must be appended in strictly increasing
  /// order (the DynamicGraph freezes its delta map through a sorted key
  /// pass).
  void append(vid_t v, std::span<const Arc> overlay,
              std::span<const vid_t> tombstones);

  bool empty() const { return verts_.empty(); }
  std::size_t vertices() const { return verts_.size(); }
  std::size_t entries() const { return overlay_.size() + tombs_.size(); }

  /// Index of `v` in the touched set, or nullopt when the base adjacency
  /// of `v` is untouched by this delta.
  std::optional<std::size_t> find(vid_t v) const;

  std::span<const Arc> overlay_of(std::size_t index) const {
    return {overlay_.data() + overlay_off_[index],
            overlay_off_[index + 1] - overlay_off_[index]};
  }
  std::span<const vid_t> tombstones_of(std::size_t index) const {
    return {tombs_.data() + tomb_off_[index],
            tomb_off_[index + 1] - tomb_off_[index]};
  }

 private:
  std::vector<vid_t> verts_;  ///< touched vertices, strictly increasing
  std::vector<std::size_t> overlay_off_{0};
  std::vector<std::size_t> tomb_off_{0};
  std::vector<Arc> overlay_;
  std::vector<vid_t> tombs_;
};

class GraphSnapshot;

/// RAII pin on one GraphSnapshot. Copy pins again, move steals the pin;
/// the destructor unpins (which may reclaim the snapshot). Default
/// constructed = empty (static-mode serving passes these around too).
class SnapshotRef {
 public:
  SnapshotRef() = default;
  /// Adopts an already-counted reference (manager internal).
  static SnapshotRef adopt(const GraphSnapshot* snap) {
    return SnapshotRef(snap);
  }

  SnapshotRef(const SnapshotRef& other);
  SnapshotRef& operator=(const SnapshotRef& other);
  SnapshotRef(SnapshotRef&& other) noexcept
      : snap_(std::exchange(other.snap_, nullptr)) {}
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;
  ~SnapshotRef() { reset(); }

  void reset();
  const GraphSnapshot* get() const { return snap_; }
  const GraphSnapshot& operator*() const { return *snap_; }
  const GraphSnapshot* operator->() const { return snap_; }
  explicit operator bool() const { return snap_ != nullptr; }

 private:
  explicit SnapshotRef(const GraphSnapshot* snap) : snap_(snap) {}
  const GraphSnapshot* snap_ = nullptr;
};

class GraphSnapshot {
 public:
  /// Everything the publisher knows about the version being frozen.
  struct Build {
    std::shared_ptr<const CsrGraph> base;
    FrozenDelta delta;
    std::uint64_t version = 0;
    weight_t max_weight = 0;
    std::size_t num_undirected = 0;
    /// Vertices whose adjacency changed vs the previously published
    /// snapshot (the view-patch set; empty when new_base).
    std::vector<vid_t> touched;
    /// True when this publish swapped in a fresh base CSR (construction,
    /// compaction): per-vertex view patching cannot bridge it.
    bool new_base = false;
  };

  GraphSnapshot(Build build, std::uint64_t publish_seq,
                std::shared_ptr<SnapshotTallies> tallies);

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  /// Logical graph version (DynamicGraph::version() at publish). A
  /// compaction republishes the *same* version — same logical graph.
  std::uint64_t version() const { return version_; }
  /// Unique, monotone per-publish sequence number; unlike version() it
  /// distinguishes the pre- and post-compaction publishes.
  std::uint64_t publish_seq() const { return publish_seq_; }

  const CsrGraph& base() const { return *base_; }
  const std::shared_ptr<const CsrGraph>& base_ptr() const { return base_; }
  vid_t num_vertices() const { return base_->num_vertices(); }
  std::size_t num_undirected_edges() const { return num_undirected_; }
  /// Upper bound on the effective max edge weight at this version.
  weight_t max_weight() const { return max_weight_; }
  bool new_base() const { return new_base_; }
  std::span<const vid_t> touched() const { return touched_; }
  const FrozenDelta& delta() const { return delta_; }

  /// Invokes fn(Arc) for every effective arc out of `v`: base arcs in CSR
  /// order minus tombstoned neighbors, then overlay arcs in insertion
  /// order — bit-compatible with DynamicGraph::for_each_arc at the same
  /// version.
  template <typename Fn>
  void for_each_arc(vid_t v, Fn&& fn) const {
    const auto index = delta_.find(v);
    if (!index) {
      for (const Arc& a : base_->neighbors(v)) fn(a);
      return;
    }
    const std::span<const vid_t> tombs = delta_.tombstones_of(*index);
    for (const Arc& a : base_->neighbors(v)) {
      if (!std::binary_search(tombs.begin(), tombs.end(), a.to)) fn(a);
    }
    for (const Arc& a : delta_.overlay_of(*index)) fn(a);
  }

  /// The effective adjacency of `v`, materialized (for_each_arc order).
  std::vector<Arc> arcs_of(vid_t v) const;

  std::size_t degree(vid_t v) const;

  /// Current effective weight of edge {u, v}, or nullopt when absent.
  std::optional<weight_t> find_edge(vid_t u, vid_t v) const;

  /// Rank `rank`'s engine view of this version (the snapshot-path
  /// equivalent of LocalEdgeView::build / DynamicGraph::build_local_view).
  LocalEdgeView build_local_view(const BlockPartition& part, rank_t rank,
                                 std::uint32_t delta) const;

  // --- Lifetime ---------------------------------------------------------

  /// Takes one reference. Only legal while holding another reference (a
  /// SnapshotRef copy) or inside the manager's EpochGate reader window.
  void pin() const { refs_.fetch_add(1, std::memory_order_relaxed); }

  /// Drops one reference; the last drop records retire latency into the
  /// tallies and deletes the snapshot.
  void unpin() const;

  /// Current reference count (diagnostics/tests; racy by nature).
  std::uint64_t ref_count() const {
    return refs_.load(std::memory_order_acquire);
  }

  /// Manager only, under its writer mutex, after the snapshot has been
  /// superseded as head: stamps the moment the retire clock starts.
  void mark_retired(std::int64_t now_ns) const {
    retired_at_ns_.store(now_ns, std::memory_order_relaxed);
  }
  /// Absolute steady-clock ns of the supersession (0 = still head).
  std::int64_t retired_at_ns() const {
    return retired_at_ns_.load(std::memory_order_relaxed);
  }

 private:
  ~GraphSnapshot() = default;  ///< via unpin() only

  std::shared_ptr<const CsrGraph> base_;
  FrozenDelta delta_;
  std::uint64_t version_;
  std::uint64_t publish_seq_;
  weight_t max_weight_;
  std::size_t num_undirected_;
  std::vector<vid_t> touched_;
  bool new_base_;
  std::shared_ptr<SnapshotTallies> tallies_;

  /// Constructed at 1: the publisher (manager) owns the first reference.
  mutable std::atomic<std::uint64_t> refs_{1};
  /// 0 while this snapshot is (or has never stopped being) the head.
  mutable std::atomic<std::int64_t> retired_at_ns_{0};
};

inline SnapshotRef::SnapshotRef(const SnapshotRef& other) : snap_(other.snap_) {
  if (snap_ != nullptr) snap_->pin();
}

inline SnapshotRef& SnapshotRef::operator=(const SnapshotRef& other) {
  if (this != &other) {
    if (other.snap_ != nullptr) other.snap_->pin();
    reset();
    snap_ = other.snap_;
  }
  return *this;
}

inline SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this != &other) {
    reset();
    snap_ = std::exchange(other.snap_, nullptr);
  }
  return *this;
}

inline void SnapshotRef::reset() {
  if (snap_ != nullptr) {
    snap_->unpin();
    snap_ = nullptr;
  }
}

}  // namespace parsssp
