#include "seq/bellman_ford.hpp"

#include <vector>

namespace parsssp {

SeqSsspResult bellman_ford(const CsrGraph& g, vid_t root) {
  SeqSsspResult result;
  const vid_t n = g.num_vertices();
  result.dist.assign(n, kInfDist);
  result.buckets = 1;
  if (root >= n) return result;

  result.dist[root] = 0;
  std::vector<vid_t> active{root};
  std::vector<char> in_next(n, 0);

  while (!active.empty()) {
    ++result.phases;
    std::vector<vid_t> next;
    for (const vid_t u : active) {
      const dist_t du = result.dist[u];
      for (const Arc& a : g.neighbors(u)) {
        ++result.relaxations;
        const dist_t nd = du + a.w;
        if (nd < result.dist[a.to]) {
          result.dist[a.to] = nd;
          if (!in_next[a.to]) {
            in_next[a.to] = 1;
            next.push_back(a.to);
          }
        }
      }
    }
    for (const vid_t v : next) in_next[v] = 0;
    active = std::move(next);
  }
  return result;
}

}  // namespace parsssp
