// Sequential Bellman-Ford in the paper's "active vertex" formulation: each
// round relaxes all edges incident on vertices whose tentative distance
// changed in the previous round. Rounds = depth of the shortest-path tree.
#pragma once

#include "seq/dijkstra.hpp"

namespace parsssp {

SeqSsspResult bellman_ford(const CsrGraph& g, vid_t root);

}  // namespace parsssp
