#include "seq/dial.hpp"

#include <vector>

namespace parsssp {

SeqSsspResult dial(const CsrGraph& g, vid_t root) {
  SeqSsspResult result;
  const vid_t n = g.num_vertices();
  result.dist.assign(n, kInfDist);
  if (root >= n) return result;
  result.dist[root] = 0;

  // Circular bucket array would bound memory to max_weight+1 slots; a flat
  // lazily-grown array keeps the code obvious and is fine at library scale.
  std::vector<std::vector<vid_t>> buckets(1);
  buckets[0].push_back(root);

  for (std::size_t d = 0; d < buckets.size(); ++d) {
    bool settled_any = false;
    // Iterate by index: relaxations may append to the *current* bucket when
    // zero-weight edges exist.
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const vid_t u = buckets[d][i];
      if (result.dist[u] != d) continue;  // stale entry
      settled_any = true;
      ++result.phases;
      for (const Arc& a : g.neighbors(u)) {
        ++result.relaxations;
        const dist_t nd = static_cast<dist_t>(d) + a.w;
        if (nd < result.dist[a.to]) {
          result.dist[a.to] = nd;
          if (nd >= buckets.size()) buckets.resize(nd + 1);
          buckets[nd].push_back(a.to);
        }
      }
    }
    if (settled_any) ++result.buckets;
    buckets[d].clear();
    buckets[d].shrink_to_fit();
  }
  return result;
}

}  // namespace parsssp
