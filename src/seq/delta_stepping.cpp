#include "seq/delta_stepping.hpp"

#include <map>
#include <vector>

namespace parsssp {

SeqSsspResult delta_stepping(const CsrGraph& g, vid_t root,
                             const SeqDeltaOptions& options) {
  SeqSsspResult result;
  const vid_t n = g.num_vertices();
  result.dist.assign(n, kInfDist);
  if (root >= n) return result;
  const std::uint32_t delta = options.delta == 0 ? 1 : options.delta;

  auto& dist = result.dist;
  dist[root] = 0;

  // Lazy bucket queues: vertices may appear under stale indices; entries
  // are validated against bucket_of(dist[v]) on extraction.
  std::map<std::uint64_t, std::vector<vid_t>> buckets;
  buckets[0].push_back(root);

  std::vector<char> in_frontier(n, 0);
  std::vector<char> settled_mark(n, 0);

  while (!buckets.empty()) {
    // Advance to the next non-empty bucket (Allreduce-free here, but the
    // same lazy-min the distributed engine computes collectively).
    const std::uint64_t k = buckets.begin()->first;
    std::vector<vid_t> stale = std::move(buckets.begin()->second);
    buckets.erase(buckets.begin());

    std::vector<vid_t> frontier;
    for (const vid_t v : stale) {
      if (bucket_of(dist[v], delta) == k && !in_frontier[v]) {
        in_frontier[v] = 1;
        frontier.push_back(v);
      }
    }
    if (frontier.empty()) continue;
    ++result.buckets;

    std::vector<vid_t> epoch_members;  // for the long phase
    auto relax = [&](vid_t v, dist_t nd, std::vector<vid_t>* next) {
      ++result.relaxations;
      if (nd >= dist[v]) return;
      dist[v] = nd;
      const std::uint64_t j = bucket_of(nd, delta);
      if (j == k) {
        if (next != nullptr && !in_frontier[v]) {
          in_frontier[v] = 1;
          next->push_back(v);
        }
      } else {
        buckets[j].push_back(v);
      }
    };

    while (!frontier.empty()) {
      ++result.phases;
      std::vector<vid_t> next;
      for (const vid_t u : frontier) {
        in_frontier[u] = 0;
        if (options.edge_classification && !settled_mark[u]) {
          settled_mark[u] = 1;
          epoch_members.push_back(u);
        }
        const dist_t du = dist[u];
        for (const Arc& a : g.neighbors(u)) {
          if (options.edge_classification && a.w >= delta) continue;
          relax(a.to, du + a.w, &next);
        }
      }
      frontier = std::move(next);
    }

    if (options.edge_classification && !epoch_members.empty()) {
      ++result.phases;  // the single long-edge phase of this epoch
      for (const vid_t u : epoch_members) {
        const dist_t du = dist[u];
        for (const Arc& a : g.neighbors(u)) {
          if (a.w < delta) continue;
          relax(a.to, du + a.w, nullptr);
        }
      }
    }
  }
  return result;
}

}  // namespace parsssp
