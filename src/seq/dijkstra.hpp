// Sequential binary-heap Dijkstra: the correctness oracle for every other
// SSSP implementation in this library, plus per-run statistics used by the
// algorithm-comparison experiments (Fig. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace parsssp {

struct SeqSsspResult {
  std::vector<dist_t> dist;
  /// Total Relax(u, v) operations executed.
  std::uint64_t relaxations = 0;
  /// Number of outer iterations (heap pops for Dijkstra, rounds for
  /// Bellman-Ford, phases for Delta-stepping).
  std::uint64_t phases = 0;
  /// Buckets processed (Delta-stepping only; 1 for Bellman-Ford).
  std::uint64_t buckets = 0;
};

/// Classic Dijkstra with a binary heap and lazy deletion.
SeqSsspResult dijkstra(const CsrGraph& g, vid_t root);

/// Distances only (convenience for validation call sites).
std::vector<dist_t> dijkstra_distances(const CsrGraph& g, vid_t root);

}  // namespace parsssp
