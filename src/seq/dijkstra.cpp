#include "seq/dijkstra.hpp"

#include <queue>
#include <utility>

namespace parsssp {

SeqSsspResult dijkstra(const CsrGraph& g, vid_t root) {
  SeqSsspResult result;
  const vid_t n = g.num_vertices();
  result.dist.assign(n, kInfDist);
  if (root >= n) return result;

  using Entry = std::pair<dist_t, vid_t>;  // (tentative distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  result.dist[root] = 0;
  heap.push({0, root});

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != result.dist[u]) continue;  // stale entry (lazy deletion)
    ++result.phases;
    for (const Arc& a : g.neighbors(u)) {
      ++result.relaxations;
      const dist_t nd = d + a.w;
      if (nd < result.dist[a.to]) {
        result.dist[a.to] = nd;
        heap.push({nd, a.to});
      }
    }
  }
  return result;
}

std::vector<dist_t> dijkstra_distances(const CsrGraph& g, vid_t root) {
  return dijkstra(g, root).dist;
}

}  // namespace parsssp
