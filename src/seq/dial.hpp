// Dial's algorithm (Dial et al. 1979): Dijkstra with an array of buckets
// indexed by tentative distance, exploiting small integer weights. This is
// the algorithm the paper identifies with Delta-stepping at Delta = 1; the
// sequential form here serves as an additional oracle and as the natural
// baseline for bucket-array data-structure comparisons.
#pragma once

#include "seq/dijkstra.hpp"

namespace parsssp {

/// Requires non-negative integer weights; the bucket array is sized
/// max_weight * |V| in the worst case but grows lazily with the current
/// distance horizon.
SeqSsspResult dial(const CsrGraph& g, vid_t root);

}  // namespace parsssp
