// Sequential Delta-stepping, a direct transcription of the paper's Fig. 2
// pseudocode with optional Meyer-Sanders short/long edge classification.
// Delta = 1 recovers Dial's variant of Dijkstra; a huge Delta recovers
// Bellman-Ford. Used as a readable reference and to cross-check the phase /
// bucket / relaxation counters of the distributed engine.
#pragma once

#include "seq/dijkstra.hpp"

namespace parsssp {

struct SeqDeltaOptions {
  std::uint32_t delta = 25;
  /// Meyer-Sanders refinement: relax short edges (w < delta) in the inner
  /// phases and long edges once per settled vertex at epoch end.
  bool edge_classification = true;
};

SeqSsspResult delta_stepping(const CsrGraph& g, vid_t root,
                             const SeqDeltaOptions& options = {});

}  // namespace parsssp
