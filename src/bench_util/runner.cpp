#include "bench_util/runner.hpp"

#include "graph/graph_algos.hpp"

namespace parsssp {

const char* family_name(RmatFamily family) {
  return family == RmatFamily::kRmat1 ? "RMAT-1" : "RMAT-2";
}

RmatConfig family_config(RmatFamily family, std::uint32_t scale,
                         std::uint64_t seed) {
  RmatConfig cfg;
  cfg.params = family == RmatFamily::kRmat1 ? RmatParams::rmat1()
                                            : RmatParams::rmat2();
  cfg.scale = scale;
  cfg.edge_factor = 16;
  cfg.seed = seed + (family == RmatFamily::kRmat1 ? 0 : 0x10000);
  cfg.min_weight = 1;
  cfg.max_weight = 255;
  return cfg;
}

CsrGraph build_rmat_graph(RmatFamily family, std::uint32_t scale,
                          std::uint64_t seed) {
  return CsrGraph::from_edges(generate_rmat(family_config(family, scale, seed)));
}

RunSummary run_roots(Solver& solver, const SsspOptions& options,
                     std::span<const vid_t> roots) {
  RunSummary summary;
  summary.edges = solver.graph().num_undirected_edges();
  summary.roots = roots.size();
  const double ranks =
      static_cast<double>(solver.machine().config().num_ranks);
  for (const vid_t root : roots) {
    SsspResult r = solver.solve(root, options);
    const SsspStats& s = r.stats;
    summary.mean_model_gteps += s.gteps(summary.edges, /*modeled=*/true);
    summary.mean_model_time_s += s.model_time_s;
    summary.mean_model_bkt_s += s.model_bucket_time_s;
    summary.mean_model_other_s += s.model_other_time_s;
    summary.mean_wall_time_s += s.wall_time_s;
    summary.mean_relaxations += static_cast<double>(s.total_relaxations());
    summary.mean_relax_per_rank +=
        static_cast<double>(s.total_relaxations()) / ranks;
    summary.mean_buckets += static_cast<double>(s.buckets);
    summary.mean_phases += static_cast<double>(s.phases);
    summary.last_stats = std::move(r.stats);
  }
  if (!roots.empty()) {
    const double n = static_cast<double>(roots.size());
    summary.mean_model_gteps /= n;
    summary.mean_model_time_s /= n;
    summary.mean_model_bkt_s /= n;
    summary.mean_model_other_s /= n;
    summary.mean_wall_time_s /= n;
    summary.mean_relaxations /= n;
    summary.mean_relax_per_rank /= n;
    summary.mean_buckets /= n;
    summary.mean_phases /= n;
  }
  return summary;
}

std::vector<WeakScalingPoint> weak_scaling(const WeakScalingConfig& config,
                                           const SsspOptions& options) {
  std::vector<WeakScalingPoint> points;
  for (const rank_t ranks : config.rank_counts) {
    std::uint32_t log2_ranks = 0;
    while ((rank_t{1} << log2_ranks) < ranks) ++log2_ranks;
    WeakScalingPoint point;
    point.ranks = ranks;
    point.scale = config.log2_vertices_per_rank + log2_ranks;

    const CsrGraph g =
        build_rmat_graph(config.family, point.scale, config.seed);
    SolverConfig sc;
    sc.machine.num_ranks = ranks;
    sc.machine.lanes_per_rank = config.lanes_per_rank;
    Solver solver(g, sc);
    const std::vector<vid_t> roots =
        sample_roots(g, config.num_roots, config.seed ^ 0x700075ULL);
    point.summary = run_roots(solver, options, roots);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace parsssp
