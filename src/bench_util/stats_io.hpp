// Machine-readable export of run statistics: JSON for SsspStats /
// BatchSummary (for plotting pipelines downstream of the benches) and a
// tiny composable writer so benches can emit custom documents without a
// JSON dependency.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/instrumentation.hpp"
#include "core/solver.hpp"
#include "obs/metrics.hpp"

namespace parsssp {

/// Minimal JSON object writer: flat or nested objects/arrays of numbers,
/// strings and booleans. Produces deterministic key order (insertion).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();
  /// Begins an object inside an array.
  JsonWriter& begin_object_in_array();

  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, bool value);
  JsonWriter& field(std::string_view key, std::string_view value);

  /// Bare scalar elements inside an array.
  JsonWriter& value(bool v);
  JsonWriter& value(double v);

 private:
  void comma();
  void quote(std::string_view s);

  std::ostream& out_;
  std::vector<bool> first_in_scope_{};
};

/// Serializes one run's statistics.
void write_json(std::ostream& out, const SsspStats& stats,
                std::uint64_t num_edges);

/// Serializes a multi-root batch (Graph 500-style report).
void write_json(std::ostream& out, const BatchSummary& summary);

/// Serializes a metrics snapshot: {"counters": {...}, "gauges": {...},
/// "histograms": [{name, count, mean, p50, p95, p99, max}, ...]}.
void write_json(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace parsssp
