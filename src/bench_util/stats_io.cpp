#include "bench_util/stats_io.hpp"

#include <iomanip>
#include <ostream>

namespace parsssp {

void JsonWriter::comma() {
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ << ",";
    first_in_scope_.back() = false;
  }
}

void JsonWriter::quote(std::string_view s) {
  out_ << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out_ << '\\';
    out_ << c;
  }
  out_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ << '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ << '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  comma();
  quote(key);
  out_ << ":[";
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ << ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_object_in_array() { return begin_object(); }

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  comma();
  quote(key);
  out_ << ':' << std::setprecision(12) << value;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  comma();
  quote(key);
  out_ << ':' << value;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  comma();
  quote(key);
  out_ << ':' << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  comma();
  quote(key);
  out_ << ':';
  quote(value);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ << std::setprecision(12) << v;
  return *this;
}

namespace {

void write_stats_fields(JsonWriter& w, const SsspStats& s,
                        std::uint64_t num_edges) {
  w.field("edges", num_edges);
  w.field("relaxations", s.total_relaxations());
  w.field("short_relaxations", s.short_relaxations);
  w.field("long_push_relaxations", s.long_push_relaxations);
  w.field("pull_requests", s.pull_requests);
  w.field("pull_responses", s.pull_responses);
  w.field("bf_relaxations", s.bf_relaxations);
  w.field("async_relaxations", s.async_relaxations);
  w.field("stepping_relaxations", s.stepping_relaxations);
  w.field("phases", s.phases);
  w.field("buckets", s.buckets);
  w.field("switched_to_bf", s.switched_to_bf);
  w.field("sync_allreduces", s.sync_allreduces);
  w.field("sync_barriers", s.sync_barriers);
  w.field("global_syncs", s.global_syncs());
  w.field("quiescence_rounds", s.quiescence_rounds);
  w.field("token_hops", s.token_hops);
  w.field("model_time_s", s.model_time_s);
  w.field("model_bucket_time_s", s.model_bucket_time_s);
  w.field("model_other_time_s", s.model_other_time_s);
  w.field("wall_time_s", s.wall_time_s);
  w.field("gteps_model", s.gteps(num_edges, true));
}

}  // namespace

void write_json(std::ostream& out, const SsspStats& stats,
                std::uint64_t num_edges) {
  JsonWriter w(out);
  w.begin_object();
  write_stats_fields(w, stats, num_edges);
  w.begin_array("pull_decisions");
  for (const bool pull : stats.pull_decisions) w.value(pull);
  w.end_array();
  w.end_object();
  out << '\n';
}

void write_json(std::ostream& out, const BatchSummary& summary) {
  JsonWriter w(out);
  w.begin_object();
  w.field("num_roots", static_cast<std::uint64_t>(summary.num_roots));
  w.field("edges", summary.edges);
  w.field("harmonic_mean_gteps", summary.harmonic_mean_gteps);
  w.field("mean_gteps", summary.mean_gteps);
  w.field("min_gteps", summary.min_gteps);
  w.field("max_gteps", summary.max_gteps);
  w.field("mean_time_s", summary.mean_time_s);
  w.field("mean_relaxations", summary.mean_relaxations);
  w.begin_array("per_root");
  for (const SsspStats& s : summary.per_root) {
    w.begin_object_in_array();
    write_stats_fields(w, s, summary.edges);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

void write_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  JsonWriter w(out);
  w.begin_object();
  // Counters and gauges ride as one flat object each; histograms keep
  // their summary statistics (the registry stores no raw samples).
  w.begin_array("counters");
  for (const auto& c : snapshot.counters) {
    w.begin_object_in_array();
    w.field("name", c.name);
    w.field("value", c.value);
    w.end_object();
  }
  w.end_array();
  w.begin_array("gauges");
  for (const auto& g : snapshot.gauges) {
    w.begin_object_in_array();
    w.field("name", g.name);
    w.field("value", g.value);
    w.end_object();
  }
  w.end_array();
  w.begin_array("histograms");
  for (const auto& h : snapshot.histograms) {
    w.begin_object_in_array();
    w.field("name", h.name);
    w.field("count", h.count);
    w.field("mean", h.mean);
    w.field("p50", h.p50);
    w.field("p95", h.p95);
    w.field("p99", h.p99);
    w.field("max", h.max);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace parsssp
