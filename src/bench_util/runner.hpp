// Shared harness for the figure-reproduction benches: graph family presets,
// multi-root averaging, and weak-scaling sweeps (the paper's methodology:
// fixed vertices per node, 16 random roots per configuration).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/solver.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"

namespace parsssp {

/// The paper's two synthetic graph families (§IV-B).
enum class RmatFamily { kRmat1, kRmat2 };

const char* family_name(RmatFamily family);

/// Generator configuration for a family at a given scale.
RmatConfig family_config(RmatFamily family, std::uint32_t scale,
                         std::uint64_t seed = 1);

/// Generates and builds the CSR in one step.
CsrGraph build_rmat_graph(RmatFamily family, std::uint32_t scale,
                          std::uint64_t seed = 1);

/// Averages over roots of one (graph, machine, options) configuration.
struct RunSummary {
  std::uint64_t edges = 0;         ///< undirected edge count of the graph
  std::size_t roots = 0;
  double mean_model_gteps = 0;     ///< GTEPS under the machine cost model
  double mean_model_time_s = 0;
  double mean_model_bkt_s = 0;     ///< modeled BktTime
  double mean_model_other_s = 0;   ///< modeled OtherTime
  double mean_wall_time_s = 0;     ///< measured wall clock (host-serialized)
  double mean_relaxations = 0;     ///< paper counting rule (pull edges 2x)
  double mean_relax_per_rank = 0;  ///< Fig 10(c)'s per-thread average
  double mean_buckets = 0;
  double mean_phases = 0;
  SsspStats last_stats;            ///< full stats of the last root
};

/// Runs `options` from every root and averages.
RunSummary run_roots(Solver& solver, const SsspOptions& options,
                     std::span<const vid_t> roots);

/// One weak-scaling configuration: scale = log2(vertices_per_rank * ranks).
struct WeakScalingPoint {
  rank_t ranks = 0;
  std::uint32_t scale = 0;
  RunSummary summary;
};

struct WeakScalingConfig {
  RmatFamily family = RmatFamily::kRmat1;
  std::uint32_t log2_vertices_per_rank = 10;
  std::vector<rank_t> rank_counts = {1, 2, 4, 8, 16};
  std::size_t num_roots = 4;
  unsigned lanes_per_rank = 1;
  std::uint64_t seed = 1;
};

/// Runs the sweep for one algorithm configuration.
std::vector<WeakScalingPoint> weak_scaling(const WeakScalingConfig& config,
                                           const SsspOptions& options);

}  // namespace parsssp
