// Plain-text table / CSV printers used by every figure-reproduction bench
// to print rows in the shape of the paper's tables and plots.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace parsssp {

/// Column-aligned text table with an optional title. Cells are strings;
/// numeric helpers format with sensible precision.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Formats a double with `digits` significant decimals, trimming zeros.
  static std::string num(double value, int digits = 2);
  static std::string num(std::uint64_t value);

  void print(std::ostream& out) const;
  void print_csv(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a one-line "paper shape" annotation under a table: the qualitative
/// expectation from the paper that the rows above should exhibit.
void print_paper_note(std::ostream& out, const std::string& note);

}  // namespace parsssp
