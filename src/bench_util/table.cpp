#include "bench_util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace parsssp {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string TextTable::num(std::uint64_t value) {
  return std::to_string(value);
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    out << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& out) const {
  auto print_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void print_paper_note(std::ostream& out, const std::string& note) {
  out << "paper-shape: " << note << "\n";
}

}  // namespace parsssp
