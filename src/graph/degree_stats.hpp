// Degree-distribution statistics: the quantities behind Fig. 8 of the paper
// (maximum degree vs. scale for the two R-MAT families) and the heavy-vertex
// thresholds used by the load balancer.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"

namespace parsssp {

struct DegreeStats {
  std::size_t max_degree = 0;
  vid_t argmax_vertex = 0;
  double mean_degree = 0.0;
  std::size_t num_isolated = 0;
  /// log2 degree histogram: hist[k] = #vertices with degree in [2^k, 2^(k+1)).
  /// hist[0] counts degree 1 (isolated vertices are tracked separately).
  std::vector<std::size_t> log2_histogram;
  /// Number of vertices with degree strictly greater than the given
  /// thresholds (filled by compute_degree_stats for the query thresholds).
  std::size_t num_heavy = 0;

  /// p-th percentile of the (sorted) degree sequence, p in [0, 100].
  std::size_t percentile(const CsrGraph& g, double p) const;
};

/// Single pass over the CSR computing all DegreeStats fields.
/// `heavy_threshold` feeds `num_heavy` (vertices with degree > threshold).
DegreeStats compute_degree_stats(const CsrGraph& g,
                                 std::size_t heavy_threshold = 0);

/// Convenience: maximum degree only.
std::size_t max_degree(const CsrGraph& g);

}  // namespace parsssp
