#include "graph/vertex_split.hpp"

#include <algorithm>
#include <numeric>

#include "graph/rmat.hpp"

namespace parsssp {
namespace {

// Deterministic Fisher-Yates driven by the stateless hash. Fine at library
// scale (permutation is O(n) memory either way).
std::vector<vid_t> random_permutation(vid_t n, std::uint64_t seed) {
  std::vector<vid_t> perm(n);
  std::iota(perm.begin(), perm.end(), vid_t{0});
  for (vid_t i = n; i > 1; --i) {
    const vid_t j = static_cast<vid_t>(rmat_hash(seed, i) % i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace

std::vector<dist_t> SplitResult::project_distances(
    const std::vector<dist_t>& transformed) const {
  std::vector<dist_t> out(num_original, kInfDist);
  for (vid_t v = 0; v < num_original; ++v) {
    out[v] = transformed[orig_to_new[v]];
  }
  return out;
}

SplitResult split_heavy_vertices(const EdgeList& list, const CsrGraph& g,
                                 const SplitConfig& config) {
  const vid_t n = list.num_vertices();
  const std::size_t epp = config.edges_per_proxy == 0
                              ? config.degree_threshold
                              : config.edges_per_proxy;

  SplitResult result;
  result.num_original = n;

  // Endpoint occurrences per vertex in the edge list. This differs from the
  // CSR degree for self loops (two slots, one arc); proxies are allocated
  // against occurrences so the dealing below can never overflow a range.
  std::vector<vid_t> occurrences(n, 0);
  for (const auto& e : list.edges()) {
    ++occurrences[e.u];
    ++occurrences[e.v];
  }

  // Plan: per heavy vertex, the range of proxy ids allocated to it.
  std::vector<vid_t> first_proxy(n, 0);
  std::vector<vid_t> proxy_count(n, 0);
  vid_t next_proxy = n;
  for (vid_t v = 0; v < n; ++v) {
    if (g.degree(v) > config.degree_threshold) {
      const vid_t l =
          static_cast<vid_t>((occurrences[v] + epp - 1) / epp);
      first_proxy[v] = next_proxy;
      proxy_count[v] = l;
      next_proxy += l;
      ++result.num_split_vertices;
    }
  }
  result.num_proxies = next_proxy - n;

  // Rewire: endpoint occurrences of a split vertex are dealt to its proxies
  // in contiguous groups of `epp` (the paper's E_1..E_l partition).
  EdgeList out(next_proxy);
  out.reserve(list.num_edges() + result.num_proxies);
  std::vector<vid_t> dealt(n, 0);  // endpoint slots assigned so far
  auto redirect = [&](vid_t v) -> vid_t {
    if (proxy_count[v] == 0) return v;
    const vid_t slot = dealt[v]++;
    return first_proxy[v] + slot / static_cast<vid_t>(epp);
  };
  for (const auto& e : list.edges()) {
    out.add_edge(redirect(e.u), redirect(e.v), e.w);
  }
  // Hub spokes: zero-weight edges keep the split exact for SSSP.
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t i = 0; i < proxy_count[v]; ++i) {
      out.add_edge(v, first_proxy[v] + i, 0);
    }
  }

  result.orig_to_new.resize(n);
  if (config.scatter_ids) {
    const std::vector<vid_t> perm = random_permutation(next_proxy, config.seed);
    for (auto& e : out.mutable_edges()) {
      e.u = perm[e.u];
      e.v = perm[e.v];
    }
    for (vid_t v = 0; v < n; ++v) result.orig_to_new[v] = perm[v];
  } else {
    std::iota(result.orig_to_new.begin(), result.orig_to_new.end(), vid_t{0});
  }
  result.graph = std::move(out);
  return result;
}

}  // namespace parsssp
