#include "graph/social_gen.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/rmat.hpp"

namespace parsssp {
namespace {

struct OriginalStats {
  const char* name;
  std::uint64_t vertices;
  std::uint64_t edges;
  double del40;
  double opt40;
  // R-MAT parameters tuned per graph: Friendster is the most skewed of the
  // three; LiveJournal the least dense.
  RmatParams params;
};

OriginalStats original(SocialGraphKind kind) {
  switch (kind) {
    case SocialGraphKind::kFriendster:
      return {"Friendster", 63'000'000ULL, 1'800'000'000ULL, 1.8, 4.3,
              {0.57, 0.19, 0.19, 0.05}};
    case SocialGraphKind::kOrkut:
      return {"Orkut", 3'000'000ULL, 117'000'000ULL, 2.1, 4.6,
              {0.55, 0.18, 0.18, 0.09}};
    case SocialGraphKind::kLiveJournal:
      return {"LiveJournal", 4'800'000ULL, 68'000'000ULL, 1.1, 2.2,
              {0.52, 0.20, 0.20, 0.08}};
  }
  return {"?", 0, 0, 0, 0, {}};
}

// Scale/edge-factor for a spec, preserving the original average degree.
std::pair<std::uint32_t, std::uint32_t> scaled_shape(
    const SocialGraphSpec& spec) {
  const OriginalStats o = original(spec.kind);
  const std::uint64_t target_vertices =
      std::max<std::uint64_t>(o.vertices >> spec.scale_down_log2, 1ULL << 12);
  const auto scale =
      static_cast<std::uint32_t>(std::bit_width(target_vertices) - 1);
  const auto edge_factor = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, o.edges / std::max<std::uint64_t>(1, o.vertices)));
  return {scale, edge_factor};
}

}  // namespace

EdgeList generate_social_graph(const SocialGraphSpec& spec) {
  const OriginalStats o = original(spec.kind);
  const auto [scale, edge_factor] = scaled_shape(spec);
  RmatConfig cfg;
  cfg.params = o.params;
  cfg.scale = scale;
  cfg.edge_factor = edge_factor;
  cfg.seed = spec.seed ^ (static_cast<std::uint64_t>(spec.kind) << 32);
  cfg.min_weight = spec.min_weight;
  cfg.max_weight = spec.max_weight;
  EdgeList list = generate_rmat(cfg);
  list.dedup_and_strip_self_loops();
  return list;
}

SocialGraphInfo social_graph_info(const SocialGraphSpec& spec) {
  const OriginalStats o = original(spec.kind);
  const auto [scale, edge_factor] = scaled_shape(spec);
  SocialGraphInfo info;
  info.name = o.name;
  info.num_vertices = vid_t{1} << scale;
  info.num_edges = static_cast<std::uint64_t>(edge_factor) * info.num_vertices;
  info.paper_gteps_del40 = o.del40;
  info.paper_gteps_opt40 = o.opt40;
  return info;
}

std::vector<SocialGraphKind> all_social_graph_kinds() {
  return {SocialGraphKind::kFriendster, SocialGraphKind::kOrkut,
          SocialGraphKind::kLiveJournal};
}

}  // namespace parsssp
