// Compressed-sparse-row representation of a weighted undirected graph.
//
// An undirected edge {u, v} is stored twice, once in each endpoint's
// adjacency range, so deg(v) counts edge *endpoints* at v (the convention the
// paper uses when it speaks of "degree" and of relaxing an edge "once along
// each direction").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/edge_list.hpp"

namespace parsssp {

/// Destination + weight of one directed arc in an adjacency range.
struct Arc {
  vid_t to = 0;
  weight_t w = 1;

  friend bool operator==(const Arc&, const Arc&) = default;
};

/// Immutable CSR graph. Build once from an EdgeList, then share freely
/// (all accessors are const and thread-safe).
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the symmetric CSR from an undirected edge list. Self loops are
  /// kept if present (callers normally strip them first); each non-loop edge
  /// contributes two arcs.
  static CsrGraph from_edges(const EdgeList& list);

  vid_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vid_t>(offsets_.size() - 1);
  }

  /// Number of stored arcs (2x the number of undirected edges).
  std::size_t num_arcs() const { return arcs_.size(); }

  /// Number of undirected edges (num_arcs() / 2 when no self loops exist).
  std::size_t num_undirected_edges() const { return num_undirected_; }

  std::size_t degree(vid_t v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const Arc> neighbors(vid_t v) const {
    return {arcs_.data() + offsets_[v],
            arcs_.data() + offsets_[v + 1]};
  }

  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  weight_t max_weight() const { return max_weight_; }

 private:
  std::vector<std::uint64_t> offsets_;  // size num_vertices()+1
  std::vector<Arc> arcs_;
  std::size_t num_undirected_ = 0;
  weight_t max_weight_ = 0;
};

}  // namespace parsssp
