// Small graph utilities used for validation, statistics and example apps:
// BFS levels/hops, connected components, reachable-set size.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"

namespace parsssp {

/// Unweighted BFS from `root`. Returns hop counts (kInfDist = unreachable).
std::vector<dist_t> bfs_levels(const CsrGraph& g, vid_t root);

/// Number of vertices reachable from `root` (including the root).
std::size_t reachable_count(const CsrGraph& g, vid_t root);

/// Connected-component labels in [0, num_components).
struct Components {
  std::vector<vid_t> label;
  vid_t num_components = 0;
  /// Size of the largest component and one member of it.
  std::size_t giant_size = 0;
  vid_t giant_member = 0;
};
Components connected_components(const CsrGraph& g);

/// Depth (number of levels) of the BFS tree from root; 0 if root isolated.
std::size_t bfs_depth(const CsrGraph& g, vid_t root);

/// Picks `count` deterministic sample roots with degree >= 1, spread over
/// the giant component when possible (mirrors the Graph 500 root-sampling
/// requirement that roots must not be isolated).
std::vector<vid_t> sample_roots(const CsrGraph& g, std::size_t count,
                                std::uint64_t seed);

}  // namespace parsssp
