// Deterministic weight assignment for unweighted edge lists, matching the
// proposed Graph 500 SSSP benchmark (uniform integers, independent per edge).
#pragma once

#include "core/types.hpp"
#include "graph/edge_list.hpp"

namespace parsssp {

struct WeightConfig {
  weight_t min_weight = 1;
  weight_t max_weight = 255;
  std::uint64_t seed = 7;
};

/// Overwrites every edge weight with a deterministic pseudo-uniform draw
/// from [min_weight, max_weight]. The draw depends only on (seed, edge
/// index), so the assignment is stable under reruns.
void assign_uniform_weights(EdgeList& list, const WeightConfig& config);

}  // namespace parsssp
