// Inter-node load balancing by vertex splitting (paper §III-E).
//
// Vertices of extreme degree (deg > pi') are split: for each such vertex u
// we create ceil(deg(u)/pi') proxies u_1..u_l, connect every proxy to u with
// a zero-weight edge, and move u's original adjacency onto the proxies in
// contiguous groups. Shortest distances are preserved exactly (any path
// through an original edge now pays one extra zero-weight hop).
//
// For the split to balance load, the proxies must land on *different* ranks
// under the block vertex partition. We achieve that the same way Graph 500
// does for degree/id correlation: after splitting, all vertex ids (original
// and proxy) are scattered by a deterministic pseudo-random permutation. The
// returned mapping lets callers translate roots and read back distances.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace parsssp {

struct SplitConfig {
  /// Degree threshold pi': vertices with degree > threshold are split.
  std::size_t degree_threshold = 1024;
  /// Edges per proxy (defaults to the threshold itself when 0).
  std::size_t edges_per_proxy = 0;
  /// Scatter all ids with a pseudo-random permutation so proxies spread
  /// across ranks under block partitioning.
  bool scatter_ids = true;
  std::uint64_t seed = 99;
};

struct SplitResult {
  /// The transformed graph (original edges rewired to proxies, plus
  /// zero-weight proxy-to-hub edges).
  EdgeList graph;
  /// orig_to_new[v] = id of original vertex v in the transformed graph.
  std::vector<vid_t> orig_to_new;
  /// Number of vertices in the original graph.
  vid_t num_original = 0;
  /// Number of proxies created.
  vid_t num_proxies = 0;
  /// Number of vertices that were split.
  vid_t num_split_vertices = 0;

  /// Extracts the distances of the original vertices (in original id order)
  /// from a distance vector over the transformed graph.
  std::vector<dist_t> project_distances(
      const std::vector<dist_t>& transformed) const;
};

/// Splits all vertices whose degree in `g` exceeds the threshold.
/// `list` must be the edge list `g` was built from (the transform rewrites
/// edge endpoints; using the CSR only for degree lookups).
SplitResult split_heavy_vertices(const EdgeList& list, const CsrGraph& g,
                                 const SplitConfig& config);

}  // namespace parsssp
