// Canonical graph builders used across tests, examples and benches:
// paths, cycles, stars, cliques, grids, complete binary trees and the
// paper's Fig 6 example graph. All weights are explicit parameters so the
// same topology can be generated in the short-edge, long-edge or mixed
// regime of a given Delta.
#pragma once

#include <functional>

#include "graph/edge_list.hpp"

namespace parsssp {

/// 0-1-2-...-(n-1) path; n >= 1.
EdgeList make_path(vid_t n, weight_t w = 1);

/// n-cycle; n >= 3.
EdgeList make_cycle(vid_t n, weight_t w = 1);

/// Star: hub 0 with `leaves` leaves (vertices 1..leaves).
EdgeList make_star(vid_t leaves, weight_t w = 1);

/// Complete graph on n vertices. `weight_of(u, v)` supplies each edge's
/// weight (defaults to constant 1).
EdgeList make_clique(
    vid_t n, const std::function<weight_t(vid_t, vid_t)>& weight_of = {});

/// side x side 4-neighbour grid. `weight_of(a, b)` supplies segment
/// weights (defaults to constant 1).
EdgeList make_grid(
    vid_t side, const std::function<weight_t(vid_t, vid_t)>& weight_of = {});

/// Complete binary tree with n vertices (vertex 0 is the root; vertex v's
/// parent is (v-1)/2). `weight_of(child)` supplies edge weights.
EdgeList make_binary_tree(
    vid_t n, const std::function<weight_t(vid_t)>& weight_of = {});

/// The paper's Fig 6 push-vs-pull example: root 0 connected to a
/// `clique_size`-clique by weight `hop_w` edges; clique vertices pairwise
/// connected with weight `clique_w`; each clique vertex has one tail vertex
/// at weight `hop_w`. With Delta = clique_w the clique settles in bucket
/// 2*hop_w/Delta and the pull model wins its long phase.
EdgeList make_fig6_example(vid_t clique_size = 5, weight_t clique_w = 5,
                           weight_t hop_w = 10);

}  // namespace parsssp
