#include "graph/degree_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace parsssp {

std::size_t DegreeStats::percentile(const CsrGraph& g, double p) const {
  const vid_t n = g.num_vertices();
  if (n == 0) return 0;
  std::vector<std::size_t> degrees(n);
  for (vid_t v = 0; v < n; ++v) degrees[v] = g.degree(v);
  std::sort(degrees.begin(), degrees.end());
  const double idx = (p / 100.0) * static_cast<double>(n - 1);
  return degrees[static_cast<std::size_t>(std::llround(idx))];
}

DegreeStats compute_degree_stats(const CsrGraph& g,
                                 std::size_t heavy_threshold) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  std::size_t total = 0;
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    total += d;
    if (d > s.max_degree) {
      s.max_degree = d;
      s.argmax_vertex = v;
    }
    if (d == 0) {
      ++s.num_isolated;
    } else {
      const unsigned bucket = std::bit_width(d) - 1;  // floor(log2(d))
      if (s.log2_histogram.size() <= bucket) s.log2_histogram.resize(bucket + 1);
      ++s.log2_histogram[bucket];
    }
    if (heavy_threshold != 0 && d > heavy_threshold) ++s.num_heavy;
  }
  s.mean_degree = static_cast<double>(total) / static_cast<double>(n);
  return s;
}

std::size_t max_degree(const CsrGraph& g) {
  return compute_degree_stats(g).max_degree;
}

}  // namespace parsssp
