// SNAP-format edge-list I/O.
//
// The paper's "real life graphs" section uses Friendster, Orkut and
// LiveJournal from snap.stanford.edu. Those files are plain text edge lists
// ("u<TAB>v" per line, '#' comments). This module reads/writes that format
// (optionally with a third weight column) plus a compact binary format for
// fast reload, so the harness can run on real SNAP dumps when they are
// available locally. When they are not, graph/social_gen.hpp provides the
// synthetic stand-ins documented in DESIGN.md.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace parsssp {

/// Parses a SNAP text edge list from a stream. Lines starting with '#' are
/// skipped. Each data line is "u v" or "u v w" (whitespace separated).
/// Vertex ids are used as-is (the caller may compact them). Edges without a
/// weight column get weight `default_weight`.
/// Throws std::runtime_error on malformed input.
EdgeList read_snap_text(std::istream& in, weight_t default_weight = 1);

/// Loads a SNAP text file from disk. Throws on I/O failure.
EdgeList load_snap_file(const std::string& path, weight_t default_weight = 1);

/// Writes the canonical SNAP text form ("u\tv\tw" lines with a '#' header).
void write_snap_text(std::ostream& out, const EdgeList& list);

/// Compact little-endian binary format: header (magic, version, vertex
/// count, edge count) followed by (u, v, w) triples.
void write_binary(std::ostream& out, const EdgeList& list);
EdgeList read_binary(std::istream& in);

/// Remaps vertex ids to a dense [0, n) range preserving first-appearance
/// order. Returns the remapped list (SNAP files often have sparse ids).
EdgeList compact_vertex_ids(const EdgeList& list);

}  // namespace parsssp
