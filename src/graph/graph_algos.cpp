#include "graph/graph_algos.hpp"

#include <algorithm>
#include <deque>

#include "graph/rmat.hpp"

namespace parsssp {

std::vector<dist_t> bfs_levels(const CsrGraph& g, vid_t root) {
  const vid_t n = g.num_vertices();
  std::vector<dist_t> level(n, kInfDist);
  if (root >= n) return level;
  std::deque<vid_t> frontier{root};
  level[root] = 0;
  while (!frontier.empty()) {
    const vid_t u = frontier.front();
    frontier.pop_front();
    for (const Arc& a : g.neighbors(u)) {
      if (level[a.to] == kInfDist) {
        level[a.to] = level[u] + 1;
        frontier.push_back(a.to);
      }
    }
  }
  return level;
}

std::size_t reachable_count(const CsrGraph& g, vid_t root) {
  const auto levels = bfs_levels(g, root);
  return static_cast<std::size_t>(
      std::count_if(levels.begin(), levels.end(),
                    [](dist_t d) { return d != kInfDist; }));
}

Components connected_components(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  Components c;
  c.label.assign(n, n);  // n = unlabeled sentinel
  std::vector<std::size_t> sizes;
  std::deque<vid_t> queue;
  for (vid_t start = 0; start < n; ++start) {
    if (c.label[start] != n) continue;
    const vid_t id = c.num_components++;
    sizes.push_back(0);
    c.label[start] = id;
    queue.push_back(start);
    while (!queue.empty()) {
      const vid_t u = queue.front();
      queue.pop_front();
      ++sizes[id];
      for (const Arc& a : g.neighbors(u)) {
        if (c.label[a.to] == n) {
          c.label[a.to] = id;
          queue.push_back(a.to);
        }
      }
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t s = sizes[c.label[v]];
    if (s > c.giant_size) {
      c.giant_size = s;
      c.giant_member = v;
    }
  }
  return c;
}

std::size_t bfs_depth(const CsrGraph& g, vid_t root) {
  const auto levels = bfs_levels(g, root);
  std::size_t depth = 0;
  for (dist_t l : levels) {
    if (l != kInfDist) depth = std::max(depth, static_cast<std::size_t>(l));
  }
  return depth;
}

std::vector<vid_t> sample_roots(const CsrGraph& g, std::size_t count,
                                std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> roots;
  if (n == 0) return roots;
  // Prefer members of the giant component so SSSP runs traverse real work.
  const Components comps = connected_components(g);
  const vid_t giant = comps.label[comps.giant_member];
  std::uint64_t i = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 64 * (count + 1) + 4 * n;
  while (roots.size() < count && attempts < max_attempts) {
    const vid_t v = static_cast<vid_t>(rmat_hash(seed, i++) % n);
    ++attempts;
    if (g.degree(v) == 0) continue;
    if (comps.giant_size >= n / 2 && comps.label[v] != giant) continue;
    if (std::find(roots.begin(), roots.end(), v) != roots.end()) continue;
    roots.push_back(v);
  }
  // Fallback: deterministic scan (tiny/degenerate graphs).
  for (vid_t v = 0; roots.size() < count && v < n; ++v) {
    if (g.degree(v) != 0 &&
        std::find(roots.begin(), roots.end(), v) == roots.end()) {
      roots.push_back(v);
    }
  }
  return roots;
}

}  // namespace parsssp
