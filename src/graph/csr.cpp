#include "graph/csr.hpp"

#include <algorithm>

namespace parsssp {

CsrGraph CsrGraph::from_edges(const EdgeList& list) {
  CsrGraph g;
  const vid_t n = list.num_vertices();
  g.offsets_.assign(n + 1, 0);

  // Counting pass: each non-loop edge contributes one arc per endpoint;
  // a self loop contributes a single arc.
  for (const auto& e : list.edges()) {
    ++g.offsets_[e.u + 1];
    if (e.u != e.v) ++g.offsets_[e.v + 1];
  }
  for (vid_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.arcs_.resize(g.offsets_[n]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : list.edges()) {
    g.arcs_[cursor[e.u]++] = {e.v, e.w};
    if (e.u != e.v) g.arcs_[cursor[e.v]++] = {e.u, e.w};
    g.max_weight_ = std::max(g.max_weight_, e.w);
  }
  g.num_undirected_ = list.num_edges();

  // Sort each adjacency range by (to, w): deterministic layout, and it lets
  // neighbor scans and tests binary-search within a range.
  for (vid_t v = 0; v < n; ++v) {
    std::sort(g.arcs_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.arcs_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]),
              [](const Arc& a, const Arc& b) {
                if (a.to != b.to) return a.to < b.to;
                return a.w < b.w;
              });
  }
  return g;
}

}  // namespace parsssp
