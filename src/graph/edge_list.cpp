#include "graph/edge_list.hpp"

#include <algorithm>
#include <utility>

namespace parsssp {

void EdgeList::ensure_vertices(vid_t n) {
  num_vertices_ = std::max(num_vertices_, n);
}

void EdgeList::add_edge(vid_t u, vid_t v, weight_t w) {
  edges_.push_back({u, v, w});
  ensure_vertices(std::max(u, v) + 1);
}

void EdgeList::canonicalize() {
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              return a.w < b.w;
            });
}

void EdgeList::dedup_and_strip_self_loops() {
  canonicalize();
  std::vector<WeightedEdge> out;
  out.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (e.u == e.v) continue;
    // After canonicalize(), duplicates are adjacent and the first instance
    // carries the smallest weight.
    if (!out.empty() && out.back().u == e.u && out.back().v == e.v) continue;
    out.push_back(e);
  }
  edges_ = std::move(out);
}

}  // namespace parsssp
