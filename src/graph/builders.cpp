#include "graph/builders.hpp"

namespace parsssp {

EdgeList make_path(vid_t n, weight_t w) {
  EdgeList list(n);
  for (vid_t i = 0; i + 1 < n; ++i) list.add_edge(i, i + 1, w);
  return list;
}

EdgeList make_cycle(vid_t n, weight_t w) {
  EdgeList list(n);
  for (vid_t i = 0; i < n; ++i) list.add_edge(i, (i + 1) % n, w);
  return list;
}

EdgeList make_star(vid_t leaves, weight_t w) {
  EdgeList list(leaves + 1);
  for (vid_t leaf = 1; leaf <= leaves; ++leaf) list.add_edge(0, leaf, w);
  return list;
}

EdgeList make_clique(vid_t n,
                     const std::function<weight_t(vid_t, vid_t)>& weight_of) {
  EdgeList list(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) {
      list.add_edge(u, v, weight_of ? weight_of(u, v) : 1);
    }
  }
  return list;
}

EdgeList make_grid(vid_t side,
                   const std::function<weight_t(vid_t, vid_t)>& weight_of) {
  EdgeList list(side * side);
  auto id = [side](vid_t x, vid_t y) { return y * side + x; };
  auto w = [&weight_of](vid_t a, vid_t b) {
    return weight_of ? weight_of(a, b) : weight_t{1};
  };
  for (vid_t y = 0; y < side; ++y) {
    for (vid_t x = 0; x < side; ++x) {
      if (x + 1 < side) {
        list.add_edge(id(x, y), id(x + 1, y), w(id(x, y), id(x + 1, y)));
      }
      if (y + 1 < side) {
        list.add_edge(id(x, y), id(x, y + 1), w(id(x, y), id(x, y + 1)));
      }
    }
  }
  return list;
}

EdgeList make_binary_tree(vid_t n,
                          const std::function<weight_t(vid_t)>& weight_of) {
  EdgeList list(n);
  for (vid_t v = 1; v < n; ++v) {
    list.add_edge((v - 1) / 2, v, weight_of ? weight_of(v) : 1);
  }
  return list;
}

EdgeList make_fig6_example(vid_t clique_size, weight_t clique_w,
                           weight_t hop_w) {
  EdgeList list(1 + 2 * clique_size);
  const vid_t clique_begin = 1;
  const vid_t tail_begin = 1 + clique_size;
  for (vid_t c = 0; c < clique_size; ++c) {
    list.add_edge(0, clique_begin + c, hop_w);
    for (vid_t d = c + 1; d < clique_size; ++d) {
      list.add_edge(clique_begin + c, clique_begin + d, clique_w);
    }
    list.add_edge(clique_begin + c, tail_begin + c, hop_w);
  }
  return list;
}

}  // namespace parsssp
