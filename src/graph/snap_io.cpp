#include "graph/snap_io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace parsssp {
namespace {

constexpr std::uint64_t kBinaryMagic = 0x53535350'42494E31ULL;  // "SSSPBIN1"
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("snap_io: truncated binary input");
  return value;
}

}  // namespace

EdgeList read_snap_text(std::istream& in, weight_t default_weight) {
  EdgeList list;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    vid_t u = 0;
    vid_t v = 0;
    if (!(fields >> u >> v)) {
      throw std::runtime_error("snap_io: malformed line " +
                               std::to_string(lineno) + ": '" + line + "'");
    }
    weight_t w = default_weight;
    std::uint64_t w_field = 0;
    if (fields >> w_field) w = static_cast<weight_t>(w_field);
    list.add_edge(u, v, w);
  }
  return list;
}

EdgeList load_snap_file(const std::string& path, weight_t default_weight) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("snap_io: cannot open " + path);
  return read_snap_text(in, default_weight);
}

void write_snap_text(std::ostream& out, const EdgeList& list) {
  out << "# Undirected graph, " << list.num_vertices() << " vertices, "
      << list.num_edges() << " edges\n# FromNodeId\tToNodeId\tWeight\n";
  for (const auto& e : list.edges()) {
    out << e.u << '\t' << e.v << '\t' << e.w << '\n';
  }
}

void write_binary(std::ostream& out, const EdgeList& list) {
  write_pod(out, kBinaryMagic);
  write_pod(out, kBinaryVersion);
  write_pod(out, static_cast<std::uint64_t>(list.num_vertices()));
  write_pod(out, static_cast<std::uint64_t>(list.num_edges()));
  for (const auto& e : list.edges()) {
    write_pod(out, e.u);
    write_pod(out, e.v);
    write_pod(out, e.w);
  }
}

EdgeList read_binary(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != kBinaryMagic) {
    throw std::runtime_error("snap_io: bad magic in binary input");
  }
  if (read_pod<std::uint32_t>(in) != kBinaryVersion) {
    throw std::runtime_error("snap_io: unsupported binary version");
  }
  const auto n = read_pod<std::uint64_t>(in);
  const auto m = read_pod<std::uint64_t>(in);
  EdgeList list(n);
  list.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = read_pod<vid_t>(in);
    const auto v = read_pod<vid_t>(in);
    const auto w = read_pod<weight_t>(in);
    list.add_edge(u, v, w);
  }
  return list;
}

EdgeList compact_vertex_ids(const EdgeList& list) {
  std::unordered_map<vid_t, vid_t> remap;
  remap.reserve(list.num_vertices());
  EdgeList out;
  out.reserve(list.num_edges());
  auto id_of = [&remap](vid_t v) {
    auto [it, inserted] = remap.emplace(v, remap.size());
    (void)inserted;
    return it->second;
  };
  for (const auto& e : list.edges()) {
    const vid_t u = id_of(e.u);
    const vid_t v = id_of(e.v);
    out.add_edge(u, v, e.w);
  }
  return out;
}

}  // namespace parsssp
