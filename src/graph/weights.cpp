#include "graph/weights.hpp"

#include "graph/rmat.hpp"

namespace parsssp {

void assign_uniform_weights(EdgeList& list, const WeightConfig& config) {
  const weight_t span =
      static_cast<weight_t>(config.max_weight - config.min_weight + 1);
  std::uint64_t i = 0;
  for (auto& e : list.mutable_edges()) {
    e.w = static_cast<weight_t>(config.min_weight +
                                rmat_hash(config.seed, i) % span);
    ++i;
  }
}

}  // namespace parsssp
