// A weighted undirected edge list: the exchange format between generators,
// file I/O and the CSR builder.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

/// One undirected edge. The pair (u, v) is unordered; canonicalize() sorts
/// endpoints so that u <= v.
struct WeightedEdge {
  vid_t u = 0;
  vid_t v = 0;
  weight_t w = 1;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// Growable container of undirected edges plus the vertex-count bound.
///
/// Invariant: every endpoint is < num_vertices().
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(vid_t num_vertices) : num_vertices_(num_vertices) {}

  vid_t num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const std::vector<WeightedEdge>& edges() const { return edges_; }
  std::vector<WeightedEdge>& mutable_edges() { return edges_; }

  /// Raises the vertex-count bound (never shrinks it).
  void ensure_vertices(vid_t n);

  /// Appends an edge; extends the vertex bound to cover its endpoints.
  void add_edge(vid_t u, vid_t v, weight_t w);

  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Sorts each edge's endpoints (u <= v), then sorts the list
  /// lexicographically. Deterministic normal form used by tests and dedup.
  void canonicalize();

  /// Removes self loops and duplicate (u, v) pairs, keeping the smallest
  /// weight among duplicates. Implies canonicalize().
  void dedup_and_strip_self_loops();

 private:
  std::vector<WeightedEdge> edges_;
  vid_t num_vertices_ = 0;
};

}  // namespace parsssp
