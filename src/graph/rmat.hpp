// Graph500-style R-MAT (Recursive MATrix) generator.
//
// The paper evaluates two R-MAT families:
//   RMAT-1: Graph 500 BFS spec,  A=0.57, B=C=0.19, D=0.05
//   RMAT-2: Graph 500 SSSP spec, A=0.50, B=C=0.10, D=0.30
// both with edge factor 16 (m = 16 N undirected edges) and integer weights
// drawn uniformly from [0, 255] (we use [1, 255]; see DESIGN.md).
//
// Generation is hash-based and stateless per edge: edge i of a (scale, seed)
// configuration is a pure function of (seed, i), so the same graph can be
// reproduced — or generated in parallel — on any machine layout.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace parsssp {

/// R-MAT quadrant probabilities. A+B+C+D must be ~1.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;

  /// Graph 500 BFS benchmark parameters (the paper's RMAT-1 family).
  static RmatParams rmat1() { return {0.57, 0.19, 0.19, 0.05}; }
  /// Proposed Graph 500 SSSP benchmark parameters (the paper's RMAT-2).
  static RmatParams rmat2() { return {0.50, 0.10, 0.10, 0.30}; }
};

/// Full generator configuration.
struct RmatConfig {
  RmatParams params;
  std::uint32_t scale = 14;       ///< log2(num vertices)
  std::uint32_t edge_factor = 16; ///< undirected edges per vertex
  std::uint64_t seed = 1;
  weight_t min_weight = 1;
  weight_t max_weight = 255;
  /// Graph 500 permutes vertex labels so vertex id carries no degree
  /// information; we keep that behaviour switchable for tests.
  bool permute_labels = true;
};

/// Generates the edge list of an R-MAT graph. Self loops and duplicate edges
/// are kept, exactly as the Graph 500 generator does (the CSR builder simply
/// stores them; SSSP is insensitive to both).
EdgeList generate_rmat(const RmatConfig& config);

/// Deterministic hash of (seed, index) used for all sampling decisions.
/// Exposed for tests of distribution properties.
std::uint64_t rmat_hash(std::uint64_t seed, std::uint64_t index);

}  // namespace parsssp
