// Synthetic stand-ins for the paper's "real life graphs" study (§IV-H).
//
// The paper evaluates Friendster (63 M vertices / 1.8 B edges), Orkut
// (3 M / 117 M) and LiveJournal (4.8 M / 68 M) from snap.stanford.edu.
// Those dumps are not redistributable here, so we generate graphs with the
// same *character* — heavy-tailed degree distribution, low effective
// diameter, a giant connected component — at a configurable scale, keeping
// the relative vertex/edge ratios of the originals. The substitution
// preserves the behaviour §IV-H measures: a skew-driven gap between the
// baseline Del-Δ and the pruned+hybridized OPT-Δ algorithm.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace parsssp {

/// Which real-world graph the synthetic instance imitates.
enum class SocialGraphKind { kFriendster, kOrkut, kLiveJournal };

struct SocialGraphSpec {
  SocialGraphKind kind = SocialGraphKind::kOrkut;
  /// Downscaling: vertices = original_vertices >> scale_down_log2 (clamped
  /// to at least 2^12), keeping the original average degree.
  std::uint32_t scale_down_log2 = 10;
  std::uint64_t seed = 42;
  weight_t min_weight = 1;
  weight_t max_weight = 255;
};

struct SocialGraphInfo {
  std::string name;
  vid_t num_vertices = 0;
  std::uint64_t num_edges = 0;   ///< undirected edges generated
  double paper_gteps_del40 = 0;  ///< Del-40 GTEPS reported in the paper
  double paper_gteps_opt40 = 0;  ///< Opt-40 GTEPS reported in the paper
};

/// Generates the synthetic stand-in. Duplicate edges and self loops are
/// stripped (SNAP graphs are simple graphs).
EdgeList generate_social_graph(const SocialGraphSpec& spec);

/// Metadata for reporting: the name, the size actually generated for `spec`,
/// and the paper's reference numbers for the original graph.
SocialGraphInfo social_graph_info(const SocialGraphSpec& spec);

/// All three kinds, for sweep-style benches.
std::vector<SocialGraphKind> all_social_graph_kinds();

}  // namespace parsssp
