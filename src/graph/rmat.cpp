#include "graph/rmat.hpp"

#include <cmath>

namespace parsssp {
namespace {

// splitmix64: tiny, high-quality, stateless mixing function. Each call site
// derives an independent stream by combining seed and index first.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Converts 64 random bits into a double in [0, 1).
double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

// Feistel-style pseudo-random permutation over [0, 2^scale). Bijective for
// any scale, deterministic in the seed, cheap — exactly what Graph 500 uses
// vertex permutation for: destroying the correlation between vertex id and
// degree that raw R-MAT bit-fixing introduces.
vid_t permute_vertex(vid_t v, std::uint32_t scale, std::uint64_t seed) {
  const std::uint32_t half = (scale + 1) / 2;
  const vid_t half_mask = (vid_t{1} << half) - 1;
  const vid_t full_mask = (vid_t{1} << scale) - 1;
  vid_t x = v;
  // Cycle-walking Feistel: iterate until the image lands back in range
  // (needed when scale is odd and the Feistel domain is 2^(2*half)).
  do {
    vid_t left = x >> half;
    vid_t right = x & half_mask;
    for (int round = 0; round < 4; ++round) {
      vid_t f = splitmix64(seed ^ (right + (static_cast<vid_t>(round) << 60))) &
                half_mask;
      vid_t new_left = right;
      right = (left ^ f) & half_mask;
      left = new_left;
    }
    x = (left << half) | right;
  } while (x > full_mask);
  return x;
}

}  // namespace

std::uint64_t rmat_hash(std::uint64_t seed, std::uint64_t index) {
  return splitmix64(splitmix64(seed) ^ index);
}

EdgeList generate_rmat(const RmatConfig& config) {
  const vid_t n = vid_t{1} << config.scale;
  const std::uint64_t m =
      static_cast<std::uint64_t>(config.edge_factor) * n;

  EdgeList list(n);
  list.reserve(m);

  const double ab = config.params.a + config.params.b;
  const double a_norm = config.params.a / ab;
  const double c_norm =
      config.params.c / (config.params.c + config.params.d);

  for (std::uint64_t i = 0; i < m; ++i) {
    vid_t u = 0;
    vid_t v = 0;
    // One hash per recursion level, derived from (seed, edge index, level).
    for (std::uint32_t level = 0; level < config.scale; ++level) {
      const std::uint64_t h =
          rmat_hash(config.seed + 0x51ed0003ULL * (level + 1), i);
      const double r_row = to_unit(h);
      const double r_col = to_unit(splitmix64(h));
      // Standard Graph 500 noise-free quadrant selection.
      const bool down = r_row > ab;
      const bool right = r_col > (down ? c_norm : a_norm);
      u = (u << 1) | static_cast<vid_t>(down);
      v = (v << 1) | static_cast<vid_t>(right);
    }
    if (config.permute_labels) {
      u = permute_vertex(u, config.scale, config.seed ^ 0xabcdef12345ULL);
      v = permute_vertex(v, config.scale, config.seed ^ 0xabcdef12345ULL);
    }
    const weight_t span =
        static_cast<weight_t>(config.max_weight - config.min_weight + 1);
    const weight_t w = static_cast<weight_t>(
        config.min_weight +
        rmat_hash(config.seed ^ 0x77eedd11ULL, i) % span);
    list.add_edge(u, v, w);
  }
  return list;
}

}  // namespace parsssp
