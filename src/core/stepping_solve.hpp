// Facade over the stepping-family engines, for layers that may not drive
// SteppingEngine directly (the serve/update isolation rules in
// scripts/analysis/layers.toml: src/serve/ and src/update/ reach the
// engines only through the solver/session facades).
//
// One call runs one cold single-root solve on a MachineSession under an
// SsspAlgo::{kRho, kDeltaStar, kRadius} option set, then canonicalizes
// the parent tree (core/parent_canon.hpp) so parents are a pure function
// of graph + dist — the bit-identity contract with the bucket-synchronous
// OPT engine (docs/STEPPING.md).
#pragma once

#include <memory>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "core/types.hpp"
#include "runtime/machine_session.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

/// Inputs of one stepping solve. All pointers must outlive the call;
/// `dist` and `parent` (optional) are sized by the caller and overwritten.
struct SteppingSolveJob {
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::vector<dist_t>* dist = nullptr;
  std::vector<vid_t>* parent = nullptr;  ///< null disables tracking
  vid_t root = 0;
  std::vector<RankCounters>* rank_counters = nullptr;
  SsspStats* stats = nullptr;
};

/// Runs the stepping solve collectively on `session`. Blocks until done.
/// Throws std::invalid_argument unless is_stepping_algo(options.algo).
/// `keepalive` is pinned for the job's lifetime (the serving layer passes
/// its GraphSnapshot, same contract as MachineSession::submit).
void run_stepping_solve(MachineSession& session, const SteppingSolveJob& job,
                        const SsspOptions& options,
                        std::shared_ptr<void> keepalive = nullptr);

}  // namespace parsssp
