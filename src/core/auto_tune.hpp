// Online auto-tuner for the SSSP engine family (docs/STEPPING.md).
//
// The tuner answers one question per graph: which engine and step
// parameter should default-algorithm queries run on? It learns the answer
// online, from the graph it is actually serving:
//
//   1. Profile. A probe solve under the incumbent configuration (OPT-Delta
//      with per-phase details) yields the work-shape features: relax
//      ratio (relaxations per arc), settled depth (buckets), phase fanout
//      (phases per bucket) and mean frontier size; the graph itself yields
//      the degree skew (max/mean). Features are published as gauges in the
//      MetricsRegistry (docs/OBSERVABILITY.md) when one is supplied.
//   2. Shortlist. A decision table (tuner_shortlist, kept deliberately
//      small and inspectable) maps the profile to 3-5 candidate
//      configurations: high skew favors rho / Delta*-stepping (frontier
//      batching amortizes hub vertices), deep low-skew graphs favor
//      Radius Stepping and wider buckets (fewer global steps), and the
//      incumbent is always included so tuning can never lose to not
//      tuning by more than the probe cost.
//   3. Score. Each candidate runs one probe solve; the winner is the one
//      with the lowest *modeled* time. Modeled time is a pure function of
//      the deterministic work/traffic counters, so the whole decision is
//      reproducible: same graph + same probe root => same TunedConfig,
//      bit for bit (the property tests/test_auto_tune.cpp pins).
//
// Learned configs persist per graph version (AutoTuner::learned), so a
// serving engine tunes once per published version and routes every later
// cold query straight to the winner. All engines in the candidate space
// produce bit-identical distances (and canonical parents), so rewriting a
// query's engine choice never changes its answer — only its cost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "graph/csr.hpp"

namespace parsssp {

class MetricsRegistry;  // obs/metrics.hpp

/// One point in the tuner's search space: an engine plus its step
/// parameters. Everything else about a query (parents, data path, cost
/// model, ...) belongs to the client and is preserved by apply().
struct TunedConfig {
  SsspAlgo algo = SsspAlgo::kBucketSync;
  std::uint32_t delta = 25;
  std::uint32_t rho = 2048;
  std::uint32_t radius_k = 4;

  /// Projects the decision onto `base`: only algo and the step parameters
  /// change; the client's option set is otherwise untouched.
  SsspOptions apply(SsspOptions base) const;
  /// Stable display name, e.g. "opt-d25", "rho-2048-d25", "radius-k4-d25".
  std::string name() const;

  friend bool operator==(const TunedConfig&, const TunedConfig&) = default;
};

/// Work-shape features the decision table reads. Graph-side fields come
/// from profile_graph(); probe-side fields from profile_probe().
struct GraphProfile {
  // Graph shape.
  std::uint64_t vertices = 0;
  std::uint64_t arcs = 0;
  double degree_skew = 1.0;  ///< max degree / mean degree
  double mean_degree = 0.0;
  // Probe solve shape (incumbent configuration).
  double relax_ratio = 0.0;       ///< probe relaxations / arcs
  std::uint64_t probe_buckets = 0;  ///< settled depth under the incumbent
  double phases_per_bucket = 0.0;
  double mean_frontier = 0.0;  ///< mean relaxations per phase
};

/// Fills the graph-side features (single O(n) degree pass).
GraphProfile profile_graph(const CsrGraph& graph);
/// Fills the probe-side features from the incumbent probe's statistics.
/// `probe` should have run with collect_phase_details enabled; without
/// details, mean_frontier falls back to relaxations/phases.
void profile_probe(GraphProfile& p, const SsspStats& probe);

/// The decision table: profile -> candidate configurations, incumbent
/// (index 0) first. Pure and deterministic; exposed so the bake-off bench
/// and the tests can inspect the shortlist the tuner actually scored.
std::vector<TunedConfig> tuner_shortlist(const GraphProfile& p,
                                         std::uint32_t incumbent_delta);

class AutoTuner {
 public:
  /// Runs one full solve under the given options and returns its
  /// statistics. Must be deterministic in everything the tuner reads
  /// (work counters and modeled time are; wall clock is not read).
  using ProbeFn = std::function<SsspStats(const SsspOptions&)>;

  /// `metrics` may be null; when set it must outlive the tuner and
  /// receives the tuner.* gauges/counters.
  explicit AutoTuner(MetricsRegistry* metrics = nullptr);

  /// Returns the learned config for `version`, tuning first if this is the
  /// version's first call. `base` carries the client-side fields candidate
  /// probes must respect (delta of the incumbent, cost model, data path);
  /// probes run with algo/step parameters rewritten per candidate.
  /// Thread-safe; concurrent callers for the same version serialize and
  /// the second one reuses the first's result.
  TunedConfig tune(std::uint64_t version, const CsrGraph& graph,
                   const SsspOptions& base, const ProbeFn& probe);

  /// The already-learned config for `version`, if any. Thread-safe.
  std::optional<TunedConfig> learned(std::uint64_t version) const;

  /// Drops the learned config for `version` (e.g. after a mutation burst
  /// invalidated the profile). Thread-safe.
  void forget(std::uint64_t version);

  /// Versions tuned so far (monotone; never reset by forget).
  std::uint64_t tunes() const;

 private:
  MetricsRegistry* metrics_;
  mutable Mutex mutex_;
  std::map<std::uint64_t, TunedConfig> by_version_ MPS_GUARDED_BY(mutex_);
  std::uint64_t tunes_ MPS_GUARDED_BY(mutex_) = 0;
};

}  // namespace parsssp
