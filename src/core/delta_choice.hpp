// Automatic bucket-width selection.
//
// The paper tunes Delta experimentally (Fig 9: values in [10, 50] win on
// R-MAT with weights in [0,255] and average degree 32; Delta=25 and 40 are
// used throughout). Meyer & Sanders' analysis recommends Delta = Theta(w_max
// / average degree): wide enough that a bucket settles many vertices per
// epoch, narrow enough that re-relaxation within a bucket stays rare. This
// module packages that rule with the paper's calibration so callers have a
// reasonable default without running their own sweep.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace parsssp {

struct DeltaSuggestion {
  std::uint32_t delta = 25;
  double mean_degree = 0;
  weight_t max_weight = 0;
};

/// suggest = clamp(calibration * w_max / mean_degree, 1, w_max); the
/// calibration constant 4.0 recovers Delta ~= 32 for the Graph 500 setting
/// (w_max 255, degree 32), inside the paper's winning range [10, 50].
DeltaSuggestion suggest_delta(const CsrGraph& g, double calibration = 4.0);

}  // namespace parsssp
