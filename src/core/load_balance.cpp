#include "core/load_balance.hpp"

namespace parsssp {

HeavyLightSplit split_by_degree(std::span<const vid_t> sources,
                                const LocalEdgeView& view,
                                std::size_t threshold) {
  HeavyLightSplit split;
  if (threshold == 0) {
    split.light.assign(sources.begin(), sources.end());
    return split;
  }
  for (const vid_t u : sources) {
    if (view.degree(u) > threshold) {
      split.heavy.push_back(u);
    } else {
      split.light.push_back(u);
    }
  }
  return split;
}

}  // namespace parsssp
