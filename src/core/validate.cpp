#include "core/validate.hpp"

#include <sstream>

#include "graph/graph_algos.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {

ValidationReport compare_distances(const std::vector<dist_t>& got,
                                   const std::vector<dist_t>& expected) {
  ValidationReport report;
  if (got.size() != expected.size()) {
    report.ok = false;
    report.message = "distance vector size mismatch";
    return report;
  }
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (got[v] != expected[v]) {
      if (report.mismatches == 0) {
        std::ostringstream os;
        os << "vertex " << v << ": got "
           << (got[v] == kInfDist ? -1.0 : static_cast<double>(got[v]))
           << ", expected "
           << (expected[v] == kInfDist ? -1.0
                                       : static_cast<double>(expected[v]));
        report.message = os.str();
      }
      ++report.mismatches;
    }
  }
  report.ok = report.mismatches == 0;
  return report;
}

ValidationReport check_sssp_invariants(const CsrGraph& g, vid_t root,
                                       const std::vector<dist_t>& dist) {
  ValidationReport report;
  if (dist.size() != g.num_vertices()) {
    report.ok = false;
    report.message = "distance vector size mismatch";
    return report;
  }
  if (root < g.num_vertices() && dist[root] != 0) {
    report.bad_root = 1;
    report.ok = false;
    report.message = "d(root) != 0";
  }
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] == kInfDist) continue;
    for (const Arc& a : g.neighbors(u)) {
      if (dist[a.to] > dist[u] + a.w) {
        if (report.violated_edges == 0 && report.message.empty()) {
          std::ostringstream os;
          os << "edge (" << u << "," << a.to << ",w=" << a.w
             << ") violates triangle inequality";
          report.message = os.str();
        }
        ++report.violated_edges;
      }
    }
  }
  const auto levels = bfs_levels(g, root);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const bool reached_bfs = levels[v] != kInfDist;
    const bool reached_sssp = dist[v] != kInfDist;
    if (reached_bfs != reached_sssp) {
      if (report.reach_mismatch == 0 && report.message.empty()) {
        std::ostringstream os;
        os << "vertex " << v << " reachability mismatch (bfs="
           << reached_bfs << ", sssp=" << reached_sssp << ")";
        report.message = os.str();
      }
      ++report.reach_mismatch;
    }
  }
  report.ok = report.bad_root == 0 && report.violated_edges == 0 &&
              report.reach_mismatch == 0;
  return report;
}

ValidationReport validate_against_dijkstra(const CsrGraph& g, vid_t root,
                                           const std::vector<dist_t>& dist) {
  ValidationReport invariants = check_sssp_invariants(g, root, dist);
  if (!invariants.ok) return invariants;
  return compare_distances(dist, dijkstra_distances(g, root));
}

ValidationReport check_parent_tree(const CsrGraph& g, vid_t root,
                                   const std::vector<dist_t>& dist,
                                   const std::vector<vid_t>& parent) {
  ValidationReport report;
  auto fail = [&report](std::string message) {
    report.ok = false;
    if (report.message.empty()) report.message = std::move(message);
  };
  const vid_t n = g.num_vertices();
  if (parent.size() != n || dist.size() != n) {
    fail("parent/dist vector size mismatch");
    return report;
  }
  if (parent[root] != root) fail("parent[root] != root");
  if (dist[root] != 0) fail("d(root) != 0");

  for (vid_t v = 0; v < n; ++v) {
    if (dist[v] == kInfDist) {
      if (parent[v] != kInvalidVid) {
        fail("unreachable vertex " + std::to_string(v) + " has a parent");
      }
      continue;
    }
    if (v == root) continue;
    const vid_t p = parent[v];
    if (p >= n) {
      fail("vertex " + std::to_string(v) + " has invalid parent");
      continue;
    }
    // The tree edge must exist with exactly the distance gap as weight.
    bool found = false;
    for (const Arc& a : g.neighbors(v)) {
      if (a.to == p && dist[p] + a.w == dist[v]) {
        found = true;
        break;
      }
    }
    if (!found) {
      fail("tree edge (" + std::to_string(p) + "," + std::to_string(v) +
           ") missing or weight-inconsistent");
    }
  }
  if (!report.ok) return report;

  // Cycle check: climbing parents must reach the root. States: 0 unknown,
  // 1 verified, 2 on the current climb (seen twice -> cycle).
  std::vector<char> state(n, 0);
  state[root] = 1;
  std::vector<vid_t> path;
  for (vid_t v = 0; v < n; ++v) {
    if (dist[v] == kInfDist || state[v] != 0) continue;
    path.clear();
    vid_t x = v;
    while (state[x] == 0) {
      state[x] = 2;
      path.push_back(x);
      x = parent[x];
    }
    if (state[x] == 2) {
      fail("parent cycle through vertex " + std::to_string(x));
      return report;
    }
    for (const vid_t y : path) state[y] = 1;
  }
  return report;
}

}  // namespace parsssp
