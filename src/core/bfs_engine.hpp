// Distributed level-synchronous BFS with direction optimization
// (Beamer et al., SC'12) on the same simulated machine as the SSSP engine.
//
// The paper's headline table (Fig 1) positions its SSSP against the best
// published BFS numbers and observes that "SSSP is only two to five times
// slower than BFS on the same machine configuration". This engine lets the
// repository reproduce that comparison natively: same rank/mailbox
// substrate, same cost model, same graphs.
//
// Top-down steps relax the frontier's out-edges with point-to-point
// messages (like SSSP push). Bottom-up steps instead broadcast the frontier
// bitmap and let every unvisited vertex scan its own adjacency for a
// frontier neighbour — the BFS analogue of the SSSP pull model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "core/types.hpp"
#include "graph/csr.hpp"
#include "runtime/machine.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

struct BfsOptions {
  /// Enable the top-down/bottom-up switch; false = always top-down.
  bool direction_optimize = true;
  /// Switch to bottom-up when frontier_edges * alpha > unvisited_edges.
  double alpha = 0.25;
  /// Switch back to top-down when frontier_vertices * beta < num_vertices.
  double beta = 1.0 / 64.0;
  bool track_parents = false;
  /// Relax/exchange data path, same semantics as SsspOptions::data_path.
  DataPath data_path = DataPath::kPooled;
  /// Sender-side keep-first dedup of top-down discovery messages (exact:
  /// a later message for an already-messaged vertex can never win).
  bool sender_reduction = true;
  CostModelParams cost_model;
};

struct BfsStats {
  std::uint64_t levels = 0;
  std::uint64_t top_down_steps = 0;
  std::uint64_t bottom_up_steps = 0;
  std::uint64_t edges_examined = 0;
  double model_time_s = 0;
  double wall_time_s = 0;
  double gteps(std::uint64_t num_edges) const {
    return model_time_s > 0
               ? static_cast<double>(num_edges) / model_time_s / 1e9
               : 0.0;
  }
};

struct BfsResult {
  std::vector<dist_t> level;   ///< hop count; kInfDist = unreachable
  std::vector<vid_t> parent;   ///< empty unless track_parents
  BfsStats stats;
};

class BfsSolver {
 public:
  BfsSolver(const CsrGraph& graph, MachineConfig machine);

  BfsResult solve(vid_t root, const BfsOptions& options = {});

  const BlockPartition& partition() const { return part_; }

 private:
  const CsrGraph& graph_;
  Machine machine_;
  BlockPartition part_;
};

}  // namespace parsssp
