#include "core/async_solve.hpp"

#include <stdexcept>
#include <utility>

#include "core/async_engine.hpp"
#include "core/parent_canon.hpp"

namespace parsssp {

void run_async_solve(MachineSession& session, const AsyncSolveJob& job,
                     const SsspOptions& options,
                     std::shared_ptr<void> keepalive) {
  if (options.algo != SsspAlgo::kAsync) {
    throw std::invalid_argument(
        "run_async_solve: options.algo must be SsspAlgo::kAsync");
  }
  AsyncChannel<RelaxMsg> channel(session.num_ranks());
  LevelBoard board(session.num_ranks());
  AsyncEngineShared shared;
  shared.graph = job.graph;
  shared.part = job.part;
  shared.views = job.views;
  shared.dist = job.dist;
  shared.parent = job.parent;
  shared.root = job.root;
  shared.options = &options;
  shared.rank_counters = job.rank_counters;
  shared.stats = job.stats;
  shared.channel = &channel;
  shared.board = &board;
  session
      .submit([&shared](RankCtx& ctx) { run_async_sssp_job(ctx, shared); },
              std::move(keepalive))
      .get();
  if (job.parent != nullptr) {
    // Always canonical: async relax order is schedule-dependent, so the
    // raw predecessor tree is not reproducible — re-deriving parents from
    // (graph, dist) is what makes them bit-comparable across engines.
    canonicalize_parents(*job.graph, job.root, *job.dist, *job.parent);
  }
}

}  // namespace parsssp
