#include "core/parent_canon.hpp"

namespace parsssp {

void canonicalize_parents(const CsrGraph& g, vid_t root,
                          const std::vector<dist_t>& dist,
                          std::vector<vid_t>& parent) {
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    parent[v] = canonical_parent_of(v, root, dist, [&](auto&& fn) {
      for (const Arc& a : g.neighbors(v)) fn(a);
    });
  }
}

}  // namespace parsssp
