// Annotated synchronization primitives. std::mutex carries no capability
// attributes, so Clang's -Wthread-safety cannot see std::lock_guard acquire
// it; these thin wrappers re-export std::mutex / std::condition_variable
// with the annotations the analysis needs. Use them for any mutex whose
// guarded members are declared with MPS_GUARDED_BY.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <new>

#include "core/thread_annotations.hpp"

namespace parsssp {

/// Destructive-interference stride for per-lane counters. Hardcoded rather
/// than std::hardware_destructive_interference_size so the padding (and any
/// struct layout derived from it) is identical across compilers.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Pads T to a full cache line so adjacent array elements written by
/// different lanes (per-lane emission counters, per-lane insert logs) never
/// share a line. Use for any `std::vector<CacheAligned<T>>` indexed by lane.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

class MPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MPS_ACQUIRE() { m_.lock(); }
  void unlock() MPS_RELEASE() { m_.unlock(); }
  bool try_lock() MPS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock over Mutex (the annotated std::lock_guard).
class MPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MPS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MPS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to the annotated Mutex. wait() must be called
/// with the mutex held and returns with it held (it may wake spuriously, so
/// callers loop on their condition — which keeps the guarded reads in the
/// annotated caller scope instead of an unannotatable predicate lambda).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) MPS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // lock ownership stays with the caller's scope
  }

  /// Timed wait: blocks for at most `timeout` or until notified. Returns
  /// true if woken by a notify, false on timeout. Spurious wakeups report
  /// as notifies, so callers loop on their condition either way.
  bool wait_for(Mutex& mutex, std::chrono::nanoseconds timeout)
      MPS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace parsssp
