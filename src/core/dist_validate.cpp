#include "core/dist_validate.hpp"

#include <sstream>

namespace parsssp {
namespace {

/// Triangle-check payload: "I propose d(u) + w for your vertex v."
struct TriMsg {
  vid_t v;
  dist_t bound;
};

/// Parent-edge query: "is d(p) + w == expected for your vertex p?"
struct ParentReq {
  vid_t p;         ///< parent (owned by receiver)
  vid_t child;     ///< for the response address
  dist_t expected; ///< d(child)
  weight_t w;      ///< candidate tree-edge weight
};

/// Response: one confirmed tree edge for `child`.
struct ParentOk {
  vid_t child;
};

struct Violations {
  std::uint64_t bad_root = 0;
  std::uint64_t triangle = 0;
  std::uint64_t parent = 0;
};
struct ViolationsOp {
  Violations operator()(const Violations& a, const Violations& b) const {
    return {a.bad_root + b.bad_root, a.triangle + b.triangle,
            a.parent + b.parent};
  }
};

}  // namespace

ValidationReport validate_distributed(const CsrGraph& g, Machine& machine,
                                      const BlockPartition& part, vid_t root,
                                      const std::vector<dist_t>& dist,
                                      const std::vector<vid_t>& parent) {
  const bool check_parents = !parent.empty();
  Violations total;

  machine.run([&](RankCtx& ctx) {
    const rank_t r = ctx.rank();
    const rank_t ranks = ctx.num_ranks();
    const vid_t begin = part.begin(r);
    const vid_t end = part.end(r);
    Violations local;

    // Check 1: the root's owner validates d(root).
    if (part.owner(root) == r && dist[root] != 0) ++local.bad_root;

    // Check 2: propose d(u)+w over every owned arc; receivers verify.
    std::vector<std::vector<TriMsg>> tri_out(ranks);
    for (vid_t u = begin; u < end; ++u) {
      if (dist[u] == kInfDist) continue;
      for (const Arc& a : g.neighbors(u)) {
        tri_out[part.owner(a.to)].push_back({a.to, dist[u] + a.w});
      }
    }
    const auto tri_in = ctx.exchange(std::move(tri_out),
                                     PhaseKind::kControl);
    for (const auto& batch : tri_in) {
      for (const TriMsg& m : batch) {
        if (dist[m.v] > m.bound) ++local.triangle;
      }
    }

    if (check_parents) {
      // Checks 3-4: candidate tree edges of every owned reached vertex.
      std::vector<std::vector<ParentReq>> req_out(ranks);
      std::vector<char> confirmed(end - begin, 0);
      for (vid_t v = begin; v < end; ++v) {
        const vid_t p = parent[v];
        if (dist[v] == kInfDist) {
          if (p != kInvalidVid) ++local.parent;  // ghost parent
          continue;
        }
        if (v == root) {
          if (p != root) ++local.parent;
          confirmed[v - begin] = 1;
          continue;
        }
        if (p >= g.num_vertices()) {
          ++local.parent;
          confirmed[v - begin] = 1;  // counted; don't double-report below
          continue;
        }
        for (const Arc& a : g.neighbors(v)) {
          if (a.to == p) {
            req_out[part.owner(p)].push_back({p, v, dist[v], a.w});
          }
        }
      }
      const auto req_in = ctx.exchange(std::move(req_out),
                                       PhaseKind::kControl);
      std::vector<std::vector<ParentOk>> ok_out(ranks);
      for (const auto& batch : req_in) {
        for (const ParentReq& m : batch) {
          if (dist[m.p] != kInfDist && dist[m.p] + m.w == m.expected) {
            ok_out[part.owner(m.child)].push_back({m.child});
          }
        }
      }
      const auto ok_in = ctx.exchange(std::move(ok_out),
                                      PhaseKind::kControl);
      for (const auto& batch : ok_in) {
        for (const ParentOk& m : batch) confirmed[m.child - begin] = 1;
      }
      for (vid_t v = begin; v < end; ++v) {
        if (dist[v] != kInfDist && !confirmed[v - begin]) ++local.parent;
      }
    }

    const Violations reduced = ctx.allreduce(local, ViolationsOp{});
    if (ctx.rank() == 0) total = reduced;  // identical on all ranks
  });

  ValidationReport report;
  report.bad_root = total.bad_root;
  report.violated_edges = total.triangle;
  report.parent_violations = total.parent;
  report.ok = total.bad_root == 0 && total.triangle == 0 &&
              total.parent == 0;
  if (!report.ok) {
    std::ostringstream os;
    os << "distributed validation: " << total.bad_root << " root, "
       << total.triangle << " triangle, " << total.parent
       << " parent violations";
    report.message = os.str();
  }
  return report;
}

}  // namespace parsssp
