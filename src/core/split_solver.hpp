// Solver wrapper with the paper's second load-balancing tier built in
// (§III-E, inter-node vertex splitting): extreme-degree vertices are split
// into proxies before partitioning, the SSSP runs on the transformed graph,
// and results are projected back to the original vertex ids.
//
// Use this instead of Solver when the graph's maximum degree is so large
// that one rank's owned-edge count dwarfs the others (the paper needs this
// for RMAT-1 beyond scale 35).
#pragma once

#include <memory>
#include <optional>

#include "core/solver.hpp"
#include "graph/vertex_split.hpp"

namespace parsssp {

struct SplitSolverConfig {
  SolverConfig solver;
  /// Split every vertex with degree > this threshold. 0 = auto: choose
  /// 8x the graph's average degree, a robust default for R-MAT skew.
  std::size_t degree_threshold = 0;
  std::uint64_t scatter_seed = 99;
};

class SplitSolver {
 public:
  /// `list` is consumed to build the transformed graph; the original graph
  /// CSR is built internally for degree inspection only.
  SplitSolver(const EdgeList& list, SplitSolverConfig config);

  /// Runs SSSP from an *original* root id; distances (and parents, if
  /// tracked) are reported over original ids. Proxy vertices are folded
  /// back into their hub.
  SsspResult solve(vid_t original_root, const SsspOptions& options);

  /// Number of proxies created by the preprocessing split.
  vid_t num_proxies() const { return split_.num_proxies; }
  vid_t num_split_vertices() const { return split_.num_split_vertices; }
  std::size_t threshold_used() const { return threshold_; }

  const CsrGraph& transformed_graph() const { return transformed_; }
  Solver& inner() { return *solver_; }

 private:
  SplitResult split_;
  CsrGraph transformed_;
  std::size_t threshold_ = 0;
  std::vector<vid_t> new_to_orig_;  ///< transformed id -> original id
                                    ///< (proxies map to their hub)
  std::unique_ptr<Solver> solver_;
};

}  // namespace parsssp
