// The pruning machinery (paper §III-B/C): communication-volume estimation
// for the push and pull long-phase models, and the per-bucket decision
// heuristic.
//
// Push volume  = number of long edges incident on the current bucket's
//                settled vertices (plus outer-short edges under IOS).
// Pull volume  = requests + responses; a request crosses edge <u,v> with v
//                in a later bucket iff w(e) < d(v) - k*Delta (eq. (1)), and
//                responses <= requests, the paper's working upper bound.
//
// Cost of a mode = volume + load_lambda * ranks * max_per_rank_volume,
// the "fine-tuned" form the paper alludes to: the second term penalizes
// concentrating traffic on one rank (the 15% of cases the volume-only
// heuristic got wrong). Validated against exhaustive decision sequences in
// bench/tabG_heuristic_validation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/options.hpp"
#include "core/types.hpp"

namespace parsssp {

/// This rank's contribution to the decision inputs for bucket k.
struct PushPullLocal {
  std::uint64_t push_volume = 0;  ///< long(-phase) arcs on local members
  std::uint64_t pull_requests = 0;  ///< requests local later-bucket vertices
                                    ///< would send (exact or expected)
};

/// Computes the local estimate.
///  - `members`: locals settled in the current epoch (bucket k).
///  - `dist_local` / `settled`: owned tentative distances and settled flags.
///  - `include_short_in_long_phase`: true under IOS (outer-short edges are
///    relaxed in the long phase, and pulled over accordingly).
PushPullLocal estimate_push_pull_local(
    const LocalEdgeView& view, std::span<const dist_t> dist_local,
    std::span<const char> settled, std::span<const vid_t> members,
    std::uint64_t k, std::uint32_t delta, EstimatorKind estimator,
    weight_t max_weight, bool include_short_in_long_phase);

/// Global decision inputs after reduction over ranks.
struct PushPullGlobal {
  std::uint64_t push_volume = 0;
  std::uint64_t pull_requests = 0;
  std::uint64_t push_max_rank = 0;
  std::uint64_t pull_max_rank = 0;
};

struct PushPullDecision {
  bool pull = false;
  double push_cost = 0;
  double pull_cost = 0;
};

/// The decision heuristic. `ranks` is the machine size R.
PushPullDecision decide_push_pull(const PushPullGlobal& global, rank_t ranks,
                                  double load_lambda);

/// Expected number of pull requests one vertex with distance `dv` would send
/// for bucket k, under uniform long-edge weights in [delta, max_weight]
/// (the paper's closed-form estimator, exposed for tests/ablation).
double expected_requests_for_vertex(std::uint64_t long_degree, dist_t dv,
                                    std::uint64_t k, std::uint32_t delta,
                                    weight_t max_weight);

}  // namespace parsssp
