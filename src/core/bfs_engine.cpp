#include "core/bfs_engine.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/send_buffer_pool.hpp"

namespace parsssp {
namespace {

struct BfsMsg {
  vid_t v;     ///< destination vertex (owned by receiver)
  vid_t pred;  ///< frontier vertex that discovered it
};

struct BfsReduce {
  std::uint64_t frontier_vertices = 0;
  std::uint64_t frontier_edges = 0;
  std::uint64_t unvisited_edges = 0;
  std::uint64_t max_work = 0;
  std::uint64_t max_bytes = 0;
};
struct BfsReduceOp {
  BfsReduce operator()(const BfsReduce& a, const BfsReduce& b) const {
    return {a.frontier_vertices + b.frontier_vertices,
            a.frontier_edges + b.frontier_edges,
            a.unvisited_edges + b.unvisited_edges,
            std::max(a.max_work, b.max_work),
            std::max(a.max_bytes, b.max_bytes)};
  }
};

struct RankOut {
  std::uint64_t edges_examined = 0;
  std::uint64_t top_down = 0;
  std::uint64_t bottom_up = 0;
  std::uint64_t levels = 0;
  double model_ns = 0;
  double wall_s = 0;
};

}  // namespace

BfsSolver::BfsSolver(const CsrGraph& graph, MachineConfig machine)
    : graph_(graph),
      machine_(machine),
      part_(graph.num_vertices(), machine_.num_ranks()) {}

BfsResult BfsSolver::solve(vid_t root, const BfsOptions& options) {
  BfsResult result;
  result.level.assign(graph_.num_vertices(), kInfDist);
  if (options.track_parents) {
    result.parent.assign(graph_.num_vertices(), kInvalidVid);
  }
  std::vector<RankOut> outs(machine_.num_ranks());
  const CostModel cost(options.cost_model);

  machine_.run([&](RankCtx& ctx) {
    const rank_t r = ctx.rank();
    RankOut& out = outs[r];
    // Accumulates into out.wall_s when the lambda returns (lint rule R8:
    // wall-clock reads go through the obs/ timers).
    PhaseTimer wall_timer(out.wall_s);
    const rank_t ranks = ctx.num_ranks();
    const vid_t begin = part_.begin(r);
    const vid_t nloc = part_.count(r);
    std::span<dist_t> level(result.level.data() + begin, nloc);
    std::span<vid_t> parent;
    if (options.track_parents) {
      parent = std::span<vid_t>(result.parent.data() + begin, nloc);
    }

    // Bitmap geometry: every rank's slice occupies `words_per_rank` words
    // in the replicated global frontier bitmap (block partition, so all
    // slices fit the same stride).
    const std::uint64_t words_per_rank = (part_.block_size() + 63) / 64;
    std::vector<std::uint64_t> global_bits(words_per_rank * ranks, 0);

    std::vector<vid_t> frontier;
    if (part_.owner(root) == r) {
      level[root - begin] = 0;
      if (!parent.empty()) parent[root - begin] = root;
      frontier.push_back(root - begin);
    }

    // Pooled exchange buffers: top-down discovery messages and bottom-up
    // frontier bitmaps. One emission lane (BFS generates serially); the
    // reference path drops capacity every step so the baseline pays the
    // seed's churn.
    SendBufferPool<BfsMsg> msg_pool;
    SendBufferPool<std::uint64_t> bitmap_pool;
    SenderReducer<unsigned char> dedup;
    msg_pool.configure(1, ranks);
    bitmap_pool.configure(1, ranks);
    const bool reference = options.data_path == DataPath::kReference;

    std::uint64_t cur = 0;
    bool bottom_up = false;
    for (;;) {
      // Level-control collectives: sizes of the frontier and the unvisited
      // region drive the direction decision (Beamer's alpha/beta rule).
      std::uint64_t f_edges = 0;
      for (const vid_t u : frontier) f_edges += graph_.degree(begin + u);
      std::uint64_t u_edges = 0;
      for (vid_t v = 0; v < nloc; ++v) {
        if (level[v] == kInfDist) u_edges += graph_.degree(begin + v);
      }
      const BfsReduce totals = ctx.allreduce(
          BfsReduce{frontier.size(), f_edges, u_edges, 0, 0}, BfsReduceOp{});
      out.model_ns += cost.scan_cost(part_.block_size());
      if (totals.frontier_vertices == 0) break;
      out.levels = cur + 1;

      if (options.direction_optimize) {
        if (!bottom_up && totals.frontier_edges * 1.0 >
                              options.alpha * totals.unvisited_edges) {
          bottom_up = true;
        } else if (bottom_up &&
                   static_cast<double>(totals.frontier_vertices) <
                       options.beta *
                           static_cast<double>(part_.num_vertices())) {
          bottom_up = false;
        }
      }

      std::vector<vid_t> next;
      if (!bottom_up) {
        // Top-down: message per frontier out-edge (the SSSP push analogue).
        ++out.top_down;
        if (reference) msg_pool.release();
        msg_pool.begin_phase();
        std::uint64_t emitted = 0;
        for (const vid_t u : frontier) {
          const vid_t gu = begin + u;
          for (const Arc& a : graph_.neighbors(gu)) {
            msg_pool.shard(0, part_.owner(a.to)).push_back({a.to, gu});
            ++emitted;
          }
        }
        out.edges_examined += emitted;
        std::uint64_t posted = emitted;
        if (reference) {
          ctx.exchange_merged(msg_pool, PhaseKind::kShortPhase);
        } else {
          if (options.sender_reduction) {
            // Keep-first dedup per destination vertex: a later message for
            // an already-messaged vertex can never win the level or the
            // parent (the receiver keeps the first arrival), so dropping
            // it is exact.
            dedup.ensure(part_.block_size());
            for (rank_t d = 0; d < ranks; ++d) {
              const vid_t dest_begin = part_.begin(d);
              dedup.begin_dest();
              dedup.reduce(
                  msg_pool.shard(0, d),
                  [dest_begin](const BfsMsg& m) {
                    return static_cast<std::size_t>(m.v - dest_begin);
                  },
                  [](const BfsMsg&) { return static_cast<unsigned char>(0); });
            }
          }
          posted = msg_pool.pending_messages();
          ctx.exchange_pooled(msg_pool, PhaseKind::kShortPhase);
        }
        std::uint64_t applied = 0;
        for (const auto& batch : msg_pool.incoming()) {
          applied += batch.size();
          for (const BfsMsg& m : batch) {
            const vid_t lv = m.v - begin;
            if (level[lv] != kInfDist) continue;
            level[lv] = cur + 1;
            if (!parent.empty()) parent[lv] = m.pred;
            next.push_back(lv);
          }
        }
        const BfsReduce red = ctx.allreduce(
            BfsReduce{0, 0, 0, emitted + applied, posted * sizeof(BfsMsg)},
            BfsReduceOp{});
        out.model_ns += cost.step_cost(red.max_work, red.max_bytes);
      } else {
        // Bottom-up: replicate the frontier bitmap, then every unvisited
        // vertex scans its own adjacency (the SSSP pull analogue — the
        // communication volume is the bitmap, not the edges).
        ++out.bottom_up;
        std::vector<std::uint64_t> my_bits(words_per_rank, 0);
        for (const vid_t u : frontier) {
          my_bits[u / 64] |= std::uint64_t{1} << (u % 64);
        }
        if (reference) bitmap_pool.release();
        bitmap_pool.begin_phase();
        for (rank_t d = 0; d < ranks; ++d) {
          bitmap_pool.shard(0, d).assign(my_bits.begin(), my_bits.end());
        }
        if (reference) {
          ctx.exchange_merged(bitmap_pool, PhaseKind::kPullRequest);
        } else {
          ctx.exchange_pooled(bitmap_pool, PhaseKind::kPullRequest);
        }
        // Incoming batches carry their source rank, which fixes each
        // bitmap slice's position in the replicated frontier.
        const auto& bitmap_in = bitmap_pool.incoming();
        const auto& bitmap_src = bitmap_pool.incoming_sources();
        for (std::size_t i = 0; i < bitmap_in.size(); ++i) {
          std::copy(bitmap_in[i].begin(), bitmap_in[i].end(),
                    global_bits.begin() + bitmap_src[i] * words_per_rank);
        }
        auto in_frontier = [&](vid_t g) {
          const rank_t owner = part_.owner(g);
          const vid_t local = part_.local_id(g);
          return (global_bits[owner * words_per_rank + local / 64] >>
                  (local % 64)) &
                 1;
        };
        std::uint64_t scanned = 0;
        for (vid_t v = 0; v < nloc; ++v) {
          if (level[v] != kInfDist) continue;
          for (const Arc& a : graph_.neighbors(begin + v)) {
            ++scanned;
            if (in_frontier(a.to)) {
              level[v] = cur + 1;
              if (!parent.empty()) parent[v] = a.to;
              next.push_back(v);
              break;  // one parent suffices: the bottom-up payoff
            }
          }
        }
        out.edges_examined += scanned;
        const std::uint64_t bitmap_bytes =
            words_per_rank * 8 * (ranks - 1);
        const BfsReduce red = ctx.allreduce(
            BfsReduce{0, 0, 0, scanned + words_per_rank, bitmap_bytes},
            BfsReduceOp{});
        out.model_ns += cost.step_cost(red.max_work, red.max_bytes);
      }
      frontier = std::move(next);
      ++cur;
    }
  });

  for (const RankOut& o : outs) {
    result.stats.edges_examined += o.edges_examined;
    result.stats.wall_time_s = std::max(result.stats.wall_time_s, o.wall_s);
  }
  result.stats.levels = outs[0].levels;
  result.stats.top_down_steps = outs[0].top_down;
  result.stats.bottom_up_steps = outs[0].bottom_up;
  result.stats.model_time_s = outs[0].model_ns * 1e-9;
  return result;
}

}  // namespace parsssp
