#include "core/solver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace parsssp {

Solver::Solver(const CsrGraph& graph, SolverConfig config)
    : graph_(graph),
      config_(config),
      machine_(config.machine),
      part_(graph.num_vertices(), config.machine.num_ranks) {}

void Solver::ensure_views(std::uint32_t delta) {
  if (views_ready_ && views_delta_ == delta) return;
  const auto t0 = std::chrono::steady_clock::now();
  views_.assign(machine_.num_ranks(), LocalEdgeView{});
  // Each rank builds its own view, in parallel on the simulated machine.
  machine_.run([&](RankCtx& ctx) {
    views_[ctx.rank()] =
        LocalEdgeView::build(graph_, part_, ctx.rank(), delta);
  });
  preprocess_s_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  views_delta_ = delta;
  views_ready_ = true;
}

SsspResult Solver::solve(vid_t root, const SsspOptions& options) {
  if (root >= graph_.num_vertices()) {
    throw std::invalid_argument("Solver::solve: root out of range");
  }
  if (options.delta == 0) {
    throw std::invalid_argument("Solver::solve: delta must be >= 1");
  }
  ensure_views(options.delta);

  SsspResult result;
  result.dist.assign(graph_.num_vertices(), kInfDist);
  if (options.track_parents) {
    result.parent.assign(graph_.num_vertices(), kInvalidVid);
  }
  std::vector<RankCounters> rank_counters(machine_.num_ranks());

  EngineShared shared;
  shared.graph = &graph_;
  shared.part = part_;
  shared.views = &views_;
  shared.dist = &result.dist;
  shared.parent = options.track_parents ? &result.parent : nullptr;
  shared.root = root;
  shared.options = &options;
  shared.rank_counters = &rank_counters;
  shared.stats = &result.stats;

  machine_.run([&shared](RankCtx& ctx) { run_sssp_job(ctx, shared); });

  for (const RankCounters& c : rank_counters) {
    result.stats.short_relaxations += c.short_relaxations;
    result.stats.long_push_relaxations += c.long_push_relaxations;
    result.stats.pull_requests += c.pull_requests;
    result.stats.pull_responses += c.pull_responses;
    result.stats.bf_relaxations += c.bf_relaxations;
  }
  return result;
}

BatchSummary Solver::solve_batch(std::span<const vid_t> roots,
                                 const SsspOptions& options) {
  BatchSummary summary;
  summary.num_roots = roots.size();
  summary.edges = graph_.num_undirected_edges();
  if (roots.empty()) return summary;

  double inv_sum = 0;
  summary.min_gteps = std::numeric_limits<double>::max();
  for (const vid_t root : roots) {
    SsspResult r = solve(root, options);
    const double gteps = r.stats.gteps(summary.edges, /*modeled=*/true);
    inv_sum += gteps > 0 ? 1.0 / gteps : 0.0;
    summary.mean_gteps += gteps;
    summary.min_gteps = std::min(summary.min_gteps, gteps);
    summary.max_gteps = std::max(summary.max_gteps, gteps);
    summary.mean_time_s += r.stats.model_time_s;
    summary.mean_relaxations +=
        static_cast<double>(r.stats.total_relaxations());
    summary.per_root.push_back(std::move(r.stats));
  }
  const double n = static_cast<double>(roots.size());
  summary.harmonic_mean_gteps = inv_sum > 0 ? n / inv_sum : 0.0;
  summary.mean_gteps /= n;
  summary.mean_time_s /= n;
  summary.mean_relaxations /= n;
  return summary;
}

}  // namespace parsssp
