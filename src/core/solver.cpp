#include "core/solver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/async_engine.hpp"
#include "core/delta_engine.hpp"
#include "core/parent_canon.hpp"
#include "core/stepping_engine.hpp"

namespace parsssp {

Solver::Solver(const CsrGraph& graph, SolverConfig config)
    : graph_(graph),
      config_(config),
      machine_(config.machine),
      part_(graph.num_vertices(), config.machine.num_ranks) {}

void Solver::ensure_views(std::uint32_t delta) {
  if (views_ready_ && views_delta_ == delta) return;
  const auto t0 = std::chrono::steady_clock::now();
  views_.assign(machine_.num_ranks(), LocalEdgeView{});
  // Each rank builds its own view, in parallel on the simulated machine.
  machine_.run([&](RankCtx& ctx) {
    views_[ctx.rank()] =
        LocalEdgeView::build(graph_, part_, ctx.rank(), delta);
  });
  preprocess_s_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  views_delta_ = delta;
  views_ready_ = true;
}

SsspResult Solver::solve(vid_t root, const SsspOptions& options) {
  if (root >= graph_.num_vertices()) {
    throw std::out_of_range(
        "Solver::solve: root " + std::to_string(root) +
        " out of range (graph has " +
        std::to_string(graph_.num_vertices()) + " vertices)");
  }
  if (options.delta == 0) {
    throw std::invalid_argument("Solver::solve: delta must be >= 1");
  }
  if (options.algo == SsspAlgo::kRho && options.rho == 0) {
    throw std::invalid_argument("Solver::solve: rho must be >= 1");
  }
  if (options.algo == SsspAlgo::kRadius && options.radius_k == 0) {
    throw std::invalid_argument("Solver::solve: radius_k must be >= 1");
  }
  ensure_views(options.delta);

  SsspResult result;
  result.dist.assign(graph_.num_vertices(), kInfDist);
  if (options.track_parents) {
    result.parent.assign(graph_.num_vertices(), kInvalidVid);
  }
  std::vector<RankCounters> rank_counters(machine_.num_ranks());

  if (options.algo == SsspAlgo::kAsync) {
    AsyncChannel<RelaxMsg> channel(machine_.num_ranks());
    LevelBoard board(machine_.num_ranks());
    AsyncEngineShared shared;
    shared.graph = &graph_;
    shared.part = part_;
    shared.views = &views_;
    shared.dist = &result.dist;
    shared.parent = options.track_parents ? &result.parent : nullptr;
    shared.root = root;
    shared.options = &options;
    shared.rank_counters = &rank_counters;
    shared.stats = &result.stats;
    shared.channel = &channel;
    shared.board = &board;

    machine_.run(
        [&shared](RankCtx& ctx) { run_async_sssp_job(ctx, shared); });
  } else if (is_stepping_algo(options.algo)) {
    SteppingEngineShared shared;
    shared.graph = &graph_;
    shared.part = part_;
    shared.views = &views_;
    shared.dist = &result.dist;
    shared.parent = options.track_parents ? &result.parent : nullptr;
    shared.root = root;
    shared.options = &options;
    shared.rank_counters = &rank_counters;
    shared.stats = &result.stats;

    machine_.run(
        [&shared](RankCtx& ctx) { run_stepping_sssp_job(ctx, shared); });
  } else {
    EngineShared shared;
    shared.graph = &graph_;
    shared.part = part_;
    shared.views = &views_;
    shared.dist = &result.dist;
    shared.parent = options.track_parents ? &result.parent : nullptr;
    shared.root = root;
    shared.options = &options;
    shared.rank_counters = &rank_counters;
    shared.stats = &result.stats;

    machine_.run([&shared](RankCtx& ctx) { run_sssp_job(ctx, shared); });
  }

  if (options.track_parents &&
      (options.canonical_parents || options.algo == SsspAlgo::kAsync ||
       is_stepping_algo(options.algo))) {
    // Async and stepping parent trees depend on the message schedule;
    // canonicalizing makes them a pure function of (graph, dist) — see
    // docs/ASYNC.md and docs/STEPPING.md.
    canonicalize_parents(graph_, root, result.dist, result.parent);
  }

  for (const RankCounters& c : rank_counters) {
    result.stats.short_relaxations += c.short_relaxations;
    result.stats.long_push_relaxations += c.long_push_relaxations;
    result.stats.pull_requests += c.pull_requests;
    result.stats.pull_responses += c.pull_responses;
    result.stats.bf_relaxations += c.bf_relaxations;
    result.stats.async_relaxations += c.async_relaxations;
    result.stats.stepping_relaxations += c.stepping_relaxations;
  }
  return result;
}

BatchSummary Solver::solve_batch(std::span<const vid_t> roots,
                                 const SsspOptions& options,
                                 const BatchOptions& batch) {
  BatchSummary summary;
  summary.num_roots = roots.size();
  summary.edges = graph_.num_undirected_edges();
  for (const vid_t root : roots) {
    if (root >= graph_.num_vertices()) {
      throw std::out_of_range(
          "Solver::solve_batch: root " + std::to_string(root) +
          " out of range (graph has " +
          std::to_string(graph_.num_vertices()) + " vertices)");
    }
  }
  if (roots.empty()) return summary;

  double inv_sum = 0;
  summary.min_gteps = std::numeric_limits<double>::max();
  std::unordered_map<vid_t, std::size_t> first_at;  // root -> first index
  for (const vid_t root : roots) {
    SsspStats stats;
    std::vector<dist_t> dist;
    const auto it = first_at.find(root);
    if (it != first_at.end()) {
      // solve() is deterministic: the first occurrence's results stand in
      // for the repeat without recomputing.
      stats = summary.per_root[it->second];
      if (batch.keep_distances) dist = summary.distances[it->second];
    } else {
      first_at.emplace(root, summary.per_root.size());
      SsspResult r = solve(root, options);
      stats = std::move(r.stats);
      if (batch.keep_distances) dist = std::move(r.dist);
      ++summary.unique_roots;
    }
    const double gteps = stats.gteps(summary.edges, /*modeled=*/true);
    inv_sum += gteps > 0 ? 1.0 / gteps : 0.0;
    summary.mean_gteps += gteps;
    summary.min_gteps = std::min(summary.min_gteps, gteps);
    summary.max_gteps = std::max(summary.max_gteps, gteps);
    summary.mean_time_s += stats.model_time_s;
    summary.mean_relaxations += static_cast<double>(stats.total_relaxations());
    summary.per_root.push_back(std::move(stats));
    if (batch.keep_distances) summary.distances.push_back(std::move(dist));
  }
  const double n = static_cast<double>(roots.size());
  summary.harmonic_mean_gteps = inv_sum > 0 ? n / inv_sum : 0.0;
  summary.mean_gteps /= n;
  summary.mean_time_s /= n;
  summary.mean_relaxations /= n;
  return summary;
}

MultiRootResult Solver::solve_multi(std::span<const vid_t> roots,
                                    const SsspOptions& options) {
  for (const vid_t root : roots) {
    if (root >= graph_.num_vertices()) {
      throw std::out_of_range(
          "Solver::solve_multi: root " + std::to_string(root) +
          " out of range (graph has " +
          std::to_string(graph_.num_vertices()) + " vertices)");
    }
  }
  if (options.delta == 0) {
    throw std::invalid_argument("Solver::solve_multi: delta must be >= 1");
  }
  if (options.algo == SsspAlgo::kAsync || is_stepping_algo(options.algo)) {
    throw std::invalid_argument(
        "Solver::solve_multi: the asynchronous and stepping engines are "
        "single-root only (use solve/solve_batch, or SsspAlgo::kBucketSync "
        "for multi-root)");
  }
  MultiRootResult result;
  result.roots.assign(roots.begin(), roots.end());
  result.dist.resize(roots.size());
  if (roots.empty()) return result;
  ensure_views(options.delta);

  // Deduplicate in first-occurrence order; duplicates share the slab.
  std::vector<vid_t> unique;
  std::vector<std::size_t> slot_of(roots.size());
  {
    std::unordered_map<vid_t, std::size_t> index;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const auto [it, inserted] = index.emplace(roots[i], unique.size());
      if (inserted) unique.push_back(roots[i]);
      slot_of[i] = it->second;
    }
  }

  // Each sweep batches up to kMaxMultiRoots unique roots; chunk statistics
  // accumulate (a chunked batch is sequential across chunks, so times add).
  std::vector<std::vector<dist_t>> unique_dist(unique.size());
  for (std::size_t base = 0; base < unique.size(); base += kMaxMultiRoots) {
    const std::size_t count = std::min(kMaxMultiRoots, unique.size() - base);
    std::vector<std::vector<dist_t>*> slabs(count);
    for (std::size_t j = 0; j < count; ++j) {
      slabs[j] = &unique_dist[base + j];
    }
    MultiStats chunk_stats;
    std::vector<RankCounters> rank_counters(machine_.num_ranks());

    MultiEngineShared shared;
    shared.graph = &graph_;
    shared.part = part_;
    shared.views = &views_;
    shared.roots = std::span<const vid_t>(unique).subspan(base, count);
    shared.dists = std::span<std::vector<dist_t>* const>(slabs);
    shared.options = &options;
    shared.rank_counters = &rank_counters;
    shared.stats = &chunk_stats;
    for (std::size_t j = 0; j < count; ++j) {
      slabs[j]->assign(graph_.num_vertices(), kInfDist);
    }

    machine_.run([&shared](RankCtx& ctx) { run_multi_sssp_job(ctx, shared); });

    result.stats.num_roots += chunk_stats.num_roots;
    result.stats.epochs += chunk_stats.epochs;
    result.stats.phases += chunk_stats.phases;
    result.stats.relaxations += chunk_stats.relaxations;
    result.stats.per_root_relaxations.insert(
        result.stats.per_root_relaxations.end(),
        chunk_stats.per_root_relaxations.begin(),
        chunk_stats.per_root_relaxations.end());
    result.stats.model_time_s += chunk_stats.model_time_s;
    result.stats.wall_time_s += chunk_stats.wall_time_s;
  }

  // Fan the slabs back out to input positions: each slab moves into its
  // last user and copies into earlier duplicates.
  std::vector<std::size_t> last_use(unique.size(), 0);
  for (std::size_t i = 0; i < roots.size(); ++i) last_use[slot_of[i]] = i;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    result.dist[i] = last_use[slot_of[i]] == i
                         ? std::move(unique_dist[slot_of[i]])
                         : unique_dist[slot_of[i]];
  }
  return result;
}

}  // namespace parsssp
