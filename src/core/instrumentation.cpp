#include "core/instrumentation.hpp"

// SsspStats and CostModel are header-only; this anchors the target.
namespace parsssp {
static_assert(sizeof(SsspStats) > 0);
}  // namespace parsssp
