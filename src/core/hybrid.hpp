// Hybridization (paper §III-D): after each epoch, if the fraction of
// settled vertices exceeds tau, the remaining buckets are merged into one
// and finished with Bellman-Ford. The paper determined tau = 0.4 to be a
// good choice; bench/abl_hybrid_tau sweeps it.
#pragma once

#include <cstdint>

namespace parsssp {

/// True if the engine should switch to the Bellman-Ford tail.
/// `tau < 0` disables hybridization.
bool should_switch_to_bellman_ford(std::uint64_t settled_total,
                                   std::uint64_t num_vertices, double tau);

}  // namespace parsssp
