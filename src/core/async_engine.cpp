#include "core/async_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

namespace parsssp {
namespace {

/// How long a passive rank parks on its inbox between quiescence polls.
/// Long enough not to burn a core spinning, short enough that the token
/// ring closes its circuits in a handful of wakeups.
constexpr std::chrono::microseconds kIdleWait{50};

/// Bounded-asynchrony window: a rank only relaxes buckets at most this
/// many levels above the slowest published frontier (LevelBoard).
/// Uncontrolled speculation relaxes many times more edges than the
/// synchronous schedule — a rank races through its high buckets on
/// distances a slower peer is about to improve — and that redone work is
/// pure loss whenever ranks outnumber cores. The window recovers the
/// synchronous schedule's work efficiency without its collectives: the
/// board is relaxed atomics, a throttled rank parks on its inbox (woken
/// early by any delivery), and the minimum rank is never throttled.
constexpr std::uint64_t kSpeculationWindow = 0;

}  // namespace

AsyncEngine::AsyncEngine(RankCtx& ctx, const AsyncEngineShared& shared)
    : ctx_(ctx),
      sh_(shared),
      view_((*shared.views)[ctx.rank()]),
      channel_(*shared.channel),
      begin_(shared.part.begin(ctx.rank())),
      nloc_(shared.part.count(ctx.rank())),
      pq_(shared.options->delta),
      detector_(ctx.rank(), ctx.num_ranks()),
      cost_(shared.options->cost_model) {
  dist_ = std::span<dist_t>(sh_.dist->data() + begin_, nloc_);
  if (sh_.parent != nullptr) {
    parent_ = std::span<vid_t>(sh_.parent->data() + begin_, nloc_);
  }
  out_pool_.configure(/*lanes=*/1, ctx_.num_ranks());
  in_pending_.assign(nloc_, 0);

  sync0_allreduces_ = ctx_.traffic().allreduces;
  sync0_barriers_ = ctx_.traffic().barriers;

  if (sh_.options->trace != nullptr) {
    tlane_ = &sh_.options->trace->thread_lane(
        "rank" + std::to_string(ctx_.rank()));
  }
}

void AsyncEngine::init() {
  // Each rank only ever touches its own dist/parent slice, and inbound
  // batches park in the channel until their owner drains them — so no
  // start-of-solve barrier is needed: a rank that finishes init late has
  // simply not drained yet.
  std::fill(dist_.begin(), dist_.end(), kInfDist);
  if (!parent_.empty()) {
    std::fill(parent_.begin(), parent_.end(), kInvalidVid);
  }
  if (sh_.part.owner(sh_.root) == ctx_.rank()) {
    const vid_t local = to_local(sh_.root);
    dist_[local] = 0;
    if (!parent_.empty()) parent_[local] = sh_.root;
    pq_.push(local, 0);
  }
}

void AsyncEngine::apply_local(vid_t local, dist_t nd, vid_t pred) {
  if (nd >= dist_[local]) return;
  dist_[local] = nd;
  if (!parent_.empty()) parent_[local] = pred;
  // Lazy re-queue: a previous, higher entry for this vertex may still sit
  // in the queue; it is skipped at pop time (d != dist_[v]).
  pq_.push(local, nd);
}

void AsyncEngine::apply_batch(std::vector<RelaxMsg>& msgs) {
  for (const RelaxMsg& m : msgs) {
    apply_local(to_local(m.v), m.nd, m.pred);
  }
}

void AsyncEngine::ensure_phase() {
  // Shards accumulate across the relax rounds of one bucket level and are
  // flushed at the level boundary (main_loop), so the pool phase opens
  // lazily: exactly one begin_phase per flush. Nothing may push into a
  // shard outside an open phase — begin_phase clears shard sizes.
  if (phase_open_) return;
  if (sh_.options->data_path == DataPath::kReference) {
    // The baseline pays allocation churn every phase, exactly like the
    // bucket-synchronous reference path does.
    out_pool_.release();
  }
  out_pool_.begin_phase();
  phase_open_ = true;
}

void AsyncEngine::relax_arcs(vid_t v, dist_t d, std::span<const Arc> arcs) {
  const rank_t self = ctx_.rank();
  for (const Arc& a : arcs) {
    const dist_t nd = d + a.w;
    ++counters_.async_relaxations;
    const rank_t owner = sh_.part.owner(a.to);
    if (owner == self) {
      // Intra-rank work never crosses the network: applied on the spot,
      // invisible to the quiescence balance.
      apply_local(to_local(a.to), nd, to_global(v));
    } else {
      out_pool_.shard(0, owner).push_back({a.to, nd, to_global(v)});
    }
  }
}

void AsyncEngine::relax_one_batch() {
  ensure_phase();
  pq_.pop_batch(batch_);
  for (const auto& [v, d] : batch_) {
    if (d != dist_[v]) continue;  // stale lazy entry, already improved
    // Delta-stepping's light/heavy split, asynchronously: a within-level
    // reactivation re-relaxes only the short arcs (the ones that can feed
    // the same level back); long arcs are deferred to close_level so each
    // settles once per level with the best distance known at the boundary,
    // instead of once per improvement of its source.
    relax_arcs(v, d, view_.short_arcs(v));
    if (!in_pending_[v] && !view_.long_arcs(v).empty()) {
      in_pending_[v] = 1;
      long_pending_.push_back(v);
    }
  }
}

bool AsyncEngine::close_level() {
  const bool had_pending = !long_pending_.empty();
  if (had_pending) {
    ensure_phase();
    for (const vid_t v : long_pending_) {
      in_pending_[v] = 0;
      // dist_ may have improved since the vertex was queued here — the
      // long arcs go out with the best distance this rank knows at the
      // boundary. A still-later improvement re-queues the vertex, which
      // re-registers it for the level it then settles in, so every arc's
      // final relaxation uses the final distance.
      relax_arcs(v, dist_[v], view_.long_arcs(v));
    }
    long_pending_.clear();
  }
  const bool posted = flush_sends();
  return had_pending || posted;
}

bool AsyncEngine::flush_sends() {
  if (!phase_open_) return false;
  phase_open_ = false;
  bool posted = false;
  const rank_t self = ctx_.rank();
  const rank_t ranks = ctx_.num_ranks();
  for (rank_t d = 0; d < ranks; ++d) {
    if (d == self) continue;
    std::vector<RelaxMsg>& shard = out_pool_.shard(0, d);
    if (shard.empty()) continue;
    const std::uint64_t n = shard.size();
    // Lower the recipient's board slot to this batch's frontier before it
    // is even delivered, so the speculation window sees in-flight work.
    std::uint64_t minb = kInfBucket;
    for (const RelaxMsg& m : shard) {
      minb = std::min(minb, bucket_of(m.nd, sh_.options->delta));
    }
    sh_.board->donate(d, minb);
    ctx_.traffic().add(PhaseKind::kAsync, n, n * sizeof(RelaxMsg));
    bytes_sent_ += n * sizeof(RelaxMsg);
    // Count the send before posting: the receiver may drain and count the
    // receive the instant the inbox lock drops.
    detector_.on_send(n);
    channel_.post(self, d, std::move(shard));
    posted = true;
  }
  return posted;
}

void AsyncEngine::main_loop() {
  const rank_t self = ctx_.rank();
  while (!channel_.done(self)) {
    bool worked = false;

    arrived_.clear();
    const std::size_t got = channel_.drain(self, arrived_);
    if (got != 0) {
      ScopedSpan span(tlane_, SpanCat::kAsyncDrain, got);
      detector_.on_receive(got);
      for (auto& batch : arrived_) {
        apply_batch(batch.msgs);
        // Retire the drained buffer into the pool's free list; the next
        // begin_phase() re-seats it as an outgoing shard — capacity
        // migrates across ranks and balances out over the solve.
        out_pool_.push_incoming(batch.source, std::move(batch.msgs));
      }
      worked = true;
    }

    QuiescenceToken token;
    if (channel_.take_token(self, token)) detector_.receive_token(token);

    if (!pq_.empty()) {
      const std::uint64_t next = pq_.min_bucket();
      sh_.board->publish(self, next);
      if (next > sh_.board->global_min() + kSpeculationWindow) {
        // A peer's frontier is still below the window: relaxing this
        // bucket now is work that frontier is about to invalidate. Make
        // our own frontier visible to it, then yield — not a timed park:
        // board advances carry no notification, and a yield hands the
        // core straight to the frontier rank when ranks outnumber cores,
        // where a timer would serialize every level behind its timeout.
        // (publish precedes the read, so the minimum rank always sees
        // next == global_min and is never throttled — progress holds.)
        close_level();
        std::this_thread::yield();
        continue;
      }
      ScopedSpan span(tlane_, SpanCat::kAsyncRelax);
      relax_one_batch();
      // Close at bucket-level boundaries, not per relax round: the
      // deferred long arcs go out once per level, and cascaded same-level
      // work lands in the same shards, so one post per (level,
      // destination) replaces a notify storm of micro-batches — the async
      // analogue of the synchronous engine's per-phase exchange.
      if (pq_.empty() || pq_.min_bucket() != next) close_level();
      worked = true;
    } else {
      sh_.board->publish(self, kInfBucket);
    }
    // Re-check the inbox before declaring this rank passive: the batch we
    // just relaxed may already have produced replies.
    if (worked) continue;

    // Termination safety net: nothing may sit unsent or deferred once this
    // rank calls itself passive — the detector's balance only covers
    // posted batches, and deferred long arcs are future work. (Unreachable
    // in the current flow, since every relax round above either keeps the
    // queue non-empty or closes the level; cheap to keep exact.)
    if (close_level()) continue;

    const QuiescenceRank::Action action = detector_.poll(/*passive=*/true);
    if (action.kind == QuiescenceRank::ActionKind::kTerminate) {
      ScopedSpan span(tlane_, SpanCat::kQuiescence);
      channel_.announce_done();
      break;
    }
    if (action.kind == QuiescenceRank::ActionKind::kForward) {
      ScopedSpan span(tlane_, SpanCat::kQuiescence, action.token.round);
      ++token_hops_;
      channel_.post_token(action.dest, action.token);
      continue;
    }
    // Nothing to do and no token to move: park until a delivery (or give
    // up after kIdleWait and re-poll — wakeups may be missed by design).
    channel_.wait(self, kIdleWait);
  }
}

void AsyncEngine::run() {
  ctx_.set_trace(tlane_);
  double total_wall = 0;
  {
    PhaseTimer total(total_wall);
    init();
    main_loop();
  }
  ctx_.set_trace(nullptr);
  // The async loop has no bucket bookkeeping; all wall time is OtherTime.
  counters_.wall_other_time_s = total_wall;
  finalize();
}

void AsyncEngine::finalize() {
  // The one collective of the whole solve (+1 counts it). The barrier-free
  // claim is checked, not asserted: sssp_cli --validate prints
  // SsspStats::global_syncs() and bench/async_latency gates on it.
  counters_.allreduces = ctx_.traffic().allreduces - sync0_allreduces_ + 1;
  counters_.barriers = ctx_.traffic().barriers - sync0_barriers_;
  (*sh_.rank_counters)[ctx_.rank()] = counters_;

  struct AsyncReduce {
    double wall = 0;
    std::uint64_t work = 0;
    std::uint64_t bytes = 0;
    std::uint64_t rounds = 0;  ///< nonzero on rank 0 only (probe launcher)
    std::uint64_t hops = 0;
    std::uint64_t allreduces = 0;
    std::uint64_t barriers = 0;
  };
  struct AsyncReduceOp {
    AsyncReduce operator()(const AsyncReduce& a, const AsyncReduce& b) const {
      return {std::max(a.wall, b.wall),     std::max(a.work, b.work),
              std::max(a.bytes, b.bytes),   std::max(a.rounds, b.rounds),
              a.hops + b.hops,              std::max(a.allreduces, b.allreduces),
              std::max(a.barriers, b.barriers)};
    }
  };
  const AsyncReduce red = ctx_.allreduce(
      AsyncReduce{counters_.wall_other_time_s, counters_.async_relaxations,
                  bytes_sent_, detector_.rounds_started(), token_hops_,
                  counters_.allreduces, counters_.barriers},
      AsyncReduceOp{});

  if (ctx_.rank() == 0) {
    SsspStats& s = *sh_.stats;
    s.sync_allreduces = red.allreduces;
    s.sync_barriers = red.barriers;
    s.quiescence_rounds = red.rounds;
    s.token_hops = red.hops;
    // No phase/bucket structure to report: the modeled time is the
    // bottleneck rank's relax work plus its injected bytes, with the
    // superstep latency term charged once per quiescence probe circuit
    // (the only ring-wide waiting the async schedule does).
    const double latency_ns = cost_.step_cost(0, 0);
    const double work_ns = cost_.step_cost(red.work, red.bytes) - latency_ns;
    s.model_other_time_s =
        (work_ns + static_cast<double>(red.rounds) * latency_ns) * 1e-9;
    s.model_bucket_time_s = 0;
    s.model_time_s = s.model_other_time_s;
    s.wall_time_s = red.wall;
    s.wall_bucket_time_s = 0;
    s.wall_other_time_s = red.wall;
  }
}

void run_async_sssp_job(RankCtx& ctx, const AsyncEngineShared& shared) {
  AsyncEngine engine(ctx, shared);
  engine.run();
}

}  // namespace parsssp
