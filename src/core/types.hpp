// Fundamental scalar types shared by every module of the library.
//
// The paper targets graphs with up to 2^38 vertices, so vertex identifiers
// are 64-bit throughout. Distances are 64-bit because a shortest distance is
// a sum of up to |V|-1 edge weights and must never overflow silently.
#pragma once

#include <cstdint>
#include <limits>

namespace parsssp {

/// Vertex identifier. Global (graph-wide) unless a name says "local".
using vid_t = std::uint64_t;

/// Edge weight. The SSSP benchmark draws integer weights from [0, 255]; we
/// require w > 0 for input edges (per the paper's problem statement) and
/// reserve w == 0 for proxy edges introduced by vertex splitting.
using weight_t = std::uint32_t;

/// Tentative / final shortest distance.
using dist_t = std::uint64_t;

/// Rank (logical processing node) index inside the simulated machine.
using rank_t = std::uint32_t;

/// "Not reachable" marker; also the initial tentative distance.
inline constexpr dist_t kInfDist = std::numeric_limits<dist_t>::max();

/// "No vertex" marker (parent of unreachable vertices, etc.).
inline constexpr vid_t kInvalidVid = std::numeric_limits<vid_t>::max();

/// Bucket index for an unreached vertex (the paper's B-infinity).
inline constexpr std::uint64_t kInfBucket =
    std::numeric_limits<std::uint64_t>::max();

/// Bucket index of a tentative distance under bucket width delta.
/// Unreached vertices live in the conceptual bucket B-infinity.
constexpr std::uint64_t bucket_of(dist_t d, std::uint32_t delta) {
  return d == kInfDist ? kInfBucket : d / delta;
}

}  // namespace parsssp
