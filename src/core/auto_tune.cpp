#include "core/auto_tune.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace parsssp {
namespace {

// Decision-table thresholds (docs/STEPPING.md has the rationale and the
// bake-off evidence). Deliberately coarse: the table only shortlists;
// the scored probes make the actual call.
constexpr double kHighSkew = 8.0;      ///< max/mean degree of power laws
constexpr std::uint64_t kDeep = 64;    ///< settled buckets of road-likes

double algo_code(SsspAlgo a) {
  switch (a) {
    case SsspAlgo::kBucketSync: return 0;
    case SsspAlgo::kAsync: return 1;
    case SsspAlgo::kRho: return 2;
    case SsspAlgo::kDeltaStar: return 3;
    case SsspAlgo::kRadius: return 4;
  }
  return -1;
}

}  // namespace

SsspOptions TunedConfig::apply(SsspOptions base) const {
  base.algo = algo;
  base.delta = delta;
  base.rho = rho;
  base.radius_k = radius_k;
  return base;
}

std::string TunedConfig::name() const {
  const std::string d = "-d" + std::to_string(delta);
  switch (algo) {
    case SsspAlgo::kBucketSync: return "opt" + d;
    case SsspAlgo::kAsync: return "async" + d;
    case SsspAlgo::kRho: return "rho-" + std::to_string(rho) + d;
    case SsspAlgo::kDeltaStar: return "dstar" + d;
    case SsspAlgo::kRadius: return "radius-k" + std::to_string(radius_k) + d;
  }
  return "unknown" + d;
}

GraphProfile profile_graph(const CsrGraph& graph) {
  GraphProfile p;
  p.vertices = graph.num_vertices();
  p.arcs = graph.num_arcs();
  std::size_t max_deg = 0;
  for (vid_t v = 0; v < graph.num_vertices(); ++v) {
    max_deg = std::max(max_deg, graph.degree(v));
  }
  p.mean_degree = p.vertices > 0
                      ? static_cast<double>(p.arcs) /
                            static_cast<double>(p.vertices)
                      : 0.0;
  p.degree_skew = p.mean_degree > 0
                      ? static_cast<double>(max_deg) / p.mean_degree
                      : 1.0;
  return p;
}

void profile_probe(GraphProfile& p, const SsspStats& probe) {
  p.relax_ratio = p.arcs > 0
                      ? static_cast<double>(probe.total_relaxations()) /
                            static_cast<double>(p.arcs)
                      : 0.0;
  p.probe_buckets = probe.buckets;
  p.phases_per_bucket =
      probe.buckets > 0 ? static_cast<double>(probe.phases) /
                              static_cast<double>(probe.buckets)
                        : 0.0;
  if (!probe.phase_details.empty()) {
    std::uint64_t sum = 0;
    for (const PhaseDetail& d : probe.phase_details) sum += d.relaxations;
    p.mean_frontier = static_cast<double>(sum) /
                      static_cast<double>(probe.phase_details.size());
  } else if (probe.phases > 0) {
    p.mean_frontier = static_cast<double>(probe.total_relaxations()) /
                      static_cast<double>(probe.phases);
  }
}

std::vector<TunedConfig> tuner_shortlist(const GraphProfile& p,
                                         std::uint32_t incumbent_delta) {
  std::vector<TunedConfig> out;
  // The incumbent is always candidate 0: ties break toward it, so tuning
  // can never pick a strictly worse engine than not tuning.
  out.push_back({SsspAlgo::kBucketSync, incumbent_delta, 2048, 4});
  const bool high_skew = p.degree_skew >= kHighSkew;
  const bool deep = p.probe_buckets >= kDeep;
  if (high_skew) {
    // Power-law families: hub relaxations dominate, so batch-extraction
    // rules that settle many entries per global step amortize them.
    out.push_back({SsspAlgo::kRho, incumbent_delta, 1024, 4});
    out.push_back({SsspAlgo::kRho, incumbent_delta, 4096, 4});
    out.push_back({SsspAlgo::kDeltaStar, incumbent_delta, 2048, 4});
  } else if (deep) {
    // Deep, low-skew graphs (roads, grids): step count is the cost, so
    // radius rules that leap past sparse buckets win.
    out.push_back({SsspAlgo::kRadius, incumbent_delta, 2048, 2});
    out.push_back({SsspAlgo::kRadius, incumbent_delta, 2048, 4});
    out.push_back({SsspAlgo::kDeltaStar, incumbent_delta, 2048, 4});
  } else {
    // Ambiguous middle: one representative per family; the scoring pass
    // decides.
    out.push_back({SsspAlgo::kRho, incumbent_delta, 2048, 4});
    out.push_back({SsspAlgo::kDeltaStar, incumbent_delta, 2048, 4});
    out.push_back({SsspAlgo::kRadius, incumbent_delta, 2048, 4});
  }
  return out;
}

AutoTuner::AutoTuner(MetricsRegistry* metrics) : metrics_(metrics) {}

TunedConfig AutoTuner::tune(std::uint64_t version, const CsrGraph& graph,
                            const SsspOptions& base, const ProbeFn& probe) {
  // Held across the probes on purpose: concurrent callers for the same
  // version serialize, and the loser reuses the winner's entry instead of
  // paying the probe solves twice.
  MutexLock lock(mutex_);
  if (const auto it = by_version_.find(version); it != by_version_.end()) {
    return it->second;
  }

  SsspOptions incumbent = base;
  incumbent.algo = SsspAlgo::kBucketSync;
  incumbent.collect_phase_details = true;
  const SsspStats probe0 = probe(incumbent);

  GraphProfile p = profile_graph(graph);
  profile_probe(p, probe0);
  if (metrics_ != nullptr) {
    metrics_->gauge("tuner.degree_skew").set(p.degree_skew);
    metrics_->gauge("tuner.relax_ratio").set(p.relax_ratio);
    metrics_->gauge("tuner.probe_buckets")
        .set(static_cast<double>(p.probe_buckets));
    metrics_->gauge("tuner.mean_frontier").set(p.mean_frontier);
  }

  const std::vector<TunedConfig> shortlist =
      tuner_shortlist(p, base.delta);
  TunedConfig best = shortlist[0];
  double best_time = probe0.model_time_s;
  std::uint64_t probes = 1;
  for (std::size_t i = 1; i < shortlist.size(); ++i) {
    const SsspStats s = probe(shortlist[i].apply(base));
    ++probes;
    // Modeled time is counts-based, so this comparison — and therefore the
    // learned config — is deterministic. Strict <: ties keep the earlier
    // (incumbent-first) candidate.
    if (s.model_time_s < best_time) {
      best_time = s.model_time_s;
      best = shortlist[i];
    }
  }

  by_version_[version] = best;
  ++tunes_;
  if (metrics_ != nullptr) {
    metrics_->counter("tuner.tunes").inc();
    metrics_->counter("tuner.probe_solves").inc(probes);
    metrics_->gauge("tuner.shortlist_size")
        .set(static_cast<double>(shortlist.size()));
    metrics_->gauge("tuner.algo").set(algo_code(best.algo));
  }
  return best;
}

std::optional<TunedConfig> AutoTuner::learned(std::uint64_t version) const {
  MutexLock lock(mutex_);
  if (const auto it = by_version_.find(version); it != by_version_.end()) {
    return it->second;
  }
  return std::nullopt;
}

void AutoTuner::forget(std::uint64_t version) {
  MutexLock lock(mutex_);
  by_version_.erase(version);
}

std::uint64_t AutoTuner::tunes() const {
  MutexLock lock(mutex_);
  return tunes_;
}

}  // namespace parsssp
