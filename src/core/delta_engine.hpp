// The distributed bucket-synchronous SSSP engine: the paper's Delta-stepping
// with edge classification, IOS, push/pull pruning, hybridization and
// intra-rank load balancing — all switchable through SsspOptions, so the
// same engine realizes Dijkstra (Delta=1), Bellman-Ford (one bucket), Del-D,
// Prune-D, OPT-D and LB-OPT-D.
//
// One DeltaEngine instance runs per rank inside a Machine job. All
// cross-rank interaction goes through RankCtx: relax/request/response
// message exchanges plus Allreduce-based termination and bucket-advance
// checks, exactly the communication structure described in §II
// ("Distributed Implementation").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/buckets.hpp"
#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "core/types.hpp"
#include "runtime/machine.hpp"

namespace parsssp {

/// Push-model relaxation / pull-model response payload.
struct RelaxMsg {
  vid_t v;     ///< destination vertex (global id, owned by receiver)
  dist_t nd;   ///< proposed tentative distance d(u) + w(e)
  vid_t pred;  ///< relaxing vertex u (shortest-path tree parent candidate)
};

/// Pull-model request payload: "if u is settled in the current bucket, send
/// me d(u) + w" (paper §III-B, Fig. 5(b)).
struct PullReqMsg {
  vid_t u;     ///< source vertex (owned by receiver of the request)
  vid_t v;     ///< requesting vertex (for the response address)
  weight_t w;  ///< weight of edge <u, v>
};

/// Inputs and output slots shared by all ranks of one solve.
struct EngineShared {
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::vector<dist_t>* dist = nullptr;  ///< global; rank writes its slice
  /// Shortest-path-tree parents (optional; null disables tracking).
  std::vector<vid_t>* parent = nullptr;
  vid_t root = 0;
  const SsspOptions* options = nullptr;
  std::vector<RankCounters>* rank_counters = nullptr;  ///< one slot per rank
  SsspStats* stats = nullptr;  ///< structure fields written by rank 0
};

class DeltaEngine {
 public:
  DeltaEngine(RankCtx& ctx, const EngineShared& shared);

  /// Executes the full SSSP. Collective: all ranks run this together.
  void run();

 private:
  // -- epoch structure ----------------------------------------------------
  std::uint64_t next_bucket(std::int64_t after);
  void process_epoch(std::uint64_t k);
  void short_phases(std::uint64_t k);
  bool decide_long_mode(std::uint64_t k);
  void long_phase_push(std::uint64_t k);
  void long_phase_pull(std::uint64_t k);
  void bellman_ford_tail(std::uint64_t from_bucket);
  void finalize();

  // -- helpers ------------------------------------------------------------
  struct StepReduce {
    std::uint64_t any = 0;
    std::uint64_t max_work = 0;
    std::uint64_t max_bytes = 0;
    std::uint64_t sum_relax = 0;
  };
  struct StepReduceOp {
    StepReduce operator()(const StepReduce& a, const StepReduce& b) const {
      return {a.any | b.any, std::max(a.max_work, b.max_work),
              std::max(a.max_bytes, b.max_bytes), a.sum_relax + b.sum_relax};
    }
  };

  /// Collective per-superstep accounting: advances the modeled clock and
  /// returns the reduced values (notably sum_relax for phase details).
  StepReduce account_step(std::uint64_t work, std::uint64_t bytes,
                          std::uint64_t relax);

  /// Collective frontier-emptiness check, charged to bucket overhead.
  bool any_active_globally(bool local_active);

  /// Applies a batch of incoming relaxations to owned vertices. When
  /// `frontier_k` is not kInfBucket, vertices landing in that bucket join
  /// the frontier. Returns the number of messages applied.
  std::uint64_t apply_relaxations(
      const std::vector<std::vector<RelaxMsg>>& batches,
      std::uint64_t frontier_k);

  bool classification_active() const {
    return sh_.options->edge_classification &&
           !sh_.options->bellman_ford_regime();
  }
  dist_t bucket_end(std::uint64_t k) const {  // inclusive upper limit of B_k
    return (k + 1) * static_cast<dist_t>(sh_.options->delta) - 1;
  }
  vid_t to_local(vid_t global) const { return global - begin_; }
  vid_t to_global(vid_t local) const { return begin_ + local; }

  RankCtx& ctx_;
  EngineShared sh_;
  const LocalEdgeView& view_;
  std::span<dist_t> dist_;  ///< owned slice of the global distance array
  std::span<vid_t> parent_;  ///< owned slice of the parent array (optional)
  vid_t begin_ = 0;
  vid_t nloc_ = 0;

  std::vector<char> settled_;
  std::vector<std::uint64_t> member_stamp_;  ///< epoch when vertex joined B_k
  std::vector<vid_t> members_;               ///< settled set of current epoch
  std::vector<char> in_frontier_;
  std::vector<vid_t> frontier_;
  std::uint64_t epoch_ = 0;
  std::uint64_t settled_local_cum_ = 0;

  RankCounters counters_;
  CostModel cost_;
  // Rank-identical accumulators (derived from collective reductions).
  double model_other_ns_ = 0;
  double model_bkt_ns_ = 0;
  std::uint64_t phases_ = 0;
  std::uint64_t buckets_ = 0;
  std::vector<bool> pull_decisions_;
  std::vector<PhaseDetail> phase_details_;
  std::vector<BucketDetail> bucket_details_;
  bool switched_ = false;
  std::uint64_t switch_bucket_ = 0;
};

/// Convenience entry point: the Machine job body for one solve.
void run_sssp_job(RankCtx& ctx, const EngineShared& shared);

}  // namespace parsssp
