// The distributed bucket-synchronous SSSP engine: the paper's Delta-stepping
// with edge classification, IOS, push/pull pruning, hybridization and
// intra-rank load balancing — all switchable through SsspOptions, so the
// same engine realizes Dijkstra (Delta=1), Bellman-Ford (one bucket), Del-D,
// Prune-D, OPT-D and LB-OPT-D.
//
// One DeltaEngine instance runs per rank inside a Machine job. All
// cross-rank interaction goes through RankCtx: relax/request/response
// message exchanges plus Allreduce-based termination and bucket-advance
// checks, exactly the communication structure described in §II
// ("Distributed Implementation").
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "core/sync.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"
#include "runtime/machine.hpp"
#include "runtime/send_buffer_pool.hpp"

namespace parsssp {

/// Push-model relaxation / pull-model response payload.
struct RelaxMsg {
  vid_t v;     ///< destination vertex (global id, owned by receiver)
  dist_t nd;   ///< proposed tentative distance d(u) + w(e)
  vid_t pred;  ///< relaxing vertex u (shortest-path tree parent candidate)
};

/// Pull-model request payload: "if u is settled in the current bucket, send
/// me d(u) + w" (paper §III-B, Fig. 5(b)).
struct PullReqMsg {
  vid_t u;     ///< source vertex (owned by receiver of the request)
  vid_t v;     ///< requesting vertex (for the response address)
  weight_t w;  ///< weight of edge <u, v>
};

/// Inputs and output slots shared by all ranks of one solve.
struct EngineShared {
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::vector<dist_t>* dist = nullptr;  ///< global; rank writes its slice
  /// Shortest-path-tree parents (optional; null disables tracking).
  std::vector<vid_t>* parent = nullptr;
  vid_t root = 0;
  const SsspOptions* options = nullptr;
  std::vector<RankCounters>* rank_counters = nullptr;  ///< one slot per rank
  SsspStats* stats = nullptr;  ///< structure fields written by rank 0

  // --- Seeded mode (the incremental repair path, docs/DYNAMIC.md) -------
  // Null settled_init selects the standard run: dist/parent are filled
  // fresh and the root is seeded. Non-null selects the seeded run: the
  // caller provides complete tentative dist/parent arrays plus a global
  // preset-settled bitmap, each rank applies the seed messages it owns
  // (strict-< with unsettle-on-improve), and the bucket schedule starts
  // from whatever buckets the seeds and unsettled vertices occupy.

  /// Global preset-settled flags (size num_vertices); non-null => seeded.
  const std::vector<char>* settled_init = nullptr;
  /// Seed relaxations, applied at init by each target's owner in order.
  const std::vector<RelaxMsg>* seeds = nullptr;
  /// Optional global change flags (size num_vertices): set to 1 by a
  /// vertex's owner on every distance write (seed or sweep). The repair
  /// planner uses them to bound canonical re-parenting.
  std::vector<char>* changed = nullptr;
  /// Overrides the graph's max weight for the pull estimator (any monotone
  /// upper bound keeps the decision heuristic sound); 0 = use the graph's.
  weight_t max_weight = 0;
};

class DeltaEngine {
 public:
  DeltaEngine(RankCtx& ctx, const EngineShared& shared);

  /// Executes the full SSSP. Collective: all ranks run this together.
  void run();

 private:
  // -- epoch structure ----------------------------------------------------
  std::uint64_t next_bucket(std::int64_t after);
  void process_epoch(std::uint64_t k);
  void short_phases(std::uint64_t k);
  bool decide_long_mode(std::uint64_t k);
  void long_phase_push(std::uint64_t k);
  void long_phase_pull(std::uint64_t k);
  void bellman_ford_tail(std::uint64_t from_bucket);
  void finalize();

  /// Seeded-mode init: applies the owned subset of EngineShared::seeds to
  /// the caller-provided tentative state (strict-<, unsettle-on-improve).
  void apply_seeds();

  // -- helpers ------------------------------------------------------------
  struct StepReduce {
    std::uint64_t any = 0;
    std::uint64_t max_work = 0;
    std::uint64_t max_bytes = 0;
    std::uint64_t sum_relax = 0;
  };
  struct StepReduceOp {
    StepReduce operator()(const StepReduce& a, const StepReduce& b) const {
      return {a.any | b.any, std::max(a.max_work, b.max_work),
              std::max(a.max_bytes, b.max_bytes), a.sum_relax + b.sum_relax};
    }
  };

  /// Collective per-superstep accounting: advances the modeled clock and
  /// returns the reduced values (notably sum_relax for phase details).
  StepReduce account_step(std::uint64_t work, std::uint64_t bytes,
                          std::uint64_t relax);

  /// Collective frontier-emptiness check, charged to bucket overhead.
  bool any_active_globally(bool local_active);

  // -- relax data path (docs/PERFORMANCE.md) ------------------------------

  /// What an applied improvement does to the frontier.
  enum class InsertMode : std::uint8_t {
    kNone,    ///< long phases: bucket members are already settled
    kBucket,  ///< short phases: join iff the new distance lands in bucket k
    kAny,     ///< Bellman-Ford tail: every improved vertex re-activates
  };

  /// Readies relax_pool_ for a phase's emission and zeroes lane_emitted_.
  /// On the reference path this first drops all pooled capacity, so the
  /// baseline really pays the seed's per-phase allocations.
  void begin_relax_emit();

  /// Sums/maxes lane_emitted_ into (emitted, max_lane).
  std::pair<std::uint64_t, std::uint64_t> emit_totals() const;

  /// Sender-side reduction (pooled path, when enabled and `allow_reduction`)
  /// followed by the exchange. Returns the number of messages that actually
  /// crossed (post-reduction, self-delivery included) — the byte basis for
  /// account_step. Incoming batches land in relax_pool_.
  std::uint64_t relax_exchange(PhaseKind kind, bool allow_reduction);

  /// Applies relax_pool_.incoming() to owned vertices, serially or
  /// lane-partitioned by destination vertex range (pooled path with
  /// parallel_apply and >1 lanes). Returns the number of incoming messages.
  std::uint64_t apply_incoming(std::uint64_t frontier_k, InsertMode mode);
  void apply_serial(std::uint64_t frontier_k, InsertMode mode);
  void apply_parallel(std::uint64_t frontier_k, InsertMode mode);

  bool classification_active() const {
    return sh_.options->edge_classification &&
           !sh_.options->bellman_ford_regime();
  }
  dist_t bucket_end(std::uint64_t k) const {  // inclusive upper limit of B_k
    return (k + 1) * static_cast<dist_t>(sh_.options->delta) - 1;
  }
  vid_t to_local(vid_t global) const { return global - begin_; }
  vid_t to_global(vid_t local) const { return begin_ + local; }

  RankCtx& ctx_;
  EngineShared sh_;
  const LocalEdgeView& view_;
  std::span<dist_t> dist_;  ///< owned slice of the global distance array
  std::span<vid_t> parent_;  ///< owned slice of the parent array (optional)
  vid_t begin_ = 0;
  vid_t nloc_ = 0;

  std::vector<char> settled_;
  std::vector<std::uint64_t> member_stamp_;  ///< epoch when vertex joined B_k
  std::vector<vid_t> members_;               ///< settled set of current epoch
  std::vector<char> in_frontier_;
  std::vector<vid_t> frontier_;
  std::uint64_t epoch_ = 0;
  std::uint64_t settled_local_cum_ = 0;

  // Seeded mode (repair) state; empty/false on standard runs.
  bool seeded_ = false;
  /// Preset-settled vertices that have not been unsettled or re-settled
  /// yet. They skip frontier collection like any settled vertex but must
  /// still issue pull requests: their tentative distance is only an upper
  /// bound until the sweep ends.
  std::vector<char> preset_;
  std::span<char> changed_;  ///< owned slice of EngineShared::changed
  /// Per-lane unsettle counts of one parallel apply (lanes may not touch
  /// settled_local_cum_ directly).
  std::vector<CacheAligned<std::uint64_t>> lane_unsettled_;

  // Relax data path state. The pools are rank-thread-owned; worker lanes
  // only ever touch their own lane's shards (emission) or the disjoint
  // vertex range a parallel apply assigns them.
  SendBufferPool<RelaxMsg> relax_pool_;
  SendBufferPool<PullReqMsg> req_pool_;
  SenderReducer<dist_t> reducer_;
  /// Per-lane counters, cache-line padded: adjacent uint64s written by all
  /// lanes at emission rate were a false-sharing hot spot.
  std::vector<CacheAligned<std::uint64_t>> lane_emitted_;
  std::vector<CacheAligned<std::uint64_t>> lane_load_;
  /// Parallel apply: per-lane (canonical message index, vertex) insert logs,
  /// merged by index on the rank thread to reproduce the serial apply's
  /// frontier order exactly.
  std::vector<CacheAligned<std::vector<std::pair<std::uint64_t, vid_t>>>>
      lane_inserts_;
  std::vector<std::uint64_t> batch_offsets_;  ///< scratch: segment offsets
  std::vector<std::pair<std::uint64_t, vid_t>> merged_inserts_;  ///< scratch

  RankCounters counters_;
  /// TrafficCounters sync tallies at construction; finalize() reports the
  /// solve's own allreduce/barrier count as the delta against these.
  std::uint64_t sync0_allreduces_ = 0;
  std::uint64_t sync0_barriers_ = 0;
  CostModel cost_;
  /// This rank's trace lane; null unless SsspOptions::trace is set.
  TraceLane* tlane_ = nullptr;
  // Rank-identical accumulators (derived from collective reductions).
  double model_other_ns_ = 0;
  double model_bkt_ns_ = 0;
  std::uint64_t phases_ = 0;
  std::uint64_t buckets_ = 0;
  std::vector<bool> pull_decisions_;
  std::vector<PhaseDetail> phase_details_;
  std::vector<BucketDetail> bucket_details_;
  bool switched_ = false;
  std::uint64_t switch_bucket_ = 0;
};

/// Convenience entry point: the Machine job body for one solve.
void run_sssp_job(RankCtx& ctx, const EngineShared& shared);

}  // namespace parsssp
