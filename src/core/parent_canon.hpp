// Canonical shortest-path-tree parents (docs/DYNAMIC.md).
//
// The engines' tracked parents are correct (every parent is a tight
// predecessor) but not unique: ties between equal-distance predecessors are
// broken by message arrival order, which depends on rank count, lane count
// and data-path options. The canonical form removes that freedom:
//
//   parent[v] = min { u : dist[u] + w(u, v) == dist[v] }   (global id order)
//   parent[root] = root;  parent[v] = kInvalidVid when dist[v] == inf.
//
// Canonical parents are a pure function of (graph, dist). Since distances
// themselves are option-independent, two solves of the same graph agree on
// canonical parents bit for bit — the contract that lets the incremental
// repair engine promise bit-identical results against a fresh solve under
// every option set, and lets it re-derive parents for just the vertices a
// repair touched.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "graph/csr.hpp"

namespace parsssp {

/// Canonical parent of one vertex given its final distance and a callback
/// enumerating its incident arcs: for_each_arc(fn) must invoke fn(Arc{u, w})
/// for every arc incident to v (order irrelevant — the minimum is taken).
/// Works for any logical edge set, which is how the dynamic-graph repair
/// path re-parents without materializing a CSR.
template <typename ForEachArc>
vid_t canonical_parent_of(vid_t v, vid_t root,
                          const std::vector<dist_t>& dist,
                          ForEachArc&& for_each_arc) {
  if (v == root) return root;
  const dist_t dv = dist[v];
  if (dv == kInfDist) return kInvalidVid;
  vid_t best = kInvalidVid;
  for_each_arc([&](const Arc& a) {
    const dist_t du = dist[a.to];
    if (du == kInfDist) return;
    if (du + a.w == dv && a.to < best) best = a.to;
  });
  return best;
}

/// Rewrites `parent` to canonical form over the whole graph. `dist` must be
/// the exact shortest distances from `root` on `g`.
void canonicalize_parents(const CsrGraph& g, vid_t root,
                          const std::vector<dist_t>& dist,
                          std::vector<vid_t>& parent);

}  // namespace parsssp
