// Clang thread-safety analysis macros (-Wthread-safety). On Clang these
// expand to the `capability` attribute family so the compiler statically
// proves that every access to a GUARDED_BY member happens under its mutex;
// on other compilers they expand to nothing and merely document intent.
//
// Discipline (see docs/STATIC_ANALYSIS.md): every mutable member shared
// between threads is either (a) GUARDED_BY a named mutex, (b) an atomic, or
// (c) owned by exactly one thread with the owner named in a comment and —
// where feasible — enforced by a runtime check (see MPS_CHECKED_EXCHANGE).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define MPS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MPS_THREAD_ANNOTATION(x)  // no-op
#endif

#define MPS_CAPABILITY(x) MPS_THREAD_ANNOTATION(capability(x))
#define MPS_SCOPED_CAPABILITY MPS_THREAD_ANNOTATION(scoped_lockable)
#define MPS_GUARDED_BY(x) MPS_THREAD_ANNOTATION(guarded_by(x))
#define MPS_PT_GUARDED_BY(x) MPS_THREAD_ANNOTATION(pt_guarded_by(x))
#define MPS_ACQUIRED_BEFORE(...) \
  MPS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MPS_ACQUIRED_AFTER(...) \
  MPS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define MPS_REQUIRES(...) \
  MPS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MPS_REQUIRES_SHARED(...) \
  MPS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define MPS_ACQUIRE(...) MPS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MPS_ACQUIRE_SHARED(...) \
  MPS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MPS_RELEASE(...) MPS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MPS_RELEASE_SHARED(...) \
  MPS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MPS_TRY_ACQUIRE(...) \
  MPS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MPS_EXCLUDES(...) MPS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MPS_ASSERT_CAPABILITY(x) MPS_THREAD_ANNOTATION(assert_capability(x))
#define MPS_RETURN_CAPABILITY(x) MPS_THREAD_ANNOTATION(lock_returned(x))
#define MPS_NO_THREAD_SAFETY_ANALYSIS \
  MPS_THREAD_ANNOTATION(no_thread_safety_analysis)
