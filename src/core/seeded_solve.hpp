// Facade over the seeded mode of the Delta-stepping engine, for layers
// that may not drive DeltaEngine directly (lint rule R9: src/update/
// reaches the engines only through the solver/session facades).
//
// A seeded solve is a Delta-stepping sweep that starts from caller-provided
// tentative state instead of the root: `dist`/`parent` arrive fully
// populated, `settled_init` marks the vertices whose entries are trusted
// upper bounds, and `seeds` injects the relaxations the update batch made
// newly possible. The engine unsettles any preset vertex a better distance
// reaches (strict-<), so the sweep converges to the exact SSSP of the
// *current* logical graph — the repair engine's correctness bar
// (docs/DYNAMIC.md).
#pragma once

#include <vector>

#include "core/delta_engine.hpp"  // IWYU pragma: export (RelaxMsg is part of the job API)
#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "runtime/machine_session.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

/// Inputs of one seeded sweep. All pointers must outlive the call; `dist`,
/// `parent` (optional) and `changed` (optional) are updated in place.
struct SeededSolveJob {
  /// Base CSR (used for sizing and as the estimator's fallback weight
  /// bound). The arc data the sweep relaxes comes from `views`, which may
  /// describe a patched logical graph the CSR does not.
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::vector<dist_t>* dist = nullptr;
  std::vector<vid_t>* parent = nullptr;  ///< null disables tracking
  vid_t root = 0;
  /// Global preset-settled flags, size num_vertices.
  const std::vector<char>* settled_init = nullptr;
  /// Seed relaxations, applied at init by each target's owner.
  const std::vector<RelaxMsg>* seeds = nullptr;
  /// Optional change flags (size num_vertices), set on every dist write.
  std::vector<char>* changed = nullptr;
  /// Monotone upper bound on the logical graph's max weight (0 = graph's).
  weight_t max_weight = 0;
  std::vector<RankCounters>* rank_counters = nullptr;
  SsspStats* stats = nullptr;
};

/// Runs the seeded sweep collectively on `session`. Blocks until done.
void run_seeded_solve(MachineSession& session, const SeededSolveJob& job,
                      const SsspOptions& options);

}  // namespace parsssp
