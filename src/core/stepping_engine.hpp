// The stepping-family SSSP engines (docs/STEPPING.md): rho-stepping,
// Delta*-stepping (arXiv 2105.06145) and Radius Stepping (arXiv
// 1602.03881) as one step-synchronous engine parameterized by the step
// rule. Each outer step
//
//   1. computes a global settle threshold T from the front of the
//      lazy-batched bucket queue (core/lazy_pq.hpp) — the step rule is
//      the only thing the three algorithms disagree on, and
//   2. runs relax/exchange/apply rounds to a fixpoint: every queued
//      entry with tentative distance below T relaxes ALL of its arcs
//      (no light/heavy split — the lazy queue replaces the
//      bucket-synchronous family's classification machinery), strictly
//      improving applies re-queue their vertex, and the step ends when
//      no rank emitted anything.
//
// Step rules:
//   kRho       T covers the front buckets until ~rho queued entries are
//              included (the batch-extraction rule of rho-stepping);
//   kDeltaStar T = one bucket of width Delta;
//   kRadius    T = min over live front-bucket entries of d(v) + r(v),
//              with r(v) the radius_k-th smallest incident arc weight.
//              Any positive r is exact here because the in-step fixpoint
//              re-relaxes everything the speculation got wrong.
//
// Contract: distances are bit-identical to the bucket-synchronous OPT
// engine's (both compute the exact SSSP); parents are canonicalized by
// the caller (core/parent_canon.hpp) so they match too. The engine
// honors delta (queue granularity / Delta* width), rho, radius_k,
// data_path (pooled send buffers + optional sender-side reduction vs the
// reference merged exchange) and track_parents; the bucket-synchronous
// work-shaping knobs (pruning, ios, hybrid_tau, ...) are inert — see
// SsspOptions::rho_stepping / delta_star / radius_stepping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/delta_engine.hpp"  // IWYU pragma: export (RelaxMsg is the wire format)
#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/lazy_pq.hpp"
#include "core/options.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"
#include "runtime/machine.hpp"
#include "runtime/send_buffer_pool.hpp"

namespace parsssp {

/// Inputs and output slots shared by all ranks of one stepping solve.
struct SteppingEngineShared {
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::vector<dist_t>* dist = nullptr;   ///< global; rank writes its slice
  std::vector<vid_t>* parent = nullptr;  ///< optional; null disables
  vid_t root = 0;
  const SsspOptions* options = nullptr;
  std::vector<RankCounters>* rank_counters = nullptr;  ///< one slot per rank
  SsspStats* stats = nullptr;  ///< structure fields written by rank 0
};

class SteppingEngine {
 public:
  SteppingEngine(RankCtx& ctx, const SteppingEngineShared& shared);

  /// Executes the full SSSP. Collective: all ranks run this together.
  void run();

 private:
  void init();
  /// kRadius only: r_[v] = radius_k-th smallest incident arc weight.
  void compute_radii();

  /// Collective: the step's settle threshold (exclusive upper distance
  /// bound), or kInfDist when the global queue is empty. Guaranteed to
  /// cover the globally minimum live entry, so every step makes progress.
  dist_t step_threshold();

  /// Collective: relax/exchange/apply rounds until no rank holds a live
  /// queued entry below `t`. Entries popped at or above `t` are parked in
  /// deferred_ and re-queued when the step ends.
  void settle_below(dist_t t);

  /// Pops every bucket whose start lies below `t`, dropping stale
  /// entries, deferring live entries at or above `t`, and relaxing the
  /// rest. Returns the number of relaxations emitted.
  std::uint64_t drain_and_relax(dist_t t);

  /// Pooled/reference exchange of relax_pool_ (sender reduction honored
  /// on the pooled path). Returns messages that crossed, the byte basis.
  std::uint64_t relax_exchange();

  /// Applies incoming batches: strict-<, push-on-improve. Returns the
  /// number of incoming messages.
  std::uint64_t apply_incoming();

  /// Collective per-round accounting: advances the modeled clock.
  void account_round(std::uint64_t work, std::uint64_t bytes,
                     std::uint64_t relax);
  /// Collective emptiness/continuation check, charged to bucket overhead.
  bool any_active_globally(bool local_active);

  void finalize();

  vid_t to_local(vid_t global) const { return global - begin_; }
  vid_t to_global(vid_t local) const { return begin_ + local; }

  RankCtx& ctx_;
  SteppingEngineShared sh_;
  const LocalEdgeView& view_;
  std::span<dist_t> dist_;   ///< owned slice of the global distance array
  std::span<vid_t> parent_;  ///< owned slice of the parent array (optional)
  vid_t begin_ = 0;
  vid_t nloc_ = 0;

  LazyBucketQueue pq_;
  /// kRadius: per owned vertex, the vertex radius (1 for isolated).
  std::vector<weight_t> r_;
  /// Live entries popped at or above the step threshold; re-queued at
  /// step end (popping removed them from pq_, so the in-step fixpoint
  /// check cannot spin on them).
  std::vector<LazyBucketQueue::Entry> deferred_;
  /// pop_batch target, reused across rounds for its capacity.
  std::vector<LazyBucketQueue::Entry> batch_;

  /// Outgoing relax shards (single lane: the step loop is rank-thread
  /// serial) plus the sender-side reduction scratch of the pooled path.
  SendBufferPool<RelaxMsg> relax_pool_;
  SenderReducer<dist_t> reducer_;

  RankCounters counters_;
  /// TrafficCounters sync tallies at construction; finalize() reports the
  /// solve's own allreduce/barrier count as the delta against these.
  std::uint64_t sync0_allreduces_ = 0;
  std::uint64_t sync0_barriers_ = 0;
  CostModel cost_;
  /// This rank's trace lane; null unless SsspOptions::trace is set.
  TraceLane* tlane_ = nullptr;
  // Rank-identical accumulators (derived from collective reductions).
  double model_other_ns_ = 0;
  double model_bkt_ns_ = 0;
  std::uint64_t phases_ = 0;  ///< relax/exchange/apply rounds
  std::uint64_t steps_ = 0;   ///< outer steps (reported as stats.buckets)
};

/// Convenience entry point: the Machine job body for one stepping solve.
void run_stepping_sssp_job(RankCtx& ctx, const SteppingEngineShared& shared);

}  // namespace parsssp
