// Intra-rank thread-level load balancing (paper §III-E, first tier).
//
// Relax-message generation over a set of source vertices is spread across
// the rank's worker lanes. Light vertices (degree <= pi) are chunked by
// vertex; each *heavy* vertex's arc range is itself partitioned across all
// lanes, so one million-degree hub no longer serializes on its owner lane.
// (The second tier — inter-node vertex splitting — is a graph transform in
// graph/vertex_split.hpp.)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/types.hpp"
#include "runtime/thread_pool.hpp"

namespace parsssp {

struct HeavyLightSplit {
  std::vector<vid_t> light;
  std::vector<vid_t> heavy;
};

/// Partitions `sources` (locals) by degree threshold pi. threshold == 0
/// means the feature is off: everything is light.
HeavyLightSplit split_by_degree(std::span<const vid_t> sources,
                                const LocalEdgeView& view,
                                std::size_t threshold);

/// Runs `visit(lane, local_u, arc)` for every arc that `arcs_of(local_u)`
/// yields for every source vertex, distributing work across the pool's
/// lanes with the paper's threading model:
///   * every vertex is *owned* by a fixed lane (local id modulo lanes) and
///     light vertices are relaxed entirely by their owner lane — this is
///     the baseline, whose per-lane load is the aggregate degree of the
///     owned vertices and therefore suffers from degree skew;
///   * with load balancing on (threshold > 0), a heavy vertex's arc range
///     is instead partitioned across *all* lanes (paper §III-E).
/// `visit` may be invoked concurrently for different lanes; calls with the
/// same lane are sequential.
template <typename ArcsOf, typename Visit>
void lane_parallel_arcs(ThreadPool& pool, std::span<const vid_t> sources,
                        const LocalEdgeView& view, std::size_t heavy_threshold,
                        ArcsOf arcs_of, Visit visit) {
  const unsigned lanes = pool.lanes();
  if (lanes == 1) {
    for (const vid_t u : sources) {
      for (const Arc& a : arcs_of(u)) visit(0u, u, a);
    }
    return;
  }
  const HeavyLightSplit split = split_by_degree(sources, view, heavy_threshold);
  pool.run_on_lanes([&](unsigned lane) {
    for (const vid_t u : split.light) {
      if (u % lanes != lane) continue;  // fixed lane ownership
      for (const Arc& a : arcs_of(u)) visit(lane, u, a);
    }
  });
  for (const vid_t u : split.heavy) {
    const std::span<const Arc> arcs = arcs_of(u);
    pool.parallel_for(arcs.size(),
                      [&](unsigned lane, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          visit(lane, u, arcs[i]);
                        }
                      });
  }
}

}  // namespace parsssp
