// Counters, timers and the machine cost model. Everything the paper's
// figures plot comes out of this module: relaxation counts by phase kind,
// phase/bucket counts, the BktTime/OtherTime breakdown, modeled execution
// time, and TEPS.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"

namespace parsssp {

/// Per-phase record for Fig. 4 (dominance of long phases).
struct PhaseDetail {
  std::uint64_t bucket = 0;
  enum class Kind : std::uint8_t { kShort, kLongPush, kLongPull, kBellmanFord };
  Kind kind = Kind::kShort;
  std::uint64_t relaxations = 0;  ///< relax ops (pull: requests + responses)
};

/// Per-bucket record for Fig. 7 (push vs pull statistics) and §IV-G.
struct BucketDetail {
  std::uint64_t bucket = 0;
  /// Long edges of settled bucket vertices by destination category
  /// (receiver-side classification; filled only when the bucket ran push).
  std::uint64_t self_edges = 0;
  std::uint64_t backward_edges = 0;
  std::uint64_t forward_edges = 0;
  /// Pull-side counters (actual when the bucket ran pull).
  std::uint64_t pull_requests = 0;
  std::uint64_t pull_responses = 0;
  /// Decision-heuristic inputs (always computed when pruning is on).
  std::uint64_t push_volume_estimate = 0;
  std::uint64_t pull_volume_estimate = 0;
  std::uint64_t push_max_rank = 0;
  std::uint64_t pull_max_rank = 0;
  bool used_pull = false;
};

/// Aggregated result statistics of one SSSP run.
struct SsspStats {
  // Work (paper metric: number of relax operations; pull-relaxed edges
  // count twice, once for the request and once for the response).
  std::uint64_t short_relaxations = 0;
  std::uint64_t long_push_relaxations = 0;
  std::uint64_t pull_requests = 0;
  std::uint64_t pull_responses = 0;
  std::uint64_t bf_relaxations = 0;
  /// Relax operations of the asynchronous engine (docs/ASYNC.md); its
  /// speculative re-relaxations are real work and count individually.
  std::uint64_t async_relaxations = 0;
  /// Relax operations of the stepping-family engines (docs/STEPPING.md);
  /// in-step speculative re-relaxations count individually.
  std::uint64_t stepping_relaxations = 0;
  std::uint64_t total_relaxations() const {
    return short_relaxations + long_push_relaxations + pull_requests +
           pull_responses + bf_relaxations + async_relaxations +
           stepping_relaxations;
  }

  // Structure.
  std::uint64_t phases = 0;
  std::uint64_t buckets = 0;
  bool switched_to_bf = false;
  std::uint64_t bf_switch_bucket = 0;
  std::vector<bool> pull_decisions;  ///< one entry per processed bucket

  // Global synchronization cost (max over ranks; ranks agree on collective
  // counts by construction). For the bucket-synchronous engines this is
  // the per-bucket allreduce/exchange tax; the asynchronous engine pays
  // only its init/finalize handful and reports its token-ring probes in
  // quiescence_rounds instead.
  std::uint64_t sync_allreduces = 0;
  std::uint64_t sync_barriers = 0;
  std::uint64_t global_syncs() const { return sync_allreduces + sync_barriers; }
  /// Safra probe circuits rank 0 launched (async engine only).
  std::uint64_t quiescence_rounds = 0;
  /// Point-to-point token passes on the quiescence ring (async engine).
  std::uint64_t token_hops = 0;

  // Measured wall-clock (seconds), bottleneck (max) across ranks.
  double wall_time_s = 0;
  double wall_bucket_time_s = 0;  ///< bucket bookkeeping ("BktTime")
  double wall_other_time_s = 0;   ///< relax processing + comm ("OtherTime")

  // Modeled machine time (seconds) under CostModelParams; this is what the
  // scaling figures plot, since wall clock on a shared host measures total
  // work, not the simulated machine's critical path.
  double model_time_s = 0;
  double model_bucket_time_s = 0;
  double model_other_time_s = 0;

  // Optional details.
  std::vector<PhaseDetail> phase_details;
  std::vector<BucketDetail> bucket_details;

  /// Traversed edges per second, Graph 500 style: m / t.
  double teps(std::uint64_t num_edges, bool modeled = true) const {
    const double t = modeled ? model_time_s : wall_time_s;
    return t > 0 ? static_cast<double>(num_edges) / t : 0.0;
  }
  double gteps(std::uint64_t num_edges, bool modeled = true) const {
    return teps(num_edges, modeled) / 1e9;
  }
};

/// Per-rank accumulator used inside the engine; merged into SsspStats after
/// a run. Ranks only ever touch their own accumulator.
struct RankCounters {
  std::uint64_t short_relaxations = 0;
  std::uint64_t long_push_relaxations = 0;
  std::uint64_t pull_requests = 0;
  std::uint64_t pull_responses = 0;
  std::uint64_t bf_relaxations = 0;
  std::uint64_t async_relaxations = 0;
  std::uint64_t stepping_relaxations = 0;
  /// Collective/barrier participations of this rank during the solve
  /// (deltas of the rank's TrafficCounters; see SsspStats::global_syncs).
  std::uint64_t allreduces = 0;
  std::uint64_t barriers = 0;
  double wall_bucket_time_s = 0;
  double wall_other_time_s = 0;
};

/// The modeled clock. Each rank advances a shared view of modeled time via
/// collective max-reductions, so the value is identical on every rank.
/// See CostModelParams for the semantics of each term.
class CostModel {
 public:
  explicit CostModel(const CostModelParams& params) : p_(params) {}

  /// One bulk-synchronous step: latency plus the bottleneck rank's relax
  /// work and injected bytes. Returns modeled nanoseconds.
  double step_cost(std::uint64_t max_work, std::uint64_t max_bytes) const {
    return p_.t_step_ns + p_.t_relax_ns * static_cast<double>(max_work) +
           p_.t_byte_ns * static_cast<double>(max_bytes);
  }

  /// Bucket bookkeeping: scanning `max_scanned` owned vertices plus the
  /// next-bucket Allreduce.
  double scan_cost(std::uint64_t max_scanned) const {
    return p_.t_step_ns + p_.t_scan_ns * static_cast<double>(max_scanned);
  }

 private:
  CostModelParams p_;
};

}  // namespace parsssp
