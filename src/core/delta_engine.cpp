#include "core/delta_engine.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/buckets.hpp"
#include "core/hybrid.hpp"
#include "core/load_balance.hpp"
#include "core/push_pull.hpp"
#include "obs/trace.hpp"

namespace parsssp {
namespace {

// All wall-clock reads go through the obs/ helpers (PhaseTimer /
// TimedSection / ScopedSpan) so every accounted interval is also a trace
// span and the sum-to-wall self-check can audit the BktTime/OtherTime
// split (lint rule R8 enforces this).

/// Reduction payload for the push/pull decision heuristic.
struct PpReduce {
  std::uint64_t push_sum = 0;
  std::uint64_t pull_sum = 0;
  std::uint64_t push_max = 0;
  std::uint64_t pull_max = 0;
};
struct PpReduceOp {
  PpReduce operator()(const PpReduce& a, const PpReduce& b) const {
    return {a.push_sum + b.push_sum, a.pull_sum + b.pull_sum,
            std::max(a.push_max, b.push_max), std::max(a.pull_max, b.pull_max)};
  }
};

/// Reduction payload for receiver-side long-edge classification (Fig 7).
struct CatReduce {
  std::uint64_t self = 0;
  std::uint64_t backward = 0;
  std::uint64_t forward = 0;
};
struct CatReduceOp {
  CatReduce operator()(const CatReduce& a, const CatReduce& b) const {
    return {a.self + b.self, a.backward + b.backward, a.forward + b.forward};
  }
};

}  // namespace

DeltaEngine::DeltaEngine(RankCtx& ctx, const EngineShared& shared)
    : ctx_(ctx),
      sh_(shared),
      view_((*shared.views)[ctx.rank()]),
      begin_(shared.part.begin(ctx.rank())),
      nloc_(shared.part.count(ctx.rank())),
      cost_(shared.options->cost_model) {
  dist_ = std::span<dist_t>(sh_.dist->data() + begin_, nloc_);
  if (sh_.parent != nullptr) {
    parent_ = std::span<vid_t>(sh_.parent->data() + begin_, nloc_);
  }
  seeded_ = sh_.settled_init != nullptr;
  if (seeded_) {
    const char* preset = sh_.settled_init->data() + begin_;
    settled_.assign(preset, preset + nloc_);
    preset_.assign(preset, preset + nloc_);
    settled_local_cum_ = static_cast<std::uint64_t>(
        std::count(settled_.begin(), settled_.end(), char{1}));
    if (sh_.changed != nullptr) {
      changed_ = std::span<char>(sh_.changed->data() + begin_, nloc_);
    }
  } else {
    settled_.assign(nloc_, 0);
  }
  member_stamp_.assign(nloc_, kInfBucket);
  in_frontier_.assign(nloc_, 0);

  const unsigned lanes = ctx_.pool().lanes();
  relax_pool_.configure(lanes, ctx_.num_ranks());
  req_pool_.configure(1, ctx_.num_ranks());
  lane_emitted_.resize(lanes);
  lane_load_.resize(lanes);
  lane_inserts_.resize(lanes);
  lane_unsettled_.resize(lanes);

  sync0_allreduces_ = ctx_.traffic().allreduces;
  sync0_barriers_ = ctx_.traffic().barriers;

  if (sh_.options->trace != nullptr) {
    tlane_ = &sh_.options->trace->thread_lane(
        "rank" + std::to_string(ctx_.rank()));
  }
}

bool DeltaEngine::any_active_globally(bool local_active) {
  TimedSection sw(counters_.wall_bucket_time_s, tlane_, SpanCat::kBucketScan);
  const bool any =
      ctx_.allreduce(static_cast<std::uint64_t>(local_active), OrOp{}) != 0;
  model_bkt_ns_ += cost_.scan_cost(0);
  return any;
}

DeltaEngine::StepReduce DeltaEngine::account_step(std::uint64_t work,
                                                  std::uint64_t bytes,
                                                  std::uint64_t relax) {
  const StepReduce red =
      ctx_.allreduce(StepReduce{0, work, bytes, relax}, StepReduceOp{});
  model_other_ns_ += cost_.step_cost(red.max_work, red.max_bytes);
  return red;
}

std::uint64_t DeltaEngine::next_bucket(std::int64_t after) {
  TimedSection sw(counters_.wall_bucket_time_s, tlane_, SpanCat::kBucketScan);
  const std::uint64_t local = min_unsettled_bucket_above(
      dist_, settled_, after, sh_.options->delta);
  model_bkt_ns_ += cost_.scan_cost(sh_.part.block_size());
  return ctx_.allreduce(local, MinOp{});
}

void DeltaEngine::begin_relax_emit() {
  if (sh_.options->data_path == DataPath::kReference) {
    // The baseline pays the seed's churn: fresh allocations every phase.
    relax_pool_.release();
  }
  relax_pool_.begin_phase();
  for (auto& e : lane_emitted_) e.value = 0;
}

std::pair<std::uint64_t, std::uint64_t> DeltaEngine::emit_totals() const {
  std::uint64_t emitted = 0;
  std::uint64_t max_lane = 0;
  for (const auto& e : lane_emitted_) {
    emitted += e.value;
    max_lane = std::max(max_lane, e.value);
  }
  return {emitted, max_lane};
}

std::uint64_t DeltaEngine::relax_exchange(PhaseKind kind,
                                          bool allow_reduction) {
  const SsspOptions& o = *sh_.options;
  if (o.data_path == DataPath::kReference) {
    const std::uint64_t posted = relax_pool_.pending_messages();
    ctx_.exchange_merged(relax_pool_, kind);
    return posted;
  }
  if (o.sender_reduction && allow_reduction) {
    const rank_t ranks = ctx_.num_ranks();
    const unsigned lanes = relax_pool_.lanes();
    reducer_.ensure(sh_.part.block_size());
    for (rank_t d = 0; d < ranks; ++d) {
      const vid_t dest_begin = sh_.part.begin(d);
      reducer_.begin_dest();
      for (unsigned l = 0; l < lanes; ++l) {
        reducer_.reduce(
            relax_pool_.shard(l, d),
            [dest_begin](const RelaxMsg& m) {
              return static_cast<std::size_t>(m.v - dest_begin);
            },
            [](const RelaxMsg& m) { return m.nd; });
      }
    }
  }
  const std::uint64_t posted = relax_pool_.pending_messages();
  ctx_.exchange_pooled(relax_pool_, kind);
  return posted;
}

std::uint64_t DeltaEngine::apply_incoming(std::uint64_t frontier_k,
                                          InsertMode mode) {
  std::uint64_t total = 0;
  for (const auto& batch : relax_pool_.incoming()) total += batch.size();
  ScopedSpan span(tlane_, SpanCat::kApply, total);
  const SsspOptions& o = *sh_.options;
  if (o.data_path == DataPath::kPooled && o.parallel_apply &&
      ctx_.pool().lanes() > 1 && total != 0) {
    apply_parallel(frontier_k, mode);
  } else {
    apply_serial(frontier_k, mode);
  }
  return total;
}

void DeltaEngine::apply_serial(std::uint64_t frontier_k, InsertMode mode) {
  const std::uint32_t delta = sh_.options->delta;
  for (const auto& batch : relax_pool_.incoming()) {
    for (const RelaxMsg& m : batch) {
      const vid_t local = to_local(m.v);
      assert(local < nloc_);
      if (m.nd >= dist_[local]) continue;
      if (seeded_) {
        // A preset-settled vertex only carried an upper bound; improving
        // it reopens it (unsettle-on-improve). Strict-< guarantees the
        // distance drops on every unsettle, so the sweep terminates.
        if (settled_[local]) {
          settled_[local] = 0;
          preset_[local] = 0;
          --settled_local_cum_;
        }
      } else {
        assert(!settled_[local] && "relaxation improved a settled vertex");
      }
      dist_[local] = m.nd;
      if (!changed_.empty()) changed_[local] = 1;
      if (!parent_.empty()) parent_[local] = m.pred;
      if (mode == InsertMode::kNone || in_frontier_[local]) continue;
      if (mode == InsertMode::kBucket &&
          bucket_of(m.nd, delta) != frontier_k) {
        continue;
      }
      in_frontier_[local] = 1;
      frontier_.push_back(local);
    }
  }
}

void DeltaEngine::apply_parallel(std::uint64_t frontier_k, InsertMode mode) {
  const std::uint32_t delta = sh_.options->delta;
  const auto& batches = relax_pool_.incoming();
  const unsigned lanes = ctx_.pool().lanes();

  // Canonical index of each batch's first message, so lanes can tag their
  // frontier inserts with stream positions.
  batch_offsets_.resize(batches.size());
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    batch_offsets_[i] = offset;
    offset += batches[i].size();
  }

  // Each lane owns a contiguous destination-vertex range: dist_/parent_/
  // in_frontier_ writes are disjoint by construction, no atomics needed
  // (the shared-memory analogue of the paper's L2-atomic relaxation).
  const vid_t chunk = (nloc_ + lanes - 1) / lanes;
  ctx_.pool().run_on_lanes([&](unsigned lane) {
    const vid_t lo = std::min<vid_t>(nloc_, lane * chunk);
    const vid_t hi = std::min<vid_t>(nloc_, lo + chunk);
    auto& inserts = lane_inserts_[lane].value;
    inserts.clear();
    lane_unsettled_[lane].value = 0;
    if (lo >= hi) return;
    for (std::size_t i = 0; i < batches.size(); ++i) {
      const auto& batch = batches[i];
      for (std::size_t j = 0; j < batch.size(); ++j) {
        const RelaxMsg& m = batch[j];
        const vid_t local = to_local(m.v);
        assert(local < nloc_);
        if (local < lo || local >= hi) continue;
        if (m.nd >= dist_[local]) continue;
        if (seeded_) {
          // Unsettle-on-improve, mirrored from apply_serial. settled_/
          // preset_ writes stay inside this lane's vertex range; the
          // settled count is summed from the per-lane counters below.
          if (settled_[local]) {
            settled_[local] = 0;
            preset_[local] = 0;
            ++lane_unsettled_[lane].value;
          }
        } else {
          assert(!settled_[local] && "relaxation improved a settled vertex");
        }
        dist_[local] = m.nd;
        if (!changed_.empty()) changed_[local] = 1;
        if (!parent_.empty()) parent_[local] = m.pred;
        if (mode == InsertMode::kNone || in_frontier_[local]) continue;
        if (mode == InsertMode::kBucket &&
            bucket_of(m.nd, delta) != frontier_k) {
          continue;
        }
        in_frontier_[local] = 1;
        inserts.emplace_back(batch_offsets_[i] + j, local);
      }
    }
  });
  if (seeded_) {
    for (unsigned l = 0; l < lanes; ++l) {
      settled_local_cum_ -= lane_unsettled_[l].value;
    }
  }

  if (mode == InsertMode::kNone) return;
  // Frontier order is observable (it decides next phase's emission order,
  // hence equal-distance parent tie-breaks downstream): merge the per-lane
  // logs by canonical message index to reproduce the serial insert order.
  merged_inserts_.clear();
  for (unsigned l = 0; l < lanes; ++l) {
    const auto& inserts = lane_inserts_[l].value;
    merged_inserts_.insert(merged_inserts_.end(), inserts.begin(),
                           inserts.end());
  }
  std::sort(merged_inserts_.begin(), merged_inserts_.end());
  for (const auto& [idx, v] : merged_inserts_) frontier_.push_back(v);
}

void DeltaEngine::short_phases(std::uint64_t k) {
  const bool classify = classification_active();
  const bool ios = classify && sh_.options->ios;
  const dist_t limit = classify ? bucket_end(k) : 0;
  // With Delta = infinity these "short phases" over all arcs *are* the
  // Bellman-Ford algorithm; attribute the work accordingly.
  const bool bf_regime = sh_.options->bellman_ford_regime();
  std::uint64_t& relax_counter =
      bf_regime ? counters_.bf_relaxations : counters_.short_relaxations;
  const PhaseDetail::Kind detail_kind =
      bf_regime ? PhaseDetail::Kind::kBellmanFord : PhaseDetail::Kind::kShort;

  while (any_active_globally(!frontier_.empty())) {
    ++phases_;
    ScopedSpan span(tlane_,
                    bf_regime ? SpanCat::kBellmanFord : SpanCat::kShortPhase,
                    k);
    // Pop the frontier: stamp epoch membership, clear flags.
    std::vector<vid_t> active = std::move(frontier_);
    frontier_.clear();
    for (const vid_t u : active) {
      in_frontier_[u] = 0;
      if (member_stamp_[u] != epoch_) {
        member_stamp_[u] = epoch_;
        members_.push_back(u);
      }
    }

    // Generate relaxations into the pooled shards. With classification on,
    // only short arcs are relaxed here; IOS additionally skips arcs whose
    // proposed distance falls outside the current bucket (those are
    // outer-short edges, deferred to the long phase).
    const unsigned lanes = ctx_.pool().lanes();
    begin_relax_emit();
    auto arcs_of = [&](vid_t u) {
      return classify ? view_.short_arcs(u) : view_.all_arcs(u);
    };
    lane_parallel_arcs(
        ctx_.pool(), active, view_, sh_.options->heavy_degree_threshold,
        arcs_of, [&](unsigned lane, vid_t u, const Arc& a) {
          const dist_t nd = dist_[u] + a.w;
          if (ios && nd > limit) return;
          relax_pool_.shard(lane, sh_.part.owner(a.to))
              .push_back({a.to, nd, to_global(u)});
          ++lane_emitted_[lane].value;
        });
    const auto [emitted, max_lane] = emit_totals();
    relax_counter += emitted;

    const std::uint64_t posted = relax_exchange(
        bf_regime ? PhaseKind::kBellmanFord : PhaseKind::kShortPhase,
        /*allow_reduction=*/true);
    const std::uint64_t applied = apply_incoming(k, InsertMode::kBucket);

    // Modeled rank time is bottlenecked by the busiest lane: generation by
    // the worst lane's emissions, application spread over all lanes (the
    // paper's L2-atomic relaxations). Bytes are what actually crossed the
    // wire (post-reduction); the relax count stays the emission count.
    const StepReduce red = account_step(max_lane + applied / lanes,
                                        posted * sizeof(RelaxMsg), emitted);
    if (sh_.options->collect_phase_details) {
      phase_details_.push_back({k, detail_kind, red.sum_relax});
    }
  }
}

bool DeltaEngine::decide_long_mode(std::uint64_t k) {
  const SsspOptions& o = *sh_.options;
  if (!o.pruning && !o.collect_bucket_details) return false;
  ScopedSpan span(tlane_, SpanCat::kDecision, k);

  bool pull = false;
  bool need_estimates = o.collect_bucket_details;
  switch (o.prune_mode) {
    case PruneMode::kPushOnly:
      pull = false;
      break;
    case PruneMode::kPullOnly:
      pull = o.pruning;
      break;
    case PruneMode::kForcedSequence: {
      const std::size_t i = pull_decisions_.size();
      pull = o.pruning && i < o.forced_pull.size() && o.forced_pull[i];
      break;
    }
    case PruneMode::kHeuristic:
      need_estimates = true;
      break;
  }
  if (!need_estimates) return pull;

  const PushPullLocal local = estimate_push_pull_local(
      view_, dist_, settled_, members_, k, o.delta, o.estimator,
      sh_.max_weight != 0 ? sh_.max_weight : sh_.graph->max_weight(), o.ios);
  const PpReduce global = ctx_.allreduce(
      PpReduce{local.push_volume, local.pull_requests, local.push_volume,
               local.pull_requests},
      PpReduceOp{});
  model_bkt_ns_ += cost_.scan_cost(sh_.part.block_size());

  PushPullGlobal g;
  g.push_volume = global.push_sum;
  g.pull_requests = global.pull_sum;
  g.push_max_rank = global.push_max;
  g.pull_max_rank = global.pull_max;
  const PushPullDecision decision =
      decide_push_pull(g, ctx_.num_ranks(), o.load_lambda);
  if (o.prune_mode == PruneMode::kHeuristic && o.pruning) {
    pull = decision.pull;
  }

  if (o.collect_bucket_details) {
    BucketDetail detail;
    detail.bucket = k;
    detail.push_volume_estimate = g.push_volume;
    detail.pull_volume_estimate = 2 * g.pull_requests;
    detail.push_max_rank = g.push_max_rank;
    detail.pull_max_rank = g.pull_max_rank;
    detail.used_pull = pull;
    bucket_details_.push_back(detail);
  }
  return pull;
}

void DeltaEngine::long_phase_push(std::uint64_t k) {
  ScopedSpan span(tlane_, SpanCat::kLongPush, k);
  const SsspOptions& o = *sh_.options;
  const bool ios = o.ios;
  const dist_t limit = bucket_end(k);
  const unsigned lanes = ctx_.pool().lanes();

  // Long arcs of every settled member; under IOS also the outer-short arcs
  // (short arcs whose proposed distance falls beyond the current bucket).
  begin_relax_emit();
  lane_parallel_arcs(
      ctx_.pool(), members_, view_, o.heavy_degree_threshold,
      [&](vid_t u) { return view_.all_arcs(u); },
      [&](unsigned lane, vid_t u, const Arc& a) {
        const dist_t nd = dist_[u] + a.w;
        if (a.w < o.delta) {               // short arc
          if (!ios || nd <= limit) return;  // inner-short: already relaxed
        }
        relax_pool_.shard(lane, sh_.part.owner(a.to))
            .push_back({a.to, nd, to_global(u)});
        ++lane_emitted_[lane].value;
      });
  const auto [emitted, max_lane] = emit_totals();
  counters_.long_push_relaxations += emitted;

  // Fig 7's receiver-side classification counts every emitted relaxation,
  // so the diagnostic mode ships the unreduced stream.
  const std::uint64_t posted = relax_exchange(
      PhaseKind::kLongPush, /*allow_reduction=*/!o.collect_bucket_details);

  // Receiver-side edge classification (Fig 7): destination bucket relative
  // to k, *before* applying the batch.
  if (o.collect_bucket_details) {
    CatReduce cat;
    for (const auto& batch : relax_pool_.incoming()) {
      for (const RelaxMsg& m : batch) {
        const std::uint64_t b = bucket_of(dist_[to_local(m.v)], o.delta);
        if (b == k) {
          ++cat.self;
        } else if (b < k) {
          ++cat.backward;
        } else {
          ++cat.forward;
        }
      }
    }
    const CatReduce total = ctx_.allreduce(cat, CatReduceOp{});
    if (!bucket_details_.empty() && bucket_details_.back().bucket == k) {
      bucket_details_.back().self_edges = total.self;
      bucket_details_.back().backward_edges = total.backward;
      bucket_details_.back().forward_edges = total.forward;
    }
  }

  const std::uint64_t applied = apply_incoming(kInfBucket, InsertMode::kNone);
  ++phases_;
  const StepReduce red = account_step(max_lane + applied / lanes,
                                      posted * sizeof(RelaxMsg), emitted);
  if (o.collect_phase_details) {
    phase_details_.push_back({k, PhaseDetail::Kind::kLongPush, red.sum_relax});
  }
}

void DeltaEngine::long_phase_pull(std::uint64_t k) {
  ScopedSpan span(tlane_, SpanCat::kLongPull, k);
  const SsspOptions& o = *sh_.options;
  const dist_t kdelta = k * static_cast<dist_t>(o.delta);
  const unsigned lanes = ctx_.pool().lanes();
  const bool reference = o.data_path == DataPath::kReference;

  // Modeled lane loads. Pull work is attributed to each vertex's owner
  // lane (the paper's fixed thread ownership); with load balancing on,
  // heavy vertices' work is spread round-robin over all lanes instead.
  for (auto& l : lane_load_) l.value = 0;
  std::uint64_t spread_cursor = 0;
  auto charge = [&](vid_t local, std::uint64_t units) {
    if (units == 0) return;
    if (o.heavy_degree_threshold != 0 &&
        view_.degree(local) > o.heavy_degree_threshold) {
      for (std::uint64_t i = 0; i < units; ++i) {
        ++lane_load_[spread_cursor++ % lanes].value;
      }
    } else {
      lane_load_[local % lanes].value += units;
    }
  };
  auto take_max_load = [&] {
    std::uint64_t best = 0;
    for (auto& l : lane_load_) {
      best = std::max(best, l.value);
      l.value = 0;
    }
    return best;
  };

  // Request side: every owned vertex in a later bucket asks the owners of
  // qualifying neighbours for their distance. Long arcs are weight-sorted,
  // so the qualifying prefix (w < d(v) - k*Delta, eq. (1)) is a range scan;
  // under IOS the short arcs also qualify wholesale (w < Delta <= bound).
  // Requests are not reducible (each (u, v, w) asks a distinct question),
  // so they ride the pool purely for buffer reuse and zero-copy transport.
  if (reference) req_pool_.release();
  req_pool_.begin_phase();
  std::uint64_t requests = 0;
  for (vid_t v = 0; v < nloc_; ++v) {
    // Preset-settled vertices still pull: their distance is an upper bound
    // the current bucket's members may beat across a long arc, and a pull
    // phase is the only channel that improvement could arrive on (the
    // members' push was pruned away). Vertices settled *by this sweep* are
    // final, exactly as in a standard run.
    if (settled_[v] && !(seeded_ && preset_[v])) continue;
    const dist_t dv = dist_[v];
    if (bucket_of(dv, o.delta) <= k) continue;
    const dist_t bound = dv == kInfDist ? kInfDist : dv - kdelta;
    const vid_t gv = to_global(v);
    std::uint64_t sent = 0;
    for (const Arc& a : view_.long_arcs(v)) {
      if (static_cast<dist_t>(a.w) >= bound) break;  // weight-sorted
      req_pool_.shard(0, sh_.part.owner(a.to)).push_back({a.to, gv, a.w});
      ++sent;
    }
    if (o.ios) {
      for (const Arc& a : view_.short_arcs(v)) {
        if (static_cast<dist_t>(a.w) >= bound) continue;
        req_pool_.shard(0, sh_.part.owner(a.to)).push_back({a.to, gv, a.w});
        ++sent;
      }
    }
    requests += sent;
    charge(v, sent);
  }
  counters_.pull_requests += requests;
  if (reference) {
    ctx_.exchange_merged(req_pool_, PhaseKind::kPullRequest);
  } else {
    ctx_.exchange_pooled(req_pool_, PhaseKind::kPullRequest);
  }
  std::uint64_t req_received = 0;
  for (const auto& b : req_pool_.incoming()) req_received += b.size();
  const StepReduce red_req = account_step(
      take_max_load() + req_received / lanes + 1,
      requests * sizeof(PullReqMsg), requests);

  // Response side: answer only for sources settled in the current bucket.
  begin_relax_emit();
  std::uint64_t responses = 0;
  for (const auto& batch : req_pool_.incoming()) {
    for (const PullReqMsg& m : batch) {
      const vid_t lu = to_local(m.u);
      assert(lu < nloc_);
      // Answering a request is work done by u's owner lane; heavy hubs
      // attract request floods, the very imbalance §III-E addresses.
      charge(lu, 1);
      if (member_stamp_[lu] != epoch_) continue;  // u not in B_k
      relax_pool_.shard(0, sh_.part.owner(m.v))
          .push_back({m.v, dist_[lu] + m.w, m.u});
      ++responses;
    }
  }
  counters_.pull_responses += responses;
  const std::uint64_t resp_posted =
      relax_exchange(PhaseKind::kPullResponse, /*allow_reduction=*/true);
  const std::uint64_t applied = apply_incoming(kInfBucket, InsertMode::kNone);
  ++phases_;
  const StepReduce red_resp = account_step(
      take_max_load() + applied / lanes + 1, resp_posted * sizeof(RelaxMsg),
      responses);

  if (o.collect_bucket_details && !bucket_details_.empty() &&
      bucket_details_.back().bucket == k) {
    bucket_details_.back().pull_requests = red_req.sum_relax;
    bucket_details_.back().pull_responses = red_resp.sum_relax;
  }
  if (o.collect_phase_details) {
    phase_details_.push_back({k, PhaseDetail::Kind::kLongPull,
                              red_req.sum_relax + red_resp.sum_relax});
  }
}

void DeltaEngine::process_epoch(std::uint64_t k) {
  ++epoch_;
  members_.clear();
  {
    TimedSection sw(counters_.wall_bucket_time_s, tlane_, SpanCat::kBucketScan,
                    k);
    frontier_ = collect_bucket_members(dist_, settled_, k, sh_.options->delta);
    for (const vid_t u : frontier_) in_frontier_[u] = 1;
    model_bkt_ns_ += cost_.scan_cost(sh_.part.block_size());
  }
  ++buckets_;

  short_phases(k);

  if (classification_active()) {
    const bool pull = decide_long_mode(k);
    if (pull) {
      long_phase_pull(k);
    } else {
      long_phase_push(k);
    }
    pull_decisions_.push_back(pull);
  }

  {
    // Settling the epoch's members is bucket bookkeeping: charge it to
    // BktTime (it used to be an unattributed sliver of OtherTime).
    TimedSection sw(counters_.wall_bucket_time_s, tlane_, SpanCat::kBucketScan,
                    k);
    for (const vid_t u : members_) settled_[u] = 1;
    settled_local_cum_ += members_.size();
  }
}

void DeltaEngine::bellman_ford_tail(std::uint64_t from_bucket) {
  switched_ = true;
  switch_bucket_ = from_bucket;

  {
    TimedSection sw(counters_.wall_bucket_time_s, tlane_, SpanCat::kBucketScan,
                    from_bucket);
    frontier_ = collect_unsettled_reached(dist_, settled_);
    for (const vid_t u : frontier_) in_frontier_[u] = 1;
    model_bkt_ns_ += cost_.scan_cost(sh_.part.block_size());
  }
  ++buckets_;  // the grouped bucket "B"

  while (any_active_globally(!frontier_.empty())) {
    ++phases_;
    ScopedSpan span(tlane_, SpanCat::kBellmanFord, from_bucket);
    std::vector<vid_t> active = std::move(frontier_);
    frontier_.clear();
    for (const vid_t u : active) in_frontier_[u] = 0;

    const unsigned lanes = ctx_.pool().lanes();
    begin_relax_emit();
    lane_parallel_arcs(
        ctx_.pool(), active, view_, sh_.options->heavy_degree_threshold,
        [&](vid_t u) { return view_.all_arcs(u); },
        [&](unsigned lane, vid_t u, const Arc& a) {
          relax_pool_.shard(lane, sh_.part.owner(a.to))
              .push_back({a.to, dist_[u] + a.w, to_global(u)});
          ++lane_emitted_[lane].value;
        });
    const auto [emitted, max_lane] = emit_totals();
    counters_.bf_relaxations += emitted;

    const std::uint64_t posted =
        relax_exchange(PhaseKind::kBellmanFord, /*allow_reduction=*/true);
    // Any improved vertex becomes active next round, bucket-agnostic.
    const std::uint64_t applied =
        apply_incoming(kInfBucket, InsertMode::kAny);
    const StepReduce red = account_step(max_lane + applied / lanes,
                                        posted * sizeof(RelaxMsg), emitted);
    if (sh_.options->collect_phase_details) {
      phase_details_.push_back(
          {from_bucket, PhaseDetail::Kind::kBellmanFord, red.sum_relax});
    }
  }
}

void DeltaEngine::apply_seeds() {
  if (sh_.seeds == nullptr) return;
  for (const RelaxMsg& m : *sh_.seeds) {
    if (sh_.part.owner(m.v) != ctx_.rank()) continue;
    const vid_t local = to_local(m.v);
    if (m.nd >= dist_[local]) continue;
    if (settled_[local]) {
      settled_[local] = 0;
      preset_[local] = 0;
      --settled_local_cum_;
    }
    dist_[local] = m.nd;
    if (!changed_.empty()) changed_[local] = 1;
    if (!parent_.empty()) parent_[local] = m.pred;
  }
}

void DeltaEngine::run() {
  ctx_.set_trace(tlane_);
  double total_wall = 0;
  {
    PhaseTimer total(total_wall);
    ScopedSpan solve(tlane_, SpanCat::kSolve, ctx_.rank());
    {
      ScopedSpan init(tlane_, SpanCat::kInit);
      if (seeded_) {
        // The caller provided complete tentative dist/parent arrays; the
        // init step only folds in the seed relaxations this rank owns.
        apply_seeds();
      } else {
        std::fill(dist_.begin(), dist_.end(), kInfDist);
        if (!parent_.empty()) {
          std::fill(parent_.begin(), parent_.end(), kInvalidVid);
        }
        if (sh_.part.owner(sh_.root) == ctx_.rank()) {
          dist_[to_local(sh_.root)] = 0;
          if (!parent_.empty()) parent_[to_local(sh_.root)] = sh_.root;
        }
      }
      ctx_.barrier();
    }

    std::uint64_t k = next_bucket(kBeforeFirst);
    while (k != kInfBucket) {
      process_epoch(k);
      k = next_bucket(static_cast<std::int64_t>(k));
      if (k == kInfBucket) break;
      if (sh_.options->hybrid_tau >= 0.0) {
        // Only the switch *decision* is bucket bookkeeping. The tail itself
        // must run outside this timer: it used to be called from inside the
        // BktTime stopwatch, so its whole wall time landed in BktTime *and*
        // its own bucket-scan sections were counted a second time, which
        // could drive OtherTime = total - BktTime negative.
        bool switch_now = false;
        {
          TimedSection sw(counters_.wall_bucket_time_s, tlane_,
                          SpanCat::kBucketScan, k);
          const std::uint64_t settled_total =
              ctx_.allreduce(settled_local_cum_, SumOp{});
          model_bkt_ns_ += cost_.scan_cost(0);
          switch_now = should_switch_to_bellman_ford(
              settled_total, sh_.part.num_vertices(), sh_.options->hybrid_tau);
        }
        if (switch_now) {
          bellman_ford_tail(k);
          break;
        }
      }
    }
  }
  ctx_.set_trace(nullptr);
  counters_.wall_other_time_s = total_wall - counters_.wall_bucket_time_s;
  finalize();
}

void DeltaEngine::finalize() {
  // Synchronization cost of the solve body (this final reduction included:
  // +1 below). Collective discipline makes the counts rank-identical, but
  // the reduction maxes anyway so a straggler shows rather than hides.
  counters_.allreduces = ctx_.traffic().allreduces - sync0_allreduces_ + 1;
  counters_.barriers = ctx_.traffic().barriers - sync0_barriers_;
  (*sh_.rank_counters)[ctx_.rank()] = counters_;
  // Wall time of the run: bottleneck across ranks.
  const double wall =
      counters_.wall_bucket_time_s + counters_.wall_other_time_s;
  struct WallReduce {
    double total;
    double bucket;
    std::uint64_t allreduces;
    std::uint64_t barriers;
  };
  struct WallReduceOp {
    WallReduce operator()(const WallReduce& a, const WallReduce& b) const {
      return {std::max(a.total, b.total), std::max(a.bucket, b.bucket),
              std::max(a.allreduces, b.allreduces),
              std::max(a.barriers, b.barriers)};
    }
  };
  const WallReduce wr = ctx_.allreduce(
      WallReduce{wall, counters_.wall_bucket_time_s, counters_.allreduces,
                 counters_.barriers},
      WallReduceOp{});

  if (ctx_.rank() == 0) {
    SsspStats& s = *sh_.stats;
    s.sync_allreduces = wr.allreduces;
    s.sync_barriers = wr.barriers;
    s.phases = phases_;
    s.buckets = buckets_;
    s.switched_to_bf = switched_;
    s.bf_switch_bucket = switch_bucket_;
    s.pull_decisions = pull_decisions_;
    s.phase_details = std::move(phase_details_);
    s.bucket_details = std::move(bucket_details_);
    s.model_bucket_time_s = model_bkt_ns_ * 1e-9;
    s.model_other_time_s = model_other_ns_ * 1e-9;
    s.model_time_s = (model_bkt_ns_ + model_other_ns_) * 1e-9;
    s.wall_time_s = wr.total;
    s.wall_bucket_time_s = wr.bucket;
    s.wall_other_time_s = wr.total - wr.bucket;
  }
}

void run_sssp_job(RankCtx& ctx, const EngineShared& shared) {
  DeltaEngine engine(ctx, shared);
  engine.run();
}

}  // namespace parsssp
