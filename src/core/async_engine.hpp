// The asynchronous SSSP engine (docs/ASYNC.md): Delta-stepping without the
// bucket barriers.
//
// The bucket-synchronous engines fence every bucket with allreduces and
// every relax exchange with barriers; at scale that latency tax is the
// term t_step * phases of the cost model. This engine removes the phase
// structure entirely: each rank loops
//
//   drain inbound relax batches -> apply strictly-improving updates ->
//   pop the lowest bucket of a lazy-batched local priority queue ->
//   relax those vertices' arcs -> flush outgoing shards at bucket-level
//   boundaries,
//
// with no global synchronization anywhere in the data plane. Relaxations
// are speculative — a vertex may be relaxed at a distance that a slower
// in-flight message later improves — and corrected by monotone
// re-relaxation: every improvement re-queues the vertex, every apply is
// strict-<, so distances only fall and converge to the exact SSSP under
// any message schedule. Speculation is bounded by a shared LevelBoard
// window (below): a rank more than kSpeculationWindow bucket levels ahead
// of the slowest frontier parks instead of relaxing work that frontier is
// about to invalidate. Termination is detected by a Safra-style token
// ring (runtime/quiescence.hpp) riding the same channel as the payload.
//
// Contract: distances are bit-identical to the bucket-synchronous OPT
// engine's (both compute the exact SSSP); parents are canonicalized by the
// caller (core/parent_canon.hpp) so they match too. The engine honors
// delta (priority granularity), data_path (pooled buffer recycling vs the
// allocate-per-round reference baseline) and track_parents; the
// bucket-synchronous work-shaping knobs (pruning, ios, hybrid_tau, ...)
// are inert here — see SsspOptions::async_opt.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/delta_engine.hpp"  // IWYU pragma: export (RelaxMsg is the wire format)
#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/lazy_pq.hpp"
#include "core/options.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"
#include "runtime/async_channel.hpp"
#include "runtime/machine.hpp"
#include "runtime/quiescence.hpp"
#include "runtime/send_buffer_pool.hpp"

namespace parsssp {

/// Speculation-window board: each rank publishes the bucket level it is
/// about to relax (kInfBucket once its queue is empty) through a relaxed
/// atomic, and reads the cross-rank minimum as a progress estimate to
/// bound how far ahead of the slowest frontier it speculates (the
/// KLA-style bounded-asynchrony window of docs/ASYNC.md). Not a
/// synchronization primitive: the values may be arbitrarily stale and
/// correctness never depends on them — monotone re-relaxation is exact
/// under any schedule. The board only steers the schedule toward the
/// work-efficient one; the rank holding the minimum is never throttled,
/// so it cannot stall progress either.
class LevelBoard {
 public:
  explicit LevelBoard(rank_t ranks) : slots_(ranks) {}

  void publish(rank_t rank, std::uint64_t level) {
    slots_[rank].v.store(level, std::memory_order_relaxed);
  }

  /// Sender-side publish on the *recipient's* behalf: lowers `rank`'s slot
  /// to the minimum level of a batch just posted to it. Without this the
  /// board goes blind to in-flight work — a passive recipient still
  /// advertises kInfBucket until it is next scheduled, and the sender
  /// would speculate right past the frontier it just mailed out. The
  /// recipient's own publish (which runs after draining) re-tightens the
  /// slot either way, so a stale donation lasts one loop iteration.
  void donate(rank_t rank, std::uint64_t level) {
    auto& slot = slots_[rank].v;
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (level < cur && !slot.compare_exchange_weak(
                              cur, level, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t global_min() const {
    std::uint64_t m = kInfBucket;
    for (const Slot& s : slots_) {
      m = std::min(m, s.v.load(std::memory_order_relaxed));
    }
    return m;
  }

 private:
  struct alignas(64) Slot {  ///< own cache line: publish is hot-loop
    std::atomic<std::uint64_t> v{0};
  };
  std::vector<Slot> slots_;
};

/// Inputs and output slots shared by all ranks of one asynchronous solve.
/// The caller owns the channel and the level board: both must be freshly
/// constructed (or fully quiescent) and sized to the machine's rank count.
struct AsyncEngineShared {
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::vector<dist_t>* dist = nullptr;  ///< global; rank writes its slice
  std::vector<vid_t>* parent = nullptr;  ///< optional; null disables
  vid_t root = 0;
  const SsspOptions* options = nullptr;
  std::vector<RankCounters>* rank_counters = nullptr;  ///< one slot per rank
  SsspStats* stats = nullptr;  ///< structure fields written by rank 0
  AsyncChannel<RelaxMsg>* channel = nullptr;
  LevelBoard* board = nullptr;
};

class AsyncEngine {
 public:
  AsyncEngine(RankCtx& ctx, const AsyncEngineShared& shared);

  /// Executes the full SSSP. Collective: all ranks run this together (the
  /// only collective operation inside is the final stats reduction).
  void run();

 private:
  void init();
  void main_loop();
  /// Applies one drained inbound batch (strict-<, re-queue on improve).
  void apply_batch(std::vector<RelaxMsg>& msgs);
  /// Opens the send pool's phase if it is not already open (lazy: one
  /// begin_phase per level flush).
  void ensure_phase();
  /// Pops the lowest priority bucket and relaxes its live entries' short
  /// arcs; registers them for deferred long-arc relaxation at close.
  void relax_one_batch();
  /// Relaxes `arcs` of vertex `v` at distance `d`: local targets applied
  /// in place, remote targets appended to the outgoing shards.
  void relax_arcs(vid_t v, dist_t d, std::span<const Arc> arcs);
  /// Level boundary: relaxes the deferred long arcs of every vertex
  /// settled in the level, then posts the accumulated shards. Returns
  /// whether it did anything (pending work processed or batches posted).
  bool close_level();
  /// Posts every non-empty outgoing shard through the channel. Returns
  /// whether anything was posted (false when the phase never opened or all
  /// shards were empty).
  bool flush_sends();
  void apply_local(vid_t local, dist_t nd, vid_t pred);
  /// Final cross-rank stats reduction (the async path's one allreduce).
  void finalize();

  vid_t to_local(vid_t global) const { return global - begin_; }
  vid_t to_global(vid_t local) const { return begin_ + local; }

  RankCtx& ctx_;
  AsyncEngineShared sh_;
  const LocalEdgeView& view_;
  AsyncChannel<RelaxMsg>& channel_;
  std::span<dist_t> dist_;   ///< owned slice of the global distance array
  std::span<vid_t> parent_;  ///< owned slice of the parent array (optional)
  vid_t begin_ = 0;
  vid_t nloc_ = 0;

  LazyBucketQueue pq_;
  QuiescenceRank detector_;
  /// Outgoing shards (one lane: the async loop is rank-thread serial) and
  /// the recycling free list the drained inbound batches retire into.
  SendBufferPool<RelaxMsg> out_pool_;
  /// Drain target, reused across iterations for its capacity.
  std::vector<AsyncChannel<RelaxMsg>::Batch> arrived_;
  /// pop_batch target, reused across iterations.
  std::vector<std::pair<vid_t, dist_t>> batch_;

  /// Whether out_pool_ has an open phase with (possibly empty) accumulated
  /// shards; set by the first relax of a bucket level, cleared by flush.
  bool phase_open_ = false;
  /// Vertices settled in the current level whose long arcs are deferred
  /// to close_level (the light/heavy split: within-level reactivations
  /// re-relax only short arcs), plus per-vertex membership flags so a
  /// vertex reactivated within the level registers once.
  std::vector<vid_t> long_pending_;
  std::vector<std::uint8_t> in_pending_;

  RankCounters counters_;
  /// TrafficCounters sync tallies at construction; finalize() reports the
  /// solve's own allreduce/barrier count as the delta against these.
  std::uint64_t sync0_allreduces_ = 0;
  std::uint64_t sync0_barriers_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t token_hops_ = 0;
  CostModel cost_;
  /// This rank's trace lane; null unless SsspOptions::trace is set.
  TraceLane* tlane_ = nullptr;
};

/// Convenience entry point: the Machine job body for one async solve.
void run_async_sssp_job(RankCtx& ctx, const AsyncEngineShared& shared);

}  // namespace parsssp
