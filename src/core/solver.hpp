// Public facade of the library.
//
//   CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));
//   Solver solver(g, {.machine = {.num_ranks = 16}});
//   SsspResult r = solver.solve(root, SsspOptions::opt(25));
//   // r.dist[v], r.stats.gteps(g.num_undirected_edges()), ...
//
// A Solver owns the simulated machine and the Delta-dependent edge views;
// views are cached so that solving many roots at the same Delta (the
// Graph 500 methodology: 16-64 random roots per configuration) pays the
// preprocessing once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/multi_engine.hpp"
#include "core/options.hpp"
#include "graph/csr.hpp"
#include "runtime/machine.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

struct SolverConfig {
  MachineConfig machine;
};

struct SsspResult {
  std::vector<dist_t> dist;  ///< shortest distance per vertex (kInfDist =
                             ///< unreachable)
  /// Shortest-path-tree parents; parent[root] == root, kInvalidVid for
  /// unreachable vertices. Empty unless SsspOptions::track_parents.
  std::vector<vid_t> parent;
  SsspStats stats;
};

/// Aggregate of a multi-root run, following the Graph 500 reporting
/// methodology (64 search keys; harmonic-mean TEPS across them).
struct BatchSummary {
  std::size_t num_roots = 0;
  std::size_t unique_roots = 0;  ///< distinct roots actually solved
  std::uint64_t edges = 0;
  double harmonic_mean_gteps = 0;  ///< Graph 500's headline statistic
  double mean_gteps = 0;
  double min_gteps = 0;
  double max_gteps = 0;
  double mean_time_s = 0;          ///< modeled machine time
  double mean_relaxations = 0;
  std::vector<SsspStats> per_root;  ///< aligned to the input root list
  /// Per-root distance vectors, aligned to the input root list. Empty
  /// unless BatchOptions::keep_distances.
  std::vector<std::vector<dist_t>> distances;
};

/// Knobs of Solver::solve_batch that do not affect the computed distances.
struct BatchOptions {
  /// Retain each root's distance vector in BatchSummary::distances.
  /// Default off: a 64-root batch on a large graph would otherwise pin
  /// 64 x |V| distances nobody reads in benchmarking runs.
  bool keep_distances = false;
};

/// Result of one batched multi-root run (Solver::solve_multi).
struct MultiRootResult {
  std::vector<vid_t> roots;  ///< as passed in, duplicates preserved
  /// dist[i][v] = distance from roots[i] to v; duplicate roots share equal
  /// vectors.
  std::vector<std::vector<dist_t>> dist;
  /// Batch statistics. per_root_relaxations is aligned to the *deduplicated*
  /// root sequence (first-occurrence order), and num_roots counts unique
  /// roots; sweeps of more than kMaxMultiRoots unique roots accumulate
  /// chunk stats.
  MultiStats stats;
};

class Solver {
 public:
  /// `graph` must outlive the Solver.
  Solver(const CsrGraph& graph, SolverConfig config);

  /// Runs one SSSP from `root`. Thread-compatible (one solve at a time).
  /// Throws std::out_of_range when root >= num_vertices (as do solve_batch
  /// and solve_multi) and std::invalid_argument on malformed options.
  SsspResult solve(vid_t root, const SsspOptions& options);

  /// Runs SSSP from every root and aggregates (Graph 500 methodology).
  /// Repeated roots are solved once and their statistics (and, when
  /// retained, distances) reused — solve() is deterministic, so the reuse
  /// is observationally identical to re-solving. Aggregates still count
  /// every entry of `roots`.
  BatchSummary solve_batch(std::span<const vid_t> roots,
                           const SsspOptions& options,
                           const BatchOptions& batch = {});

  /// Runs SSSP from all roots through batched multi-root sweeps (at most
  /// kMaxMultiRoots unique roots per sweep): one shared bucket-synchronous
  /// schedule instead of one per root. Distances are bit-identical to
  /// per-root solve() under every option set; see multi_engine.hpp for
  /// which work-shaping options the batched path does not exercise.
  MultiRootResult solve_multi(std::span<const vid_t> roots,
                              const SsspOptions& options);

  const CsrGraph& graph() const { return graph_; }
  const BlockPartition& partition() const { return part_; }
  Machine& machine() { return machine_; }

  /// Seconds spent building the current edge views (the paper's
  /// preprocessing stage; excluded from the TEPS timing, as in Graph 500).
  double last_preprocess_seconds() const { return preprocess_s_; }

 private:
  void ensure_views(std::uint32_t delta);

  const CsrGraph& graph_;
  SolverConfig config_;
  Machine machine_;
  BlockPartition part_;
  std::vector<LocalEdgeView> views_;
  std::uint32_t views_delta_ = 0;
  bool views_ready_ = false;
  double preprocess_s_ = 0;
};

}  // namespace parsssp
