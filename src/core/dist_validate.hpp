// Distributed result validation.
//
// The sequential oracle (core/validate.hpp) re-solves with Dijkstra —
// fine at laptop scale, impossible at the paper's scale 38, where
// validation must itself be a distributed job over owned data (this is
// how Graph 500 implementations validate). This module checks, with two
// message exchanges and a reduction:
//
//   1. d(root) == 0 (owner-checked);
//   2. no edge violates the triangle inequality: for every owned arc
//      (u, v), owner(u) sends d(u)+w to owner(v), who requires
//      d(v) <= d(u)+w — also certifies d is a fixpoint of relaxation;
//   3. every owned reached vertex has *some* incident arc from its parent
//      with d(parent) + w == d(v) (request/response on candidate arcs);
//   4. unreached owned vertices have no parent, reached ones have a valid
//      one.
//
// Checks 1-4 certify d pointwise-correct *given* reachability: a fixpoint
// of relaxation that is 0 at the root and supported by a parent edge of
// exact weight gap cannot exceed the true distance anywhere on the
// parent-connected set, and cannot be below it anywhere (triangle
// inequality along the true shortest path). Parent-graph acyclicity is
// certified by weights: every tree edge has w = d(v) - d(parent) >= 0 and
// chains terminate at the root except through zero-weight plateaus, which
// the sequential checker (used in tests) rules out; at scale, Graph 500
// accepts the same certificate.
#pragma once

#include <vector>

#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "runtime/machine.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

/// Runs the distributed checks. `parent` may be empty (skips checks 3-4).
/// Collective over `machine`; returns the globally reduced report.
ValidationReport validate_distributed(const CsrGraph& g, Machine& machine,
                                      const BlockPartition& part, vid_t root,
                                      const std::vector<dist_t>& dist,
                                      const std::vector<vid_t>& parent = {});

}  // namespace parsssp
