#include "core/stepping_solve.hpp"

#include <stdexcept>
#include <utility>

#include "core/parent_canon.hpp"
#include "core/stepping_engine.hpp"

namespace parsssp {

void run_stepping_solve(MachineSession& session, const SteppingSolveJob& job,
                        const SsspOptions& options,
                        std::shared_ptr<void> keepalive) {
  if (!is_stepping_algo(options.algo)) {
    throw std::invalid_argument(
        "run_stepping_solve: options.algo must be kRho, kDeltaStar or "
        "kRadius");
  }
  SteppingEngineShared shared;
  shared.graph = job.graph;
  shared.part = job.part;
  shared.views = job.views;
  shared.dist = job.dist;
  shared.parent = job.parent;
  shared.root = job.root;
  shared.options = &options;
  shared.rank_counters = job.rank_counters;
  shared.stats = job.stats;
  session
      .submit([&shared](RankCtx& ctx) { run_stepping_sssp_job(ctx, shared); },
              std::move(keepalive))
      .get();
  if (job.parent != nullptr) {
    // Always canonical: the in-step relax order is round-dependent, so the
    // raw predecessor tree is not reproducible — re-deriving parents from
    // (graph, dist) is what makes them bit-comparable across engines.
    canonicalize_parents(*job.graph, job.root, *job.dist, *job.parent);
  }
}

}  // namespace parsssp
