// Lazy-batched bucket priority queue for the asynchronous and stepping
// engines (docs/ASYNC.md, docs/STEPPING.md), after the lazy-batched
// structure of rho-stepping / Delta*-stepping: insertions are O(1)
// appends into Delta-wide buckets, deletions are lazy (an entry whose
// recorded distance no longer matches the vertex's tentative distance is
// skipped at pop time), and extraction returns the *entire* lowest
// non-empty bucket as one batch — the unit of speculative relaxation
// work between inbox drains.
//
// Laziness is what keeps speculation cheap: a re-relaxation that improves
// a queued vertex just pushes a second, lower entry; the stale one costs
// one comparison when its bucket is reached. The engine filters staleness
// (it owns the distance array); the queue only promises that pop_batch
// yields the minimum non-empty bucket and that entries within a batch
// come out in push order (determinism of the local relax order — not
// load-bearing for results, which monotone re-relaxation makes exact
// under any order, but it keeps single-rank runs reproducible).
//
// Memory safety: the dense bucket array is capped at kMaxDenseBuckets.
// Entries whose bucket index is at or beyond the cap — speculative
// long-tail distances near kInfDist at small Delta — land in one sparse
// overflow bucket instead of resizing the dense array toward billions of
// empty slots. The overflow bucket is a correctness safety valve, not a
// fast path: popping it rescans the (typically tiny) overflow vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

class LazyBucketQueue {
 public:
  using Entry = std::pair<vid_t, dist_t>;

  /// Dense-array cap: buckets with index >= this spill to the sparse
  /// overflow bucket. 1M empty vectors is the worst-case dense footprint
  /// (~24 MB), reached only if distances actually grow that far.
  static constexpr std::size_t kMaxDenseBuckets = std::size_t{1} << 20;

  /// `delta` is the bucket width (SsspOptions::kInfDelta degenerates to a
  /// single bucket, the Bellman-Ford regime).
  explicit LazyBucketQueue(std::uint32_t delta) : delta_(delta) {}

  /// Queues (vertex, tentative distance). Lazy: does not remove any
  /// previous entry for `v`.
  void push(vid_t v, dist_t d) {
    const std::uint64_t b = bucket_of(d, delta_);
    if (b >= kMaxDenseBuckets) {
      overflow_.push_back({v, d});
      if (b < overflow_min_) overflow_min_ = b;
      ++entries_;
      return;
    }
    const std::size_t db = static_cast<std::size_t>(b);
    if (db >= buckets_.size()) buckets_.resize(db + 1);
    buckets_[db].push_back({v, d});
    ++entries_;
    ++dense_entries_;
    if (db < cursor_) cursor_ = db;
  }

  /// Entries currently queued, stale ones included (an upper bound on
  /// live work).
  std::size_t size() const { return entries_; }
  bool empty() const { return entries_ == 0; }

  /// Lowest non-empty bucket index without popping, kInfBucket when empty.
  /// (The bucket may hold only stale entries — the engine treats a pop
  /// that yields no live work as a no-op.) Amortized O(1): the scan
  /// advances cursor_ past drained buckets so repeated peeks never rescan
  /// them; a push below the cursor rewinds it (the memoization-
  /// invalidation path). Each emptiness probe counts one scan step.
  std::uint64_t min_bucket() {
    if (dense_entries_ == 0) {
      return overflow_.empty() ? kInfBucket : overflow_min_;
    }
    advance_cursor();
    return cursor_;
  }

  /// Moves the lowest non-empty bucket's entries into `out` (cleared
  /// first) and returns its bucket index, or kInfBucket when the queue is
  /// empty. The popped dense bucket keeps its capacity for future pushes.
  std::uint64_t pop_batch(std::vector<Entry>& out) {
    out.clear();
    if (entries_ == 0) return kInfBucket;
    if (dense_entries_ == 0) return pop_overflow(out);
    advance_cursor();
    std::swap(out, buckets_[cursor_]);
    buckets_[cursor_].clear();
    entries_ -= out.size();
    dense_entries_ -= out.size();
    return cursor_;
  }

  /// Entries queued in dense bucket `b`, stale included. 0 for indices
  /// past the dense range (overflow contents are opaque to callers).
  std::size_t bucket_size(std::uint64_t b) const {
    return b < buckets_.size() ? buckets_[b].size() : 0;
  }

  /// Read-only view of dense bucket `b` (empty span past the dense
  /// range). Step rules scan these to compute thresholds without popping.
  std::span<const Entry> entries_of(std::uint64_t b) const {
    if (b >= buckets_.size()) return {};
    return {buckets_[b].data(), buckets_[b].size()};
  }

  /// Dense buckets currently allocated — bounded by kMaxDenseBuckets.
  std::size_t dense_buckets() const { return buckets_.size(); }
  /// Entries currently parked in the sparse overflow bucket.
  std::size_t overflow_entries() const { return overflow_.size(); }
  /// Cumulative emptiness probes across min_bucket/pop_batch cursor
  /// scans plus overflow rescans — the amortized-behavior observable.
  std::uint64_t scan_steps() const { return scan_steps_; }

 private:
  void advance_cursor() {
    // Caller guarantees dense_entries_ > 0, so the scan terminates inside
    // the allocated range.
    while (buckets_[cursor_].empty()) {
      ++cursor_;
      ++scan_steps_;
    }
  }

  /// Extracts every overflow entry in the minimum overflow bucket,
  /// compacting the rest in place and recomputing the overflow minimum.
  std::uint64_t pop_overflow(std::vector<Entry>& out) {
    const std::uint64_t b = overflow_min_;
    std::uint64_t next_min = kInfBucket;
    std::size_t kept = 0;
    for (const Entry& e : overflow_) {
      ++scan_steps_;
      const std::uint64_t eb = bucket_of(e.second, delta_);
      if (eb == b) {
        out.push_back(e);
      } else {
        overflow_[kept++] = e;
        if (eb < next_min) next_min = eb;
      }
    }
    overflow_.resize(kept);
    overflow_min_ = next_min;
    entries_ -= out.size();
    return b;
  }

  std::uint32_t delta_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;            ///< entries past the dense cap
  std::uint64_t overflow_min_ = kInfBucket;
  std::size_t cursor_ = 0;  ///< no non-empty dense bucket below this index
  std::size_t entries_ = 0;
  std::size_t dense_entries_ = 0;
  std::uint64_t scan_steps_ = 0;
};

}  // namespace parsssp
