// Lazy-batched bucket priority queue for the asynchronous engine
// (docs/ASYNC.md), after the lazy-batched structure of rho-stepping /
// Delta*-stepping: insertions are O(1) appends into Delta-wide buckets,
// deletions are lazy (an entry whose recorded distance no longer matches
// the vertex's tentative distance is skipped at pop time), and extraction
// returns the *entire* lowest non-empty bucket as one batch — the unit of
// speculative relaxation work between inbox drains.
//
// Laziness is what keeps speculation cheap: a re-relaxation that improves
// a queued vertex just pushes a second, lower entry; the stale one costs
// one comparison when its bucket is reached. The engine filters staleness
// (it owns the distance array); the queue only promises that pop_batch
// yields the minimum non-empty bucket and that entries within a batch
// come out in push order (determinism of the local relax order — not
// load-bearing for results, which monotone re-relaxation makes exact
// under any order, but it keeps single-rank runs reproducible).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

class LazyBucketQueue {
 public:
  /// `delta` is the bucket width (SsspOptions::kInfDelta degenerates to a
  /// single bucket, the Bellman-Ford regime).
  explicit LazyBucketQueue(std::uint32_t delta) : delta_(delta) {}

  /// Queues (vertex, tentative distance). Lazy: does not remove any
  /// previous entry for `v`.
  void push(vid_t v, dist_t d) {
    const std::size_t b = static_cast<std::size_t>(bucket_of(d, delta_));
    if (b >= buckets_.size()) buckets_.resize(b + 1);
    buckets_[b].push_back({v, d});
    ++entries_;
    if (b < cursor_) cursor_ = b;
  }

  /// Entries currently queued, stale ones included (an upper bound on
  /// live work).
  std::size_t size() const { return entries_; }
  bool empty() const { return entries_ == 0; }

  /// Lowest non-empty bucket index without popping, kInfBucket when empty.
  /// (The bucket may hold only stale entries — the engine treats a pop
  /// that yields no live work as a no-op, so the peek stays O(1) amortized
  /// rather than chasing staleness here.)
  std::uint64_t min_bucket() const {
    if (entries_ == 0) return kInfBucket;
    std::size_t b = cursor_;
    while (buckets_[b].empty()) ++b;
    return b;
  }

  /// Moves the lowest non-empty bucket's entries into `out` (cleared
  /// first) and returns its bucket index, or kInfBucket when the queue is
  /// empty. The popped bucket keeps its capacity for future pushes.
  std::uint64_t pop_batch(std::vector<std::pair<vid_t, dist_t>>& out) {
    out.clear();
    if (entries_ == 0) return kInfBucket;
    while (buckets_[cursor_].empty()) ++cursor_;
    std::swap(out, buckets_[cursor_]);
    buckets_[cursor_].clear();
    entries_ -= out.size();
    return cursor_;
  }

 private:
  std::uint32_t delta_;
  std::vector<std::vector<std::pair<vid_t, dist_t>>> buckets_;
  std::size_t cursor_ = 0;  ///< no non-empty bucket below this index
  std::size_t entries_ = 0;
};

}  // namespace parsssp
