#include "core/delta_choice.hpp"

#include <algorithm>
#include <cmath>

namespace parsssp {

DeltaSuggestion suggest_delta(const CsrGraph& g, double calibration) {
  DeltaSuggestion s;
  s.max_weight = g.max_weight();
  const vid_t n = g.num_vertices();
  if (n == 0 || g.num_arcs() == 0 || s.max_weight == 0) {
    s.delta = 1;
    return s;
  }
  s.mean_degree =
      static_cast<double>(g.num_arcs()) / static_cast<double>(n);
  const double raw =
      calibration * static_cast<double>(s.max_weight) /
      std::max(1.0, s.mean_degree);
  s.delta = static_cast<std::uint32_t>(std::clamp(
      std::llround(raw), 1LL, static_cast<long long>(s.max_weight)));
  return s;
}

}  // namespace parsssp
