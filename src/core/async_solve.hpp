// Facade over the asynchronous engine, for layers that may not drive
// AsyncEngine directly (the serve/update isolation rules in
// scripts/analysis/layers.toml: src/serve/ and src/update/ reach the
// engines only through the solver/session facades).
//
// One call runs one cold single-root solve on a MachineSession: it owns
// the AsyncChannel for the solve's duration, runs the collective job, and
// canonicalizes the parent tree (core/parent_canon.hpp) so parents are a
// pure function of graph + dist — the bit-identity contract with the
// bucket-synchronous OPT engine (docs/ASYNC.md).
#pragma once

#include <memory>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "core/types.hpp"
#include "runtime/machine_session.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

/// Inputs of one asynchronous solve. All pointers must outlive the call;
/// `dist` and `parent` (optional) are sized by the caller and overwritten.
struct AsyncSolveJob {
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::vector<dist_t>* dist = nullptr;
  std::vector<vid_t>* parent = nullptr;  ///< null disables tracking
  vid_t root = 0;
  std::vector<RankCounters>* rank_counters = nullptr;
  SsspStats* stats = nullptr;
};

/// Runs the async solve collectively on `session`. Blocks until done.
/// `keepalive` is pinned for the job's lifetime (the serving layer passes
/// its GraphSnapshot, same contract as MachineSession::submit).
void run_async_solve(MachineSession& session, const AsyncSolveJob& job,
                     const SsspOptions& options,
                     std::shared_ptr<void> keepalive = nullptr);

}  // namespace parsssp
