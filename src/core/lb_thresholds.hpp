// Load-balancing threshold selection (paper §III-E: "We have determined
// robust heuristics to determine the thresholds pi and pi', and the number
// of proxies... The details are omitted for brevity.").
//
// This module supplies one concrete, documented instantiation of those
// heuristics, derived from the load model the paper states (a thread's
// load is the aggregate degree of its owned vertices):
//
//   pi  (intra-rank, heavy)   — a vertex is heavy when relaxing its
//        adjacency alone exceeds one lane's fair share of the rank's arcs:
//        pi = max(kMinHeavy, arcs_per_rank / lanes).
//   pi' (inter-rank, extreme) — a vertex is extreme when its adjacency is
//        a large fraction of an *entire rank's* arc budget, so intra-rank
//        lane splitting cannot absorb it:
//        pi' = max(pi, split_fraction * arcs_per_rank).
//
// The proxies-per-split-vertex count follows from pi' (ceil(deg / pi')),
// which graph/vertex_split.hpp already implements.
#pragma once

#include <cstddef>

#include "graph/csr.hpp"
#include "runtime/machine.hpp"

namespace parsssp {

struct LbThresholds {
  std::size_t heavy_pi = 0;    ///< intra-rank heavy-vertex threshold
  std::size_t split_pi = 0;    ///< inter-rank vertex-splitting threshold
  bool splitting_recommended = false;  ///< max degree exceeds split_pi
  std::size_t max_degree = 0;
  double arcs_per_rank = 0;
};

/// Computes both tiers' thresholds for running `g` on `machine`-shaped
/// hardware. `split_fraction` is the share of a rank's arc budget beyond
/// which a single vertex warrants inter-node splitting (default 1/2).
LbThresholds suggest_lb_thresholds(const CsrGraph& g,
                                   const MachineConfig& machine,
                                   double split_fraction = 0.5);

}  // namespace parsssp
