#include "core/lb_thresholds.hpp"

#include <algorithm>
#include <cmath>

#include "graph/degree_stats.hpp"

namespace parsssp {
namespace {

// Below this degree, lane-splitting a vertex costs more in coordination
// than it saves; keeps pi sane on tiny test graphs.
constexpr std::size_t kMinHeavy = 16;

}  // namespace

LbThresholds suggest_lb_thresholds(const CsrGraph& g,
                                   const MachineConfig& machine,
                                   double split_fraction) {
  LbThresholds t;
  const rank_t ranks = std::max<rank_t>(1, machine.num_ranks);
  const unsigned lanes = std::max(1u, machine.lanes_per_rank);
  t.arcs_per_rank =
      static_cast<double>(g.num_arcs()) / static_cast<double>(ranks);
  t.max_degree = max_degree(g);

  t.heavy_pi = std::max<std::size_t>(
      kMinHeavy,
      static_cast<std::size_t>(std::llround(t.arcs_per_rank / lanes)));
  t.split_pi = std::max<std::size_t>(
      t.heavy_pi,
      static_cast<std::size_t>(std::llround(split_fraction *
                                            t.arcs_per_rank)));
  t.splitting_recommended = t.max_degree > t.split_pi;
  return t;
}

}  // namespace parsssp
