#include "core/seeded_solve.hpp"

#include <stdexcept>

namespace parsssp {

void run_seeded_solve(MachineSession& session, const SeededSolveJob& job,
                      const SsspOptions& options) {
  if (job.settled_init == nullptr) {
    throw std::invalid_argument(
        "run_seeded_solve: settled_init is required (use Solver::solve for "
        "fresh solves)");
  }
  EngineShared shared;
  shared.graph = job.graph;
  shared.part = job.part;
  shared.views = job.views;
  shared.dist = job.dist;
  shared.parent = job.parent;
  shared.root = job.root;
  shared.options = &options;
  shared.rank_counters = job.rank_counters;
  shared.stats = job.stats;
  shared.settled_init = job.settled_init;
  shared.seeds = job.seeds;
  shared.changed = job.changed;
  shared.max_weight = job.max_weight;
  session.run([&shared](RankCtx& ctx) { run_sssp_job(ctx, shared); });
}

}  // namespace parsssp
