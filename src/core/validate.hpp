// Validation of SSSP outputs against the sequential Dijkstra oracle plus
// structural self-checks that do not need an oracle (triangle inequality
// over every edge, root distance, reachability agreement with BFS).
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace parsssp {

struct ValidationReport {
  bool ok = true;
  std::size_t mismatches = 0;      ///< vs. oracle (when provided)
  std::size_t violated_edges = 0;  ///< d(v) > d(u) + w(u,v) cases
  std::size_t bad_root = 0;        ///< d(root) != 0
  std::size_t reach_mismatch = 0;  ///< finite d on BFS-unreachable or v.v.
  std::size_t parent_violations = 0;  ///< bad/missing tree edges
                                      ///< (distributed validator)
  std::string message;             ///< first failure, human readable
};

/// Exact comparison with a reference distance vector.
ValidationReport compare_distances(const std::vector<dist_t>& got,
                                   const std::vector<dist_t>& expected);

/// Oracle-free invariants: d(root)==0, no edge violates the triangle
/// inequality, and the set of reached vertices equals BFS reachability.
ValidationReport check_sssp_invariants(const CsrGraph& g, vid_t root,
                                       const std::vector<dist_t>& dist);

/// Both checks, computing the Dijkstra oracle internally.
ValidationReport validate_against_dijkstra(const CsrGraph& g, vid_t root,
                                           const std::vector<dist_t>& dist);

/// Shortest-path-tree validation (Graph 500 SSSP style):
///  * parent[root] == root and d(root) == 0;
///  * unreachable vertices have parent kInvalidVid;
///  * every reached vertex v != root has a parent p that is a neighbour via
///    an edge of weight d(v) - d(p);
///  * following parents always terminates at the root (no cycles).
ValidationReport check_parent_tree(const CsrGraph& g, vid_t root,
                                   const std::vector<dist_t>& dist,
                                   const std::vector<vid_t>& parent);

}  // namespace parsssp
