// Bucket bookkeeping over a rank's owned distance slice.
//
// The engine, like the paper's implementation, re-derives bucket membership
// by scanning the owned tentative distances (this scan is exactly the
// "BktTime" overhead the paper measures in Fig. 10/11(b), so we keep it
// explicit rather than maintaining incremental bucket queues).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

/// Locals (offsets into the owned slice) of unsettled vertices currently in
/// bucket k.
std::vector<vid_t> collect_bucket_members(std::span<const dist_t> dist_local,
                                          std::span<const char> settled,
                                          std::uint64_t k,
                                          std::uint32_t delta);

/// Smallest bucket index > `after` holding an unsettled vertex with a finite
/// tentative distance; kInfBucket if none. Pass `after = kBeforeFirst` to
/// search from bucket 0.
inline constexpr std::int64_t kBeforeFirst = -1;
std::uint64_t min_unsettled_bucket_above(std::span<const dist_t> dist_local,
                                         std::span<const char> settled,
                                         std::int64_t after,
                                         std::uint32_t delta);

/// Locals of unsettled vertices with finite distance (the grouped bucket "B"
/// the Bellman-Ford tail starts from after the hybrid switch).
std::vector<vid_t> collect_unsettled_reached(
    std::span<const dist_t> dist_local, std::span<const char> settled);

}  // namespace parsssp
