#include "core/hybrid.hpp"

namespace parsssp {

bool should_switch_to_bellman_ford(std::uint64_t settled_total,
                                   std::uint64_t num_vertices, double tau) {
  if (tau < 0.0 || num_vertices == 0) return false;
  return static_cast<double>(settled_total) >
         tau * static_cast<double>(num_vertices);
}

}  // namespace parsssp
