#include "core/push_pull.hpp"

#include <algorithm>
#include <cmath>

namespace parsssp {

double expected_requests_for_vertex(std::uint64_t long_degree, dist_t dv,
                                    std::uint64_t k, std::uint32_t delta,
                                    weight_t max_weight) {
  if (long_degree == 0) return 0.0;
  if (dv == kInfDist) return static_cast<double>(long_degree);
  // Request condition: w < d(v) - k*Delta with w uniform in [Delta, wmax].
  const dist_t bound = dv - k * static_cast<dist_t>(delta);
  if (bound <= delta) return 0.0;
  const double span =
      static_cast<double>(max_weight) - static_cast<double>(delta) + 1.0;
  if (span <= 0) return static_cast<double>(long_degree);
  const double p =
      std::min(1.0, (static_cast<double>(bound) - delta) / span);
  return static_cast<double>(long_degree) * p;
}

PushPullLocal estimate_push_pull_local(
    const LocalEdgeView& view, std::span<const dist_t> dist_local,
    std::span<const char> settled, std::span<const vid_t> members,
    std::uint64_t k, std::uint32_t delta, EstimatorKind estimator,
    weight_t max_weight, bool include_short_in_long_phase) {
  PushPullLocal local;

  // Push side: every long arc of a settled member is relaxed; under IOS the
  // outer-short arcs go out in the long phase too. We use the long degree
  // for both estimators (outer-short counts need d(u)-dependent filtering
  // that the paper's preprocessing-based estimate also omits).
  for (const vid_t u : members) {
    local.push_volume += view.long_degree(u);
    if (include_short_in_long_phase) {
      // Upper bound: all short arcs could be outer-short.
      local.push_volume += view.short_degree(u);
    }
  }

  // Pull side: later-bucket vertices request over qualifying arcs.
  double expected = 0.0;
  for (vid_t v = 0; v < view.num_local(); ++v) {
    if (settled[v]) continue;
    const dist_t dv = dist_local[v];
    if (bucket_of(dv, delta) <= k) continue;  // current or settled-by-now
    const dist_t bound =
        dv == kInfDist ? kInfDist : dv - k * static_cast<dist_t>(delta);
    switch (estimator) {
      case EstimatorKind::kExact:
        local.pull_requests += view.count_long_below(v, bound);
        break;
      case EstimatorKind::kExpectation:
        expected += expected_requests_for_vertex(view.long_degree(v), dv, k,
                                                 delta, max_weight);
        break;
      case EstimatorKind::kHistogram:
        expected += view.count_long_below_histogram(v, bound);
        break;
    }
    if (include_short_in_long_phase) {
      if (estimator == EstimatorKind::kExact) {
        local.pull_requests += view.short_degree(v);
      } else {
        expected += static_cast<double>(view.short_degree(v));
      }
    }
  }
  if (estimator != EstimatorKind::kExact) {
    local.pull_requests += static_cast<std::uint64_t>(std::llround(expected));
  }
  return local;
}

PushPullDecision decide_push_pull(const PushPullGlobal& global, rank_t ranks,
                                  double load_lambda) {
  PushPullDecision d;
  // Volume: push moves push_volume messages; pull moves requests plus (at
  // most) as many responses.
  const double push_volume = static_cast<double>(global.push_volume);
  const double pull_volume = 2.0 * static_cast<double>(global.pull_requests);
  d.push_cost = push_volume +
                load_lambda * ranks * static_cast<double>(global.push_max_rank);
  d.pull_cost = pull_volume +
                load_lambda * ranks *
                    (2.0 * static_cast<double>(global.pull_max_rank));
  d.pull = d.pull_cost < d.push_cost;
  return d;
}

}  // namespace parsssp
