// The batched multi-root SSSP engine: runs up to kMaxMultiRoots roots
// through ONE bucket-synchronous sweep, sharing the phase loop, collective
// reductions and message exchanges across the whole batch.
//
// Why this exists: Graph 500's methodology (64 search keys per
// configuration) and a serving workload both issue many roots against one
// graph. Solver::solve_batch runs them sequentially, paying the full
// per-bucket Allreduce/barrier bill k times. Since the k root instances are
// independent min-folds over disjoint distance slabs, their supersteps can
// be overlaid: each global epoch advances every still-active root by one of
// *its own* buckets, every short-phase round pops every active root's
// frontier, and all roots' relax messages travel in a single exchange with
// a slot tag. The superstep count of the batch is then the *max* over roots
// instead of the sum, and every message exchange amortizes its fixed
// latency over the batch (the paper's own observation that superstep
// latency, not bandwidth, limits small per-node problems).
//
// Algorithmically each slot executes Delta-stepping with short/long edge
// classification and IOS (when enabled by SsspOptions) and a push-mode long
// phase. The per-bucket push/pull pruning decision and the hybridization
// switch are per-root control decisions that do not batch cleanly, so the
// multi-root path does not execute them; they affect work counts only —
// distances are exact shortest paths under every configuration, so results
// are bit-identical to per-root Solver::solve for ALL option sets (the
// property suite asserts this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dist_graph.hpp"
#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "core/types.hpp"
#include "runtime/machine.hpp"

namespace parsssp {

/// Largest batch one sweep supports: slot-activity masks travel in a single
/// 64-bit Allreduce.
inline constexpr std::size_t kMaxMultiRoots = 64;

/// Relaxation message of the batched engine: a RelaxMsg plus the batch slot
/// it belongs to (parents are not tracked on the multi-root path).
struct MultiRelaxMsg {
  vid_t v;            ///< destination vertex (global id, owned by receiver)
  dist_t nd;          ///< proposed tentative distance d(u) + w(e)
  std::uint32_t slot; ///< batch slot (index into MultiEngineShared::roots)
};

/// Batch-level statistics of one multi-root sweep. Per-root relaxation
/// counts are exact; the modeled time is for the whole batch (the shared
/// supersteps cannot be attributed to single roots), so aggregate
/// throughput is k * m / model_time_s.
struct MultiStats {
  std::size_t num_roots = 0;
  std::uint64_t epochs = 0;        ///< global bucket rounds of the sweep
  std::uint64_t phases = 0;        ///< short + long phase rounds (shared)
  std::uint64_t relaxations = 0;   ///< total relax messages, all slots
  std::vector<std::uint64_t> per_root_relaxations;  ///< size num_roots
  double model_time_s = 0;         ///< modeled machine time of the batch
  double wall_time_s = 0;          ///< bottleneck rank wall clock

  /// Aggregate traversed-edges-per-second of the batch, Graph 500 style.
  double aggregate_gteps(std::uint64_t num_edges, bool modeled = true) const {
    const double t = modeled ? model_time_s : wall_time_s;
    return t > 0 ? static_cast<double>(num_edges) *
                       static_cast<double>(num_roots) / t / 1e9
                 : 0.0;
  }
};

/// Inputs and output slots shared by all ranks of one multi-root sweep.
/// `roots` must be duplicate-free and at most kMaxMultiRoots long (callers
/// dedup and chunk; see Solver::solve_multi). `dists` holds one
/// graph-sized output vector per root; each rank writes its owned slice of
/// every slab.
struct MultiEngineShared {
  const CsrGraph* graph = nullptr;
  BlockPartition part;
  const std::vector<LocalEdgeView>* views = nullptr;
  std::span<const vid_t> roots;
  std::span<std::vector<dist_t>* const> dists;  ///< one per root, size |V|
  const SsspOptions* options = nullptr;
  std::vector<RankCounters>* rank_counters = nullptr;  ///< one slot per rank
  MultiStats* stats = nullptr;  ///< batch fields written by rank 0
};

/// The Machine/MachineSession job body for one batched sweep. Collective:
/// all ranks run this together.
void run_multi_sssp_job(RankCtx& ctx, const MultiEngineShared& shared);

}  // namespace parsssp
