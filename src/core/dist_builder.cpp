#include "core/dist_builder.hpp"

namespace parsssp {
namespace {

/// Wire format of one arc during the scatter: destination-owned vertex
/// (global id) plus the arc out of it.
struct ArcMsg {
  vid_t owner_vertex;
  vid_t to;
  weight_t w;
};

}  // namespace

std::vector<LocalEdgeView> build_views_distributed(const EdgeList& edges,
                                                   Machine& machine,
                                                   const BlockPartition& part,
                                                   std::uint32_t delta) {
  const rank_t ranks = machine.num_ranks();
  std::vector<LocalEdgeView> views(ranks);
  const auto& list = edges.edges();
  const std::size_t m = list.size();

  machine.run([&](RankCtx& ctx) {
    const rank_t r = ctx.rank();
    // This rank's chunk of the (conceptually distributed) edge input.
    const std::size_t chunk = (m + ranks - 1) / ranks;
    const std::size_t begin = std::min(m, chunk * r);
    const std::size_t end = std::min(m, begin + chunk);

    std::vector<std::vector<ArcMsg>> out(ranks);
    for (std::size_t i = begin; i < end; ++i) {
      const WeightedEdge& e = list[i];
      out[part.owner(e.u)].push_back({e.u, e.v, e.w});
      if (e.u != e.v) {
        out[part.owner(e.v)].push_back({e.v, e.u, e.w});
      }
    }
    const auto in = ctx.exchange(std::move(out), PhaseKind::kControl);

    std::vector<std::pair<vid_t, Arc>> arcs;
    for (const auto& batch : in) {
      for (const ArcMsg& msg : batch) {
        arcs.emplace_back(part.local_id(msg.owner_vertex),
                          Arc{msg.to, msg.w});
      }
    }
    views[r] = LocalEdgeView::from_arcs(part.count(r), std::move(arcs),
                                        delta);
  });
  return views;
}

}  // namespace parsssp
