#include "core/stepping_engine.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace parsssp {
namespace {

// All wall-clock reads go through the obs/ helpers (PhaseTimer /
// TimedSection / ScopedSpan), same discipline as the other engines (lint
// rule R8).

/// Per-round accounting reduction: continuation flag, bottleneck work and
/// bytes, total relaxations.
struct RoundReduce {
  std::uint64_t max_work = 0;
  std::uint64_t max_bytes = 0;
  std::uint64_t sum_relax = 0;
};
struct RoundReduceOp {
  RoundReduce operator()(const RoundReduce& a, const RoundReduce& b) const {
    return {std::max(a.max_work, b.max_work),
            std::max(a.max_bytes, b.max_bytes), a.sum_relax + b.sum_relax};
  }
};

/// rho-stepping's bucket-count window: per-bucket queue sizes of the
/// first kRhoWindow buckets at the global minimum, summed across ranks.
/// Sized to fit the 64-byte collective slot.
constexpr std::size_t kRhoWindow = 6;
struct RhoScan {
  std::uint64_t cnt[kRhoWindow] = {};
};
struct RhoScanOp {
  RhoScan operator()(const RhoScan& a, const RhoScan& b) const {
    RhoScan out;
    for (std::size_t j = 0; j < kRhoWindow; ++j) {
      out.cnt[j] = a.cnt[j] + b.cnt[j];
    }
    return out;
  }
};

/// Radius rule inputs: minimum live distance and minimum reach
/// (d(v) + r(v)) over the front bucket, minimized across ranks.
struct RadScan {
  dist_t min_live = kInfDist;
  dist_t min_reach = kInfDist;
};
struct RadScanOp {
  RadScan operator()(const RadScan& a, const RadScan& b) const {
    return {std::min(a.min_live, b.min_live),
            std::min(a.min_reach, b.min_reach)};
  }
};

/// Exclusive upper distance limit of bucket `b`, saturating at kInfDist
/// (speculative long-tail distances can sit in the last buckets before
/// the wrap point).
dist_t bucket_limit(std::uint64_t b, std::uint32_t delta) {
  const dist_t start = static_cast<dist_t>(b) * delta;
  const dist_t end = start + delta;
  return end < start ? kInfDist : end;
}

dist_t saturating_add(dist_t a, dist_t b) {
  const dist_t s = a + b;
  return s < a ? kInfDist : s;
}

}  // namespace

SteppingEngine::SteppingEngine(RankCtx& ctx,
                               const SteppingEngineShared& shared)
    : ctx_(ctx),
      sh_(shared),
      view_((*shared.views)[ctx.rank()]),
      begin_(shared.part.begin(ctx.rank())),
      nloc_(shared.part.count(ctx.rank())),
      pq_(shared.options->delta),
      cost_(shared.options->cost_model) {
  dist_ = std::span<dist_t>(sh_.dist->data() + begin_, nloc_);
  if (sh_.parent != nullptr) {
    parent_ = std::span<vid_t>(sh_.parent->data() + begin_, nloc_);
  }
  relax_pool_.configure(/*lanes=*/1, ctx_.num_ranks());

  sync0_allreduces_ = ctx_.traffic().allreduces;
  sync0_barriers_ = ctx_.traffic().barriers;

  if (sh_.options->trace != nullptr) {
    tlane_ = &sh_.options->trace->thread_lane(
        "rank" + std::to_string(ctx_.rank()));
  }
}

void SteppingEngine::init() {
  std::fill(dist_.begin(), dist_.end(), kInfDist);
  if (!parent_.empty()) {
    std::fill(parent_.begin(), parent_.end(), kInvalidVid);
  }
  if (sh_.part.owner(sh_.root) == ctx_.rank()) {
    dist_[to_local(sh_.root)] = 0;
    if (!parent_.empty()) parent_[to_local(sh_.root)] = sh_.root;
    pq_.push(sh_.root, 0);
  }
  if (sh_.options->algo == SsspAlgo::kRadius) compute_radii();
}

void SteppingEngine::compute_radii() {
  r_.assign(nloc_, 1);
  const std::uint32_t k = std::max<std::uint32_t>(1, sh_.options->radius_k);
  std::vector<weight_t> weights;
  for (vid_t lv = 0; lv < nloc_; ++lv) {
    const std::span<const Arc> arcs = view_.all_arcs(lv);
    if (arcs.empty()) continue;
    weights.clear();
    for (const Arc& a : arcs) weights.push_back(a.w);
    const std::size_t idx =
        std::min<std::size_t>(k, weights.size()) - 1;
    std::nth_element(weights.begin(), weights.begin() + idx, weights.end());
    r_[lv] = weights[idx];
  }
}

bool SteppingEngine::any_active_globally(bool local_active) {
  TimedSection sw(counters_.wall_bucket_time_s, tlane_, SpanCat::kBucketScan);
  const bool any =
      ctx_.allreduce(static_cast<std::uint64_t>(local_active), OrOp{}) != 0;
  model_bkt_ns_ += cost_.scan_cost(0);
  return any;
}

dist_t SteppingEngine::step_threshold() {
  TimedSection sw(counters_.wall_bucket_time_s, tlane_, SpanCat::kBucketScan);
  const std::uint32_t delta = sh_.options->delta;
  const std::uint64_t gmin = ctx_.allreduce(pq_.min_bucket(), MinOp{});
  model_bkt_ns_ += cost_.scan_cost(0);
  if (gmin == kInfBucket) return kInfDist;

  switch (sh_.options->algo) {
    case SsspAlgo::kDeltaStar:
      return bucket_limit(gmin, delta);
    case SsspAlgo::kRho: {
      // Cover front buckets until ~rho queued entries are included. The
      // counts are queue entries (stale included) — an upper bound on
      // live work, which is all the batch-size rule needs; the window is
      // bounded by the collective payload, so a sparse long tail just
      // takes several steps.
      RhoScan local;
      for (std::size_t j = 0; j < kRhoWindow; ++j) {
        local.cnt[j] = pq_.bucket_size(gmin + j);
      }
      const RhoScan global = ctx_.allreduce(local, RhoScanOp{});
      model_bkt_ns_ += cost_.scan_cost(kRhoWindow);
      const std::uint64_t rho = std::max<std::uint32_t>(1, sh_.options->rho);
      std::uint64_t covered = 0;
      std::uint64_t last = gmin;
      for (std::size_t j = 0; j < kRhoWindow; ++j) {
        covered += global.cnt[j];
        last = gmin + j;
        if (covered >= rho) break;
      }
      return bucket_limit(last, delta);
    }
    case SsspAlgo::kRadius: {
      // min over live front-bucket entries of d(v) + r(v). The fallback
      // (front bucket globally stale, or some r of 0-weight arcs) is a
      // plain bucket step; the max() keeps every step settling at least
      // the globally minimum live vertex.
      RadScan local;
      const std::span<const LazyBucketQueue::Entry> front =
          pq_.entries_of(gmin);
      for (const auto& [v, d] : front) {
        const vid_t lv = to_local(v);
        if (d != dist_[lv]) continue;  // stale
        local.min_live = std::min(local.min_live, d);
        local.min_reach =
            std::min(local.min_reach, saturating_add(d, r_[lv]));
      }
      const RadScan global = ctx_.allreduce(local, RadScanOp{});
      model_bkt_ns_ += cost_.scan_cost(front.size());
      if (global.min_live == kInfDist) return bucket_limit(gmin, delta);
      return std::max(global.min_reach,
                      saturating_add(global.min_live, 1));
    }
    default:
      assert(false && "stepping engine dispatched on a non-stepping algo");
      return bucket_limit(gmin, delta);
  }
}

std::uint64_t SteppingEngine::drain_and_relax(dist_t t) {
  std::uint64_t emitted = 0;
  while (!pq_.empty()) {
    const std::uint64_t b = pq_.min_bucket();
    if (static_cast<dist_t>(b) * sh_.options->delta >= t) break;
    pq_.pop_batch(batch_);
    for (const auto& [v, d] : batch_) {
      const vid_t lv = to_local(v);
      assert(lv < nloc_);
      if (d != dist_[lv]) continue;  // stale: a lower entry exists
      if (d >= t) {
        // A bucket straddling the threshold (radius rule): live entries
        // at or above t park until the step ends.
        deferred_.push_back({v, d});
        continue;
      }
      for (const Arc& a : view_.all_arcs(lv)) {
        relax_pool_.shard(0, sh_.part.owner(a.to))
            .push_back({a.to, d + a.w, v});
        ++emitted;
      }
    }
  }
  counters_.stepping_relaxations += emitted;
  return emitted;
}

std::uint64_t SteppingEngine::relax_exchange() {
  const SsspOptions& o = *sh_.options;
  if (o.data_path == DataPath::kReference) {
    const std::uint64_t posted = relax_pool_.pending_messages();
    ctx_.exchange_merged(relax_pool_, PhaseKind::kShortPhase);
    return posted;
  }
  if (o.sender_reduction) {
    const rank_t ranks = ctx_.num_ranks();
    reducer_.ensure(sh_.part.block_size());
    for (rank_t d = 0; d < ranks; ++d) {
      const vid_t dest_begin = sh_.part.begin(d);
      reducer_.begin_dest();
      reducer_.reduce(
          relax_pool_.shard(0, d),
          [dest_begin](const RelaxMsg& m) {
            return static_cast<std::size_t>(m.v - dest_begin);
          },
          [](const RelaxMsg& m) { return m.nd; });
    }
  }
  const std::uint64_t posted = relax_pool_.pending_messages();
  ctx_.exchange_pooled(relax_pool_, PhaseKind::kShortPhase);
  return posted;
}

std::uint64_t SteppingEngine::apply_incoming() {
  std::uint64_t total = 0;
  for (const auto& batch : relax_pool_.incoming()) total += batch.size();
  ScopedSpan span(tlane_, SpanCat::kApply, total);
  for (const auto& batch : relax_pool_.incoming()) {
    for (const RelaxMsg& m : batch) {
      const vid_t local = to_local(m.v);
      assert(local < nloc_);
      if (m.nd >= dist_[local]) continue;
      dist_[local] = m.nd;
      if (!parent_.empty()) parent_[local] = m.pred;
      // Unconditional re-queue: below the step threshold the in-step
      // fixpoint picks it up, above it the entry waits for its step.
      pq_.push(m.v, m.nd);
    }
  }
  return total;
}

void SteppingEngine::account_round(std::uint64_t work, std::uint64_t bytes,
                                   std::uint64_t relax) {
  const RoundReduce red =
      ctx_.allreduce(RoundReduce{work, bytes, relax}, RoundReduceOp{});
  model_other_ns_ += cost_.step_cost(red.max_work, red.max_bytes);
}

void SteppingEngine::settle_below(dist_t t) {
  const std::uint32_t delta = sh_.options->delta;
  auto has_work_below = [&] {
    if (pq_.empty()) return false;
    return static_cast<dist_t>(pq_.min_bucket()) * delta < t;
  };
  while (any_active_globally(has_work_below())) {
    ++phases_;
    ScopedSpan span(tlane_, SpanCat::kShortPhase, steps_);
    if (sh_.options->data_path == DataPath::kReference) {
      // The baseline pays the seed's churn: fresh allocations per round.
      relax_pool_.release();
    }
    relax_pool_.begin_phase();
    const std::uint64_t emitted = drain_and_relax(t);
    const std::uint64_t posted = relax_exchange();
    const std::uint64_t applied = apply_incoming();
    account_round(emitted + applied, posted * sizeof(RelaxMsg), emitted);
  }
}

void SteppingEngine::run() {
  ctx_.set_trace(tlane_);
  double total_wall = 0;
  {
    PhaseTimer total(total_wall);
    ScopedSpan solve(tlane_, SpanCat::kSolve, ctx_.rank());
    {
      ScopedSpan init_span(tlane_, SpanCat::kInit);
      init();
      ctx_.barrier();
    }
    while (any_active_globally(!pq_.empty())) {
      ++steps_;
      const dist_t t = step_threshold();
      settle_below(t);
      for (const auto& [v, d] : deferred_) pq_.push(v, d);
      deferred_.clear();
    }
  }
  ctx_.set_trace(nullptr);
  counters_.wall_other_time_s = total_wall - counters_.wall_bucket_time_s;
  finalize();
}

void SteppingEngine::finalize() {
  // Synchronization cost of the solve body (this final reduction included:
  // +1 below); same discipline as the bucket-synchronous engine.
  counters_.allreduces = ctx_.traffic().allreduces - sync0_allreduces_ + 1;
  counters_.barriers = ctx_.traffic().barriers - sync0_barriers_;
  (*sh_.rank_counters)[ctx_.rank()] = counters_;
  const double wall =
      counters_.wall_bucket_time_s + counters_.wall_other_time_s;
  struct WallReduce {
    double total;
    double bucket;
    std::uint64_t allreduces;
    std::uint64_t barriers;
  };
  struct WallReduceOp {
    WallReduce operator()(const WallReduce& a, const WallReduce& b) const {
      return {std::max(a.total, b.total), std::max(a.bucket, b.bucket),
              std::max(a.allreduces, b.allreduces),
              std::max(a.barriers, b.barriers)};
    }
  };
  const WallReduce wr = ctx_.allreduce(
      WallReduce{wall, counters_.wall_bucket_time_s, counters_.allreduces,
                 counters_.barriers},
      WallReduceOp{});

  if (ctx_.rank() == 0) {
    SsspStats& s = *sh_.stats;
    s.sync_allreduces = wr.allreduces;
    s.sync_barriers = wr.barriers;
    s.phases = phases_;
    s.buckets = steps_;
    s.model_bucket_time_s = model_bkt_ns_ * 1e-9;
    s.model_other_time_s = model_other_ns_ * 1e-9;
    s.model_time_s = (model_bkt_ns_ + model_other_ns_) * 1e-9;
    s.wall_time_s = wr.total;
    s.wall_bucket_time_s = wr.bucket;
    s.wall_other_time_s = wr.total - wr.bucket;
  }
}

void run_stepping_sssp_job(RankCtx& ctx, const SteppingEngineShared& shared) {
  SteppingEngine engine(ctx, shared);
  engine.run();
}

}  // namespace parsssp
