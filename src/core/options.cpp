#include "core/options.hpp"

namespace parsssp {

SsspOptions SsspOptions::dijkstra() {
  SsspOptions o;
  o.delta = 1;
  o.edge_classification = true;  // with Delta=1 every edge is long
  o.ios = false;
  o.pruning = false;
  o.hybrid_tau = -1.0;
  return o;
}

SsspOptions SsspOptions::bellman_ford() {
  SsspOptions o;
  o.delta = kInfDelta;
  o.edge_classification = false;
  o.ios = false;
  o.pruning = false;
  o.hybrid_tau = -1.0;
  return o;
}

SsspOptions SsspOptions::del(std::uint32_t delta) {
  SsspOptions o;
  o.delta = delta;
  o.edge_classification = true;
  o.ios = false;
  o.pruning = false;
  o.hybrid_tau = -1.0;
  return o;
}

SsspOptions SsspOptions::prune(std::uint32_t delta) {
  SsspOptions o = del(delta);
  o.ios = true;
  o.pruning = true;
  o.prune_mode = PruneMode::kHeuristic;
  return o;
}

SsspOptions SsspOptions::opt(std::uint32_t delta) {
  SsspOptions o = prune(delta);
  o.hybrid_tau = 0.4;
  return o;
}

SsspOptions SsspOptions::lb_opt(std::uint32_t delta,
                                std::size_t heavy_threshold) {
  SsspOptions o = opt(delta);
  o.heavy_degree_threshold = heavy_threshold;
  return o;
}

SsspOptions SsspOptions::async_opt(std::uint32_t delta) {
  SsspOptions o;
  o.algo = SsspAlgo::kAsync;
  o.delta = delta;
  // The bucket-synchronous work-shaping knobs are inert under kAsync;
  // keep them at their neutral settings so the signature reads honestly.
  o.edge_classification = false;
  o.ios = false;
  o.pruning = false;
  o.hybrid_tau = -1.0;
  return o;
}

namespace {

// Shared base for the stepping family: the bucket-synchronous
// work-shaping knobs are inert under the stepping engines; keep them
// neutral so the signature reads honestly (same policy as async_opt).
SsspOptions stepping_base(SsspAlgo algo, std::uint32_t delta) {
  SsspOptions o;
  o.algo = algo;
  o.delta = delta;
  o.edge_classification = false;
  o.ios = false;
  o.pruning = false;
  o.hybrid_tau = -1.0;
  return o;
}

}  // namespace

SsspOptions SsspOptions::rho_stepping(std::uint32_t rho,
                                      std::uint32_t delta) {
  SsspOptions o = stepping_base(SsspAlgo::kRho, delta);
  o.rho = rho;
  return o;
}

SsspOptions SsspOptions::delta_star(std::uint32_t delta) {
  return stepping_base(SsspAlgo::kDeltaStar, delta);
}

SsspOptions SsspOptions::radius_stepping(std::uint32_t k,
                                        std::uint32_t delta) {
  SsspOptions o = stepping_base(SsspAlgo::kRadius, delta);
  o.radius_k = k;
  return o;
}

}  // namespace parsssp
