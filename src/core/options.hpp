// Configuration of the distributed SSSP engine: which of the paper's
// optimizations are enabled and with what parameters. Factory functions
// build the named algorithm variants of the evaluation section
// (Del-D, Prune-D, OPT-D, LB-OPT-D, Dijkstra, Bellman-Ford).
#pragma once

#include <cstdint>
#include <vector>


namespace parsssp {

class TraceRecorder;  // obs/trace.hpp

/// How the long-edge phase of each bucket is executed (paper §III-B/C).
enum class PruneMode : std::uint8_t {
  kPushOnly,        ///< classic push relaxations for every bucket
  kPullOnly,        ///< pull (request/response) for every bucket
  kHeuristic,       ///< per-bucket decision heuristic (the paper's default)
  kForcedSequence,  ///< per-bucket decisions supplied by the caller (§IV-G)
};

/// Which relax/exchange data path the engines run (docs/PERFORMANCE.md).
/// Both produce bit-identical distances and parents; kReference exists as
/// the verification and benchmark baseline.
enum class DataPath : std::uint8_t {
  /// Pooled send buffers, zero-copy segment exchange, optional sender-side
  /// reduction and lane-parallel apply. The production default.
  kPooled,
  /// The seed data path: per-phase nested vectors, serial lane merge,
  /// pack/unpack byte exchange, serial apply.
  kReference,
};

/// Which execution model runs the solve (docs/ASYNC.md). Both produce
/// bit-identical distances; parents agree once canonicalized.
enum class SsspAlgo : std::uint8_t {
  /// The bulk-synchronous Delta-stepping family (Del/Prune/Opt/BF): one
  /// allreduce-fenced epoch per bucket. The default.
  kBucketSync,
  /// The barrier-free engine: ranks drain an inbound relax queue, keep a
  /// lazy-batched local priority structure, forward speculatively, and
  /// terminate via distributed quiescence detection. Ignores the
  /// bucket-synchronous work-shaping knobs (pruning, ios, hybrid_tau,
  /// heavy_degree_threshold, parallel_apply); honors delta (priority
  /// granularity), data_path and track_parents. Parents are always
  /// canonicalized (core/parent_canon.hpp) so they stay a pure function
  /// of graph + dist.
  kAsync,
  /// rho-stepping (arXiv 2105.06145): each step settles the front buckets
  /// of the lazy queue until roughly `rho` queued entries are covered,
  /// then runs relax/exchange rounds to a fixpoint below that threshold.
  /// delta is the priority granularity of the queue, `rho` the batch
  /// target. Step-synchronous; honors data_path and track_parents;
  /// parents always canonicalized (docs/STEPPING.md).
  kRho,
  /// Delta*-stepping (arXiv 2105.06145): plain bucket steps of width
  /// delta with NO light/heavy edge split — every arc of a settled vertex
  /// is relaxed once per round. The lazy queue replaces the
  /// classification machinery of the bucket-synchronous family.
  kDeltaStar,
  /// Radius Stepping (arXiv 1602.03881): the step threshold is
  /// min over the frontier bucket of dist(v) + r(v), where r(v) is the
  /// vertex radius — here the `radius_k`-th smallest incident arc weight
  /// (the 1-hop approximation of the paper's k-ball radius; any positive
  /// r is exact because each step relaxes to a fixpoint).
  kRadius,
};

/// True for the stepping-family engines (core/stepping_engine.hpp).
constexpr bool is_stepping_algo(SsspAlgo algo) {
  return algo == SsspAlgo::kRho || algo == SsspAlgo::kDeltaStar ||
         algo == SsspAlgo::kRadius;
}

/// How the pull-request volume is estimated by the decision heuristic.
/// The paper discusses all three: binary search over weight-sorted lists,
/// histograms for "approximate estimates", and (what its implementation
/// uses) the closed-form expectation under uniform weights.
enum class EstimatorKind : std::uint8_t {
  kExact,        ///< binary search over weight-sorted long-edge lists
  kExpectation,  ///< closed-form expectation under uniform weights (paper)
  kHistogram,    ///< per-vertex weight histograms, interpolated
};

/// Cost model of the simulated machine, used to convert the exact per-step
/// work/traffic counters into a modeled execution time. The absolute scale
/// is arbitrary (units are nanoseconds of a nominal node); the *ratios*
/// decide the trade-offs the paper studies: t_step penalizes phase/bucket
/// counts (Dijkstra's weakness), t_relax and t_byte penalize work and
/// communication volume (Bellman-Ford's weakness), and the max-over-ranks
/// aggregation exposes load imbalance (§III-E).
/// Defaults calibrated so that, at this library's laptop scales (2^10-2^13
/// vertices per rank), the work:latency ratio lands in the same regime the
/// paper measures at 2^23 vertices per node: relax work dominates, per-epoch
/// scans are visible, and superstep latency only hurts algorithms with very
/// many phases (Dijkstra).
struct CostModelParams {
  double t_step_ns = 1000.0;  ///< latency per bulk-synchronous superstep
  double t_relax_ns = 4.0;    ///< per relax / request / response operation
  double t_byte_ns = 0.25;    ///< per byte injected into the network
  double t_scan_ns = 1.0;     ///< per vertex scanned in bucket bookkeeping
};

struct SsspOptions {
  /// Bucket width. kInfDelta selects the Bellman-Ford regime (one bucket).
  static constexpr std::uint32_t kInfDelta = 0xffffffffu;
  std::uint32_t delta = 25;

  /// Execution model; see SsspAlgo.
  SsspAlgo algo = SsspAlgo::kBucketSync;

  /// Meyer-Sanders short/long edge classification (§III-A).
  bool edge_classification = true;
  /// Inner/outer short refinement on top of classification (§III-A).
  bool ios = true;
  /// Direction-optimized long phases (§III-B). Requires classification.
  bool pruning = true;
  PruneMode prune_mode = PruneMode::kHeuristic;
  /// Per-epoch decisions for kForcedSequence: true = pull. Buckets beyond
  /// the vector fall back to push.
  std::vector<bool> forced_pull;
  EstimatorKind estimator = EstimatorKind::kExact;
  /// Weight of the load-imbalance term in the decision heuristic:
  /// cost = volume + load_lambda * ranks * max_per_rank_traffic.
  double load_lambda = 1.0;

  /// Hybridization threshold tau (§III-D): switch to Bellman-Ford once the
  /// settled fraction exceeds tau. Negative disables hybridization.
  double hybrid_tau = -1.0;

  /// Intra-rank load balancing (§III-E): vertices with degree > threshold
  /// have their adjacency relaxed cooperatively by all lanes. 0 disables.
  std::size_t heavy_degree_threshold = 0;

  // --- Stepping-family step parameters (docs/STEPPING.md) ---------------

  /// kRho only: target number of queued entries settled per step. Larger
  /// values trade extra speculative relax work for fewer global steps.
  std::uint32_t rho = 2048;
  /// kRadius only: k of the vertex-radius rule — r(v) is the k-th
  /// smallest incident arc weight (clamped to the degree). Larger k means
  /// larger steps and more in-step speculation.
  std::uint32_t radius_k = 4;

  /// Also build the shortest-path tree (Graph 500 SSSP output): relax
  /// messages carry their source vertex and SsspResult::parent is filled.
  bool track_parents = false;

  /// Canonicalize the parent tree after the solve: parent[v] becomes the
  /// smallest global id u with dist[u] + w(u,v) == dist[v] (root stays its
  /// own parent, unreachable vertices stay kInvalidVid). Canonical parents
  /// are a pure function of (graph, dist), so two runs that agree on
  /// distances agree on parents bit for bit — the contract the incremental
  /// repair engine (docs/DYNAMIC.md) is verified against. No effect unless
  /// track_parents is set.
  bool canonical_parents = false;

  // --- Relax/exchange data path (docs/PERFORMANCE.md) -------------------

  DataPath data_path = DataPath::kPooled;
  /// Sender-side no-op elimination: per destination vertex, drop relax
  /// messages that cannot improve on an earlier message in the same
  /// stream. Exact (bit-identical results); pooled path only. Long-push
  /// phases keep the full stream while collect_bucket_details is on, so
  /// the receiver-side Fig 7 classification still sees every relaxation.
  bool sender_reduction = true;
  /// Apply incoming relax batches on all worker lanes, partitioned by
  /// destination local-vertex range (no atomics); pooled path only.
  bool parallel_apply = true;

  /// Diagnostics for the figure benches.
  bool collect_phase_details = false;   ///< per-phase relax counts (Fig 4)
  bool collect_bucket_details = false;  ///< per-bucket push/pull stats (Fig 7)

  CostModelParams cost_model;

  /// Observability (docs/OBSERVABILITY.md): when non-null, the engines and
  /// the runtime exchange path record structured spans into this recorder.
  /// Never changes results or reported statistics, so it is excluded from
  /// options_signature(); null keeps every span site a single pointer test
  /// with no extra clock reads.
  TraceRecorder* trace = nullptr;

  bool bellman_ford_regime() const { return delta == kInfDelta; }

  // --- Named variants of the paper's evaluation -------------------------

  /// Dijkstra = Delta-stepping with Delta=1 (Dial's variant).
  static SsspOptions dijkstra();
  /// Bellman-Ford = Delta-stepping with a single unbounded bucket.
  static SsspOptions bellman_ford();
  /// Del-D: baseline Delta-stepping with short/long classification.
  static SsspOptions del(std::uint32_t delta);
  /// Prune-D: Del-D + IOS + push/pull pruning with the decision heuristic.
  static SsspOptions prune(std::uint32_t delta);
  /// OPT-D: Prune-D + hybridization (tau = 0.4).
  static SsspOptions opt(std::uint32_t delta);
  /// LB-OPT-D: OPT-D + intra-rank heavy-vertex load balancing.
  static SsspOptions lb_opt(std::uint32_t delta,
                            std::size_t heavy_threshold = 256);
  /// ASYNC-D: the barrier-free engine (SsspAlgo::kAsync) at priority
  /// granularity Delta. Distances bit-identical to opt(delta).
  static SsspOptions async_opt(std::uint32_t delta);
  /// RHO: rho-stepping at batch target `rho`, queue granularity Delta.
  static SsspOptions rho_stepping(std::uint32_t rho = 2048,
                                  std::uint32_t delta = 25);
  /// DSTAR-D: Delta*-stepping at bucket width Delta.
  static SsspOptions delta_star(std::uint32_t delta);
  /// RADIUS-k: Radius Stepping with the k-th-incident-weight vertex
  /// radius, queue granularity Delta.
  static SsspOptions radius_stepping(std::uint32_t k = 4,
                                     std::uint32_t delta = 25);
};

}  // namespace parsssp
