#include "core/dist_graph.hpp"

#include <algorithm>
#include <limits>

namespace parsssp {

LocalEdgeView LocalEdgeView::build(const CsrGraph& g,
                                   const BlockPartition& part, rank_t rank,
                                   std::uint32_t delta) {
  LocalEdgeView view;
  view.delta_ = delta;
  const vid_t begin = part.begin(rank);
  const vid_t end = part.end(rank);
  view.num_local_ = end - begin;

  view.off_.assign(view.num_local_ + 1, 0);
  view.mid_.assign(view.num_local_, 0);
  std::size_t total = 0;
  for (vid_t v = begin; v < end; ++v) total += g.degree(v);
  view.arcs_.reserve(total);

  for (vid_t v = begin; v < end; ++v) {
    const vid_t local = v - begin;
    view.off_[local] = view.arcs_.size();
    const auto nbrs = g.neighbors(v);
    // Short arcs first (original order), then long arcs sorted by weight.
    for (const Arc& a : nbrs) {
      if (a.w < delta) view.arcs_.push_back(a);
    }
    view.mid_[local] = view.arcs_.size();
    for (const Arc& a : nbrs) {
      if (a.w >= delta) view.arcs_.push_back(a);
    }
    std::sort(view.arcs_.begin() +
                  static_cast<std::ptrdiff_t>(view.mid_[local]),
              view.arcs_.end(), [](const Arc& a, const Arc& b) {
                if (a.w != b.w) return a.w < b.w;
                return a.to < b.to;
              });
    view.total_long_ += view.arcs_.size() - view.mid_[local];
  }
  view.off_[view.num_local_] = view.arcs_.size();
  view.build_histograms();
  return view;
}

LocalEdgeView LocalEdgeView::from_arcs(
    vid_t num_local, std::vector<std::pair<vid_t, Arc>> arcs,
    std::uint32_t delta) {
  LocalEdgeView view;
  view.delta_ = delta;
  view.num_local_ = num_local;
  view.off_.assign(num_local + 1, 0);
  view.mid_.assign(num_local, 0);
  view.arcs_.resize(arcs.size());

  // Counting sort by (local vertex, short/long class), then weight-sort
  // each long range. Deterministic regardless of arrival order.
  std::vector<std::uint64_t> counts(num_local, 0);
  for (const auto& [local, arc] : arcs) ++counts[local];
  for (vid_t v = 0; v < num_local; ++v) {
    view.off_[v + 1] = view.off_[v] + counts[v];
  }
  // First pass: shorts from the front, longs from the back of each range.
  std::vector<std::uint64_t> head(view.off_.begin(), view.off_.end() - 1);
  std::vector<std::uint64_t> tail(view.off_.begin() + 1, view.off_.end());
  for (const auto& [local, arc] : arcs) {
    if (arc.w < delta) {
      view.arcs_[head[local]++] = arc;
    } else {
      view.arcs_[--tail[local]] = arc;
    }
  }
  for (vid_t v = 0; v < num_local; ++v) {
    view.mid_[v] = head[v];  // == tail[v]: boundary between short and long
    const auto begin =
        view.arcs_.begin() + static_cast<std::ptrdiff_t>(view.mid_[v]);
    const auto end =
        view.arcs_.begin() + static_cast<std::ptrdiff_t>(view.off_[v + 1]);
    std::sort(begin, end, [](const Arc& a, const Arc& b) {
      if (a.w != b.w) return a.w < b.w;
      return a.to < b.to;
    });
    // Short arcs get the deterministic (to, w) order build() produces.
    std::sort(view.arcs_.begin() + static_cast<std::ptrdiff_t>(view.off_[v]),
              begin, [](const Arc& a, const Arc& b) {
                if (a.to != b.to) return a.to < b.to;
                return a.w < b.w;
              });
    view.total_long_ += view.off_[v + 1] - view.mid_[v];
  }
  view.build_histograms();
  return view;
}

void LocalEdgeView::build_histograms() {
  max_long_weight_ = delta_;
  for (const Arc& a : arcs_) {
    max_long_weight_ = std::max(max_long_weight_, a.w);
  }
  hist_.assign(static_cast<std::size_t>(num_local_) * kHistogramBins, 0);
  const double width = bin_width();
  for (vid_t local = 0; local < num_local_; ++local) {
    for (const Arc& a : long_arcs(local)) {
      auto bin = static_cast<std::uint32_t>(
          (static_cast<double>(a.w) - delta_) / width);
      bin = std::min(bin, kHistogramBins - 1);
      ++hist_[static_cast<std::size_t>(local) * kHistogramBins + bin];
    }
  }
}

void LocalEdgeView::rebuild_histogram_row(vid_t local) {
  std::uint32_t* bins =
      hist_.data() + static_cast<std::size_t>(local) * kHistogramBins;
  std::fill(bins, bins + kHistogramBins, 0u);
  const double width = bin_width();
  for (const Arc& a : long_arcs(local)) {
    // Frozen geometry: weights beyond the original max_long_weight_ clamp
    // into the last bin (see patch_vertex's contract).
    auto bin = static_cast<std::uint32_t>(
        (static_cast<double>(std::max(a.w, delta_)) - delta_) / width);
    bin = std::min(bin, kHistogramBins - 1);
    ++bins[bin];
  }
}

void LocalEdgeView::patch_vertex(vid_t local, std::vector<Arc> arcs) {
  if (patch_idx_.empty()) patch_idx_.assign(num_local_, 0);

  Patch p;
  p.arcs = std::move(arcs);
  // Canonical layout, identical to from_arcs: shorts first in (to, w)
  // order, then longs in (w, to) order.
  const auto mid_it = std::partition(p.arcs.begin(), p.arcs.end(),
                                     [&](const Arc& a) { return a.w < delta_; });
  p.mid = static_cast<std::size_t>(mid_it - p.arcs.begin());
  std::sort(p.arcs.begin(), mid_it, [](const Arc& a, const Arc& b) {
    if (a.to != b.to) return a.to < b.to;
    return a.w < b.w;
  });
  std::sort(mid_it, p.arcs.end(), [](const Arc& a, const Arc& b) {
    if (a.w != b.w) return a.w < b.w;
    return a.to < b.to;
  });

  total_long_ -= long_degree(local);
  if (patch_idx_[local] == 0) {
    patches_.push_back(std::move(p));
    patch_idx_[local] = static_cast<std::uint32_t>(patches_.size());
  } else {
    patches_[patch_idx_[local] - 1] = std::move(p);
  }
  total_long_ += long_degree(local);
  rebuild_histogram_row(local);
}

double LocalEdgeView::bin_width() const {
  const double span = static_cast<double>(max_long_weight_) -
                      static_cast<double>(delta_) + 1.0;
  return std::max(1.0, span / kHistogramBins);
}

double LocalEdgeView::count_long_below_histogram(vid_t local,
                                                 dist_t bound) const {
  if (bound == kInfDist) return static_cast<double>(long_degree(local));
  if (bound <= delta_) return 0.0;
  const double width = bin_width();
  const double position =
      (static_cast<double>(bound) - static_cast<double>(delta_)) / width;
  const auto full_bins = static_cast<std::uint32_t>(position);
  const std::uint32_t* bins =
      hist_.data() + static_cast<std::size_t>(local) * kHistogramBins;
  double count = 0;
  for (std::uint32_t b = 0; b < std::min(full_bins, kHistogramBins); ++b) {
    count += bins[b];
  }
  if (full_bins < kHistogramBins) {
    count += bins[full_bins] * (position - full_bins);
  }
  return count;
}

std::uint64_t LocalEdgeView::count_long_below(vid_t local, dist_t bound) const {
  const auto range = long_arcs(local);
  if (bound == kInfDist) return range.size();
  const weight_t w_bound = bound > std::numeric_limits<weight_t>::max()
                               ? std::numeric_limits<weight_t>::max()
                               : static_cast<weight_t>(bound);
  // Long arcs are weight-sorted; find the first arc with w >= bound.
  const auto it = std::lower_bound(
      range.begin(), range.end(), w_bound,
      [](const Arc& a, weight_t b) { return a.w < b; });
  std::uint64_t count = static_cast<std::uint64_t>(it - range.begin());
  // bound may exceed weight_t range (huge d(v)); then every long arc counts.
  if (bound > std::numeric_limits<weight_t>::max()) count = range.size();
  return count;
}

std::vector<LocalEdgeView> build_all_views(const CsrGraph& g,
                                           const BlockPartition& part,
                                           std::uint32_t delta) {
  std::vector<LocalEdgeView> views(part.num_ranks());
  for (rank_t r = 0; r < part.num_ranks(); ++r) {
    views[r] = LocalEdgeView::build(g, part, r, delta);
  }
  return views;
}

}  // namespace parsssp
