// Per-rank view of the distributed graph.
//
// Vertices are block-distributed (runtime/partition.hpp). Each rank holds,
// for every vertex it owns, the vertex's full adjacency re-laid-out for the
// engine: short arcs (w < Delta) first, then long arcs (w >= Delta) sorted
// by ascending weight. The weight-sorted long range is what makes the pull
// request count computable by binary search (paper §III-C: "assuming that
// the edge list of each vertex is sorted according to weights, the quantity
// can be computed via a binary search").
//
// This is the paper's Delta-dependent preprocessing stage; Solver caches one
// view set per Delta and reuses it across roots.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "graph/csr.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

class LocalEdgeView {
 public:
  LocalEdgeView() = default;

  /// Builds rank `rank`'s view for bucket width `delta`. Only the owned
  /// slice of `g` is touched.
  static LocalEdgeView build(const CsrGraph& g, const BlockPartition& part,
                             rank_t rank, std::uint32_t delta);

  /// Builds a view directly from (local vertex, arc) pairs — the receive
  /// side of the distributed construction kernel (core/dist_builder.hpp),
  /// where no global CSR ever exists. The pairs may arrive in any order.
  static LocalEdgeView from_arcs(vid_t num_local,
                                 std::vector<std::pair<vid_t, Arc>> arcs,
                                 std::uint32_t delta);

  vid_t num_local() const { return num_local_; }
  std::uint32_t delta() const { return delta_; }

  std::size_t degree(vid_t local) const {
    if (patched(local)) return patch(local).arcs.size();
    return static_cast<std::size_t>(off_[local + 1] - off_[local]);
  }
  std::size_t short_degree(vid_t local) const {
    if (patched(local)) return patch(local).mid;
    return static_cast<std::size_t>(mid_[local] - off_[local]);
  }
  std::size_t long_degree(vid_t local) const {
    if (patched(local)) {
      const Patch& p = patch(local);
      return p.arcs.size() - p.mid;
    }
    return static_cast<std::size_t>(off_[local + 1] - mid_[local]);
  }

  /// Arcs with w < delta.
  std::span<const Arc> short_arcs(vid_t local) const {
    if (patched(local)) {
      const Patch& p = patch(local);
      return {p.arcs.data(), p.arcs.data() + p.mid};
    }
    return {arcs_.data() + off_[local], arcs_.data() + mid_[local]};
  }
  /// Arcs with w >= delta, sorted by ascending weight.
  std::span<const Arc> long_arcs(vid_t local) const {
    if (patched(local)) {
      const Patch& p = patch(local);
      return {p.arcs.data() + p.mid, p.arcs.data() + p.arcs.size()};
    }
    return {arcs_.data() + mid_[local], arcs_.data() + off_[local + 1]};
  }
  /// Every arc of the vertex (short range followed by long range).
  std::span<const Arc> all_arcs(vid_t local) const {
    if (patched(local)) {
      const Patch& p = patch(local);
      return {p.arcs.data(), p.arcs.data() + p.arcs.size()};
    }
    return {arcs_.data() + off_[local], arcs_.data() + off_[local + 1]};
  }

  /// Replaces one vertex's adjacency with `arcs` (any order; laid out here
  /// as short arcs in (to, w) order followed by weight-sorted long arcs,
  /// matching from_arcs). Used by the dynamic-graph layer to splice an
  /// update batch into cached views without rebuilding them. The vertex's
  /// histogram row is refilled under the *frozen* bin geometry (weights
  /// beyond the original max clamp into the last bin — the histogram is an
  /// estimator input, and a clamped bin keeps it a sound overcount for
  /// bounds below the original range while compact() restores exactness).
  void patch_vertex(vid_t local, std::vector<Arc> arcs);

  /// Number of vertices currently carrying a patch.
  std::size_t patched_vertices() const { return patches_.size(); }

  /// Number of long arcs with w < bound (exact, via binary search).
  std::uint64_t count_long_below(vid_t local, dist_t bound) const;

  /// Approximate count of long arcs with w < bound, using the per-vertex
  /// weight histogram (the paper's alternative to binary search: cheaper to
  /// maintain when edge lists are not weight-sorted). Full bins below the
  /// bound count exactly; the partial bin is linearly interpolated.
  double count_long_below_histogram(vid_t local, dist_t bound) const;

  /// Sum of long degrees over all owned vertices.
  std::uint64_t total_long_degree() const { return total_long_; }

  /// Number of histogram bins per vertex.
  static constexpr std::uint32_t kHistogramBins = 16;

 private:
  /// Replacement adjacency of one patched vertex: shorts [0, mid), longs
  /// [mid, size), each range in the canonical from_arcs() order.
  struct Patch {
    std::vector<Arc> arcs;
    std::size_t mid = 0;
  };

  bool patched(vid_t local) const {
    return !patch_idx_.empty() && patch_idx_[local] != 0;
  }
  const Patch& patch(vid_t local) const {
    return patches_[patch_idx_[local] - 1];
  }

  // Bin geometry over the long-weight range [delta_, max_long_weight_].
  double bin_width() const;
  // Fills hist_ / max_long_weight_ from the laid-out arcs.
  void build_histograms();
  // Refills one vertex's histogram row from its current long arcs, under
  // the frozen bin geometry.
  void rebuild_histogram_row(vid_t local);

  vid_t num_local_ = 0;
  std::uint32_t delta_ = 0;
  weight_t max_long_weight_ = 0;
  std::vector<std::uint64_t> off_;  // size num_local_+1
  std::vector<std::uint64_t> mid_;  // size num_local_: short/long boundary
  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> hist_;  // num_local_ * kHistogramBins
  std::uint64_t total_long_ = 0;
  /// patch_idx_[local] = 0 (unpatched) or 1 + index into patches_. Empty
  /// until the first patch_vertex call, so fresh views pay one emptiness
  /// test per accessor and no per-vertex storage.
  std::vector<std::uint32_t> patch_idx_;
  std::vector<Patch> patches_;
};

/// Builds the views of all ranks (each rank builds its own when called from
/// inside a machine job; this sequential helper exists for tests).
std::vector<LocalEdgeView> build_all_views(const CsrGraph& g,
                                           const BlockPartition& part,
                                           std::uint32_t delta);

}  // namespace parsssp
