// Distributed graph construction (Graph 500 "kernel 1") on the simulated
// machine. The generator's edge list is treated as distributed input: rank
// r reads the r-th contiguous chunk of edges, sends each endpoint's arc to
// the endpoint's owner over the mailbox transport, and every rank builds
// its LocalEdgeView purely from received arcs — no global CSR is ever
// materialized, exactly as on a real distributed-memory system.
//
// Solver uses the global-CSR path by default (the CSR is also needed by
// validation and examples); build_views_distributed exists to exercise and
// test the fully distributed pipeline and measure its communication volume.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dist_graph.hpp"
#include "graph/edge_list.hpp"
#include "runtime/machine.hpp"
#include "runtime/partition.hpp"

namespace parsssp {

/// Scatters `edges` by endpoint ownership and builds every rank's view for
/// bucket width `delta`. Equivalent to build_all_views() on the CSR of the
/// same list (asserted by tests), but executed as a machine job with real
/// message exchange.
std::vector<LocalEdgeView> build_views_distributed(const EdgeList& edges,
                                                   Machine& machine,
                                                   const BlockPartition& part,
                                                   std::uint32_t delta);

}  // namespace parsssp
