#include "core/multi_engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <string>

#include "core/buckets.hpp"
#include "obs/trace.hpp"
#include "runtime/send_buffer_pool.hpp"

namespace parsssp {
namespace {

// Wall-clock reads go through the obs/ helpers (PhaseTimer / TimedSection /
// ScopedSpan) so every accounted interval is a trace span — lint rule R8.

// Collective slots carry at most kSlotBytes (64) bytes, so per-slot vectors
// (next buckets, relax counts) are reduced in chunks of eight uint64s.
using Chunk = std::array<std::uint64_t, 8>;
inline constexpr std::size_t kChunkLen = std::tuple_size_v<Chunk>;

struct ChunkMinOp {
  Chunk operator()(const Chunk& a, const Chunk& b) const {
    Chunk r;
    for (std::size_t i = 0; i < kChunkLen; ++i) r[i] = std::min(a[i], b[i]);
    return r;
  }
};
struct ChunkSumOp {
  Chunk operator()(const Chunk& a, const Chunk& b) const {
    Chunk r;
    for (std::size_t i = 0; i < kChunkLen; ++i) r[i] = a[i] + b[i];
    return r;
  }
};

struct StepReduce {
  std::uint64_t max_work = 0;
  std::uint64_t max_bytes = 0;
  std::uint64_t sum_relax = 0;
};
struct StepReduceOp {
  StepReduce operator()(const StepReduce& a, const StepReduce& b) const {
    return {std::max(a.max_work, b.max_work),
            std::max(a.max_bytes, b.max_bytes), a.sum_relax + b.sum_relax};
  }
};

/// One rank's execution of a batched sweep. Mirrors DeltaEngine's epoch
/// structure with every per-vertex array widened by a slot dimension; see
/// multi_engine.hpp for what is intentionally not replicated (pull mode,
/// hybridization, intra-rank lanes).
class MultiEngine {
 public:
  MultiEngine(RankCtx& ctx, const MultiEngineShared& shared)
      : ctx_(ctx),
        sh_(shared),
        view_((*shared.views)[ctx.rank()]),
        begin_(shared.part.begin(ctx.rank())),
        nloc_(shared.part.count(ctx.rank())),
        cost_(shared.options->cost_model),
        k_(shared.roots.size()) {
    assert(k_ >= 1 && k_ <= kMaxMultiRoots);
    classify_ = sh_.options->edge_classification &&
                !sh_.options->bellman_ford_regime();
    ios_ = classify_ && sh_.options->ios;
    dist_.reserve(k_);
    for (std::size_t s = 0; s < k_; ++s) {
      dist_.emplace_back(sh_.dists[s]->data() + begin_, nloc_);
    }
    settled_.assign(k_, std::vector<char>(nloc_, 0));
    in_frontier_.assign(k_, std::vector<char>(nloc_, 0));
    member_stamp_.assign(k_, std::vector<std::uint64_t>(nloc_, 0));
    frontier_.resize(k_);
    members_.resize(k_);
    cur_.assign(k_, kInfBucket);
    after_.assign(k_, kBeforeFirst);
    slot_relax_.assign(k_, 0);
    // One emission lane: the multi-root engine batches across roots, not
    // across intra-rank lanes (multi_engine.hpp). The pool still buys it
    // buffer recycling and the zero-copy exchange.
    pool_.configure(1, ctx.num_ranks());

    if (sh_.options->trace != nullptr) {
      tlane_ = &sh_.options->trace->thread_lane(
          "rank" + std::to_string(ctx_.rank()));
    }
  }

  void run() {
    ctx_.set_trace(tlane_);
    double total_wall = 0;
    {
      PhaseTimer total(total_wall);
      ScopedSpan sweep(tlane_, SpanCat::kMultiSweep, k_);
      {
        ScopedSpan init(tlane_, SpanCat::kInit);
        for (std::size_t s = 0; s < k_; ++s) {
          std::fill(dist_[s].begin(), dist_[s].end(), kInfDist);
          const vid_t root = sh_.roots[s];
          if (sh_.part.owner(root) == ctx_.rank()) {
            dist_[s][root - begin_] = 0;
          }
        }
        ctx_.barrier();
      }

      while (advance_buckets()) {
        process_epoch();
      }
    }
    ctx_.set_trace(nullptr);
    counters_.wall_other_time_s = total_wall - counters_.wall_bucket_time_s;
    finalize();
  }

 private:
  dist_t bucket_end(std::uint64_t k) const {
    return (k + 1) * static_cast<dist_t>(sh_.options->delta) - 1;
  }

  /// Advances every slot to its next global bucket (elementwise-min chunked
  /// Allreduce over the per-slot local minima). Returns false when every
  /// slot is exhausted — batch termination.
  bool advance_buckets() {
    TimedSection sw(counters_.wall_bucket_time_s, tlane_,
                    SpanCat::kBucketScan);
    const std::uint32_t delta = sh_.options->delta;
    std::vector<std::uint64_t> local(k_);
    for (std::size_t s = 0; s < k_; ++s) {
      local[s] = cur_[s] == kInfBucket && after_[s] != kBeforeFirst
                     ? kInfBucket
                     : min_unsettled_bucket_above(dist_[s], settled_[s],
                                                  after_[s], delta);
    }
    bool any = false;
    for (std::size_t base = 0; base < k_; base += kChunkLen) {
      Chunk c;
      c.fill(kInfBucket);
      for (std::size_t i = 0; i < kChunkLen && base + i < k_; ++i) {
        c[i] = local[base + i];
      }
      const Chunk g = ctx_.allreduce(c, ChunkMinOp{});
      for (std::size_t i = 0; i < kChunkLen && base + i < k_; ++i) {
        cur_[base + i] = g[i];
        any = any || g[i] != kInfBucket;
      }
    }
    // One owned-slice scan per live slot plus the reduction round(s).
    model_bkt_ns_ += cost_.scan_cost(nloc_ * static_cast<std::uint64_t>(k_));
    return any;
  }

  /// Local slot-activity bitmask reduced with a single 64-bit OR — this is
  /// why kMaxMultiRoots is 64.
  std::uint64_t active_mask_globally() {
    TimedSection sw(counters_.wall_bucket_time_s, tlane_,
                    SpanCat::kBucketScan);
    std::uint64_t mask = 0;
    for (std::size_t s = 0; s < k_; ++s) {
      if (!frontier_[s].empty()) mask |= std::uint64_t{1} << s;
    }
    const std::uint64_t global = ctx_.allreduce(mask, OrOp{});
    model_bkt_ns_ += cost_.scan_cost(0);
    return global;
  }

  StepReduce account_step(std::uint64_t work, std::uint64_t bytes,
                          std::uint64_t relax) {
    const StepReduce red =
        ctx_.allreduce(StepReduce{work, bytes, relax}, StepReduceOp{});
    model_other_ns_ += cost_.step_cost(red.max_work, red.max_bytes);
    return red;
  }

  /// Readies the pool for a phase's emission. The reference path first
  /// drops all pooled capacity so the baseline pays the seed's per-phase
  /// allocations.
  void begin_emit() {
    if (sh_.options->data_path == DataPath::kReference) pool_.release();
    pool_.begin_phase();
  }

  /// Sender-side reduction (pooled path) + exchange; incoming batches land
  /// in pool_.incoming(). Returns the post-reduction message count (the
  /// byte basis for account_step).
  std::uint64_t exchange_phase(PhaseKind kind) {
    const SsspOptions& o = *sh_.options;
    if (o.data_path == DataPath::kReference) {
      const std::uint64_t posted = pool_.pending_messages();
      ctx_.exchange_merged(pool_, kind);
      return posted;
    }
    if (o.sender_reduction) {
      // Key = (destination local id, slot): slots are independent folds.
      reducer_.ensure(sh_.part.block_size() * k_);
      for (rank_t d = 0; d < ctx_.num_ranks(); ++d) {
        const vid_t dest_begin = sh_.part.begin(d);
        reducer_.begin_dest();
        reducer_.reduce(
            pool_.shard(0, d),
            [this, dest_begin](const MultiRelaxMsg& m) {
              return static_cast<std::size_t>(m.v - dest_begin) * k_ + m.slot;
            },
            [](const MultiRelaxMsg& m) { return m.nd; });
      }
    }
    const std::uint64_t posted = pool_.pending_messages();
    ctx_.exchange_pooled(pool_, kind);
    return posted;
  }

  std::uint64_t apply(bool to_frontier) {
    ScopedSpan span(tlane_, SpanCat::kApply);
    const std::uint32_t delta = sh_.options->delta;
    std::uint64_t applied = 0;
    for (const auto& batch : pool_.incoming()) {
      applied += batch.size();
      for (const MultiRelaxMsg& m : batch) {
        const std::size_t s = m.slot;
        const vid_t local = m.v - begin_;
        assert(s < k_ && local < nloc_);
        if (m.nd >= dist_[s][local]) continue;
        assert(!settled_[s][local] && "relaxation improved a settled vertex");
        dist_[s][local] = m.nd;
        if (to_frontier && !in_frontier_[s][local] &&
            bucket_of(m.nd, delta) == cur_[s]) {
          in_frontier_[s][local] = 1;
          frontier_[s].push_back(local);
        }
      }
    }
    return applied;
  }

  void process_epoch() {
    ++epoch_;
    {
      TimedSection sw(counters_.wall_bucket_time_s, tlane_,
                      SpanCat::kBucketScan);
      for (std::size_t s = 0; s < k_; ++s) {
        members_[s].clear();
        if (cur_[s] == kInfBucket) continue;
        frontier_[s] = collect_bucket_members(dist_[s], settled_[s], cur_[s],
                                              sh_.options->delta);
        for (const vid_t u : frontier_[s]) in_frontier_[s][u] = 1;
      }
      model_bkt_ns_ += cost_.scan_cost(nloc_ * static_cast<std::uint64_t>(k_));
    }
    ++epochs_;

    const bool bf_regime = sh_.options->bellman_ford_regime();
    std::uint64_t& relax_counter =
        bf_regime ? counters_.bf_relaxations : counters_.short_relaxations;

    // Short phases: every round pops every still-active slot's frontier and
    // ships ALL slots' relaxations in one exchange. A slot whose frontier
    // drained simply contributes nothing while its batchmates keep the
    // round alive.
    while (active_mask_globally() != 0) {
      ++phases_;
      ScopedSpan span(
          tlane_, bf_regime ? SpanCat::kBellmanFord : SpanCat::kShortPhase,
          epoch_);
      begin_emit();
      std::uint64_t emitted = 0;
      for (std::size_t s = 0; s < k_; ++s) {
        if (frontier_[s].empty()) continue;
        emitted += emit_short(s);
      }
      relax_counter += emitted;
      const std::uint64_t posted = exchange_phase(
          bf_regime ? PhaseKind::kBellmanFord : PhaseKind::kShortPhase);
      const std::uint64_t applied = apply(/*to_frontier=*/true);
      account_step(emitted + applied, posted * sizeof(MultiRelaxMsg),
                   emitted);
    }

    // One long push phase settles every active slot's bucket: long arcs of
    // its members plus, under IOS, their deferred outer-short arcs.
    if (classify_) {
      ++phases_;
      ScopedSpan span(tlane_, SpanCat::kLongPush, epoch_);
      begin_emit();
      std::uint64_t emitted = 0;
      for (std::size_t s = 0; s < k_; ++s) {
        if (cur_[s] == kInfBucket) continue;
        emitted += emit_long(s);
      }
      counters_.long_push_relaxations += emitted;
      const std::uint64_t posted = exchange_phase(PhaseKind::kLongPush);
      const std::uint64_t applied = apply(/*to_frontier=*/false);
      account_step(emitted + applied, posted * sizeof(MultiRelaxMsg),
                   emitted);
    }

    {
      // Settling is bucket bookkeeping; charge it to BktTime like the
      // single-root engine does.
      TimedSection sw(counters_.wall_bucket_time_s, tlane_,
                      SpanCat::kBucketScan);
      for (std::size_t s = 0; s < k_; ++s) {
        if (cur_[s] == kInfBucket) continue;
        for (const vid_t u : members_[s]) settled_[s][u] = 1;
        after_[s] = static_cast<std::int64_t>(cur_[s]);
      }
    }
  }

  std::uint64_t emit_short(std::size_t s) {
    const dist_t limit = classify_ ? bucket_end(cur_[s]) : 0;
    const auto slot = static_cast<std::uint32_t>(s);
    std::vector<vid_t> active = std::move(frontier_[s]);
    frontier_[s].clear();
    std::uint64_t emitted = 0;
    for (const vid_t u : active) {
      in_frontier_[s][u] = 0;
      if (member_stamp_[s][u] != epoch_) {
        member_stamp_[s][u] = epoch_;
        members_[s].push_back(u);
      }
      const dist_t du = dist_[s][u];
      const auto arcs = classify_ ? view_.short_arcs(u) : view_.all_arcs(u);
      for (const Arc& a : arcs) {
        const dist_t nd = du + a.w;
        if (ios_ && nd > limit) continue;
        pool_.shard(0, sh_.part.owner(a.to)).push_back({a.to, nd, slot});
        ++emitted;
      }
    }
    slot_relax_[s] += emitted;
    return emitted;
  }

  std::uint64_t emit_long(std::size_t s) {
    const dist_t limit = bucket_end(cur_[s]);
    const std::uint32_t delta = sh_.options->delta;
    const auto slot = static_cast<std::uint32_t>(s);
    std::uint64_t emitted = 0;
    for (const vid_t u : members_[s]) {
      const dist_t du = dist_[s][u];
      for (const Arc& a : view_.all_arcs(u)) {
        const dist_t nd = du + a.w;
        if (a.w < delta) {                  // short arc
          if (!ios_ || nd <= limit) continue;  // inner-short: already relaxed
        }
        pool_.shard(0, sh_.part.owner(a.to)).push_back({a.to, nd, slot});
        ++emitted;
      }
    }
    slot_relax_[s] += emitted;
    return emitted;
  }

  void finalize() {
    (*sh_.rank_counters)[ctx_.rank()] = counters_;

    // Exact per-root relaxation totals: chunked sum over the slot counters.
    std::vector<std::uint64_t> per_root(k_, 0);
    for (std::size_t base = 0; base < k_; base += kChunkLen) {
      Chunk c{};
      for (std::size_t i = 0; i < kChunkLen && base + i < k_; ++i) {
        c[i] = slot_relax_[base + i];
      }
      const Chunk g = ctx_.allreduce(c, ChunkSumOp{});
      for (std::size_t i = 0; i < kChunkLen && base + i < k_; ++i) {
        per_root[base + i] = g[i];
      }
    }

    const double wall =
        counters_.wall_bucket_time_s + counters_.wall_other_time_s;
    const double max_wall = ctx_.allreduce(wall, MaxOp{});

    if (ctx_.rank() == 0) {
      MultiStats& s = *sh_.stats;
      s.num_roots = k_;
      s.epochs = epochs_;
      s.phases = phases_;
      s.per_root_relaxations = std::move(per_root);
      s.relaxations = 0;
      for (const auto r : s.per_root_relaxations) s.relaxations += r;
      s.model_time_s = (model_bkt_ns_ + model_other_ns_) * 1e-9;
      s.wall_time_s = max_wall;
    }
  }

  RankCtx& ctx_;
  MultiEngineShared sh_;
  const LocalEdgeView& view_;
  vid_t begin_ = 0;
  vid_t nloc_ = 0;
  CostModel cost_;
  std::size_t k_;  ///< batch size (number of slots)
  bool classify_ = false;
  bool ios_ = false;

  // Slot-major per-vertex state: index [slot][local vertex].
  std::vector<std::span<dist_t>> dist_;
  std::vector<std::vector<char>> settled_;
  std::vector<std::vector<char>> in_frontier_;
  std::vector<std::vector<std::uint64_t>> member_stamp_;
  std::vector<std::vector<vid_t>> frontier_;
  std::vector<std::vector<vid_t>> members_;
  std::vector<std::uint64_t> cur_;           ///< current bucket per slot
  std::vector<std::int64_t> after_;          ///< last settled bucket per slot
  std::vector<std::uint64_t> slot_relax_;    ///< local relax count per slot

  // Relax data path: pooled send/receive buffers and the sender-side
  // reducer (keyed by destination local id x slot).
  SendBufferPool<MultiRelaxMsg> pool_;
  SenderReducer<dist_t> reducer_;

  RankCounters counters_;
  /// This rank's trace lane; null unless SsspOptions::trace is set.
  TraceLane* tlane_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t phases_ = 0;
  // Rank-identical accumulators (derived from collective reductions).
  double model_bkt_ns_ = 0;
  double model_other_ns_ = 0;
};

}  // namespace

void run_multi_sssp_job(RankCtx& ctx, const MultiEngineShared& shared) {
  MultiEngine engine(ctx, shared);
  engine.run();
}

}  // namespace parsssp
