#include "core/buckets.hpp"

namespace parsssp {

std::vector<vid_t> collect_bucket_members(std::span<const dist_t> dist_local,
                                          std::span<const char> settled,
                                          std::uint64_t k,
                                          std::uint32_t delta) {
  std::vector<vid_t> members;
  for (vid_t local = 0; local < dist_local.size(); ++local) {
    if (!settled[local] && bucket_of(dist_local[local], delta) == k) {
      members.push_back(local);
    }
  }
  return members;
}

std::uint64_t min_unsettled_bucket_above(std::span<const dist_t> dist_local,
                                         std::span<const char> settled,
                                         std::int64_t after,
                                         std::uint32_t delta) {
  std::uint64_t best = kInfBucket;
  for (vid_t local = 0; local < dist_local.size(); ++local) {
    if (settled[local] || dist_local[local] == kInfDist) continue;
    const std::uint64_t b = bucket_of(dist_local[local], delta);
    if (static_cast<std::int64_t>(b) > after && b < best) best = b;
  }
  return best;
}

std::vector<vid_t> collect_unsettled_reached(
    std::span<const dist_t> dist_local, std::span<const char> settled) {
  std::vector<vid_t> out;
  for (vid_t local = 0; local < dist_local.size(); ++local) {
    if (!settled[local] && dist_local[local] != kInfDist) {
      out.push_back(local);
    }
  }
  return out;
}

}  // namespace parsssp
