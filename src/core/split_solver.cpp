#include "core/split_solver.hpp"

#include <cmath>

namespace parsssp {

SplitSolver::SplitSolver(const EdgeList& list, SplitSolverConfig config) {
  const CsrGraph original = CsrGraph::from_edges(list);
  threshold_ = config.degree_threshold;
  if (threshold_ == 0) {
    const double mean =
        original.num_vertices() == 0
            ? 0.0
            : static_cast<double>(original.num_arcs()) /
                  static_cast<double>(original.num_vertices());
    threshold_ = static_cast<std::size_t>(std::llround(8.0 * mean)) + 1;
  }

  SplitConfig sc;
  sc.degree_threshold = threshold_;
  sc.scatter_ids = true;
  sc.seed = config.scatter_seed;
  split_ = split_heavy_vertices(list, original, sc);
  transformed_ = CsrGraph::from_edges(split_.graph);

  // Reverse mapping; proxies fold back onto their hub. Proxy ids are those
  // transformed ids no original vertex maps to; recover hubs by walking the
  // zero-weight spokes (each proxy has exactly one zero-weight edge to its
  // hub by construction, and hubs never connect to hubs with weight zero).
  new_to_orig_.assign(transformed_.num_vertices(), kInvalidVid);
  for (vid_t v = 0; v < split_.num_original; ++v) {
    new_to_orig_[split_.orig_to_new[v]] = v;
  }
  for (vid_t t = 0; t < transformed_.num_vertices(); ++t) {
    if (new_to_orig_[t] != kInvalidVid) continue;  // an original vertex
    for (const Arc& a : transformed_.neighbors(t)) {
      if (a.w == 0 && new_to_orig_[a.to] != kInvalidVid) {
        new_to_orig_[t] = new_to_orig_[a.to];
        break;
      }
    }
  }

  solver_ = std::make_unique<Solver>(transformed_, config.solver);
}

SsspResult SplitSolver::solve(vid_t original_root,
                              const SsspOptions& options) {
  const vid_t root_t = split_.orig_to_new.at(original_root);
  SsspResult inner = solver_->solve(root_t, options);

  SsspResult out;
  out.stats = std::move(inner.stats);
  out.dist = split_.project_distances(inner.dist);

  if (options.track_parents) {
    out.parent.assign(split_.num_original, kInvalidVid);
    for (vid_t v = 0; v < split_.num_original; ++v) {
      if (v == original_root) {
        out.parent[v] = v;
        continue;
      }
      if (out.dist[v] == kInfDist) continue;
      // Walk out of this vertex's own proxy chain (a hub's transformed
      // parent is one of its proxies, which folds back onto the hub).
      vid_t p = inner.parent[split_.orig_to_new[v]];
      while (p != kInvalidVid && new_to_orig_[p] == v) {
        p = inner.parent[p];
      }
      out.parent[v] = p == kInvalidVid ? kInvalidVid : new_to_orig_[p];
    }
  }
  return out;
}

}  // namespace parsssp
