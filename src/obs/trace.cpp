#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace parsssp {

std::string_view span_cat_name(SpanCat cat) {
  switch (cat) {
    case SpanCat::kBucketScan: return "bucket_scan";
    case SpanCat::kInit: return "init";
    case SpanCat::kShortPhase: return "short_phase";
    case SpanCat::kLongPush: return "long_push";
    case SpanCat::kLongPull: return "long_pull";
    case SpanCat::kDecision: return "decision";
    case SpanCat::kBellmanFord: return "bellman_ford";
    case SpanCat::kSolve: return "solve";
    case SpanCat::kMultiSweep: return "multi_sweep";
    case SpanCat::kExchange: return "exchange";
    case SpanCat::kApply: return "apply";
    case SpanCat::kAdmission: return "admission";
    case SpanCat::kBatchClose: return "batch_close";
    case SpanCat::kCacheLookup: return "cache_lookup";
    case SpanCat::kServeSolve: return "serve_solve";
    case SpanCat::kRepairFrontier: return "repair_frontier";
    case SpanCat::kRepairSweep: return "repair_sweep";
    case SpanCat::kUpdateApply: return "update_apply";
    case SpanCat::kSnapshotPublish: return "snapshot_publish";
    case SpanCat::kSnapshotRetire: return "snapshot_retire";
    case SpanCat::kAsyncDrain: return "async_drain";
    case SpanCat::kAsyncRelax: return "async_relax";
    case SpanCat::kQuiescence: return "quiescence";
    case SpanCat::kCount: break;
  }
  return "unknown";
}

namespace {

/// Trace-event "cat" groups, for Perfetto's filtering UI.
std::string_view span_group(SpanCat cat) {
  switch (cat) {
    case SpanCat::kBucketScan:
      return "bucket";
    case SpanCat::kInit:
    case SpanCat::kShortPhase:
    case SpanCat::kLongPush:
    case SpanCat::kLongPull:
    case SpanCat::kDecision:
    case SpanCat::kBellmanFord:
      return "phase";
    case SpanCat::kSolve:
    case SpanCat::kMultiSweep:
      return "solve";
    case SpanCat::kExchange:
    case SpanCat::kApply:
      return "datapath";
    case SpanCat::kRepairFrontier:
    case SpanCat::kRepairSweep:
    case SpanCat::kUpdateApply:
      return "update";
    case SpanCat::kSnapshotPublish:
    case SpanCat::kSnapshotRetire:
      return "snapshot";
    case SpanCat::kAsyncDrain:
    case SpanCat::kAsyncRelax:
    case SpanCat::kQuiescence:
      return "async";
    default:
      return "serve";
  }
}

/// The engine categories whose spans tile a solve disjointly.
bool is_top_level_engine(SpanCat cat) {
  switch (cat) {
    case SpanCat::kBucketScan:
    case SpanCat::kInit:
    case SpanCat::kShortPhase:
    case SpanCat::kLongPush:
    case SpanCat::kLongPull:
    case SpanCat::kDecision:
    case SpanCat::kBellmanFord:
      return true;
    default:
      return false;
  }
}

}  // namespace

TraceLane& TraceRecorder::thread_lane(std::string_view name_hint) {
  const auto tid = std::this_thread::get_id();
  MutexLock lock(mutex_);
  const auto it = by_thread_.find(tid);
  if (it != by_thread_.end()) return *it->second;
  lanes_.emplace_back(std::string(name_hint), capacity_, epoch_);
  TraceLane* lane = &lanes_.back();
  by_thread_.emplace(tid, lane);
  return *lane;
}

std::vector<TraceRecorder::LaneView> TraceRecorder::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<LaneView> out;
  out.reserve(lanes_.size());
  for (const TraceLane& lane : lanes_) {
    out.push_back(LaneView{lane.name(), lane.spans(), lane.dropped()});
  }
  return out;
}

std::uint64_t TraceRecorder::total_dropped() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const TraceLane& lane : lanes_) total += lane.dropped();
  return total;
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  for (TraceLane& lane : lanes_) {
    lane.size_.store(0, std::memory_order_release);
    lane.dropped_.store(0, std::memory_order_relaxed);
  }
}

void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder) {
  const auto lanes = recorder.snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (std::size_t tid = 0; tid < lanes.size(); ++tid) {
    // Thread-name metadata event, so Perfetto labels the lane rows.
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << lanes[tid].name << "\"}}";
    for (const TraceSpan& s : lanes[tid].spans) {
      out << ",{\"name\":\"" << span_cat_name(s.cat) << "\",\"cat\":\""
          << span_group(s.cat) << "\",\"ph\":\"X\",\"ts\":";
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(s.start_ns) * 1e-3);
      out << buf << ",\"dur\":";
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(s.dur_ns) * 1e-3);
      out << buf << ",\"pid\":0,\"tid\":" << tid;
      if (s.arg != kNoSpanArg) out << ",\"args\":{\"arg\":" << s.arg << "}";
      out << "}";
    }
  }
  out << "]}\n";
}

TraceCheckReport check_engine_accounting(const TraceRecorder& recorder,
                                         const SsspStats& stats,
                                         double tolerance,
                                         double abs_slack_s) {
  TraceCheckReport rep;
  rep.reported_wall_s = stats.wall_bucket_time_s + stats.wall_other_time_s;
  rep.reported_bucket_s = stats.wall_bucket_time_s;

  std::size_t engine_lanes = 0;
  double worst_cover = 0;  // worst |lane top-level sum - lane solve span|
  for (const auto& lane : recorder.snapshot()) {
    rep.dropped += lane.dropped;
    double solve_s = 0;
    double top_s = 0;
    double bucket_s = 0;
    bool has_solve = false;
    for (const TraceSpan& s : lane.spans) {
      const double dur = static_cast<double>(s.dur_ns) * 1e-9;
      if (s.cat == SpanCat::kSolve) {
        has_solve = true;
        solve_s += dur;
      } else if (is_top_level_engine(s.cat)) {
        top_s += dur;
        if (s.cat == SpanCat::kBucketScan) bucket_s += dur;
      }
    }
    if (!has_solve) continue;  // not an engine lane (serve dispatcher, ...)
    ++engine_lanes;
    worst_cover = std::max(worst_cover, std::abs(top_s - solve_s));
    rep.span_wall_s = std::max(rep.span_wall_s, top_s);
    rep.span_bucket_s = std::max(rep.span_bucket_s, bucket_s);
  }

  const double slack = tolerance * rep.reported_wall_s + abs_slack_s;
  const bool wall_ok = std::abs(rep.span_wall_s - rep.reported_wall_s) <= slack;
  const bool bucket_ok =
      std::abs(rep.span_bucket_s - rep.reported_bucket_s) <= slack;
  const bool cover_ok = worst_cover <= slack;
  rep.ok = engine_lanes > 0 && rep.dropped == 0 && wall_ok && bucket_ok &&
           cover_ok;

  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%s: %zu engine lane(s), span sum %.6fs vs reported %.6fs, "
      "bucket spans %.6fs vs BktTime %.6fs, worst cover gap %.6fs, "
      "%llu dropped (slack %.6fs)",
      rep.ok ? "OK" : "FAIL", engine_lanes, rep.span_wall_s,
      rep.reported_wall_s, rep.span_bucket_s, rep.reported_bucket_s,
      worst_cover, static_cast<unsigned long long>(rep.dropped), slack);
  rep.detail = buf;
  return rep;
}

}  // namespace parsssp
