#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace parsssp {

Histogram::Histogram(Config config)
    : config_(config),
      inv_log_growth_(1.0 / std::log2(config.growth)),
      buckets_(config.buckets) {}

std::size_t Histogram::bucket_index(double v) const {
  if (!(v > config_.base)) return 0;  // also catches NaN and non-positives
  const double i = std::log2(v / config_.base) * inv_log_growth_;
  const auto idx = static_cast<std::size_t>(i);
  return std::min(idx, buckets_.size() - 1);
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.config = config_;
  snap.buckets.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  // Nearest rank over the bucket counts — the same ceil(p*n) convention as
  // percentile_stats(), applied to bucket cumulative counts.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      const double lo = config.base * std::pow(config.growth,
                                               static_cast<double>(i));
      return lo * std::sqrt(config.growth);  // geometric bucket midpoint
    }
  }
  return config.base;  // unreachable when counts are consistent
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  for (auto& c : counters_) {
    if (c.name == name) return c.instrument;
  }
  for (const auto& g : gauges_) {
    if (g.name == name) {
      throw std::logic_error("MetricsRegistry: " + std::string(name) +
                             " already registered as a gauge");
    }
  }
  for (const auto& h : histograms_) {
    if (h.name == name) {
      throw std::logic_error("MetricsRegistry: " + std::string(name) +
                             " already registered as a histogram");
    }
  }
  counters_.emplace_back(std::string(name));
  return counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  for (auto& g : gauges_) {
    if (g.name == name) return g.instrument;
  }
  for (const auto& c : counters_) {
    if (c.name == name) {
      throw std::logic_error("MetricsRegistry: " + std::string(name) +
                             " already registered as a counter");
    }
  }
  for (const auto& h : histograms_) {
    if (h.name == name) {
      throw std::logic_error("MetricsRegistry: " + std::string(name) +
                             " already registered as a histogram");
    }
  }
  gauges_.emplace_back(std::string(name));
  return gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Histogram::Config config) {
  MutexLock lock(mutex_);
  for (auto& h : histograms_) {
    if (h.name == name) return h.instrument;
  }
  for (const auto& c : counters_) {
    if (c.name == name) {
      throw std::logic_error("MetricsRegistry: " + std::string(name) +
                             " already registered as a counter");
    }
  }
  for (const auto& g : gauges_) {
    if (g.name == name) {
      throw std::logic_error("MetricsRegistry: " + std::string(name) +
                             " already registered as a gauge");
    }
  }
  histograms_.emplace_back(std::string(name), config);
  return histograms_.back().instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  MutexLock lock(mutex_);
  for (const auto& c : counters_) {
    out.counters.push_back({c.name, c.instrument.value()});
  }
  for (const auto& g : gauges_) {
    out.gauges.push_back({g.name, g.instrument.value()});
  }
  for (const auto& h : histograms_) {
    const Histogram::Snapshot snap = h.instrument.snapshot();
    out.histograms.push_back({h.name, snap.count, snap.mean(),
                              snap.percentile(0.50), snap.percentile(0.95),
                              snap.percentile(0.99), snap.max});
  }
  return out;
}

}  // namespace parsssp
