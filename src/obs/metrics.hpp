// Named counters, gauges and histograms for the serving layer
// (docs/OBSERVABILITY.md).
//
// All instruments are lock-free atomics once created: recording from the
// dispatcher and from client threads never takes a lock, and snapshot()
// can run concurrently with queries in flight (the TSan lane covers this
// in tests/test_runtime_races.cpp). Creation (MetricsRegistry::counter /
// gauge / histogram) takes a mutex and returns a stable reference —
// instruments live in deques and are never moved or destroyed before the
// registry.
//
// Histograms use fixed geometric (log-scale) buckets: recording is one
// log2 + two relaxed fetch_adds, snapshots never sort stored samples
// (there are none), and percentile estimates carry the bucket's relative
// resolution (`growth`, ~19% by default). The serving reports pair them
// with exact nearest-rank percentiles from percentile_stats() so the
// approximation is continuously cross-checked.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace parsssp {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log-scale histogram over (0, inf). Bucket i covers
/// [base * growth^i, base * growth^(i+1)); values below base clamp into
/// bucket 0, values beyond the top into the last bucket.
class Histogram {
 public:
  struct Config {
    double base = 1e-6;   ///< lower edge of bucket 0 (1 microsecond)
    double growth = std::pow(2.0, 0.25);  ///< ~19% relative resolution
    std::size_t buckets = 128;            ///< covers 1us .. ~4900s
  };

  // A `Config{}` default argument is not usable here (nested-class default
  // member initializers are unavailable until Histogram is complete), so
  // the default configuration comes via a delegating constructor instead.
  Histogram() : Histogram(Config{}) {}
  explicit Histogram(Config config);

  void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    double max = 0;
    Config config;
    std::vector<std::uint64_t> buckets;

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Nearest-rank percentile over the bucket counts; returns the
    /// geometric midpoint of the selected bucket (exact to within one
    /// `growth` factor). p in (0, 1]; 0 count yields 0.
    double percentile(double p) const;
  };
  Snapshot snapshot() const;

 private:
  std::size_t bucket_index(double v) const;

  Config config_;
  double inv_log_growth_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Flattened registry state, for JSON export (bench_util/stats_io).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double max = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  /// Returns the named instrument, creating it on first use. References
  /// stay valid for the registry's lifetime. Requesting the same name as
  /// two different kinds throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       Histogram::Config config = Histogram::Config{});

  MetricsSnapshot snapshot() const;

 private:
  /// Instruments hold atomics (immovable), so they are constructed in
  /// place inside their deque node and never relocated.
  template <typename T>
  struct Named {
    template <typename... Args>
    explicit Named(std::string n, Args&&... args)
        : name(std::move(n)), instrument(std::forward<Args>(args)...) {}
    std::string name;
    T instrument;
  };

  mutable Mutex mutex_;
  std::deque<Named<Counter>> counters_ MPS_GUARDED_BY(mutex_);
  std::deque<Named<Gauge>> gauges_ MPS_GUARDED_BY(mutex_);
  std::deque<Named<Histogram>> histograms_ MPS_GUARDED_BY(mutex_);
};

}  // namespace parsssp
