// Low-overhead structured tracing for the engines, the runtime data path
// and the serving layer (docs/OBSERVABILITY.md).
//
// A TraceRecorder owns one TraceLane per recording thread (rank threads,
// the serve dispatcher). Each lane is a cache-line-aligned, preallocated
// ring of TraceSpan slots with a single writer — recording a span is two
// steady_clock reads plus one slot store, no allocation, no lock. When a
// lane fills up, further spans are counted in `dropped()` instead of
// overwriting history (the accounting self-check needs complete coverage,
// so silent wrap-around would be worse than visible loss).
//
// Tracing is opt-in per solve: engines record through a TraceLane* that is
// null unless SsspOptions::trace points at a recorder, so the untraced hot
// path pays exactly one pointer test per span site and zero extra clock
// reads (the accounting timers below read the clock either way, exactly as
// the engines always have).
//
// Readers (export, self-check, metrics snapshots) may run concurrently
// with writers: the lane size is published with release stores and spans
// are never overwritten, so an acquire load of the size yields a
// consistent prefix.
//
// Lint rule R8 (scripts/lint.py): engine hot paths must not call
// steady_clock::now() directly — all wall-clock reads go through the
// helpers in this header (PhaseTimer, TimedSection, ScopedSpan), so every
// timed interval is visible to the trace and the sum-to-wall self-check.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/instrumentation.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace parsssp {

/// Span taxonomy. "Top-level" engine categories tile a rank's solve span
/// disjointly (the self-check sums them); kExchange/kApply nest inside
/// phases and are excluded from the sum; serve categories live on the
/// dispatcher lane of a QueryEngine.
enum class SpanCat : std::uint8_t {
  // Engine top-level: bucket bookkeeping (the BktTime side) ...
  kBucketScan,  ///< frontier collection, bucket advance, termination checks
  // ... and phase bodies (the OtherTime side).
  kInit,         ///< distance fill + root seed + starting barrier
  kShortPhase,   ///< one short-edge relaxation round of bucket k
  kLongPush,     ///< the long push phase of bucket k
  kLongPull,     ///< the long pull (request/response) phase of bucket k
  kDecision,     ///< the push/pull decision heuristic of bucket k
  kBellmanFord,  ///< one Bellman-Ford round (tail or Delta=inf regime)
  // Envelopes (excluded from the component sum).
  kSolve,       ///< one rank's whole single-root solve
  kMultiSweep,  ///< one rank's whole multi-root sweep
  // Nested inside phases (runtime data path; excluded from the sum).
  kExchange,  ///< RankCtx::exchange / exchange_pooled
  kApply,     ///< applying incoming relax batches
  // Serve layer (dispatcher lane).
  kAdmission,    ///< queue wait: submit() to batch close, one span per query
  kBatchClose,   ///< popping + closing one batch off the admission queue
  kCacheLookup,  ///< the batch's result-cache pass
  kServeSolve,   ///< the machine computation of a batch's unique roots
  // Dynamic-graph update subsystem (docs/DYNAMIC.md).
  kRepairFrontier,  ///< planning: suspects, downward closure, seed harvest
  kRepairSweep,     ///< the seeded Delta-stepping sweep of one repair
  kUpdateApply,     ///< serving: applying one edge batch + view patching
  // MVCC snapshot layer (docs/SNAPSHOTS.md; publish-thread lane).
  kSnapshotPublish,  ///< installing a new head + reader-gate drain
  kSnapshotRetire,   ///< one snapshot's limbo: supersession to reclamation
  // Asynchronous engine (docs/ASYNC.md; rank lanes, no tiling contract —
  // the barrier-free loop has no phase structure to sum against).
  kAsyncDrain,   ///< draining + applying one inbox swap
  kAsyncRelax,   ///< relaxing one popped priority batch + flushing sends
  kQuiescence,   ///< token handling / idle parking between work
  kCount
};

std::string_view span_cat_name(SpanCat cat);

/// Value for TraceSpan::arg when a span has no argument.
inline constexpr std::uint64_t kNoSpanArg = ~std::uint64_t{0};

struct TraceSpan {
  std::int64_t start_ns = 0;  ///< steady_clock, relative to recorder epoch
  std::int64_t dur_ns = 0;
  std::uint64_t arg = kNoSpanArg;  ///< bucket / batch size / rank, by cat
  SpanCat cat = SpanCat::kCount;
};

/// One thread's span ring. Single writer (the owning thread); any thread
/// may read a consistent prefix concurrently.
class alignas(kCacheLineBytes) TraceLane {
 public:
  /// Steady-clock nanoseconds since the recorder's epoch.
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  std::int64_t to_ns(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
        .count();
  }

  /// Records one span; drops (and counts) if the ring is full. Owner
  /// thread only.
  void record(SpanCat cat, std::int64_t start_ns, std::int64_t dur_ns,
              std::uint64_t arg = kNoSpanArg) {
    const std::uint64_t n = size_.load(std::memory_order_relaxed);
    if (n >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[n] = TraceSpan{start_ns, dur_ns, arg, cat};
    size_.store(n + 1, std::memory_order_release);
  }

  const std::string& name() const { return name_; }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Copies the published span prefix (safe concurrently with the writer).
  std::vector<TraceSpan> spans() const {
    const std::uint64_t n = size_.load(std::memory_order_acquire);
    return std::vector<TraceSpan>(slots_.begin(), slots_.begin() + n);
  }

  /// Constructed by TraceRecorder::thread_lane (public for emplacement).
  TraceLane(std::string name, std::size_t capacity,
            std::chrono::steady_clock::time_point epoch)
      : epoch_(epoch), name_(std::move(name)) {
    slots_.resize(capacity);
  }
  TraceLane(const TraceLane&) = delete;
  TraceLane& operator=(const TraceLane&) = delete;

 private:
  friend class TraceRecorder;

  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> slots_;  ///< preallocated; never resized after ctor
  std::atomic<std::uint64_t> size_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::string name_;
};

/// Owns the lanes of one tracing session. Lane registration (first span
/// site per thread) takes a mutex; recording never does.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity_per_lane = 1u << 16)
      : epoch_(std::chrono::steady_clock::now()),
        capacity_(capacity_per_lane) {}

  /// The calling thread's lane, registered on first use. `name_hint` names
  /// the lane in the export (first registration wins); stable across calls
  /// from the same thread, so engines re-running on a session's rank
  /// threads reuse their lanes instead of growing the recorder.
  TraceLane& thread_lane(std::string_view name_hint);

  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  struct LaneView {
    std::string name;
    std::vector<TraceSpan> spans;
    std::uint64_t dropped = 0;
  };
  /// Consistent per-lane prefixes; safe concurrently with writers.
  std::vector<LaneView> snapshot() const;

  std::uint64_t total_dropped() const;

  /// Resets every lane to empty. Writers must be quiescent (between
  /// solves); lane registrations are kept.
  void clear();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable Mutex mutex_;
  std::deque<TraceLane> lanes_ MPS_GUARDED_BY(mutex_);
  std::unordered_map<std::thread::id, TraceLane*> by_thread_
      MPS_GUARDED_BY(mutex_);
};

/// RAII span over a scope. A null lane skips the clock reads entirely.
class ScopedSpan {
 public:
  explicit ScopedSpan(TraceLane* lane, SpanCat cat,
                      std::uint64_t arg = kNoSpanArg)
      : lane_(lane), cat_(cat), arg_(arg) {
    if (lane_ != nullptr) start_ns_ = lane_->now_ns();
  }
  ~ScopedSpan() {
    if (lane_ == nullptr) return;
    lane_->record(cat_, start_ns_, lane_->now_ns() - start_ns_, arg_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceLane* lane_;
  SpanCat cat_;
  std::uint64_t arg_;
  std::int64_t start_ns_ = 0;
};

/// RAII wall-clock accumulator (the engines' phase timer). Always reads
/// the clock — this is the accounting path, active with tracing off.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& acc)
      : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0_)
                .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& acc_;
  std::chrono::steady_clock::time_point t0_;
};

/// PhaseTimer + ScopedSpan fused over one clock pair: accumulates the
/// interval into `acc` and, when `lane` is non-null, records it as a span.
/// The traced and untraced runs therefore account identical intervals.
class TimedSection {
 public:
  TimedSection(double& acc, TraceLane* lane, SpanCat cat,
               std::uint64_t arg = kNoSpanArg)
      : acc_(acc),
        lane_(lane),
        cat_(cat),
        arg_(arg),
        t0_(std::chrono::steady_clock::now()) {}
  ~TimedSection() {
    const auto t1 = std::chrono::steady_clock::now();
    acc_ += std::chrono::duration<double>(t1 - t0_).count();
    if (lane_ != nullptr) {
      const std::int64_t s = lane_->to_ns(t0_);
      lane_->record(cat_, s, lane_->to_ns(t1) - s, arg_);
    }
  }
  TimedSection(const TimedSection&) = delete;
  TimedSection& operator=(const TimedSection&) = delete;

 private:
  double& acc_;
  TraceLane* lane_;
  SpanCat cat_;
  std::uint64_t arg_;
  std::chrono::steady_clock::time_point t0_;
};

/// Writes the recorder's spans as Chrome trace-event JSON ("traceEvents"
/// array of complete "X" events), loadable by ui.perfetto.dev and
/// chrome://tracing. One tid per lane; ts/dur in microseconds.
void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder);

/// Accounting self-check over a traced single-root solve: on every lane
/// that carries a kSolve span, the top-level engine spans must tile the
/// solve — their durations sum to the solve span within tolerance — and
/// the kBucketScan subset must match the reported BktTime the same way
/// (max over ranks on both sides, mirroring SsspStats aggregation).
/// `abs_slack_s` absorbs per-span clock quantization on very fast solves.
struct TraceCheckReport {
  bool ok = false;
  double reported_wall_s = 0;    ///< stats: BktTime + OtherTime
  double reported_bucket_s = 0;  ///< stats: BktTime
  double span_wall_s = 0;        ///< max over lanes: top-level span sum
  double span_bucket_s = 0;      ///< max over lanes: kBucketScan span sum
  std::uint64_t dropped = 0;
  std::string detail;  ///< human-readable verdict (one line)
};
TraceCheckReport check_engine_accounting(const TraceRecorder& recorder,
                                         const SsspStats& stats,
                                         double tolerance = 0.05,
                                         double abs_slack_s = 500e-6);

}  // namespace parsssp
