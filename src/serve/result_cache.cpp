#include "serve/result_cache.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace parsssp {

namespace {

/// Canonical value for signature printing. Folds -0.0 onto +0.0 (they
/// compare equal and configure identical runs, but print as distinct
/// hexfloats, which used to split the cache key space). Non-finite values
/// configure nothing meaningful and would make every lookup of that option
/// set a miss, so they are rejected at cache admission.
double canonical(double v, const char* field) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument(std::string("options_signature: ") + field +
                                " must be finite");
  }
  return v == 0.0 ? 0.0 : v;
}

}  // namespace

std::string options_signature(const SsspOptions& options) {
  std::ostringstream out;
  // Hexfloat keeps double-valued fields exact: two option sets differing in
  // the 17th digit of load_lambda are different configurations.
  out << std::hexfloat;
  out << "delta=" << options.delta
      << ";algo=" << static_cast<int>(options.algo)
      << ";cls=" << options.edge_classification
      << ";ios=" << options.ios
      << ";prune=" << options.pruning
      << ";mode=" << static_cast<int>(options.prune_mode)
      << ";forced=";
  for (const bool pull : options.forced_pull) out << (pull ? '1' : '0');
  out << ";est=" << static_cast<int>(options.estimator)
      << ";lambda=" << canonical(options.load_lambda, "load_lambda")
      << ";tau=" << canonical(options.hybrid_tau, "hybrid_tau")
      << ";heavy=" << options.heavy_degree_threshold
      << ";rho=" << options.rho
      << ";rk=" << options.radius_k
      << ";parents=" << options.track_parents
      << ";canon=" << options.canonical_parents
      << ";dp=" << static_cast<int>(options.data_path)
      << ";sred=" << options.sender_reduction
      << ";papply=" << options.parallel_apply
      << ";phasedet=" << options.collect_phase_details
      << ";bucketdet=" << options.collect_bucket_details
      << ";cm=" << canonical(options.cost_model.t_step_ns, "t_step_ns") << ','
      << canonical(options.cost_model.t_relax_ns, "t_relax_ns") << ','
      << canonical(options.cost_model.t_byte_ns, "t_byte_ns") << ','
      << canonical(options.cost_model.t_scan_ns, "t_scan_ns");
  return std::move(out).str();
}

std::shared_ptr<const QueryAnswer> ResultCache::lookup(
    vid_t root, const std::string& signature, std::uint64_t version) {
  MutexLock lock(mutex_);
  const auto it = index_.find(Key{root, signature});
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  if (it->second->version != version) {
    // A stale answer must never be served; drop it eagerly so the slot is
    // free for the recomputation this miss will trigger.
    lru_.erase(it->second);
    index_.erase(it);
    ++counters_.version_misses;
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->answer;
}

void ResultCache::insert(vid_t root, const std::string& signature,
                         std::shared_ptr<const QueryAnswer> answer,
                         std::uint64_t version) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  Key key{root, signature};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->answer = std::move(answer);
    it->second->version = version;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(answer), version});
  index_.emplace(std::move(key), lru_.begin());
  ++counters_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

std::size_t ResultCache::invalidate_all() {
  MutexLock lock(mutex_);
  const std::size_t dropped = lru_.size();
  index_.clear();
  lru_.clear();
  counters_.invalidations += dropped;
  return dropped;
}

std::size_t ResultCache::clear() {
  MutexLock lock(mutex_);
  const std::size_t dropped = lru_.size();
  index_.clear();
  lru_.clear();
  counters_.clears += dropped;
  return dropped;
}

std::size_t ResultCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

ResultCache::Counters ResultCache::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

}  // namespace parsssp
