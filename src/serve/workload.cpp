#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "graph/rmat.hpp"

namespace parsssp {
namespace {

/// Uniform double in [0, 1) from the deterministic hash stream.
double uniform01(std::uint64_t seed, std::uint64_t index) {
  return static_cast<double>(rmat_hash(seed, index) >> 11) * 0x1.0p-53;
}

// Disjoint hash streams for the independent sampling decisions.
constexpr std::uint64_t kCandidateStream = 0x63616e6469646174ull;
constexpr std::uint64_t kPickStream = 0x7069636b7069636bull;
constexpr std::uint64_t kGapStream = 0x6761706761706761ull;

}  // namespace

std::vector<QueryEvent> make_open_loop_stream(const WorkloadConfig& config,
                                              vid_t num_vertices) {
  std::vector<QueryEvent> stream;
  if (config.num_queries == 0 || num_vertices == 0) return stream;
  stream.reserve(config.num_queries);

  // Candidate root set: `num_roots_domain` deterministic draws from the
  // vertex range. Index order doubles as the Zipf popularity rank (the
  // first candidate is the hottest).
  const std::size_t domain = std::max<std::size_t>(config.num_roots_domain, 1);
  std::vector<vid_t> candidates(domain);
  for (std::size_t i = 0; i < domain; ++i) {
    candidates[i] = static_cast<vid_t>(
        rmat_hash(config.seed ^ kCandidateStream, i) % num_vertices);
  }

  // CDF over popularity ranks: uniform, or Zipf with exponent s.
  std::vector<double> cdf(domain);
  double acc = 0;
  for (std::size_t i = 0; i < domain; ++i) {
    acc += config.dist == RootDist::kZipf
               ? std::pow(static_cast<double>(i + 1), -config.zipf_s)
               : 1.0;
    cdf[i] = acc;
  }
  for (double& c : cdf) c /= acc;

  double t = 0;
  for (std::size_t q = 0; q < config.num_queries; ++q) {
    const double u = uniform01(config.seed ^ kPickStream, q);
    const std::size_t pick =
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin();
    QueryEvent ev;
    ev.root = candidates[std::min(pick, domain - 1)];
    if (config.rate_qps > 0) {
      // Poisson arrivals: exponential inter-arrival gaps of mean 1/rate.
      const double g = uniform01(config.seed ^ kGapStream, q);
      t += -std::log1p(-g) / config.rate_qps;
    }
    ev.arrival_s = t;
    stream.push_back(ev);
  }
  return stream;
}

LatencyStats percentile_stats(std::vector<double> latencies_s) {
  LatencyStats stats;
  stats.count = latencies_s.size();
  if (latencies_s.empty()) return stats;
  std::sort(latencies_s.begin(), latencies_s.end());
  double sum = 0;
  for (const double l : latencies_s) sum += l;
  stats.mean = sum / static_cast<double>(latencies_s.size());
  // Nearest-rank percentile: the ceil(p*n)-th smallest sample (1-based).
  // The round-half-up interpolation this replaces overstated percentiles —
  // e.g. the p50 of 10 samples was the 6th smallest, not the 5th.
  const auto at = [&](double p) {
    const std::size_t n = latencies_s.size();
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(p * static_cast<double>(n))));
    return latencies_s[std::min(rank, n) - 1];
  };
  stats.p50 = at(0.50);
  stats.p95 = at(0.95);
  stats.p99 = at(0.99);
  stats.max = latencies_s.back();
  return stats;
}

}  // namespace parsssp
