// Exact LRU cache of fully-computed query answers, keyed by
// (root, options signature).
//
// "Exact" in two senses. First, the key: two queries share a cache entry
// only if their SsspOptions agree on *every* field — including fields that
// cannot change the distances (cost model, diagnostics) but do change the
// observable statistics. options_signature() serializes the full option
// set canonically, so an imprecise or collided key is impossible by
// construction. Second, the value: a hit returns the complete stored
// answer (distances, optional parents, stats) by shared_ptr — never a
// recomputation, never a truncation — so a cached answer is bit-identical
// to the miss that created it.
//
// Thread safety: all methods are safe to call concurrently; the cache is a
// single mutex-guarded structure (lookups are O(1) against a hash map and
// the serving dispatcher is single-threaded, so lock contention is not a
// concern at this layer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instrumentation.hpp"
#include "core/options.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "core/types.hpp"

namespace parsssp {

/// Canonical serialization of every SsspOptions field that can affect a
/// served answer (the observability hook SsspOptions::trace is excluded —
/// it never changes results or reported statistics). Equal strings iff the
/// option sets are observationally equivalent: double-valued fields print
/// as exact hexfloats with -0.0 canonicalized to +0.0 (they configure
/// identical runs). Throws std::invalid_argument on non-finite doubles —
/// i.e. at cache admission, before such a query could poison the key space.
std::string options_signature(const SsspOptions& options);

/// One complete, immutable query answer.
struct QueryAnswer {
  vid_t root = 0;
  std::vector<dist_t> dist;
  std::vector<vid_t> parent;  ///< empty unless options.track_parents
  SsspStats stats;
};

class ResultCache {
 public:
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Misses caused specifically by a graph-version mismatch (the stale
    /// entry is dropped; also counted in `misses`).
    std::uint64_t version_misses = 0;
    /// Entries dropped by invalidate_all().
    std::uint64_t invalidations = 0;
    /// Entries dropped by clear().
    std::uint64_t clears = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  /// `capacity` = maximum number of retained answers; 0 disables the cache
  /// entirely (every lookup misses, inserts are dropped).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached answer (refreshing its LRU position) or nullptr.
  /// Counts a hit or a miss either way. `version` is the graph version the
  /// caller is serving (docs/DYNAMIC.md): an entry stored under a
  /// different version can never be returned — it is erased on sight and
  /// the lookup counts as a (version) miss. Static callers that never
  /// mutate their graph pass the default 0 throughout and behave as
  /// before.
  std::shared_ptr<const QueryAnswer> lookup(vid_t root,
                                            const std::string& signature,
                                            std::uint64_t version = 0);

  /// Inserts (or refreshes) an answer computed at graph `version`,
  /// evicting the least recently used entry when over capacity.
  void insert(vid_t root, const std::string& signature,
              std::shared_ptr<const QueryAnswer> answer,
              std::uint64_t version = 0);

  /// Drops every entry (generation bump: the graph changed and lazily
  /// erasing on lookup is not wanted). Returns how many were dropped;
  /// counted in Counters::invalidations.
  std::size_t invalidate_all();

  /// Drops every entry for operational reasons (memory pressure, tests).
  /// Returns how many were dropped; counted in Counters::clears.
  std::size_t clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  Counters counters() const;

 private:
  struct Key {
    vid_t root;
    std::string signature;
    bool operator==(const Key& other) const {
      return root == other.root && signature == other.signature;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.signature) ^
             (std::hash<vid_t>{}(k.root) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const QueryAnswer> answer;
    std::uint64_t version = 0;
  };

  const std::size_t capacity_;
  mutable Mutex mutex_;
  /// Front = most recently used; back = eviction candidate.
  std::list<Entry> lru_ MPS_GUARDED_BY(mutex_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      MPS_GUARDED_BY(mutex_);
  Counters counters_ MPS_GUARDED_BY(mutex_);
};

}  // namespace parsssp
