// Synthetic query workloads for the serving benchmarks: deterministic
// open-loop arrival streams with uniform or Zipf-distributed roots, plus
// the latency summary statistics the SLO reports quote.
//
// Streams are a pure function of their WorkloadConfig (all sampling runs
// through the repository's deterministic hash), so a benchmark JSON is
// reproducible bit-for-bit and two runs being compared saw the same
// queries in the same order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace parsssp {

/// Root popularity distribution of a stream.
enum class RootDist : std::uint8_t {
  kUniform,  ///< every root in the domain equally likely
  kZipf,     ///< rank r drawn with probability proportional to r^-s
};

struct WorkloadConfig {
  std::size_t num_queries = 100;
  /// Open-loop arrival rate in queries/second; 0 = closed loop (all
  /// arrivals at t=0, the driver submits as fast as completions allow).
  double rate_qps = 0;
  RootDist dist = RootDist::kUniform;
  /// Zipf exponent s (only for kZipf). s ~ 1 models a skewed frontend
  /// workload where a few landmark roots absorb most queries.
  double zipf_s = 1.2;
  /// Number of distinct candidate roots the stream draws from. Small
  /// domains + skew is what makes a result cache earn its keep.
  std::size_t num_roots_domain = 64;
  std::uint64_t seed = 1;
};

/// One query of a replayable stream.
struct QueryEvent {
  vid_t root;
  double arrival_s;  ///< offset from stream start (0 under closed loop)
};

/// Builds the stream for a graph with `num_vertices` vertices. Candidate
/// roots are drawn (deterministically) from the vertex range; under
/// kZipf, popularity rank is assigned per candidate and arrivals sample
/// the resulting CDF. Open-loop inter-arrival gaps are exponential with
/// mean 1/rate_qps (Poisson arrivals), so the stream has realistic bursts.
std::vector<QueryEvent> make_open_loop_stream(const WorkloadConfig& config,
                                              vid_t num_vertices);

/// Latency summary of a completed run (seconds).
struct LatencyStats {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Computes order statistics of `latencies_s` (unsorted input is fine).
/// Percentiles use the nearest-rank convention: pXX is the ceil(p*n)-th
/// smallest sample (1-based) — an actual observed latency, never an
/// interpolation, and exactly the value cross-checked against the
/// log-bucketed histograms in obs/metrics.hpp.
LatencyStats percentile_stats(std::vector<double> latencies_s);

}  // namespace parsssp
