#include "serve/query_engine.hpp"

#include "core/async_solve.hpp"
#include "core/delta_engine.hpp"
#include "core/multi_engine.hpp"
#include "core/stepping_solve.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace parsssp {

namespace {
std::size_t clamp_batch(std::size_t requested) {
  return std::min(std::max<std::size_t>(requested, 1), kMaxMultiRoots);
}
}  // namespace

QueryEngine::QueryEngine(const CsrGraph& graph, ServeConfig config)
    : QueryEngine(&graph, /*dynamic=*/nullptr, std::move(config)) {}

QueryEngine::QueryEngine(DynamicGraph& graph, ServeConfig config)
    : QueryEngine(nullptr, &graph, std::move(config)) {}

QueryEngine::QueryEngine(const CsrGraph* graph, DynamicGraph* dynamic,
                         ServeConfig config)
    : static_graph_(graph),
      dynamic_(dynamic),
      manager_(dynamic != nullptr ? dynamic->snapshot_manager() : nullptr),
      config_([&] {
        config.max_batch = clamp_batch(config.max_batch);
        return config;
      }()),
      num_vertices_(dynamic_ != nullptr ? dynamic_->num_vertices()
                                        : static_graph_->num_vertices()),
      part_(num_vertices_, config_.machine.num_ranks),
      cache_(config_.cache_capacity),
      session_(config_.machine),
      tuner_(config_.metrics) {
  if (dynamic_ != nullptr) {
    if (manager_ == nullptr) {
      throw std::invalid_argument(
          "QueryEngine: dynamic serving pins MVCC snapshots; construct the "
          "DynamicGraph with Config::snapshots enabled");
    }
    version_.store(dynamic_->version(), std::memory_order_release);
  }
  {
    MutexLock lock(mutex_);
    stats_.batch_size_histogram.assign(config_.max_batch + 1, 0);
  }
  if (config_.metrics != nullptr) {
    MetricsRegistry& reg = *config_.metrics;
    m_submitted_ = &reg.counter("serve.submitted");
    m_completed_ = &reg.counter("serve.completed");
    m_cache_hits_ = &reg.counter("serve.cache_hits");
    m_cache_misses_ = &reg.counter("serve.cache_misses");
    m_barriers_ = &reg.counter("sssp.barriers");
    g_queue_depth_ = &reg.gauge("serve.queue_depth");
    h_latency_ = &reg.histogram("serve.latency_s");
    // Batch sizes are small integers: start the geometric buckets at 1.
    h_batch_size_ = &reg.histogram("serve.batch_size",
                                   Histogram::Config{1.0, std::pow(2.0, 0.25),
                                                     32});
    if (dynamic_ != nullptr) {
      m_updates_ = &reg.counter("serve.updates");
      g_graph_version_ = &reg.gauge("serve.graph_version");
      g_cache_evictions_ = &reg.gauge("serve.cache_evictions");
      g_cache_version_misses_ = &reg.gauge("serve.cache_version_misses");
      g_cache_invalidations_ = &reg.gauge("serve.cache_invalidations");
      g_snapshots_live_ = &reg.gauge("serve.snapshots_live");
      g_oldest_pinned_ = &reg.gauge("serve.oldest_pinned_version");
      g_retire_latency_ = &reg.gauge("serve.snapshot_retire_latency_s");
      g_graph_version_->set(static_cast<double>(graph_version()));
    }
  }
  dispatcher_ = std::make_unique<ServiceThread>(
      [this] { return dispatch_step(); }, config_.idle_poll);
  if (mvcc()) {
    builder_ = std::make_unique<ServiceThread>(
        [this] { return builder_step(); }, config_.idle_poll);
  }
}

QueryEngine::~QueryEngine() {
  {
    MutexLock lock(mutex_);
    accepting_ = false;
  }
  // Stop the service threads first: after these joins no new batch can
  // open and no update can start, so draining the queues races with
  // nothing. Clients keeping SnapshotRefs are unaffected — their versions
  // are self-contained and reclaim themselves on the last unpin.
  dispatcher_.reset();
  builder_.reset();
  std::deque<Pending> orphaned;
  {
    MutexLock lock(mutex_);
    orphaned.swap(queue_);
    for (Pending& p : update_queue_) orphaned.push_back(std::move(p));
    update_queue_.clear();
    stats_.cancelled += orphaned.size();
  }
  for (Pending& p : orphaned) {
    p.fail(std::make_exception_ptr(
        JobCancelled("QueryEngine destroyed before the query was served")));
  }
  // session_ (and its rank threads) is torn down by member destruction.
}

std::future<QueryResult> QueryEngine::submit(vid_t root,
                                             const SsspOptions& options) {
  if (root >= num_vertices_) {
    throw std::out_of_range("QueryEngine::submit: root " +
                            std::to_string(root) +
                            " out of range (graph has " +
                            std::to_string(num_vertices_) +
                            " vertices)");
  }
  if (options.delta == 0) {
    throw std::invalid_argument("QueryEngine::submit: delta must be >= 1");
  }
  if (options.algo == SsspAlgo::kRho && options.rho == 0) {
    throw std::invalid_argument("QueryEngine::submit: rho must be >= 1");
  }
  if (options.algo == SsspAlgo::kRadius && options.radius_k == 0) {
    throw std::invalid_argument(
        "QueryEngine::submit: radius_k must be >= 1");
  }
  Pending p;
  p.root = root;
  p.options = options;
  p.signature = options_signature(options);
  p.submitted_at = std::chrono::steady_clock::now();
  std::future<QueryResult> fut = p.promise.get_future();
  {
    MutexLock lock(mutex_);
    if (!accepting_) {
      throw std::logic_error(
          "QueryEngine::submit on an engine that is shutting down");
    }
    queue_.push_back(std::move(p));
    ++stats_.submitted;
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->set(static_cast<double>(queue_.size()));
    }
  }
  if (m_submitted_ != nullptr) m_submitted_->inc();
  dispatcher_->wake();
  return fut;
}

QueryResult QueryEngine::query(vid_t root, const SsspOptions& options) {
  return submit(root, options).get();
}

std::future<UpdateResult> QueryEngine::apply_updates(EdgeBatch batch) {
  if (dynamic_ == nullptr) {
    throw std::logic_error(
        "QueryEngine::apply_updates: engine serves an immutable graph "
        "(construct it from a DynamicGraph to accept updates)");
  }
  Pending p;
  p.kind = Pending::Kind::kUpdate;
  p.updates = std::move(batch);
  p.submitted_at = std::chrono::steady_clock::now();
  std::future<UpdateResult> fut = p.update_promise.get_future();
  const bool to_builder = mvcc();
  {
    MutexLock lock(mutex_);
    if (!accepting_) {
      throw std::logic_error(
          "QueryEngine::apply_updates on an engine that is shutting down");
    }
    // MVCC: updates queue for the builder thread and never fence queries.
    // Fenced: updates ride the query FIFO as barriers.
    (to_builder ? update_queue_ : queue_).push_back(std::move(p));
    if (!to_builder && g_queue_depth_ != nullptr) {
      g_queue_depth_->set(static_cast<double>(queue_.size()));
    }
  }
  (to_builder ? builder_ : dispatcher_)->wake();
  return fut;
}

UpdateResult QueryEngine::update(EdgeBatch batch) {
  return apply_updates(std::move(batch)).get();
}

SnapshotRef QueryEngine::current_snapshot() const {
  if (manager_ == nullptr) {
    throw std::logic_error(
        "QueryEngine::current_snapshot: static engines have no snapshots");
  }
  return manager_->current();
}

std::size_t QueryEngine::cancel_pending() {
  std::deque<Pending> cancelled;
  {
    MutexLock lock(mutex_);
    cancelled.swap(queue_);
    for (Pending& p : update_queue_) cancelled.push_back(std::move(p));
    update_queue_.clear();
    stats_.cancelled += cancelled.size();
  }
  for (Pending& p : cancelled) {
    p.fail(std::make_exception_ptr(
        JobCancelled("query cancelled before its batch closed")));
  }
  return cancelled.size();
}

ServeStats QueryEngine::stats() const {
  ServeStats out;
  {
    MutexLock lock(mutex_);
    out = stats_;
  }
  out.cache = cache_.counters();
  out.graph_version = graph_version();
  if (manager_ != nullptr) {
    manager_->collect();
    const SnapshotManager::Stats s = manager_->stats();
    out.snapshots_published = s.published;
    out.snapshots_reclaimed = s.reclaimed;
    out.snapshots_live = s.live;
    out.oldest_pinned_version = s.oldest_pinned_version;
  }
  return out;
}

bool QueryEngine::dispatch_step() {
  // First step on the dispatcher thread: register its trace lane.
  if (config_.trace != nullptr && dlane_ == nullptr) {
    dlane_ = &config_.trace->thread_lane("serve-dispatcher");
  }
  std::vector<Pending> batch;
  const std::int64_t t0 = dlane_ != nullptr ? dlane_->now_ns() : 0;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    const auto now = std::chrono::steady_clock::now();
    // Fenced mode only — MVCC routes updates to the builder, so the query
    // FIFO never contains one. An update at the head closes immediately as
    // its own single-item batch: it is a barrier between the graph
    // versions on either side, and making it wait for batchmates would
    // only add latency.
    if (queue_.front().kind == Pending::Kind::kUpdate) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (g_queue_depth_ != nullptr) {
        g_queue_depth_->set(static_cast<double>(queue_.size()));
      }
    } else {
      const bool full = queue_.size() >= config_.max_batch;
      const bool due =
          now - queue_.front().submitted_at >= config_.batch_window;
      // An update anywhere in the queue is a fence: later arrivals land
      // behind it, so waiting can never grow the head prefix — close it now
      // instead of letting the window run out in front of the fence.
      const bool fenced =
          std::any_of(queue_.begin(), queue_.end(), [](const Pending& p) {
            return p.kind == Pending::Kind::kUpdate;
          });
      if (!full && !due && !fenced) {
        return false;  // park; idle_poll re-checks the window
      }
      // Close the longest same-signature query prefix: a batch is one sweep
      // under one option set. A query with a different signature — or any
      // update — waits its turn (FIFO keeps admission order, so nothing
      // starves and updates stay ordered against queries).
      const std::string signature = queue_.front().signature;
      while (!queue_.empty() && batch.size() < config_.max_batch &&
             queue_.front().kind == Pending::Kind::kQuery &&
             queue_.front().signature == signature) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
      ++stats_.batch_size_histogram[batch.size()];
      if (g_queue_depth_ != nullptr) {
        g_queue_depth_->set(static_cast<double>(queue_.size()));
      }
    }
  }
  if (batch.front().kind == Pending::Kind::kUpdate) {
    serve_update(std::move(batch.front()));
    return true;
  }
  if (dlane_ != nullptr) {
    // The batch-close span covers the queue pop; each query additionally
    // gets an admission span reconstructed from its submit timestamp — its
    // time waiting in the queue for batchmates.
    const std::int64_t closed = dlane_->now_ns();
    dlane_->record(SpanCat::kBatchClose, t0, closed - t0, batch.size());
    for (const Pending& p : batch) {
      const std::int64_t s = dlane_->to_ns(p.submitted_at);
      dlane_->record(SpanCat::kAdmission, s, closed - s, p.root);
    }
  }
  if (h_batch_size_ != nullptr) {
    h_batch_size_->record(static_cast<double>(batch.size()));
  }
  serve_batch(std::move(batch));
  return true;
}

bool QueryEngine::builder_step() {
  // First step on the builder thread: register its trace lane and route
  // the manager's publish/retire spans into it.
  if (config_.trace != nullptr && blane_ == nullptr) {
    blane_ = &config_.trace->thread_lane("serve-builder");
    manager_->set_trace_lane(blane_);
  }
  Pending update;
  {
    MutexLock lock(mutex_);
    if (update_queue_.empty()) return false;
    update = std::move(update_queue_.front());
    update_queue_.pop_front();
  }
  serve_update(std::move(update));
  return true;
}

void QueryEngine::serve_batch(std::vector<Pending> batch) {
  // Pin the newest published version for the whole batch. Queries keep
  // this snapshot — base CSR included — alive through solve and cache
  // admission, whatever the builder publishes or compacts meanwhile.
  SnapshotRef snap;
  if (manager_ != nullptr) snap = manager_->current();
  const std::uint64_t version = snap ? snap->version() : 0;

  const auto fulfill = [this, version](
                           Pending& p,
                           std::shared_ptr<const QueryAnswer> answer,
                           bool from_cache) {
    // Count before fulfilling: a client whose future has resolved must
    // already see itself in stats().completed.
    {
      MutexLock lock(mutex_);
      ++stats_.completed;
    }
    const auto now = std::chrono::steady_clock::now();
    if (m_completed_ != nullptr) m_completed_->inc();
    if (h_latency_ != nullptr) {
      h_latency_->record(
          std::chrono::duration<double>(now - p.submitted_at).count());
    }
    p.promise.set_value(
        QueryResult{std::move(answer), from_cache, version, now});
  };

  // Cache pass: hits complete immediately, misses proceed to the machine.
  // Every lookup/insert is keyed by the pinned snapshot's version — the
  // version this batch actually serves, not whatever is newest — so a
  // pre-update answer can never satisfy a post-update query and vice
  // versa.
  std::vector<Pending> misses;
  {
    ScopedSpan span(dlane_, SpanCat::kCacheLookup, batch.size());
    for (Pending& p : batch) {
      if (auto hit = cache_.lookup(p.root, p.signature, version)) {
        if (m_cache_hits_ != nullptr) m_cache_hits_->inc();
        fulfill(p, std::move(hit), /*from_cache=*/true);
      } else {
        if (m_cache_misses_ != nullptr) m_cache_misses_->inc();
        misses.push_back(std::move(p));
      }
    }
  }
  if (!misses.empty()) {
    // Dedup roots: batchmates querying the same root share one computation.
    std::vector<vid_t> unique;
    std::vector<std::size_t> slot_of(misses.size());
    {
      std::unordered_map<vid_t, std::size_t> index;
      for (std::size_t i = 0; i < misses.size(); ++i) {
        const auto [it, inserted] =
            index.emplace(misses[i].root, unique.size());
        if (inserted) unique.push_back(misses[i].root);
        slot_of[i] = it->second;
      }
    }

    const std::vector<std::shared_ptr<const QueryAnswer>> answers =
        compute(unique, misses.front().options, snap);

    for (std::size_t s = 0; s < unique.size(); ++s) {
      cache_.insert(unique[s], misses.front().signature, answers[s], version);
    }
    for (std::size_t i = 0; i < misses.size(); ++i) {
      fulfill(misses[i], answers[slot_of[i]], /*from_cache=*/false);
    }
    refresh_cache_metrics();
  }
  if (manager_ != nullptr) {
    // Drop the batch's pin before refreshing the gauges, so a snapshot
    // kept alive only by this batch is reclaimed (and counted) now rather
    // than at the next update.
    snap.reset();
    refresh_snapshot_metrics();
  }
}

void QueryEngine::serve_update(Pending update) {
  // Runs on the builder thread in MVCC mode, the dispatcher in fenced
  // mode; either way this is the DynamicGraph's only mutator.
  TraceLane* lane = mvcc() ? blane_ : dlane_;
  if (lane != nullptr && !mvcc()) manager_->set_trace_lane(lane);
  ScopedSpan span(lane, SpanCat::kUpdateApply, update.updates.size());
  AppliedBatch applied;
  try {
    applied = dynamic_->apply(update.updates);
  } catch (...) {
    // Validation failure: the graph (and therefore snapshots, cache,
    // version) is untouched; the client gets the error, serving continues.
    update.update_promise.set_exception(std::current_exception());
    return;
  }
  version_.store(applied.version, std::memory_order_release);
  {
    MutexLock lock(mutex_);
    ++stats_.updates;
    stats_.graph_version = applied.version;
  }
  if (m_updates_ != nullptr) m_updates_->inc();
  refresh_snapshot_metrics();
  update.update_promise.set_value(
      UpdateResult{applied.version, applied.ops.size(), applied.compacted,
                   std::chrono::steady_clock::now()});
}

void QueryEngine::refresh_cache_metrics() {
  if (g_cache_evictions_ == nullptr) return;
  const ResultCache::Counters c = cache_.counters();
  g_cache_evictions_->set(static_cast<double>(c.evictions));
  g_cache_version_misses_->set(static_cast<double>(c.version_misses));
  g_cache_invalidations_->set(static_cast<double>(c.invalidations));
}

void QueryEngine::refresh_snapshot_metrics() {
  if (manager_ == nullptr) return;
  manager_->collect();
  if (g_graph_version_ == nullptr) return;
  const SnapshotManager::Stats s = manager_->stats();
  g_graph_version_->set(static_cast<double>(s.head_version));
  g_snapshots_live_->set(static_cast<double>(s.live));
  g_oldest_pinned_->set(static_cast<double>(s.oldest_pinned_version));
  g_retire_latency_->set(s.retire_latency_last_s);
}

SsspStats QueryEngine::probe_solve(vid_t root, const SsspOptions& options,
                                   const CsrGraph* graph,
                                   const SnapshotRef& snap,
                                   const std::shared_ptr<void>& keepalive) {
  ensure_views(options.delta, snap);
  SsspStats stats;
  std::vector<dist_t> dist(num_vertices_, kInfDist);
  std::vector<RankCounters> rank_counters(session_.num_ranks());
  if (is_stepping_algo(options.algo)) {
    SteppingSolveJob job;
    job.graph = graph;
    job.part = part_;
    job.views = &views_;
    job.dist = &dist;
    job.root = root;
    job.rank_counters = &rank_counters;
    job.stats = &stats;
    run_stepping_solve(session_, job, options, keepalive);
  } else {
    EngineShared shared;
    shared.graph = graph;
    shared.part = part_;
    shared.views = &views_;
    shared.dist = &dist;
    shared.root = root;
    shared.options = &options;
    shared.rank_counters = &rank_counters;
    shared.stats = &stats;
    if (snap) shared.max_weight = snap->max_weight();
    session_
        .submit([&shared](RankCtx& ctx) { run_sssp_job(ctx, shared); },
                keepalive)
        .get();
  }
  for (const RankCounters& c : rank_counters) {
    stats.short_relaxations += c.short_relaxations;
    stats.long_push_relaxations += c.long_push_relaxations;
    stats.pull_requests += c.pull_requests;
    stats.pull_responses += c.pull_responses;
    stats.bf_relaxations += c.bf_relaxations;
    stats.async_relaxations += c.async_relaxations;
    stats.stepping_relaxations += c.stepping_relaxations;
  }
  return stats;
}

std::vector<std::shared_ptr<const QueryAnswer>> QueryEngine::compute(
    const std::vector<vid_t>& roots, const SsspOptions& opts_in,
    const SnapshotRef& snap) {
  ScopedSpan span(dlane_, SpanCat::kServeSolve, roots.size());
  // Served solves trace into the engine's recorder, whatever the client
  // put in its options (trace is excluded from the batch signature).
  SsspOptions options = opts_in;
  options.trace = config_.trace;
  // The graph the engines see: the snapshot's base CSR (its arcs may lag
  // the logical graph — engines read adjacency through the views, which
  // ensure_views synced to the snapshot) or the static graph. The session
  // job additionally pins the snapshot for its own lifetime, so the data
  // it reads outlives even an engine teardown racing a late rank.
  const CsrGraph* graph = snap ? &snap->base() : static_graph_;
  const std::shared_ptr<void> keepalive =
      snap ? std::make_shared<SnapshotRef>(snap) : nullptr;

  // Auto-tune rewrite (docs/STEPPING.md): a cold single-root query on the
  // default algorithm runs on this version's learned engine config. The
  // first such query per version triggers the probe pass, right here on
  // the dispatcher. Answers are bit-identical across the candidate space,
  // so the rewrite never changes what gets cached — only its cost.
  if (config_.auto_tune && roots.size() == 1 &&
      options.algo == SsspAlgo::kBucketSync &&
      (!options.track_parents || options.canonical_parents)) {
    const std::uint64_t version = snap ? snap->version() : 0;
    const vid_t probe_root = roots[0];
    const TunedConfig tuned = tuner_.tune(
        version, *graph, options, [&](const SsspOptions& candidate) {
          return probe_solve(probe_root, candidate, graph, snap, keepalive);
        });
    options = tuned.apply(options);
  }
  ensure_views(options.delta, snap);
  std::vector<std::shared_ptr<const QueryAnswer>> answers;
  answers.reserve(roots.size());

  // Parent tracking (and the degenerate one-root batch) runs the full
  // per-root engine: parents come out exactly as from Solver::solve, and
  // single queries skip the batched engine's slot overhead. The async
  // engine is single-root by construction, so it rides this path too.
  if (options.track_parents || roots.size() == 1 ||
      options.algo == SsspAlgo::kAsync || is_stepping_algo(options.algo)) {
    // The stepping engines (explicit client choice, or the auto-tune
    // rewrite above) are single-root by construction, like async.
    const bool serve_stepping = is_stepping_algo(options.algo);
    // Cold single-root queries run barrier-free when the engine is
    // configured for it (compute() only sees cache misses); parents must
    // be canonical for the answers to stay interchangeable. Explicit
    // SsspAlgo::kAsync requests are honored unconditionally.
    const bool serve_async =
        !serve_stepping &&
        (options.algo == SsspAlgo::kAsync ||
         (config_.async_cold_queries && roots.size() == 1 &&
          (!options.track_parents || options.canonical_parents)));
    SsspOptions async_options = options;
    async_options.algo = SsspAlgo::kAsync;
    for (const vid_t root : roots) {
      auto answer = std::make_shared<QueryAnswer>();
      answer->root = root;
      answer->dist.assign(num_vertices_, kInfDist);
      if (options.track_parents) {
        answer->parent.assign(num_vertices_, kInvalidVid);
      }
      std::vector<RankCounters> rank_counters(session_.num_ranks());

      if (serve_stepping) {
        SteppingSolveJob job;
        job.graph = graph;
        job.part = part_;
        job.views = &views_;
        job.dist = &answer->dist;
        job.parent = options.track_parents ? &answer->parent : nullptr;
        job.root = root;
        job.rank_counters = &rank_counters;
        job.stats = &answer->stats;
        run_stepping_solve(session_, job, options, keepalive);
      } else if (serve_async) {
        AsyncSolveJob job;
        job.graph = graph;
        job.part = part_;
        job.views = &views_;
        job.dist = &answer->dist;
        job.parent = options.track_parents ? &answer->parent : nullptr;
        job.root = root;
        job.rank_counters = &rank_counters;
        job.stats = &answer->stats;
        run_async_solve(session_, job, async_options, keepalive);
      } else {
        EngineShared shared;
        shared.graph = graph;
        shared.part = part_;
        shared.views = &views_;
        shared.dist = &answer->dist;
        shared.parent = options.track_parents ? &answer->parent : nullptr;
        shared.root = root;
        shared.options = &options;
        shared.rank_counters = &rank_counters;
        shared.stats = &answer->stats;
        if (snap) {
          // The base CSR may lag the logical graph; give the push/pull
          // estimator the snapshot's weight bound instead.
          shared.max_weight = snap->max_weight();
        }

        session_
            .submit([&shared](RankCtx& ctx) { run_sssp_job(ctx, shared); },
                    keepalive)
            .get();
      }

      for (const RankCounters& c : rank_counters) {
        answer->stats.short_relaxations += c.short_relaxations;
        answer->stats.long_push_relaxations += c.long_push_relaxations;
        answer->stats.pull_requests += c.pull_requests;
        answer->stats.pull_responses += c.pull_responses;
        answer->stats.bf_relaxations += c.bf_relaxations;
        answer->stats.async_relaxations += c.async_relaxations;
        answer->stats.stepping_relaxations += c.stepping_relaxations;
      }
      if (m_barriers_ != nullptr) {
        m_barriers_->inc(answer->stats.global_syncs());
      }
      answers.push_back(std::move(answer));
      MutexLock lock(mutex_);
      ++stats_.single_solves;
    }
    return answers;
  }

  // Batched path: one shared sweep for the whole batch (roots.size() <=
  // max_batch <= kMaxMultiRoots by construction).
  std::vector<std::shared_ptr<QueryAnswer>> building(roots.size());
  std::vector<std::vector<dist_t>*> slabs(roots.size());
  for (std::size_t s = 0; s < roots.size(); ++s) {
    building[s] = std::make_shared<QueryAnswer>();
    building[s]->root = roots[s];
    building[s]->dist.assign(num_vertices_, kInfDist);
    slabs[s] = &building[s]->dist;
  }
  MultiStats multi_stats;
  std::vector<RankCounters> rank_counters(session_.num_ranks());

  MultiEngineShared shared;
  shared.graph = graph;
  shared.part = part_;
  shared.views = &views_;
  shared.roots = std::span<const vid_t>(roots);
  shared.dists = std::span<std::vector<dist_t>* const>(slabs);
  shared.options = &options;
  shared.rank_counters = &rank_counters;
  shared.stats = &multi_stats;

  session_
      .submit([&shared](RankCtx& ctx) { run_multi_sssp_job(ctx, shared); },
              keepalive)
      .get();

  for (std::size_t s = 0; s < roots.size(); ++s) {
    // Batched-path statistics: relaxations are per root (exact), structure
    // and times are batch-level — the sweep is shared, so per-root time
    // attribution would be fiction. See docs/SERVING.md.
    SsspStats& st = building[s]->stats;
    st.short_relaxations = multi_stats.per_root_relaxations[s];
    st.phases = multi_stats.phases;
    st.buckets = multi_stats.epochs;
    st.model_time_s = multi_stats.model_time_s;
    st.wall_time_s = multi_stats.wall_time_s;
    answers.push_back(std::move(building[s]));
  }
  {
    MutexLock lock(mutex_);
    ++stats_.multi_sweeps;
  }
  return answers;
}

void QueryEngine::ensure_views(std::uint32_t delta, const SnapshotRef& snap) {
  const std::uint64_t seq = snap ? snap->publish_seq() : 1;
  if (views_ready_ && views_delta_ == delta && views_seq_ == seq) return;
  if (snap && views_ready_ && views_delta_ == delta && views_seq_ < seq) {
    // Patch forward through the manager's bounded publish log: cheaper
    // than a rebuild when few vertices changed since the views' sequence.
    // nullopt means the range crossed a compaction or aged out.
    if (const auto touched = manager_->touched_between(views_seq_, seq)) {
      for (const vid_t v : *touched) {
        const rank_t r = part_.owner(v);
        views_[r].patch_vertex(v - part_.begin(r), snap->arcs_of(v));
      }
      views_seq_ = seq;
      return;
    }
  }
  views_.assign(session_.num_ranks(), LocalEdgeView{});
  const GraphSnapshot* s = snap.get();
  const std::shared_ptr<void> keepalive =
      snap ? std::make_shared<SnapshotRef>(snap) : nullptr;
  session_
      .submit(
          [this, delta, s](RankCtx& ctx) {
            views_[ctx.rank()] =
                s != nullptr
                    ? s->build_local_view(part_, ctx.rank(), delta)
                    : LocalEdgeView::build(*static_graph_, part_, ctx.rank(),
                                           delta);
          },
          keepalive)
      .get();
  views_delta_ = delta;
  views_seq_ = seq;
  views_ready_ = true;
}

}  // namespace parsssp
