#include "serve/query_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace parsssp {

namespace {
std::size_t clamp_batch(std::size_t requested) {
  return std::min(std::max<std::size_t>(requested, 1), kMaxMultiRoots);
}
}  // namespace

QueryEngine::QueryEngine(const CsrGraph& graph, ServeConfig config)
    : graph_(graph),
      config_([&] {
        config.max_batch = clamp_batch(config.max_batch);
        return config;
      }()),
      part_(graph.num_vertices(), config_.machine.num_ranks),
      cache_(config_.cache_capacity),
      session_(config_.machine) {
  {
    MutexLock lock(mutex_);
    stats_.batch_size_histogram.assign(config_.max_batch + 1, 0);
  }
  if (config_.metrics != nullptr) {
    MetricsRegistry& reg = *config_.metrics;
    m_submitted_ = &reg.counter("serve.submitted");
    m_completed_ = &reg.counter("serve.completed");
    m_cache_hits_ = &reg.counter("serve.cache_hits");
    m_cache_misses_ = &reg.counter("serve.cache_misses");
    g_queue_depth_ = &reg.gauge("serve.queue_depth");
    h_latency_ = &reg.histogram("serve.latency_s");
    // Batch sizes are small integers: start the geometric buckets at 1.
    h_batch_size_ = &reg.histogram("serve.batch_size",
                                   Histogram::Config{1.0, std::pow(2.0, 0.25),
                                                     32});
  }
  dispatcher_ = std::make_unique<ServiceThread>(
      [this] { return dispatch_step(); }, config_.idle_poll);
}

QueryEngine::~QueryEngine() {
  {
    MutexLock lock(mutex_);
    accepting_ = false;
  }
  // Stop the dispatcher first: after this join no new batch can open, so
  // draining the queue below races with nothing.
  dispatcher_.reset();
  std::deque<Pending> orphaned;
  {
    MutexLock lock(mutex_);
    orphaned.swap(queue_);
    stats_.cancelled += orphaned.size();
  }
  for (Pending& p : orphaned) {
    p.promise.set_exception(std::make_exception_ptr(
        JobCancelled("QueryEngine destroyed before the query was served")));
  }
  // session_ (and its rank threads) is torn down by member destruction.
}

std::future<QueryResult> QueryEngine::submit(vid_t root,
                                             const SsspOptions& options) {
  if (root >= graph_.num_vertices()) {
    throw std::invalid_argument("QueryEngine::submit: root out of range");
  }
  if (options.delta == 0) {
    throw std::invalid_argument("QueryEngine::submit: delta must be >= 1");
  }
  Pending p;
  p.root = root;
  p.options = options;
  p.signature = options_signature(options);
  p.submitted_at = std::chrono::steady_clock::now();
  std::future<QueryResult> fut = p.promise.get_future();
  {
    MutexLock lock(mutex_);
    if (!accepting_) {
      throw std::logic_error(
          "QueryEngine::submit on an engine that is shutting down");
    }
    queue_.push_back(std::move(p));
    ++stats_.submitted;
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->set(static_cast<double>(queue_.size()));
    }
  }
  if (m_submitted_ != nullptr) m_submitted_->inc();
  dispatcher_->wake();
  return fut;
}

QueryResult QueryEngine::query(vid_t root, const SsspOptions& options) {
  return submit(root, options).get();
}

std::size_t QueryEngine::cancel_pending() {
  std::deque<Pending> cancelled;
  {
    MutexLock lock(mutex_);
    cancelled.swap(queue_);
    stats_.cancelled += cancelled.size();
  }
  for (Pending& p : cancelled) {
    p.promise.set_exception(std::make_exception_ptr(
        JobCancelled("query cancelled before its batch closed")));
  }
  return cancelled.size();
}

ServeStats QueryEngine::stats() const {
  ServeStats out;
  {
    MutexLock lock(mutex_);
    out = stats_;
  }
  out.cache = cache_.counters();
  return out;
}

bool QueryEngine::dispatch_step() {
  // First step on the dispatcher thread: register its trace lane.
  if (config_.trace != nullptr && dlane_ == nullptr) {
    dlane_ = &config_.trace->thread_lane("serve-dispatcher");
  }
  std::vector<Pending> batch;
  const std::int64_t t0 = dlane_ != nullptr ? dlane_->now_ns() : 0;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    const auto now = std::chrono::steady_clock::now();
    const bool full = queue_.size() >= config_.max_batch;
    const bool due = now - queue_.front().submitted_at >= config_.batch_window;
    if (!full && !due) return false;  // park; idle_poll re-checks the window
    // Close the longest same-signature prefix: a batch is one sweep under
    // one option set. A query with a different signature waits its turn
    // (FIFO keeps admission order, so no query starves).
    const std::string signature = queue_.front().signature;
    while (!queue_.empty() && batch.size() < config_.max_batch &&
           queue_.front().signature == signature) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.batches;
    ++stats_.batch_size_histogram[batch.size()];
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->set(static_cast<double>(queue_.size()));
    }
  }
  if (dlane_ != nullptr) {
    // The batch-close span covers the queue pop; each query additionally
    // gets an admission span reconstructed from its submit timestamp — its
    // time waiting in the queue for batchmates.
    const std::int64_t closed = dlane_->now_ns();
    dlane_->record(SpanCat::kBatchClose, t0, closed - t0, batch.size());
    for (const Pending& p : batch) {
      const std::int64_t s = dlane_->to_ns(p.submitted_at);
      dlane_->record(SpanCat::kAdmission, s, closed - s, p.root);
    }
  }
  if (h_batch_size_ != nullptr) {
    h_batch_size_->record(static_cast<double>(batch.size()));
  }
  serve_batch(std::move(batch));
  return true;
}

void QueryEngine::serve_batch(std::vector<Pending> batch) {
  const auto fulfill = [this](Pending& p,
                              std::shared_ptr<const QueryAnswer> answer,
                              bool from_cache) {
    // Count before fulfilling: a client whose future has resolved must
    // already see itself in stats().completed.
    {
      MutexLock lock(mutex_);
      ++stats_.completed;
    }
    const auto now = std::chrono::steady_clock::now();
    if (m_completed_ != nullptr) m_completed_->inc();
    if (h_latency_ != nullptr) {
      h_latency_->record(
          std::chrono::duration<double>(now - p.submitted_at).count());
    }
    p.promise.set_value(QueryResult{std::move(answer), from_cache, now});
  };

  // Cache pass: hits complete immediately, misses proceed to the machine.
  std::vector<Pending> misses;
  {
    ScopedSpan span(dlane_, SpanCat::kCacheLookup, batch.size());
    for (Pending& p : batch) {
      if (auto hit = cache_.lookup(p.root, p.signature)) {
        if (m_cache_hits_ != nullptr) m_cache_hits_->inc();
        fulfill(p, std::move(hit), /*from_cache=*/true);
      } else {
        if (m_cache_misses_ != nullptr) m_cache_misses_->inc();
        misses.push_back(std::move(p));
      }
    }
  }
  if (misses.empty()) return;

  // Dedup roots: batchmates querying the same root share one computation.
  std::vector<vid_t> unique;
  std::vector<std::size_t> slot_of(misses.size());
  {
    std::unordered_map<vid_t, std::size_t> index;
    for (std::size_t i = 0; i < misses.size(); ++i) {
      const auto [it, inserted] =
          index.emplace(misses[i].root, unique.size());
      if (inserted) unique.push_back(misses[i].root);
      slot_of[i] = it->second;
    }
  }

  const std::vector<std::shared_ptr<const QueryAnswer>> answers =
      compute(unique, misses.front().options);

  for (std::size_t s = 0; s < unique.size(); ++s) {
    cache_.insert(unique[s], misses.front().signature, answers[s]);
  }
  for (std::size_t i = 0; i < misses.size(); ++i) {
    fulfill(misses[i], answers[slot_of[i]], /*from_cache=*/false);
  }
}

std::vector<std::shared_ptr<const QueryAnswer>> QueryEngine::compute(
    const std::vector<vid_t>& roots, const SsspOptions& opts_in) {
  ScopedSpan span(dlane_, SpanCat::kServeSolve, roots.size());
  // Served solves trace into the engine's recorder, whatever the client
  // put in its options (trace is excluded from the batch signature).
  SsspOptions options = opts_in;
  options.trace = config_.trace;
  ensure_views(options.delta);
  std::vector<std::shared_ptr<const QueryAnswer>> answers;
  answers.reserve(roots.size());

  // Parent tracking (and the degenerate one-root batch) runs the full
  // per-root engine: parents come out exactly as from Solver::solve, and
  // single queries skip the batched engine's slot overhead.
  if (options.track_parents || roots.size() == 1) {
    for (const vid_t root : roots) {
      auto answer = std::make_shared<QueryAnswer>();
      answer->root = root;
      answer->dist.assign(graph_.num_vertices(), kInfDist);
      if (options.track_parents) {
        answer->parent.assign(graph_.num_vertices(), kInvalidVid);
      }
      std::vector<RankCounters> rank_counters(session_.num_ranks());

      EngineShared shared;
      shared.graph = &graph_;
      shared.part = part_;
      shared.views = &views_;
      shared.dist = &answer->dist;
      shared.parent = options.track_parents ? &answer->parent : nullptr;
      shared.root = root;
      shared.options = &options;
      shared.rank_counters = &rank_counters;
      shared.stats = &answer->stats;

      session_.run([&shared](RankCtx& ctx) { run_sssp_job(ctx, shared); });

      for (const RankCounters& c : rank_counters) {
        answer->stats.short_relaxations += c.short_relaxations;
        answer->stats.long_push_relaxations += c.long_push_relaxations;
        answer->stats.pull_requests += c.pull_requests;
        answer->stats.pull_responses += c.pull_responses;
        answer->stats.bf_relaxations += c.bf_relaxations;
      }
      answers.push_back(std::move(answer));
      MutexLock lock(mutex_);
      ++stats_.single_solves;
    }
    return answers;
  }

  // Batched path: one shared sweep for the whole batch (roots.size() <=
  // max_batch <= kMaxMultiRoots by construction).
  std::vector<std::shared_ptr<QueryAnswer>> building(roots.size());
  std::vector<std::vector<dist_t>*> slabs(roots.size());
  for (std::size_t s = 0; s < roots.size(); ++s) {
    building[s] = std::make_shared<QueryAnswer>();
    building[s]->root = roots[s];
    building[s]->dist.assign(graph_.num_vertices(), kInfDist);
    slabs[s] = &building[s]->dist;
  }
  MultiStats multi_stats;
  std::vector<RankCounters> rank_counters(session_.num_ranks());

  MultiEngineShared shared;
  shared.graph = &graph_;
  shared.part = part_;
  shared.views = &views_;
  shared.roots = std::span<const vid_t>(roots);
  shared.dists = std::span<std::vector<dist_t>* const>(slabs);
  shared.options = &options;
  shared.rank_counters = &rank_counters;
  shared.stats = &multi_stats;

  session_.run([&shared](RankCtx& ctx) { run_multi_sssp_job(ctx, shared); });

  for (std::size_t s = 0; s < roots.size(); ++s) {
    // Batched-path statistics: relaxations are per root (exact), structure
    // and times are batch-level — the sweep is shared, so per-root time
    // attribution would be fiction. See docs/SERVING.md.
    SsspStats& st = building[s]->stats;
    st.short_relaxations = multi_stats.per_root_relaxations[s];
    st.phases = multi_stats.phases;
    st.buckets = multi_stats.epochs;
    st.model_time_s = multi_stats.model_time_s;
    st.wall_time_s = multi_stats.wall_time_s;
    answers.push_back(std::move(building[s]));
  }
  {
    MutexLock lock(mutex_);
    ++stats_.multi_sweeps;
  }
  return answers;
}

void QueryEngine::ensure_views(std::uint32_t delta) {
  if (views_ready_ && views_delta_ == delta) return;
  views_.assign(session_.num_ranks(), LocalEdgeView{});
  session_.run([this, delta](RankCtx& ctx) {
    views_[ctx.rank()] = LocalEdgeView::build(graph_, part_, ctx.rank(), delta);
  });
  views_delta_ = delta;
  views_ready_ = true;
}

}  // namespace parsssp
