// The query-serving front end: admission queue, batching policy, result
// cache, and a persistent simulated machine.
//
// A QueryEngine owns one MachineSession (rank threads spawned once, parked
// between jobs) and one dispatcher ServiceThread. Clients call submit(root,
// options) from any thread and receive a future; the dispatcher closes
// batches off the admission queue and serves them on the session:
//
//   * Batching policy: a batch closes as soon as max_batch queries are
//     queued, or when the oldest queued query has waited batch_window —
//     bounded latency under light load, full batches under heavy load. Only
//     queries with identical option signatures share a batch (they must:
//     a batch runs as one sweep under one option set). The window deadline
//     is polled at idle_poll granularity.
//   * Cache: answers are remembered in an exact LRU keyed by
//     (root, options signature); a hit is served without touching the
//     machine and marked from_cache.
//   * Execution: duplicate roots in a batch are computed once. A batch
//     with one unique (uncached) root — or any batch tracking parents —
//     runs the full single-root engine (run_sssp_job) per root; larger
//     batches run the batched multi-root engine (run_multi_sssp_job), one
//     shared bucket-synchronous sweep for the whole batch. Distances are
//     bit-identical between both paths and Solver::solve; batched-path
//     statistics are batch-level (see docs/SERVING.md).
//
// Dynamic serving is MVCC by default (docs/SNAPSHOTS.md): every batch pins
// the latest immutable GraphSnapshot at close and solves on it, while
// update batches build the next version on a separate builder
// ServiceThread — queries never stall behind a repair, and a pinned
// version (including its base CSR) outlives any number of concurrent
// mutations and compactions. Correctness is carried by the version-stamped
// result cache: an answer computed on snapshot V is cached at V and a
// lookup at V' != V can never return it. ServeConfig::fence_updates
// restores the strict PR-5 ordering — updates ride the query FIFO as
// barriers and every query sees the newest version at admission order.
//
// All machine work happens on the dispatcher thread; submit() never blocks
// on a solve. Layering (analyzer rule A3): this layer spawns no threads —
// the only concurrency primitives it touches are MachineSession,
// ServiceThread and a mutex around the queues; the snapshot layer is
// consumed through the GraphSnapshot/SnapshotManager facade only.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/auto_tune.hpp"
#include "core/dist_graph.hpp"
#include "core/options.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/machine_session.hpp"
#include "runtime/partition.hpp"
#include "runtime/service_thread.hpp"
#include "serve/result_cache.hpp"
#include "snapshot/graph_snapshot.hpp"
#include "snapshot/snapshot_manager.hpp"
#include "update/dynamic_graph.hpp"
#include "update/edge_batch.hpp"

namespace parsssp {

struct ServeConfig {
  MachineConfig machine;
  /// Largest batch one sweep serves; clamped to [1, kMaxMultiRoots].
  std::size_t max_batch = 8;
  /// Longest a queued query waits for batchmates before its batch closes.
  std::chrono::nanoseconds batch_window = std::chrono::microseconds(200);
  /// Result cache capacity in answers; 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Granularity at which the dispatcher re-checks the window deadline.
  std::chrono::nanoseconds idle_poll = std::chrono::microseconds(50);
  /// Strict PR-5 ordering for dynamic engines: updates share the query
  /// FIFO and fence it (a batch never spans an update; queries behind an
  /// update wait for it). Off by default — MVCC serving lets queries run
  /// on their pinned snapshot while updates build the next version
  /// concurrently (docs/SNAPSHOTS.md).
  bool fence_updates = false;
  /// Serve cold single-root queries on the asynchronous engine
  /// (docs/ASYNC.md): a one-query batch that misses the cache runs
  /// barrier-free instead of bucket-synchronous. Distances are
  /// bit-identical, so the answer is cached under the client's own option
  /// signature; queries tracking non-canonical parents are exempted (the
  /// async engine always canonicalizes). Clients can also opt in per query
  /// via SsspOptions::algo, whatever this flag says.
  bool async_cold_queries = false;
  /// Auto-tune cold single-root queries (docs/STEPPING.md): the first
  /// eligible cache miss per graph version pays a short probe pass
  /// (core/auto_tune.hpp) and every later one runs on the engine + step
  /// parameter the tuner learned for that version. Only queries on the
  /// default algorithm are rewritten (an explicit SsspAlgo choice is
  /// always honored), and — as with async_cold_queries — queries tracking
  /// non-canonical parents are exempt. Distances are bit-identical across
  /// the whole candidate space, so answers are cached under the client's
  /// own option signature.
  bool auto_tune = false;

  // --- Observability (docs/OBSERVABILITY.md) ----------------------------

  /// When non-null, the engine keeps serve-layer counters, gauges and
  /// latency/batch-size histograms in this registry. Must outlive the
  /// engine; instruments are shared with whoever else snapshots it.
  MetricsRegistry* metrics = nullptr;
  /// When non-null, the dispatcher records admission/batch/cache/solve
  /// spans into its own lane (and the update builder publish/retire spans
  /// into its lane), and solves propagate the recorder into the engines
  /// (overriding SsspOptions::trace for served queries). Must outlive the
  /// engine.
  TraceRecorder* trace = nullptr;
};

/// What a submitted query's future resolves to.
struct QueryResult {
  std::shared_ptr<const QueryAnswer> answer;
  bool from_cache = false;
  /// Graph version the answer was computed (or cache-validated) at; 0 on
  /// static engines. The snapshot actually solved on, not the newest one.
  std::uint64_t version = 0;
  std::chrono::steady_clock::time_point completed_at;
};

/// What an apply_updates() future resolves to (dynamic engines only).
struct UpdateResult {
  std::uint64_t version = 0;  ///< graph version the batch produced
  std::size_t ops = 0;
  bool compacted = false;
  std::chrono::steady_clock::time_point completed_at;
};

/// Counter snapshot for throughput/SLO reporting.
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t batches = 0;
  std::uint64_t single_solves = 0;  ///< roots served by the per-root engine
  std::uint64_t multi_sweeps = 0;   ///< batched multi-root sweeps executed
  std::uint64_t updates = 0;        ///< update batches applied (dynamic mode)
  std::uint64_t graph_version = 0;  ///< latest published version (dynamic)
  // MVCC snapshot health (dynamic mode; docs/SNAPSHOTS.md).
  std::uint64_t snapshots_published = 0;
  std::uint64_t snapshots_reclaimed = 0;
  std::uint64_t snapshots_live = 0;
  std::uint64_t oldest_pinned_version = 0;
  /// batch_size_histogram[s] = closed batches of size s (index 0 unused).
  std::vector<std::uint64_t> batch_size_histogram;
  ResultCache::Counters cache;
};

class QueryEngine {
 public:
  /// Static mode: `graph` must outlive the engine. Spawns the session's
  /// rank threads and the dispatcher immediately.
  QueryEngine(const CsrGraph& graph, ServeConfig config);

  /// Dynamic mode: serves a mutable graph (docs/DYNAMIC.md). `graph` must
  /// outlive the engine, have snapshots enabled (throws
  /// std::invalid_argument otherwise) and, while the engine lives, be
  /// mutated *only* through apply_updates(). Queries are answered on
  /// pinned snapshots and cached under the version actually solved on, so
  /// a stale cached answer is never served — in fenced and MVCC mode
  /// alike.
  QueryEngine(DynamicGraph& graph, ServeConfig config);

  /// Fails queued queries with JobCancelled, finishes the in-flight batch
  /// and update, stops the builder, the dispatcher and the session.
  /// Outstanding SnapshotRefs held by clients survive the engine.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enqueues a query. Root/option validation happens here (throws
  /// std::out_of_range on a bad root, std::invalid_argument on malformed
  /// options); the future resolves once the answer is served from cache or
  /// computed. Thread-safe.
  std::future<QueryResult> submit(vid_t root, const SsspOptions& options);

  /// Convenience: submit + wait.
  QueryResult query(vid_t root, const SsspOptions& options);

  /// Dynamic mode only (throws std::logic_error on a static engine):
  /// enqueues one atomic mutation batch. MVCC mode applies it on the
  /// builder thread, concurrently with query serving; fenced mode applies
  /// it on the dispatcher in admission order (queries submitted before it
  /// see the old graph, queries after it the new one). The future resolves
  /// with the new graph version, or with the DynamicGraph::apply
  /// validation error (in which case the graph is unchanged). Thread-safe.
  std::future<UpdateResult> apply_updates(EdgeBatch batch);

  /// Convenience: apply_updates + wait.
  UpdateResult update(EdgeBatch batch);

  /// Latest published graph version (0 on static engines). Thread-safe.
  std::uint64_t graph_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Pins the latest published snapshot (dynamic mode; throws
  /// std::logic_error on a static engine). What a batch closing right now
  /// would serve on. Thread-safe.
  SnapshotRef current_snapshot() const;

  /// Fails every queued-but-unbatched query and unapplied update with
  /// JobCancelled; returns how many. Queries already in a closed batch
  /// still complete. Thread-safe.
  std::size_t cancel_pending();

  ServeStats stats() const;
  const ServeConfig& config() const { return config_; }
  vid_t num_vertices() const { return num_vertices_; }

 private:
  struct Pending {
    enum class Kind : std::uint8_t { kQuery, kUpdate };
    Kind kind = Kind::kQuery;
    vid_t root = 0;
    SsspOptions options;
    std::string signature;
    std::promise<QueryResult> promise;          ///< kQuery only
    EdgeBatch updates;                          ///< kUpdate only
    std::promise<UpdateResult> update_promise;  ///< kUpdate only
    std::chrono::steady_clock::time_point submitted_at;

    void fail(std::exception_ptr error) {
      if (kind == Kind::kQuery) {
        promise.set_exception(std::move(error));
      } else {
        update_promise.set_exception(std::move(error));
      }
    }
  };

  /// Delegate of both public constructors.
  QueryEngine(const CsrGraph* graph, DynamicGraph* dynamic,
              ServeConfig config);

  bool mvcc() const { return dynamic_ != nullptr && !config_.fence_updates; }

  /// Dispatcher ServiceThread step: closes at most one batch and serves
  /// it (fenced mode also applies updates here, in FIFO order).
  bool dispatch_step();
  /// Builder ServiceThread step (MVCC mode only): applies one update.
  bool builder_step();
  void serve_batch(std::vector<Pending> batch);
  /// Applies one update batch and publishes the new version. Runs on the
  /// builder thread (MVCC) or the dispatcher (fenced) — the only mutator
  /// of the DynamicGraph either way.
  void serve_update(Pending update);
  /// Pushes cache counters into the metrics registry.
  void refresh_cache_metrics();
  /// Reclaims droppable snapshots and refreshes the snapshot gauges
  /// (graph version, live count, oldest pinned, retire latency).
  void refresh_snapshot_metrics();
  /// Computes answers for `roots` (unique, uncached) under `options`,
  /// reading the graph through `snap` (null = static mode).
  std::vector<std::shared_ptr<const QueryAnswer>> compute(
      const std::vector<vid_t>& roots, const SsspOptions& options,
      const SnapshotRef& snap);
  /// Dispatcher-thread-only: one throwaway solve for the auto-tuner's
  /// probe pass — answers are discarded, only the statistics come back.
  SsspStats probe_solve(vid_t root, const SsspOptions& options,
                        const CsrGraph* graph, const SnapshotRef& snap,
                        const std::shared_ptr<void>& keepalive);
  /// Dispatcher-thread-only: sync the per-rank edge views to (`delta`,
  /// `snap`) — patched forward through the manager's patch log when
  /// possible, rebuilt otherwise.
  void ensure_views(std::uint32_t delta, const SnapshotRef& snap);

  /// Static mode only; null when serving a DynamicGraph.
  const CsrGraph* const static_graph_;
  /// Null in static mode. Mutated only on the builder (MVCC) or
  /// dispatcher (fenced) thread.
  DynamicGraph* const dynamic_;
  /// dynamic_->snapshot_manager(), cached; null in static mode.
  SnapshotManager* const manager_;
  const ServeConfig config_;
  /// Vertex count is version-invariant (updates never add vertices).
  const vid_t num_vertices_;
  BlockPartition part_;
  ResultCache cache_;
  MachineSession session_;
  /// Per-version learned engine configs (config_.auto_tune); probed and
  /// read on the dispatcher thread only, but internally thread-safe.
  AutoTuner tuner_;
  /// Mirror of the latest published version for lock-free reads.
  std::atomic<std::uint64_t> version_{0};

  mutable Mutex mutex_;
  std::deque<Pending> queue_ MPS_GUARDED_BY(mutex_);
  /// MVCC mode: updates wait here for the builder instead of fencing the
  /// query FIFO. Unused (always empty) in fenced and static mode.
  std::deque<Pending> update_queue_ MPS_GUARDED_BY(mutex_);
  bool accepting_ MPS_GUARDED_BY(mutex_) = true;
  ServeStats stats_ MPS_GUARDED_BY(mutex_);

  // Dispatcher-thread-only state (no lock: one owner).
  std::vector<LocalEdgeView> views_;
  std::uint32_t views_delta_ = 0;
  /// Publish sequence the views reflect (0 = never built).
  std::uint64_t views_seq_ = 0;
  bool views_ready_ = false;
  /// Dispatcher trace lane, registered on the dispatcher thread's first
  /// step (null when config_.trace is null).
  TraceLane* dlane_ = nullptr;
  /// Builder trace lane (MVCC mode; fenced updates trace into dlane_).
  TraceLane* blane_ = nullptr;

  // Metrics handles (null when config_.metrics is null). The registry owns
  // the instruments; references stay valid for its lifetime.
  Counter* m_submitted_ = nullptr;
  Counter* m_completed_ = nullptr;
  Counter* m_cache_hits_ = nullptr;
  Counter* m_cache_misses_ = nullptr;
  Counter* m_updates_ = nullptr;
  /// Global synchronizations (allreduces + barriers) the per-root solves
  /// paid, cumulatively — the latency tax async_cold_queries removes.
  Counter* m_barriers_ = nullptr;
  Gauge* g_queue_depth_ = nullptr;
  Gauge* g_graph_version_ = nullptr;
  Gauge* g_cache_evictions_ = nullptr;
  Gauge* g_cache_version_misses_ = nullptr;
  Gauge* g_cache_invalidations_ = nullptr;
  Gauge* g_snapshots_live_ = nullptr;
  Gauge* g_oldest_pinned_ = nullptr;
  Gauge* g_retire_latency_ = nullptr;
  Histogram* h_latency_ = nullptr;
  Histogram* h_batch_size_ = nullptr;

  std::unique_ptr<ServiceThread> dispatcher_;  ///< stopped first
  /// MVCC mode only: the single thread that mutates the DynamicGraph.
  std::unique_ptr<ServiceThread> builder_;
};

}  // namespace parsssp
