file(REMOVE_RECURSE
  "CMakeFiles/graph500_sssp.dir/graph500_sssp.cpp.o"
  "CMakeFiles/graph500_sssp.dir/graph500_sssp.cpp.o.d"
  "graph500_sssp"
  "graph500_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph500_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
