# Empty dependencies file for graph500_sssp.
# This may be replaced when dependencies are built.
