# Empty compiler generated dependencies file for sssp_cli.
# This may be replaced when dependencies are built.
