file(REMOVE_RECURSE
  "CMakeFiles/sssp_cli.dir/sssp_cli.cpp.o"
  "CMakeFiles/sssp_cli.dir/sssp_cli.cpp.o.d"
  "sssp_cli"
  "sssp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
