file(REMOVE_RECURSE
  "CMakeFiles/test_engine_stats.dir/test_engine_stats.cpp.o"
  "CMakeFiles/test_engine_stats.dir/test_engine_stats.cpp.o.d"
  "test_engine_stats"
  "test_engine_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
