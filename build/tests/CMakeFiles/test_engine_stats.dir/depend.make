# Empty dependencies file for test_engine_stats.
# This may be replaced when dependencies are built.
