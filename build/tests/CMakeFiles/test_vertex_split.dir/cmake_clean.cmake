file(REMOVE_RECURSE
  "CMakeFiles/test_vertex_split.dir/test_vertex_split.cpp.o"
  "CMakeFiles/test_vertex_split.dir/test_vertex_split.cpp.o.d"
  "test_vertex_split"
  "test_vertex_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vertex_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
