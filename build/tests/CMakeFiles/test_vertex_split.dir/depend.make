# Empty dependencies file for test_vertex_split.
# This may be replaced when dependencies are built.
