# Empty compiler generated dependencies file for test_traffic_stats.
# This may be replaced when dependencies are built.
