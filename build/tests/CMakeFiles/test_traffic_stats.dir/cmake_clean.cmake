file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_stats.dir/test_traffic_stats.cpp.o"
  "CMakeFiles/test_traffic_stats.dir/test_traffic_stats.cpp.o.d"
  "test_traffic_stats"
  "test_traffic_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
