file(REMOVE_RECURSE
  "CMakeFiles/test_bucket_boundaries.dir/test_bucket_boundaries.cpp.o"
  "CMakeFiles/test_bucket_boundaries.dir/test_bucket_boundaries.cpp.o.d"
  "test_bucket_boundaries"
  "test_bucket_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bucket_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
