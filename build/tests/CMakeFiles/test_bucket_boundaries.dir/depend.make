# Empty dependencies file for test_bucket_boundaries.
# This may be replaced when dependencies are built.
