# Empty compiler generated dependencies file for test_batch_and_dial.
# This may be replaced when dependencies are built.
