file(REMOVE_RECURSE
  "CMakeFiles/test_batch_and_dial.dir/test_batch_and_dial.cpp.o"
  "CMakeFiles/test_batch_and_dial.dir/test_batch_and_dial.cpp.o.d"
  "test_batch_and_dial"
  "test_batch_and_dial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_and_dial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
