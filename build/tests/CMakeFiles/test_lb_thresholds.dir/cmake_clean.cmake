file(REMOVE_RECURSE
  "CMakeFiles/test_lb_thresholds.dir/test_lb_thresholds.cpp.o"
  "CMakeFiles/test_lb_thresholds.dir/test_lb_thresholds.cpp.o.d"
  "test_lb_thresholds"
  "test_lb_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
