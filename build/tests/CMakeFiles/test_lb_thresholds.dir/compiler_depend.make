# Empty compiler generated dependencies file for test_lb_thresholds.
# This may be replaced when dependencies are built.
