file(REMOVE_RECURSE
  "CMakeFiles/test_social_gen.dir/test_social_gen.cpp.o"
  "CMakeFiles/test_social_gen.dir/test_social_gen.cpp.o.d"
  "test_social_gen"
  "test_social_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_social_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
