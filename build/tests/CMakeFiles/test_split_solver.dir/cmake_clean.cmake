file(REMOVE_RECURSE
  "CMakeFiles/test_split_solver.dir/test_split_solver.cpp.o"
  "CMakeFiles/test_split_solver.dir/test_split_solver.cpp.o.d"
  "test_split_solver"
  "test_split_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
