# Empty dependencies file for test_dist_builder.
# This may be replaced when dependencies are built.
