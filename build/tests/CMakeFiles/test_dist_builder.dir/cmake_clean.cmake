file(REMOVE_RECURSE
  "CMakeFiles/test_dist_builder.dir/test_dist_builder.cpp.o"
  "CMakeFiles/test_dist_builder.dir/test_dist_builder.cpp.o.d"
  "test_dist_builder"
  "test_dist_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
