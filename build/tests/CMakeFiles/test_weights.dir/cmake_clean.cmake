file(REMOVE_RECURSE
  "CMakeFiles/test_weights.dir/test_weights.cpp.o"
  "CMakeFiles/test_weights.dir/test_weights.cpp.o.d"
  "test_weights"
  "test_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
