file(REMOVE_RECURSE
  "CMakeFiles/test_bfs_engine.dir/test_bfs_engine.cpp.o"
  "CMakeFiles/test_bfs_engine.dir/test_bfs_engine.cpp.o.d"
  "test_bfs_engine"
  "test_bfs_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfs_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
