# Empty dependencies file for test_bfs_engine.
# This may be replaced when dependencies are built.
