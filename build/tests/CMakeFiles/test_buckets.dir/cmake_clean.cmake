file(REMOVE_RECURSE
  "CMakeFiles/test_buckets.dir/test_buckets.cpp.o"
  "CMakeFiles/test_buckets.dir/test_buckets.cpp.o.d"
  "test_buckets"
  "test_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
