# Empty compiler generated dependencies file for test_buckets.
# This may be replaced when dependencies are built.
