file(REMOVE_RECURSE
  "CMakeFiles/test_seq_sssp.dir/test_seq_sssp.cpp.o"
  "CMakeFiles/test_seq_sssp.dir/test_seq_sssp.cpp.o.d"
  "test_seq_sssp"
  "test_seq_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
