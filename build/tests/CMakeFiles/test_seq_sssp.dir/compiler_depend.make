# Empty compiler generated dependencies file for test_seq_sssp.
# This may be replaced when dependencies are built.
