file(REMOVE_RECURSE
  "CMakeFiles/test_dist_validate.dir/test_dist_validate.cpp.o"
  "CMakeFiles/test_dist_validate.dir/test_dist_validate.cpp.o.d"
  "test_dist_validate"
  "test_dist_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
