# Empty dependencies file for test_dist_validate.
# This may be replaced when dependencies are built.
