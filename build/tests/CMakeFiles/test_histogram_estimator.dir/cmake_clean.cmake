file(REMOVE_RECURSE
  "CMakeFiles/test_histogram_estimator.dir/test_histogram_estimator.cpp.o"
  "CMakeFiles/test_histogram_estimator.dir/test_histogram_estimator.cpp.o.d"
  "test_histogram_estimator"
  "test_histogram_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_histogram_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
