# Empty dependencies file for test_dist_graph.
# This may be replaced when dependencies are built.
