file(REMOVE_RECURSE
  "CMakeFiles/test_degree_stats.dir/test_degree_stats.cpp.o"
  "CMakeFiles/test_degree_stats.dir/test_degree_stats.cpp.o.d"
  "test_degree_stats"
  "test_degree_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degree_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
