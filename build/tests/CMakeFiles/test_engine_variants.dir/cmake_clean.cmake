file(REMOVE_RECURSE
  "CMakeFiles/test_engine_variants.dir/test_engine_variants.cpp.o"
  "CMakeFiles/test_engine_variants.dir/test_engine_variants.cpp.o.d"
  "test_engine_variants"
  "test_engine_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
