# Empty dependencies file for test_engine_variants.
# This may be replaced when dependencies are built.
