file(REMOVE_RECURSE
  "CMakeFiles/test_delta_choice.dir/test_delta_choice.cpp.o"
  "CMakeFiles/test_delta_choice.dir/test_delta_choice.cpp.o.d"
  "test_delta_choice"
  "test_delta_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
