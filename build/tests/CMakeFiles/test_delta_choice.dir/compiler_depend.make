# Empty compiler generated dependencies file for test_delta_choice.
# This may be replaced when dependencies are built.
