file(REMOVE_RECURSE
  "CMakeFiles/test_snap_io.dir/test_snap_io.cpp.o"
  "CMakeFiles/test_snap_io.dir/test_snap_io.cpp.o.d"
  "test_snap_io"
  "test_snap_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
