# Empty compiler generated dependencies file for test_snap_io.
# This may be replaced when dependencies are built.
