# Empty dependencies file for test_parent_tree.
# This may be replaced when dependencies are built.
