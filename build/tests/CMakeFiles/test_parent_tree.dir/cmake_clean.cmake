file(REMOVE_RECURSE
  "CMakeFiles/test_parent_tree.dir/test_parent_tree.cpp.o"
  "CMakeFiles/test_parent_tree.dir/test_parent_tree.cpp.o.d"
  "test_parent_tree"
  "test_parent_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parent_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
