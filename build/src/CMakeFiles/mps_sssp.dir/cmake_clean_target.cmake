file(REMOVE_RECURSE
  "libmps_sssp.a"
)
