# Empty compiler generated dependencies file for mps_sssp.
# This may be replaced when dependencies are built.
