
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_util/runner.cpp" "src/CMakeFiles/mps_sssp.dir/bench_util/runner.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/bench_util/runner.cpp.o.d"
  "/root/repo/src/bench_util/stats_io.cpp" "src/CMakeFiles/mps_sssp.dir/bench_util/stats_io.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/bench_util/stats_io.cpp.o.d"
  "/root/repo/src/bench_util/table.cpp" "src/CMakeFiles/mps_sssp.dir/bench_util/table.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/bench_util/table.cpp.o.d"
  "/root/repo/src/core/bfs_engine.cpp" "src/CMakeFiles/mps_sssp.dir/core/bfs_engine.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/bfs_engine.cpp.o.d"
  "/root/repo/src/core/buckets.cpp" "src/CMakeFiles/mps_sssp.dir/core/buckets.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/buckets.cpp.o.d"
  "/root/repo/src/core/delta_choice.cpp" "src/CMakeFiles/mps_sssp.dir/core/delta_choice.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/delta_choice.cpp.o.d"
  "/root/repo/src/core/delta_engine.cpp" "src/CMakeFiles/mps_sssp.dir/core/delta_engine.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/delta_engine.cpp.o.d"
  "/root/repo/src/core/dist_builder.cpp" "src/CMakeFiles/mps_sssp.dir/core/dist_builder.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/dist_builder.cpp.o.d"
  "/root/repo/src/core/dist_graph.cpp" "src/CMakeFiles/mps_sssp.dir/core/dist_graph.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/dist_graph.cpp.o.d"
  "/root/repo/src/core/dist_validate.cpp" "src/CMakeFiles/mps_sssp.dir/core/dist_validate.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/dist_validate.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/CMakeFiles/mps_sssp.dir/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/hybrid.cpp.o.d"
  "/root/repo/src/core/instrumentation.cpp" "src/CMakeFiles/mps_sssp.dir/core/instrumentation.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/instrumentation.cpp.o.d"
  "/root/repo/src/core/lb_thresholds.cpp" "src/CMakeFiles/mps_sssp.dir/core/lb_thresholds.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/lb_thresholds.cpp.o.d"
  "/root/repo/src/core/load_balance.cpp" "src/CMakeFiles/mps_sssp.dir/core/load_balance.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/load_balance.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/CMakeFiles/mps_sssp.dir/core/options.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/options.cpp.o.d"
  "/root/repo/src/core/push_pull.cpp" "src/CMakeFiles/mps_sssp.dir/core/push_pull.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/push_pull.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/CMakeFiles/mps_sssp.dir/core/solver.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/solver.cpp.o.d"
  "/root/repo/src/core/split_solver.cpp" "src/CMakeFiles/mps_sssp.dir/core/split_solver.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/split_solver.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/mps_sssp.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/core/validate.cpp.o.d"
  "/root/repo/src/graph/builders.cpp" "src/CMakeFiles/mps_sssp.dir/graph/builders.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/builders.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/mps_sssp.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/degree_stats.cpp" "src/CMakeFiles/mps_sssp.dir/graph/degree_stats.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/degree_stats.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/mps_sssp.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/graph_algos.cpp" "src/CMakeFiles/mps_sssp.dir/graph/graph_algos.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/graph_algos.cpp.o.d"
  "/root/repo/src/graph/rmat.cpp" "src/CMakeFiles/mps_sssp.dir/graph/rmat.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/rmat.cpp.o.d"
  "/root/repo/src/graph/snap_io.cpp" "src/CMakeFiles/mps_sssp.dir/graph/snap_io.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/snap_io.cpp.o.d"
  "/root/repo/src/graph/social_gen.cpp" "src/CMakeFiles/mps_sssp.dir/graph/social_gen.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/social_gen.cpp.o.d"
  "/root/repo/src/graph/vertex_split.cpp" "src/CMakeFiles/mps_sssp.dir/graph/vertex_split.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/vertex_split.cpp.o.d"
  "/root/repo/src/graph/weights.cpp" "src/CMakeFiles/mps_sssp.dir/graph/weights.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/graph/weights.cpp.o.d"
  "/root/repo/src/runtime/collectives.cpp" "src/CMakeFiles/mps_sssp.dir/runtime/collectives.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/runtime/collectives.cpp.o.d"
  "/root/repo/src/runtime/machine.cpp" "src/CMakeFiles/mps_sssp.dir/runtime/machine.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/runtime/machine.cpp.o.d"
  "/root/repo/src/runtime/mailbox.cpp" "src/CMakeFiles/mps_sssp.dir/runtime/mailbox.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/runtime/mailbox.cpp.o.d"
  "/root/repo/src/runtime/partition.cpp" "src/CMakeFiles/mps_sssp.dir/runtime/partition.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/runtime/partition.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/mps_sssp.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/runtime/topology.cpp" "src/CMakeFiles/mps_sssp.dir/runtime/topology.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/runtime/topology.cpp.o.d"
  "/root/repo/src/runtime/traffic_stats.cpp" "src/CMakeFiles/mps_sssp.dir/runtime/traffic_stats.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/runtime/traffic_stats.cpp.o.d"
  "/root/repo/src/seq/bellman_ford.cpp" "src/CMakeFiles/mps_sssp.dir/seq/bellman_ford.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/seq/bellman_ford.cpp.o.d"
  "/root/repo/src/seq/delta_stepping.cpp" "src/CMakeFiles/mps_sssp.dir/seq/delta_stepping.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/seq/delta_stepping.cpp.o.d"
  "/root/repo/src/seq/dial.cpp" "src/CMakeFiles/mps_sssp.dir/seq/dial.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/seq/dial.cpp.o.d"
  "/root/repo/src/seq/dijkstra.cpp" "src/CMakeFiles/mps_sssp.dir/seq/dijkstra.cpp.o" "gcc" "src/CMakeFiles/mps_sssp.dir/seq/dijkstra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
