file(REMOVE_RECURSE
  "CMakeFiles/tabG_heuristic_validation.dir/tabG_heuristic_validation.cpp.o"
  "CMakeFiles/tabG_heuristic_validation.dir/tabG_heuristic_validation.cpp.o.d"
  "tabG_heuristic_validation"
  "tabG_heuristic_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabG_heuristic_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
