# Empty dependencies file for tabG_heuristic_validation.
# This may be replaced when dependencies are built.
