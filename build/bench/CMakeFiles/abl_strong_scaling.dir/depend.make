# Empty dependencies file for abl_strong_scaling.
# This may be replaced when dependencies are built.
