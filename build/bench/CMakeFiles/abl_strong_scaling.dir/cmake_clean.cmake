file(REMOVE_RECURSE
  "CMakeFiles/abl_strong_scaling.dir/abl_strong_scaling.cpp.o"
  "CMakeFiles/abl_strong_scaling.dir/abl_strong_scaling.cpp.o.d"
  "abl_strong_scaling"
  "abl_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
