# Empty dependencies file for fig03_phases_relaxations.
# This may be replaced when dependencies are built.
