file(REMOVE_RECURSE
  "CMakeFiles/fig03_phases_relaxations.dir/fig03_phases_relaxations.cpp.o"
  "CMakeFiles/fig03_phases_relaxations.dir/fig03_phases_relaxations.cpp.o.d"
  "fig03_phases_relaxations"
  "fig03_phases_relaxations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_phases_relaxations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
