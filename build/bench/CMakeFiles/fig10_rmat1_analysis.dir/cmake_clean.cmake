file(REMOVE_RECURSE
  "CMakeFiles/fig10_rmat1_analysis.dir/fig10_rmat1_analysis.cpp.o"
  "CMakeFiles/fig10_rmat1_analysis.dir/fig10_rmat1_analysis.cpp.o.d"
  "fig10_rmat1_analysis"
  "fig10_rmat1_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rmat1_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
