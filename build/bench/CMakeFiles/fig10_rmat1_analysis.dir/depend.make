# Empty dependencies file for fig10_rmat1_analysis.
# This may be replaced when dependencies are built.
