# Empty compiler generated dependencies file for fig06_pull_example.
# This may be replaced when dependencies are built.
