# Empty dependencies file for fig08_max_degree.
# This may be replaced when dependencies are built.
