file(REMOVE_RECURSE
  "CMakeFiles/fig08_max_degree.dir/fig08_max_degree.cpp.o"
  "CMakeFiles/fig08_max_degree.dir/fig08_max_degree.cpp.o.d"
  "fig08_max_degree"
  "fig08_max_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_max_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
