# Empty dependencies file for abl_decision_heuristic.
# This may be replaced when dependencies are built.
