file(REMOVE_RECURSE
  "CMakeFiles/abl_decision_heuristic.dir/abl_decision_heuristic.cpp.o"
  "CMakeFiles/abl_decision_heuristic.dir/abl_decision_heuristic.cpp.o.d"
  "abl_decision_heuristic"
  "abl_decision_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_decision_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
