file(REMOVE_RECURSE
  "CMakeFiles/fig07_push_pull_buckets.dir/fig07_push_pull_buckets.cpp.o"
  "CMakeFiles/fig07_push_pull_buckets.dir/fig07_push_pull_buckets.cpp.o.d"
  "fig07_push_pull_buckets"
  "fig07_push_pull_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_push_pull_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
