# Empty dependencies file for fig07_push_pull_buckets.
# This may be replaced when dependencies are built.
