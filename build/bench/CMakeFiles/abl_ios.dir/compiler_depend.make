# Empty compiler generated dependencies file for abl_ios.
# This may be replaced when dependencies are built.
