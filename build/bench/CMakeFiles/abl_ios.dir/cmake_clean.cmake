file(REMOVE_RECURSE
  "CMakeFiles/abl_ios.dir/abl_ios.cpp.o"
  "CMakeFiles/abl_ios.dir/abl_ios.cpp.o.d"
  "abl_ios"
  "abl_ios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
