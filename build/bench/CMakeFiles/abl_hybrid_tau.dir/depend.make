# Empty dependencies file for abl_hybrid_tau.
# This may be replaced when dependencies are built.
