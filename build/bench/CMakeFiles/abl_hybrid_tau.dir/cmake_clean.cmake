file(REMOVE_RECURSE
  "CMakeFiles/abl_hybrid_tau.dir/abl_hybrid_tau.cpp.o"
  "CMakeFiles/abl_hybrid_tau.dir/abl_hybrid_tau.cpp.o.d"
  "abl_hybrid_tau"
  "abl_hybrid_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hybrid_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
