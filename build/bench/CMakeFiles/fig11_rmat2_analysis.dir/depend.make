# Empty dependencies file for fig11_rmat2_analysis.
# This may be replaced when dependencies are built.
