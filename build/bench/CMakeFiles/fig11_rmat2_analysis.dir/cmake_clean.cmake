file(REMOVE_RECURSE
  "CMakeFiles/fig11_rmat2_analysis.dir/fig11_rmat2_analysis.cpp.o"
  "CMakeFiles/fig11_rmat2_analysis.dir/fig11_rmat2_analysis.cpp.o.d"
  "fig11_rmat2_analysis"
  "fig11_rmat2_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rmat2_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
