# Empty dependencies file for fig12_large_systems.
# This may be replaced when dependencies are built.
