file(REMOVE_RECURSE
  "CMakeFiles/fig12_large_systems.dir/fig12_large_systems.cpp.o"
  "CMakeFiles/fig12_large_systems.dir/fig12_large_systems.cpp.o.d"
  "fig12_large_systems"
  "fig12_large_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_large_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
