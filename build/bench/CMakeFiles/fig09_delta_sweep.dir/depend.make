# Empty dependencies file for fig09_delta_sweep.
# This may be replaced when dependencies are built.
