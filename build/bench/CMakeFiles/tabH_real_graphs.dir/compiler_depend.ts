# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tabH_real_graphs.
