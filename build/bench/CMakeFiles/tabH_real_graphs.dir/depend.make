# Empty dependencies file for tabH_real_graphs.
# This may be replaced when dependencies are built.
