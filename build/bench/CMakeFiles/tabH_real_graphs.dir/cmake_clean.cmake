file(REMOVE_RECURSE
  "CMakeFiles/tabH_real_graphs.dir/tabH_real_graphs.cpp.o"
  "CMakeFiles/tabH_real_graphs.dir/tabH_real_graphs.cpp.o.d"
  "tabH_real_graphs"
  "tabH_real_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabH_real_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
