file(REMOVE_RECURSE
  "CMakeFiles/fig04_long_phase_dominance.dir/fig04_long_phase_dominance.cpp.o"
  "CMakeFiles/fig04_long_phase_dominance.dir/fig04_long_phase_dominance.cpp.o.d"
  "fig04_long_phase_dominance"
  "fig04_long_phase_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_long_phase_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
