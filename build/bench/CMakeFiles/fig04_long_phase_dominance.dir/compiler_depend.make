# Empty compiler generated dependencies file for fig04_long_phase_dominance.
# This may be replaced when dependencies are built.
