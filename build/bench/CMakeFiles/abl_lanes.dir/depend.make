# Empty dependencies file for abl_lanes.
# This may be replaced when dependencies are built.
