file(REMOVE_RECURSE
  "CMakeFiles/abl_lanes.dir/abl_lanes.cpp.o"
  "CMakeFiles/abl_lanes.dir/abl_lanes.cpp.o.d"
  "abl_lanes"
  "abl_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
