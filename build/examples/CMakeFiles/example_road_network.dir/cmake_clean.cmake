file(REMOVE_RECURSE
  "CMakeFiles/example_road_network.dir/road_network.cpp.o"
  "CMakeFiles/example_road_network.dir/road_network.cpp.o.d"
  "example_road_network"
  "example_road_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_road_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
