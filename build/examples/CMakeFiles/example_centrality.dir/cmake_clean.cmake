file(REMOVE_RECURSE
  "CMakeFiles/example_centrality.dir/centrality.cpp.o"
  "CMakeFiles/example_centrality.dir/centrality.cpp.o.d"
  "example_centrality"
  "example_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
