# Empty compiler generated dependencies file for example_centrality.
# This may be replaced when dependencies are built.
