file(REMOVE_RECURSE
  "CMakeFiles/example_push_pull_demo.dir/push_pull_demo.cpp.o"
  "CMakeFiles/example_push_pull_demo.dir/push_pull_demo.cpp.o.d"
  "example_push_pull_demo"
  "example_push_pull_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_push_pull_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
