# Empty dependencies file for example_push_pull_demo.
# This may be replaced when dependencies are built.
