// Ablation: strong scaling. The paper evaluates weak scaling (fixed
// vertices per node); operators usually also care about speeding up a
// *fixed* problem. This bench holds the graph constant and grows the
// machine, showing where per-rank work stops amortizing the per-phase
// synchronization — and that OPT (fewer phases) keeps scaling after Del
// (more phases) flattens.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const std::uint32_t scale = 13;
    const CsrGraph g = build_rmat_graph(family, scale);
    const auto roots = sample_roots(g, 2, 1);

    TextTable t(std::string("strong scaling, ") + family_name(family) +
                " scale " + std::to_string(scale) + " (fixed graph)");
    std::vector<std::string> header{"algorithm"};
    const std::vector<rank_t> rank_counts{1, 2, 4, 8, 16, 32, 64};
    for (const auto r : rank_counts) {
      header.push_back(std::to_string(r) + "r");
    }
    t.set_header(header);

    struct Algo {
      const char* name;
      SsspOptions options;
    };
    for (const Algo& a : {Algo{"Del-25", SsspOptions::del(25)},
                          Algo{"OPT-25", SsspOptions::opt(25)}}) {
      std::vector<std::string> row{a.name};
      double base_time = 0;
      double last_time = 0;
      for (const rank_t ranks : rank_counts) {
        Solver solver(g, {.machine = {.num_ranks = ranks}});
        const RunSummary s = run_roots(solver, a.options, roots);
        if (ranks == 1) base_time = s.mean_model_time_s;
        last_time = s.mean_model_time_s;
        row.push_back(TextTable::num(base_time / s.mean_model_time_s, 2) +
                      "x");
      }
      row.back() += " (" + TextTable::num(last_time * 1e3, 3) + "ms)";
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  print_paper_note(std::cout,
                   "speedup over 1 rank; the fast algorithm has less work "
                   "to amortize per phase, so its *relative* speedup "
                   "saturates earlier, while its absolute time (last "
                   "column) stays well ahead — the classic strong-scaling "
                   "trade-off behind the paper's weak-scaling methodology");
  return 0;
}
