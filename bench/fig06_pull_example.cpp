// Fig 5/6: the worked push-vs-pull example. The paper's graph: a root
// connected to a clique of high-degree vertices, which in turn connect to a
// set of low-degree tail vertices. Running Delta-stepping with Delta=5,
// the clique's bucket is processed far cheaper by pulling from the tail
// than by pushing every clique edge (paper: cost 30 push vs 10 pull for
// that iteration; 40 vs 20 total).
#include <iostream>

#include "bench_util/table.hpp"
#include "core/solver.hpp"
#include "graph/builders.hpp"

int main() {
  using namespace parsssp;
  const CsrGraph g = CsrGraph::from_edges(make_fig6_example());
  Solver solver(g, {.machine = {.num_ranks = 2}});

  TextTable t("Fig 6: forced push vs forced pull on the example graph "
              "(Delta=5)");
  t.set_header({"mode", "long-push relax", "pull requests", "pull responses",
                "total relax"});
  for (const bool pull : {false, true}) {
    SsspOptions o = SsspOptions::prune(5);
    o.ios = false;
    o.prune_mode = pull ? PruneMode::kPullOnly : PruneMode::kPushOnly;
    const SsspResult r = solver.solve(0, o);
    t.add_row({pull ? "pull" : "push",
               TextTable::num(r.stats.long_push_relaxations),
               TextTable::num(r.stats.pull_requests),
               TextTable::num(r.stats.pull_responses),
               TextTable::num(r.stats.total_relaxations())});
  }
  t.print(std::cout);

  // Per-bucket view under the decision heuristic.
  SsspOptions heur = SsspOptions::prune(5);
  heur.ios = false;
  heur.collect_bucket_details = true;
  const SsspResult r = solver.solve(0, heur);
  TextTable d("decision heuristic per bucket");
  d.set_header({"bucket", "push-vol est", "pull-vol est", "chose"});
  for (const BucketDetail& b : r.stats.bucket_details) {
    d.add_row({std::to_string(b.bucket),
               TextTable::num(b.push_volume_estimate),
               TextTable::num(b.pull_volume_estimate),
               b.used_pull ? "pull" : "push"});
  }
  std::cout << '\n';
  d.print(std::cout);
  print_paper_note(std::cout,
                   "the clique bucket (B_2) is cheaper pulled: the tail "
                   "sends few requests while push floods every clique edge");
  return 0;
}
