// Serving-subsystem acceptance benchmark, three comparisons on RMAT-1 at a
// fixed rank count:
//
//   (a) persistent MachineSession vs spawn-per-query Solver::solve on
//       back-to-back single-root latency (same work, so the session wins by
//       the thread create/join overhead it amortizes away);
//   (b) batched multi-root serving (QueryEngine, max_batch 8) vs sequential
//       solve_batch over the same roots, in queries/s and aggregate GTEPS;
//   (c) an open-loop Zipf stream against a cached engine: cache hit rate,
//       answer validation against per-root solves, and p50/p95/p99 latency.
//
// Emits a JSON report (argv[1], default BENCH_serve_throughput.json) with
// pass/fail booleans for each comparison alongside the raw numbers.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/stats_io.hpp"
#include "bench_util/table.hpp"
#include "core/solver.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"

namespace parsssp {
namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

constexpr std::uint32_t kScale = 12;
constexpr rank_t kRanks = 8;
constexpr std::uint32_t kDelta = 25;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<vid_t> distinct_roots(const CsrGraph& g, std::size_t n) {
  // 997 is odd and |V| a power of two, so the stride visits distinct
  // vertices; skip isolated ones to keep per-query work comparable.
  std::vector<vid_t> roots;
  for (vid_t v = 0; roots.size() < n && v < g.num_vertices(); ++v) {
    const vid_t cand =
        static_cast<vid_t>((static_cast<std::uint64_t>(v) * 997) %
                           g.num_vertices());
    if (g.degree(cand) > 0) roots.push_back(cand);
  }
  return roots;
}

struct SessionVsSpawn {
  double spawn_mean_s = 0;
  double spawn_p50_s = 0;
  double session_mean_s = 0;
  double session_p50_s = 0;
  bool session_wins = false;
};

SessionVsSpawn run_session_vs_spawn(const CsrGraph& g) {
  const SsspOptions options = SsspOptions::del(kDelta);
  const auto roots = distinct_roots(g, 6);
  constexpr int kWarmup = 4;
  constexpr int kMeasured = 40;

  // Spawn-per-query: every solve() spawns and joins the rank threads.
  Solver solver(g, {.machine = {.num_ranks = kRanks}});
  // Persistent session: rank threads parked between queries. max_batch 1 and
  // no cache make each query exactly one single-root job on the session.
  ServeConfig config;
  config.machine.num_ranks = kRanks;
  config.max_batch = 1;
  config.cache_capacity = 0;
  QueryEngine engine(g, config);

  // Interleave the two paths so load drift hits both sample sets equally.
  std::vector<double> spawn_lat;
  std::vector<double> session_lat;
  for (int q = 0; q < kWarmup + kMeasured; ++q) {
    const vid_t root = roots[static_cast<std::size_t>(q) % roots.size()];
    const auto t0 = Clock::now();
    const auto r = solver.solve(root, options);
    const double spawn_s = seconds_since(t0);
    const auto t1 = Clock::now();
    const QueryResult qr = engine.query(root, options);
    const double session_s = seconds_since(t1);
    if (q >= kWarmup && !r.dist.empty() && qr.answer != nullptr) {
      spawn_lat.push_back(spawn_s);
      session_lat.push_back(session_s);
    }
  }

  const LatencyStats spawn = percentile_stats(std::move(spawn_lat));
  const LatencyStats session = percentile_stats(std::move(session_lat));
  return {.spawn_mean_s = spawn.mean,
          .spawn_p50_s = spawn.p50,
          .session_mean_s = session.mean,
          .session_p50_s = session.p50,
          .session_wins = session.mean < spawn.mean};
}

struct BatchedVsSequential {
  std::size_t num_queries = 0;
  double sequential_elapsed_s = 0;
  double sequential_qps = 0;
  double batched_elapsed_s = 0;
  double batched_qps = 0;
  double sequential_gteps_wall = 0;
  double batched_gteps_wall = 0;
  std::uint64_t multi_sweeps = 0;
  double min_batched_size = 0;  ///< smallest closed batch (want >= 4)
  bool batched_wins = false;
};

BatchedVsSequential run_batched_vs_sequential(const CsrGraph& g) {
  const SsspOptions options = SsspOptions::del(kDelta);
  const auto roots = distinct_roots(g, 32);
  const double edges = static_cast<double>(g.num_undirected_edges());
  BatchedVsSequential out;
  out.num_queries = roots.size();

  Solver solver(g, {.machine = {.num_ranks = kRanks}});
  solver.solve(roots[0], options);  // build views outside the timed region
  const auto t_seq = Clock::now();
  solver.solve_batch(roots, options);
  out.sequential_elapsed_s = seconds_since(t_seq);

  ServeConfig config;
  config.machine.num_ranks = kRanks;
  config.max_batch = 8;
  config.cache_capacity = 0;
  config.batch_window = 5ms;
  QueryEngine engine(g, config);
  engine.query(roots[0], options);  // warm: views + first sweep
  const auto t_batch = Clock::now();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(roots.size());
  for (const vid_t root : roots) futures.push_back(engine.submit(root, options));
  for (auto& f : futures) f.get();
  out.batched_elapsed_s = seconds_since(t_batch);

  const double n = static_cast<double>(roots.size());
  out.sequential_qps = n / out.sequential_elapsed_s;
  out.batched_qps = n / out.batched_elapsed_s;
  out.sequential_gteps_wall = edges * n / out.sequential_elapsed_s / 1e9;
  out.batched_gteps_wall = edges * n / out.batched_elapsed_s / 1e9;
  const ServeStats stats = engine.stats();
  out.multi_sweeps = stats.multi_sweeps;
  for (std::size_t s = 1; s < stats.batch_size_histogram.size(); ++s) {
    if (stats.batch_size_histogram[s] > 0 &&
        (out.min_batched_size == 0 || s < out.min_batched_size)) {
      // The warm-up query closes a size-1 batch; ignore it.
      if (s == 1 && stats.batch_size_histogram[1] == 1) continue;
      out.min_batched_size = static_cast<double>(s);
    }
  }
  out.batched_wins = out.batched_qps > out.sequential_qps;
  return out;
}

struct ZipfCacheRun {
  std::size_t num_queries = 0;
  double elapsed_s = 0;
  double qps = 0;
  double cache_hit_rate = 0;
  std::uint64_t cache_hits = 0;
  bool answers_identical = false;
  LatencyStats latency;
  std::vector<std::uint64_t> batch_histogram;
};

ZipfCacheRun run_zipf_cached(const CsrGraph& g) {
  const SsspOptions options = SsspOptions::del(kDelta);
  WorkloadConfig workload;
  workload.num_queries = 200;
  workload.rate_qps = 1000;  // open loop: arrivals pace the submissions
  workload.dist = RootDist::kZipf;
  workload.zipf_s = 1.2;
  workload.num_roots_domain = 48;
  workload.seed = 7;
  const auto stream = make_open_loop_stream(workload, g.num_vertices());

  ServeConfig config;
  config.machine.num_ranks = kRanks;
  config.max_batch = 8;
  config.cache_capacity = 64;
  QueryEngine engine(g, config);

  std::vector<std::future<QueryResult>> futures;
  std::vector<Clock::time_point> submitted;
  futures.reserve(stream.size());
  submitted.reserve(stream.size());
  const auto start = Clock::now();
  for (const QueryEvent& ev : stream) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(ev.arrival_s));
    if (due > Clock::now()) std::this_thread::sleep_until(due);
    submitted.push_back(Clock::now());
    futures.push_back(engine.submit(ev.root, options));
  }

  ZipfCacheRun out;
  out.num_queries = stream.size();
  std::vector<double> latencies;
  latencies.reserve(stream.size());
  std::vector<std::shared_ptr<const QueryAnswer>> answers;
  answers.reserve(stream.size());
  Clock::time_point last_done = start;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResult r = futures[i].get();
    latencies.push_back(
        std::chrono::duration<double>(r.completed_at - submitted[i]).count());
    last_done = std::max(last_done, r.completed_at);
    answers.push_back(r.answer);
  }
  out.elapsed_s = std::chrono::duration<double>(last_done - start).count();
  out.qps = static_cast<double>(stream.size()) / out.elapsed_s;
  out.latency = percentile_stats(std::move(latencies));

  // Cached and computed answers must both equal an independent per-root
  // solve -- cache hits return stored pointers, so this validates both the
  // multi-root sweeps and the cache's keying.
  Solver oracle(g, {.machine = {.num_ranks = kRanks}});
  std::map<vid_t, std::vector<dist_t>> expected;
  out.answers_identical = true;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    auto [it, fresh] = expected.try_emplace(stream[i].root);
    if (fresh) it->second = oracle.solve(stream[i].root, options).dist;
    if (answers[i] == nullptr || answers[i]->dist != it->second) {
      out.answers_identical = false;
    }
  }

  const ServeStats stats = engine.stats();
  out.cache_hit_rate = stats.cache.hit_rate();
  out.cache_hits = stats.cache.hits;
  out.batch_histogram = stats.batch_size_histogram;
  return out;
}

struct ColdQueryMode {
  std::size_t num_queries = 0;
  LatencyStats sync;
  LatencyStats async;
  bool answers_identical = true;
  bool async_p50_wins = false;
};

// (d) Cold-query latency mode: every query is a cache miss (cache disabled,
// max_batch 1), served by two otherwise identical engines — one
// bucket-synchronous, one with async_cold_queries rerouting misses through
// the barrier-free engine (docs/ASYNC.md). Report-only: the authoritative
// latency gate for the async engine lives in bench/async_latency; here the
// comparison includes the full serve-layer overhead (dispatcher, batching,
// snapshot pinning).
ColdQueryMode run_cold_queries(const CsrGraph& g) {
  const SsspOptions options = SsspOptions::del(kDelta);
  const auto roots = distinct_roots(g, 6);
  constexpr int kWarmup = 4;
  constexpr int kMeasured = 32;

  ServeConfig sync_config;
  sync_config.machine.num_ranks = kRanks;
  sync_config.max_batch = 1;
  sync_config.cache_capacity = 0;
  QueryEngine sync_engine(g, sync_config);
  ServeConfig async_config = sync_config;
  async_config.async_cold_queries = true;
  QueryEngine async_engine(g, async_config);

  ColdQueryMode out;
  std::vector<double> sync_lat, async_lat;
  for (int q = 0; q < kWarmup + kMeasured; ++q) {
    const vid_t root = roots[static_cast<std::size_t>(q) % roots.size()];
    const auto t0 = Clock::now();
    const QueryResult rs = sync_engine.query(root, options);
    const double sync_s = seconds_since(t0);
    const auto t1 = Clock::now();
    const QueryResult ra = async_engine.query(root, options);
    const double async_s = seconds_since(t1);
    if (rs.answer == nullptr || ra.answer == nullptr ||
        rs.answer->dist != ra.answer->dist) {
      out.answers_identical = false;
    }
    if (q >= kWarmup) {
      sync_lat.push_back(sync_s);
      async_lat.push_back(async_s);
      ++out.num_queries;
    }
  }
  out.sync = percentile_stats(std::move(sync_lat));
  out.async = percentile_stats(std::move(async_lat));
  out.async_p50_wins = out.async.p50 < out.sync.p50;
  return out;
}

void write_report(std::ostream& os, const CsrGraph& g,
                  const SessionVsSpawn& a, const BatchedVsSequential& b,
                  const ZipfCacheRun& c, const ColdQueryMode& d) {
  JsonWriter w(os);
  w.begin_object();
  w.field("bench", std::string_view{"serve_throughput"});
  w.field("family", std::string_view{family_name(RmatFamily::kRmat1)});
  w.field("scale", std::uint64_t{kScale});
  w.field("vertices", static_cast<std::uint64_t>(g.num_vertices()));
  w.field("edges", static_cast<std::uint64_t>(g.num_undirected_edges()));
  w.field("ranks", std::uint64_t{kRanks});
  w.field("delta", std::uint64_t{kDelta});

  w.field("a_spawn_mean_latency_s", a.spawn_mean_s);
  w.field("a_spawn_p50_latency_s", a.spawn_p50_s);
  w.field("a_session_mean_latency_s", a.session_mean_s);
  w.field("a_session_p50_latency_s", a.session_p50_s);
  w.field("a_session_speedup", a.session_mean_s > 0
                                   ? a.spawn_mean_s / a.session_mean_s
                                   : 0.0);
  w.field("a_session_beats_spawn", a.session_wins);

  w.field("b_queries", static_cast<std::uint64_t>(b.num_queries));
  w.field("b_sequential_qps", b.sequential_qps);
  w.field("b_batched_qps", b.batched_qps);
  w.field("b_sequential_gteps_wall", b.sequential_gteps_wall);
  w.field("b_batched_gteps_wall", b.batched_gteps_wall);
  w.field("b_multi_sweeps", b.multi_sweeps);
  w.field("b_min_batched_size", b.min_batched_size);
  w.field("b_batched_beats_sequential", b.batched_wins);

  w.field("c_queries", static_cast<std::uint64_t>(c.num_queries));
  w.field("c_qps", c.qps);
  w.field("c_cache_hits", c.cache_hits);
  w.field("c_cache_hit_rate", c.cache_hit_rate);
  w.field("c_answers_identical", c.answers_identical);
  w.field("c_latency_p50_s", c.latency.p50);
  w.field("c_latency_p95_s", c.latency.p95);
  w.field("c_latency_p99_s", c.latency.p99);
  w.begin_array("c_batch_size_histogram");
  for (const auto count : c.batch_histogram) {
    w.value(static_cast<double>(count));
  }
  w.end_array();

  w.field("d_queries", static_cast<std::uint64_t>(d.num_queries));
  w.field("d_sync_p50_s", d.sync.p50);
  w.field("d_sync_p99_s", d.sync.p99);
  w.field("d_async_p50_s", d.async.p50);
  w.field("d_async_p99_s", d.async.p99);
  w.field("d_answers_identical", d.answers_identical);
  w.field("d_async_p50_wins", d.async_p50_wins);

  // (d) is report-only except for correctness: identical answers are part
  // of the async rerouting contract wherever it runs.
  w.field("pass", a.session_wins && b.batched_wins && c.cache_hit_rate > 0 &&
                      c.answers_identical && d.answers_identical);
  w.end_object();
  os << "\n";
}

}  // namespace
}  // namespace parsssp

int main(int argc, char** argv) {
  using namespace parsssp;
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_serve_throughput.json";

  const CsrGraph g = build_rmat_graph(RmatFamily::kRmat1, kScale);
  std::cout << "serve_throughput: RMAT-1 scale " << kScale << " ("
            << g.num_vertices() << " vertices, " << g.num_undirected_edges()
            << " edges), " << kRanks << " ranks, del(" << kDelta << ")\n\n";

  const SessionVsSpawn a = run_session_vs_spawn(g);
  const BatchedVsSequential b = run_batched_vs_sequential(g);
  const ZipfCacheRun c = run_zipf_cached(g);
  const ColdQueryMode d = run_cold_queries(g);

  TextTable ta("(a) back-to-back single-root latency: session vs spawn");
  ta.set_header({"path", "mean (ms)", "p50 (ms)"});
  ta.add_row({"spawn-per-query", TextTable::num(a.spawn_mean_s * 1e3, 4),
              TextTable::num(a.spawn_p50_s * 1e3, 4)});
  ta.add_row({"persistent session", TextTable::num(a.session_mean_s * 1e3, 4),
              TextTable::num(a.session_p50_s * 1e3, 4)});
  ta.print(std::cout);
  std::cout << "session speedup: "
            << TextTable::num(a.spawn_mean_s / a.session_mean_s, 3) << "x ("
            << (a.session_wins ? "session wins" : "SPAWN WINS") << ")\n\n";

  TextTable tb("(b) 32 distinct roots: sequential solve_batch vs batched");
  tb.set_header({"path", "queries/s", "agg GTEPS (wall)"});
  tb.add_row({"sequential solve_batch", TextTable::num(b.sequential_qps, 2),
              TextTable::num(b.sequential_gteps_wall, 4)});
  tb.add_row({"batched (max_batch 8)", TextTable::num(b.batched_qps, 2),
              TextTable::num(b.batched_gteps_wall, 4)});
  tb.print(std::cout);
  std::cout << "batched speedup: "
            << TextTable::num(b.batched_qps / b.sequential_qps, 3) << "x, "
            << b.multi_sweeps << " multi sweeps, smallest batch "
            << TextTable::num(b.min_batched_size, 0) << " ("
            << (b.batched_wins ? "batched wins" : "SEQUENTIAL WINS")
            << ")\n\n";

  TextTable tc("(c) open-loop Zipf stream, cached engine");
  tc.set_header({"metric", "value"});
  tc.add_row({"queries/s", TextTable::num(c.qps, 2)});
  tc.add_row({"cache hit rate", TextTable::num(c.cache_hit_rate, 4)});
  tc.add_row({"latency p50 (ms)", TextTable::num(c.latency.p50 * 1e3, 4)});
  tc.add_row({"latency p95 (ms)", TextTable::num(c.latency.p95 * 1e3, 4)});
  tc.add_row({"latency p99 (ms)", TextTable::num(c.latency.p99 * 1e3, 4)});
  tc.add_row({"answers identical",
              c.answers_identical ? "yes" : "NO (BUG)"});
  tc.print(std::cout);

  TextTable td("(d) cold-query latency: barrier-free misses vs synchronous");
  td.set_header({"path", "p50 (ms)", "p99 (ms)"});
  td.add_row({"synchronous misses", TextTable::num(d.sync.p50 * 1e3, 4),
              TextTable::num(d.sync.p99 * 1e3, 4)});
  td.add_row({"async_cold_queries", TextTable::num(d.async.p50 * 1e3, 4),
              TextTable::num(d.async.p99 * 1e3, 4)});
  td.print(std::cout);
  std::cout << "cold answers "
            << (d.answers_identical ? "bit-identical" : "MISMATCH (BUG)")
            << ", async p50 " << (d.async_p50_wins ? "wins" : "loses")
            << " (report-only; gated in bench/async_latency)\n\n";

  print_paper_note(
      std::cout,
      "Serving-layer additions beyond the paper: the paper measures one "
      "SSSP at a time on a dedicated machine; this bench measures the "
      "query-serving wrapper (persistent sessions, multi-root batching, "
      "result caching) that amortizes the same engine across a stream.");

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  write_report(out, g, a, b, c, d);
  std::cout << "wrote " << json_path << "\n";

  const bool pass = a.session_wins && b.batched_wins &&
                    c.cache_hit_rate > 0 && c.answers_identical &&
                    d.answers_identical;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
