// Shared driver for the Fig 10 (RMAT-1) and Fig 11 (RMAT-2) analysis
// benches: sub-figures (a) GTEPS of Del/Prune/OPT, (b) time breakdown,
// (c) relaxations per rank, (d) bucket counts, (e) OPT for several Deltas,
// (f) the load-balanced variant. Each weak-scaling point's graph is
// generated once and shared by every algorithm variant.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

namespace parsssp::bench {

struct FamilyAnalysisConfig {
  RmatFamily family = RmatFamily::kRmat1;
  std::uint32_t delta = 25;
  std::vector<rank_t> rank_counts = {2, 4, 8, 16, 32, 64};
  std::uint32_t log2_vertices_per_rank = 9;
  std::size_t num_roots = 2;
  std::size_t lb_heavy_threshold = 64;
};

inline void run_family_analysis(const FamilyAnalysisConfig& cfg) {
  const std::string fam = family_name(cfg.family);
  const std::string delta_s = std::to_string(cfg.delta);

  struct Algo {
    std::string name;
    SsspOptions options;
    unsigned lanes;
  };
  // Rows 0-2 drive (a)-(d); rows 3-5 are (e); rows 6-8 are (f).
  std::vector<Algo> algos = {
      {"Del-" + delta_s, SsspOptions::del(cfg.delta), 1},
      {"Prune-" + delta_s, SsspOptions::prune(cfg.delta), 1},
      {"OPT-" + delta_s, SsspOptions::opt(cfg.delta), 1},
  };
  for (const std::uint32_t d : {10u, 25u, 40u}) {
    algos.push_back({"OPT-" + std::to_string(d), SsspOptions::opt(d), 4});
  }
  for (const std::uint32_t d : {10u, 25u, 40u}) {
    algos.push_back({"LB-OPT-" + std::to_string(d),
                     SsspOptions::lb_opt(d, cfg.lb_heavy_threshold), 4});
  }

  // One sweep: outer loop over scaling points (graph generated once),
  // inner loop over algorithm variants.
  std::vector<std::vector<RunSummary>> results(algos.size());
  for (const rank_t ranks : cfg.rank_counts) {
    std::uint32_t log2_ranks = 0;
    while ((rank_t{1} << log2_ranks) < ranks) ++log2_ranks;
    const std::uint32_t scale = cfg.log2_vertices_per_rank + log2_ranks;
    const CsrGraph g = build_rmat_graph(cfg.family, scale);
    const auto roots = sample_roots(g, cfg.num_roots, 1);
    for (std::size_t i = 0; i < algos.size(); ++i) {
      Solver solver(g, {.machine = {.num_ranks = ranks,
                                    .lanes_per_rank = algos[i].lanes}});
      results[i].push_back(run_roots(solver, algos[i].options, roots));
    }
  }

  auto rank_header = [&] {
    std::vector<std::string> h{"algorithm"};
    for (const auto r : cfg.rank_counts) {
      h.push_back(std::to_string(r) + " ranks");
    }
    return h;
  };
  auto print_rows = [&](const std::string& title, std::size_t first,
                        std::size_t count, auto cell) {
    TextTable t(title);
    t.set_header(rank_header());
    for (std::size_t i = first; i < first + count; ++i) {
      std::vector<std::string> row{algos[i].name};
      for (const RunSummary& s : results[i]) row.push_back(cell(s));
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << '\n';
  };

  print_rows("(" + fam + ", a) GTEPS(model), weak scaling", 0, 3,
             [](const RunSummary& s) {
               return TextTable::num(s.mean_model_gteps, 4);
             });

  {  // (b) time breakdown at the largest configuration
    TextTable t("(" + fam + ", b) modeled time breakdown at " +
                std::to_string(cfg.rank_counts.back()) + " ranks (ms)");
    t.set_header({"algorithm", "BktTime", "OtherTime", "total"});
    for (std::size_t i = 0; i < 3; ++i) {
      const RunSummary& s = results[i].back();
      t.add_row({algos[i].name,
                 TextTable::num(s.mean_model_bkt_s * 1e3, 3),
                 TextTable::num(s.mean_model_other_s * 1e3, 3),
                 TextTable::num(s.mean_model_time_s * 1e3, 3)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  print_rows("(" + fam + ", c) relaxations per rank (mean over roots)", 0, 3,
             [](const RunSummary& s) {
               return TextTable::num(s.mean_relax_per_rank, 0);
             });
  print_rows("(" + fam + ", d) number of buckets", 0, 3,
             [](const RunSummary& s) {
               return TextTable::num(s.mean_buckets, 1);
             });
  print_rows("(" + fam + ", e) OPT GTEPS(model), 4 lanes/rank, no load "
             "balancing",
             3, 3, [](const RunSummary& s) {
               return TextTable::num(s.mean_model_gteps, 4);
             });
  print_rows("(" + fam + ", f) LB-OPT GTEPS(model), 4 lanes/rank, heavy "
             "threshold " + std::to_string(cfg.lb_heavy_threshold),
             6, 3, [](const RunSummary& s) {
               return TextTable::num(s.mean_model_gteps, 4);
             });
}

}  // namespace parsssp::bench
