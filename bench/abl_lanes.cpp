// Ablation: intra-rank thread (lane) scaling, with and without the
// heavy-vertex load balancer — a zoomed-in view of the mechanism behind
// Fig 10(e)/(f). A star-heavy graph makes the effect stark: without LB the
// hub's owner lane serializes the hub's whole adjacency; with LB the hub's
// arcs are spread across all lanes.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

namespace {

using namespace parsssp;

// R-MAT base plus an extreme artificial hub (1/4 of all vertices attached).
CsrGraph hub_heavy_graph() {
  RmatConfig cfg;
  cfg.params = RmatParams::rmat1();
  cfg.scale = 12;
  cfg.edge_factor = 8;
  EdgeList list = generate_rmat(cfg);
  const vid_t n = list.num_vertices();
  for (vid_t v = 1; v < n; ++v) {
    list.add_edge(0, v, 1 + static_cast<weight_t>(v % 200));
    list.add_edge(1, v, 1 + static_cast<weight_t>((v * 7) % 200));
  }
  return CsrGraph::from_edges(list);
}

}  // namespace

int main() {
  const CsrGraph g = hub_heavy_graph();
  const auto roots = sample_roots(g, 2, 3);
  std::cout << "hub-heavy RMAT-1: " << g.num_vertices() << " vertices, "
            << g.num_undirected_edges() << " edges, max degree "
            << [&] {
                 std::size_t best = 0;
                 for (vid_t v = 0; v < g.num_vertices(); ++v) {
                   best = std::max(best, g.degree(v));
                 }
                 return best;
               }()
            << "\n\n";

  TextTable t("modeled time (ms) vs lanes per rank, OPT-25, 8 ranks");
  t.set_header({"lanes", "no LB", "LB (threshold 64)", "LB speedup"});
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    double no_lb = 0;
    double lb = 0;
    {
      Solver solver(g, {.machine = {.num_ranks = 8,
                                    .lanes_per_rank = lanes}});
      // Zoom into the work term: superstep latency off the critical path
      // (the interesting quantity here is lane-level compute imbalance).
      SsspOptions base = SsspOptions::opt(25);
      base.cost_model.t_step_ns = 200.0;
      base.cost_model.t_scan_ns = 0.25;
      SsspOptions balanced = SsspOptions::lb_opt(25, 64);
      balanced.cost_model = base.cost_model;
      no_lb = run_roots(solver, base, roots).mean_model_time_s * 1e3;
      lb = run_roots(solver, balanced, roots).mean_model_time_s * 1e3;
    }
    t.add_row({std::to_string(lanes), TextTable::num(no_lb, 3),
               TextTable::num(lb, 3), TextTable::num(no_lb / lb, 2) + "x"});
  }
  t.print(std::cout);
  print_paper_note(std::cout,
                   "with one lane LB cannot help; with many lanes the "
                   "hub-serialized baseline stops scaling while LB keeps "
                   "gaining (the paper's §III-E intra-node tier)");
  return 0;
}
