// Fig 4: phase-wise distribution of relaxations for Delta-stepping with
// edge classification. The paper's observation: the single long-edge phase
// of each epoch dominates the (multiple) short-edge phases, which motivates
// aiming the pruning heuristic at long edges.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  const CsrGraph g = build_rmat_graph(RmatFamily::kRmat1, 13);
  Solver solver(g, {.machine = {.num_ranks = 8}});
  const auto roots = sample_roots(g, 1, 1);

  SsspOptions o = SsspOptions::del(25);
  o.collect_phase_details = true;
  const SsspResult r = solver.solve(roots[0], o);

  TextTable t("Fig 4: per-phase relaxations, Del-25 on RMAT-1 scale 13");
  t.set_header({"phase#", "bucket", "kind", "relaxations"});
  std::uint64_t short_total = 0;
  std::uint64_t long_total = 0;
  std::size_t i = 0;
  for (const PhaseDetail& p : r.stats.phase_details) {
    const bool is_long = p.kind == PhaseDetail::Kind::kLongPush ||
                         p.kind == PhaseDetail::Kind::kLongPull;
    (is_long ? long_total : short_total) += p.relaxations;
    t.add_row({std::to_string(i++), std::to_string(p.bucket),
               is_long ? "long" : "short",
               TextTable::num(p.relaxations)});
  }
  t.print(std::cout);

  std::cout << "\nshort-phase total: " << short_total
            << "\nlong-phase total:  " << long_total << "\nlong share: "
            << TextTable::num(
                   100.0 * static_cast<double>(long_total) /
                       static_cast<double>(short_total + long_total),
                   1)
            << "%\n";
  print_paper_note(std::cout,
                   "long-edge phases dominate the relaxation count "
                   "(the motivation for pruning long-phase traffic)");
  return 0;
}
