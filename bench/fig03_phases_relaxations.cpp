// Fig 3: comparison of the basic and proposed algorithms on (a) number of
// phases and (b) number of relaxations. The paper shows, per family:
//   phases:       BF <= Hybrid <= Del-{10,25,40} <= Dijkstra
//   relaxations:  Prune << Dijkstra <= Del-{10,25,40} <= BF
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  struct Algo {
    const char* name;
    SsspOptions options;
  };
  const Algo algos[] = {
      {"Bellman-Ford", SsspOptions::bellman_ford()},
      {"Hybrid-25", SsspOptions::opt(25)},  // hybrid on top of prune
      {"Del-10", SsspOptions::del(10)},
      {"Del-25", SsspOptions::del(25)},
      {"Del-40", SsspOptions::del(40)},
      {"Dijkstra", SsspOptions::dijkstra()},
      {"Prune-25", SsspOptions::prune(25)},
  };

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const std::uint32_t scale = 13;
    const CsrGraph g = build_rmat_graph(family, scale);
    Solver solver(g, {.machine = {.num_ranks = 8}});
    const auto roots = sample_roots(g, 4, 1);

    TextTable t(std::string("Fig 3: ") + family_name(family) + " scale " +
                std::to_string(scale));
    t.set_header({"algorithm", "phases", "buckets", "relaxations",
                  "relax/edge"});
    for (const Algo& a : algos) {
      const RunSummary s = run_roots(solver, a.options, roots);
      t.add_row({a.name, TextTable::num(s.mean_phases, 1),
                 TextTable::num(s.mean_buckets, 1),
                 TextTable::num(s.mean_relaxations, 0),
                 TextTable::num(s.mean_relaxations /
                                    static_cast<double>(s.edges),
                                3)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  print_paper_note(std::cout,
                   "phases: BF <= Hybrid <= Del <= Dijkstra; relaxations: "
                   "Prune < Dijkstra <= Del <= BF (Prune ~5x below Del on "
                   "RMAT-1, ~2x on RMAT-2)");
  return 0;
}
