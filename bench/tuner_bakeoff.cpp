// Auto-tuner acceptance benchmark (docs/STEPPING.md): the online tuner
// against a hand-picked engine grid, on four graph families.
//
// Four rows — RMAT-1 s12 (shallow, heavy skew), RMAT-2 s12 (heavier skew),
// a synthetic Orkut-like social graph, and a 64x64 road-like grid with
// heterogeneous weights (deep, low skew). Each row solves the same root
// set under every hand-picked config AND under the config the auto-tuner
// learns from one probe pass, checks every engine's distances are
// bit-identical to OPT, and scores configs by the deterministic modeled
// solve time (mean across roots) — the same metric the tuner optimizes,
// and one that is reproducible in CI.
//
// Acceptance (exit status + "pass" in the JSON):
//   * distances bit-identical to OPT for every config on every row;
//   * the tuned config is never more than 10% slower than the best
//     hand-picked config on any row;
//   * the tuned config clearly beats (>5%) the best SINGLE global config
//     (the one hand-picked row that minimizes normalized time across all
//     rows) on at least one row — the regime spread that makes online
//     tuning worth the probe pass.
//
// Emits a JSON report (argv[1], default BENCH_tuner.json).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/stats_io.hpp"
#include "bench_util/table.hpp"
#include "core/auto_tune.hpp"
#include "core/solver.hpp"
#include "graph/builders.hpp"
#include "graph/graph_algos.hpp"
#include "graph/social_gen.hpp"

namespace parsssp {
namespace {

constexpr rank_t kRanks = 8;
constexpr std::size_t kRoots = 4;
constexpr double kLossBar = 1.10;  ///< auto may lose at most 10% per row
constexpr double kWinBar = 0.95;   ///< "clearly wins" = >5% faster somewhere

/// The hand-picked grid: the shipped default, a fine-bucket variant, and
/// one representative per stepping family.
std::vector<TunedConfig> hand_picked() {
  return {{SsspAlgo::kBucketSync, 25, 2048, 4},
          {SsspAlgo::kBucketSync, 4, 2048, 4},
          {SsspAlgo::kRho, 25, 2048, 4},
          {SsspAlgo::kDeltaStar, 4, 2048, 4},
          {SsspAlgo::kRadius, 25, 2048, 4}};
}

struct RowResult {
  std::string name;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  bool bit_identical = true;
  std::vector<double> hand_time_s;  ///< mean model time per hand config
  std::string auto_name;            ///< the config the tuner learned
  double auto_time_s = 0;
  double best_hand_s = 0;
  double loss_vs_best = 0;  ///< auto_time / best_hand
};

/// Mean modeled solve time of `config` across `roots`, flagging any
/// distance mismatch against `want` (indexed by root order).
double measure(Solver& solver, const TunedConfig& config,
               const std::vector<vid_t>& roots,
               const std::vector<std::vector<dist_t>>& want,
               bool* bit_identical) {
  const SsspOptions options = config.apply(SsspOptions::opt(25));
  double total = 0;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const SsspResult r = solver.solve(roots[i], options);
    if (r.dist != want[i]) *bit_identical = false;
    total += r.stats.model_time_s;
  }
  return total / static_cast<double>(roots.size());
}

RowResult run_row(const std::string& name, const CsrGraph& g,
                  std::uint64_t row_version) {
  RowResult out;
  out.name = name;
  out.vertices = g.num_vertices();
  out.edges = g.num_undirected_edges();
  Solver solver(g, {.machine = {.num_ranks = kRanks}});
  const std::vector<vid_t> roots = sample_roots(g, kRoots, /*seed=*/11);

  // OPT's distances are the bit-identity reference for every config.
  std::vector<std::vector<dist_t>> want;
  for (const vid_t root : roots) {
    want.push_back(solver.solve(root, SsspOptions::opt(25)).dist);
  }

  for (const TunedConfig& c : hand_picked()) {
    out.hand_time_s.push_back(
        measure(solver, c, roots, want, &out.bit_identical));
  }
  out.best_hand_s =
      *std::min_element(out.hand_time_s.begin(), out.hand_time_s.end());

  // The tuner pays one probe pass on the first root, then the learned
  // config serves the whole root set.
  AutoTuner tuner;
  const TunedConfig tuned =
      tuner.tune(row_version, g, SsspOptions::opt(25),
                 [&](const SsspOptions& candidate) {
                   return solver.solve(roots[0], candidate).stats;
                 });
  out.auto_name = tuned.name();
  out.auto_time_s = measure(solver, tuned, roots, want, &out.bit_identical);
  out.loss_vs_best = out.auto_time_s / out.best_hand_s;
  return out;
}

/// The best single global config: the hand-picked column minimizing the
/// sum of per-row times normalized by each row's best (so every row
/// counts equally regardless of graph size).
std::size_t best_global_config(const std::vector<RowResult>& rows) {
  const std::size_t n = hand_picked().size();
  std::size_t best = 0;
  double best_score = 1e300;
  for (std::size_t c = 0; c < n; ++c) {
    double score = 0;
    for (const RowResult& r : rows) score += r.hand_time_s[c] / r.best_hand_s;
    if (score < best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

void write_report(std::ostream& os, const std::vector<RowResult>& rows,
                  std::size_t global_idx, bool identical, bool loss_gate,
                  bool win_gate) {
  const std::vector<TunedConfig> grid = hand_picked();
  JsonWriter w(os);
  w.begin_object();
  w.field("bench", std::string_view{"tuner_bakeoff"});
  w.field("ranks", std::uint64_t{kRanks});
  w.field("roots_per_row", std::uint64_t{kRoots});
  w.field("loss_bar", kLossBar);
  w.field("win_bar", kWinBar);
  w.field("global_best_config", grid[global_idx].name());
  w.begin_array("rows");
  for (const RowResult& r : rows) {
    w.begin_object_in_array();
    w.field("row", std::string_view{r.name});
    w.field("vertices", r.vertices);
    w.field("edges", r.edges);
    w.field("bit_identical", r.bit_identical);
    for (std::size_t c = 0; c < grid.size(); ++c) {
      w.field(grid[c].name() + "_model_s", r.hand_time_s[c]);
    }
    w.field("auto_config", r.auto_name);
    w.field("auto_model_s", r.auto_time_s);
    w.field("best_hand_model_s", r.best_hand_s);
    w.field("loss_vs_best", r.loss_vs_best);
    w.field("global_model_s", r.hand_time_s[global_idx]);
    w.end_object();
  }
  w.end_array();
  w.field("bit_identical", identical);
  w.field("never_loses_big", loss_gate);
  w.field("wins_somewhere", win_gate);
  w.field("pass", identical && loss_gate && win_gate);
  w.end_object();
  os << "\n";
}

}  // namespace
}  // namespace parsssp

int main(int argc, char** argv) {
  using namespace parsssp;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_tuner.json";

  std::cout << "tuner_bakeoff: " << kRanks
            << " ranks, auto-tuner vs hand-picked engine grid\n\n";

  std::vector<RowResult> rows;
  rows.push_back(run_row("rmat1-s12", build_rmat_graph(RmatFamily::kRmat1, 12),
                         1));
  rows.push_back(run_row("rmat2-s12", build_rmat_graph(RmatFamily::kRmat2, 12),
                         2));
  {
    SocialGraphSpec spec;
    spec.kind = SocialGraphKind::kOrkut;
    rows.push_back(run_row(
        "orkut-synth",
        CsrGraph::from_edges(generate_social_graph(spec)), 3));
  }
  rows.push_back(run_row(
      "road-64",
      CsrGraph::from_edges(make_grid(64, [](vid_t a, vid_t b) {
        return static_cast<weight_t>(20 + (a * 31 + b * 17) % 50);
      })),
      4));

  const std::size_t global_idx = best_global_config(rows);
  const std::vector<TunedConfig> grid = hand_picked();

  TextTable t("modeled solve time (ms, mean over roots): auto vs hand grid");
  t.set_header({"row", "best hand", "best (ms)", "global (ms)", "auto",
                "auto (ms)", "loss", "identical"});
  bool identical = true, loss_gate = true, win_gate = false;
  for (const RowResult& r : rows) {
    const std::size_t best_idx = static_cast<std::size_t>(
        std::min_element(r.hand_time_s.begin(), r.hand_time_s.end()) -
        r.hand_time_s.begin());
    t.add_row({r.name, grid[best_idx].name(),
               TextTable::num(r.best_hand_s * 1e3, 3),
               TextTable::num(r.hand_time_s[global_idx] * 1e3, 3),
               r.auto_name, TextTable::num(r.auto_time_s * 1e3, 3),
               TextTable::num((r.loss_vs_best - 1.0) * 100, 1) + "%",
               r.bit_identical ? "yes" : "NO (BUG)"});
    identical = identical && r.bit_identical;
    loss_gate = loss_gate && r.loss_vs_best <= kLossBar;
    win_gate =
        win_gate || r.auto_time_s < kWinBar * r.hand_time_s[global_idx];
  }
  t.print(std::cout);
  std::cout << "gates: bit-identical " << (identical ? "OK" : "FAIL")
            << ", auto within " << (kLossBar - 1.0) * 100
            << "% of best hand config on every row "
            << (loss_gate ? "OK" : "FAIL") << ", auto beats the global config ("
            << grid[global_idx].name() << ") by >"
            << (1.0 - kWinBar) * 100 << "% somewhere "
            << (win_gate ? "OK" : "FAIL") << "\n";

  print_paper_note(
      std::cout,
      "The paper hand-picks Delta per family (Table VI). This bench layers "
      "the stepping-family engines (rho / Delta* / radius) and an online "
      "tuner on the same substrate: one probe solve classifies the graph "
      "(degree skew, bucket depth, relax ratio), a decision table shortlists "
      "engines, and modeled-time scoring picks one — no per-family manual "
      "tuning, at most a bounded probe cost per graph version.");

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  write_report(out, rows, global_idx, identical, loss_gate, win_gate);
  std::cout << "wrote " << json_path << "\n";

  const bool pass = identical && loss_gate && win_gate;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
