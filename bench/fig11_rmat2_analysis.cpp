// Fig 11: RMAT-2 analysis — same sub-figures as Fig 10 on the SSSP-spec
// R-MAT family.
//
// Paper shapes on RMAT-2: pruning halves the relaxations (the degree
// distribution is flatter, so pull wins less often); hybridization is the
// bigger lever (20x fewer buckets, ~3x overall); load balancing is barely
// needed.
#include <iostream>

#include "family_analysis.hpp"

int main() {
  parsssp::bench::FamilyAnalysisConfig cfg;
  cfg.family = parsssp::RmatFamily::kRmat2;
  cfg.delta = 25;
  parsssp::bench::run_family_analysis(cfg);
  parsssp::print_paper_note(
      std::cout,
      "RMAT-2: pruning's gain is modest (~2x relaxations); hybridization "
      "slashes the bucket count and BktTime; LB changes little");
  return 0;
}
