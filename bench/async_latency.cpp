// Asynchronous-engine acceptance benchmark (docs/ASYNC.md): cold single-
// root solves, barrier-free ASYNC vs bucket-synchronous OPT, on the
// paper's synthetic families.
//
// Three rows — RMAT-1 delta 25, RMAT-2 delta 25, RMAT-1 delta 4 (the
// fine-bucket regime where the synchronous engine pays one allreduce-
// fenced epoch per almost-empty bucket). Each row interleaves OPT and
// ASYNC solves over the same root set, checks the distances are
// bit-identical on every measured solve, and reports wall-clock p50/p99
// plus the global-synchronization counts from the engines' own accounting.
//
// Acceptance (exit status + "pass" in the JSON):
//   * distances bit-identical to OPT on every row;
//   * ASYNC issues at least 10x fewer global syncs than OPT on every
//     RMAT-1 row (it issues exactly one: the final stats allreduce);
//   * ASYNC wins cold single-root wall-clock p50 on at least one row.
//
// Emits a JSON report (argv[1], default BENCH_async_latency.json).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/stats_io.hpp"
#include "bench_util/table.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "serve/workload.hpp"

namespace parsssp {
namespace {

using Clock = std::chrono::steady_clock;

constexpr rank_t kRanks = 8;
constexpr int kWarmup = 2;
constexpr int kMeasured = 24;
constexpr double kSyncReductionBar = 10.0;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct RowSpec {
  RmatFamily family;
  std::uint32_t scale;
  std::uint32_t delta;
};

struct RowResult {
  RowSpec spec;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  bool bit_identical = true;
  LatencyStats sync_lat;
  LatencyStats async_lat;
  std::uint64_t sync_syncs = 0;   ///< OPT's allreduces + barriers per solve
  std::uint64_t async_syncs = 0;  ///< ASYNC's (contract: exactly 1)
  std::uint64_t quiescence_rounds = 0;
  std::uint64_t async_relaxations = 0;
  std::uint64_t sync_relaxations = 0;
  double sync_reduction = 0;
  bool async_p50_wins = false;
};

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  out.spec = spec;
  const CsrGraph g = build_rmat_graph(spec.family, spec.scale);
  out.vertices = g.num_vertices();
  out.edges = g.num_undirected_edges();
  Solver solver(g, {.machine = {.num_ranks = kRanks}});

  const SsspOptions sync = SsspOptions::opt(spec.delta);
  const SsspOptions async = SsspOptions::async_opt(spec.delta);
  const std::vector<vid_t> roots = sample_roots(g, 6, /*seed=*/11);

  // Interleave the two engines so load drift hits both sample sets alike.
  std::vector<double> sync_s, async_s;
  for (int q = 0; q < kWarmup + kMeasured; ++q) {
    const vid_t root = roots[static_cast<std::size_t>(q) % roots.size()];
    const auto t0 = Clock::now();
    const SsspResult rs = solver.solve(root, sync);
    const double sync_elapsed = seconds_since(t0);
    const auto t1 = Clock::now();
    const SsspResult ra = solver.solve(root, async);
    const double async_elapsed = seconds_since(t1);

    if (rs.dist != ra.dist) out.bit_identical = false;
    if (q >= kWarmup) {
      sync_s.push_back(sync_elapsed);
      async_s.push_back(async_elapsed);
      out.sync_syncs = rs.stats.global_syncs();
      out.async_syncs = ra.stats.global_syncs();
      out.quiescence_rounds = ra.stats.quiescence_rounds;
      out.async_relaxations = ra.stats.async_relaxations;
      out.sync_relaxations = rs.stats.total_relaxations();
    }
  }
  out.sync_lat = percentile_stats(std::move(sync_s));
  out.async_lat = percentile_stats(std::move(async_s));
  out.sync_reduction =
      out.async_syncs > 0 ? static_cast<double>(out.sync_syncs) /
                                static_cast<double>(out.async_syncs)
                          : 0.0;
  out.async_p50_wins = out.async_lat.p50 < out.sync_lat.p50;
  return out;
}

bool row_sync_gate(const RowResult& r) {
  // The >= 10x bar is stated for RMAT-1; RMAT-2 rides along as report-only
  // (it passes all the same — ASYNC's count is a constant 1).
  return r.spec.family != RmatFamily::kRmat1 ||
         r.sync_reduction >= kSyncReductionBar;
}

void write_report(std::ostream& os, const std::vector<RowResult>& rows,
                  bool identical, bool sync_gate, bool p50_gate) {
  JsonWriter w(os);
  w.begin_object();
  w.field("bench", std::string_view{"async_latency"});
  w.field("ranks", std::uint64_t{kRanks});
  w.field("measured_solves_per_row", std::uint64_t{kMeasured});
  w.field("sync_reduction_bar", kSyncReductionBar);
  w.begin_array("rows");
  for (const RowResult& r : rows) {
    w.begin_object_in_array();
    w.field("family", std::string_view{family_name(r.spec.family)});
    w.field("scale", std::uint64_t{r.spec.scale});
    w.field("delta", std::uint64_t{r.spec.delta});
    w.field("vertices", r.vertices);
    w.field("edges", r.edges);
    w.field("bit_identical", r.bit_identical);
    w.field("opt_p50_s", r.sync_lat.p50);
    w.field("opt_p99_s", r.sync_lat.p99);
    w.field("async_p50_s", r.async_lat.p50);
    w.field("async_p99_s", r.async_lat.p99);
    w.field("opt_global_syncs", r.sync_syncs);
    w.field("async_global_syncs", r.async_syncs);
    w.field("sync_reduction", r.sync_reduction);
    w.field("quiescence_rounds", r.quiescence_rounds);
    w.field("opt_relaxations", r.sync_relaxations);
    w.field("async_relaxations", r.async_relaxations);
    w.field("async_p50_wins", r.async_p50_wins);
    w.end_object();
  }
  w.end_array();
  w.field("bit_identical", identical);
  w.field("sync_reduction_met", sync_gate);
  w.field("async_p50_wins_somewhere", p50_gate);
  w.field("pass", identical && sync_gate && p50_gate);
  w.end_object();
  os << "\n";
}

}  // namespace
}  // namespace parsssp

int main(int argc, char** argv) {
  using namespace parsssp;
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_async_latency.json";

  // The first three rows are the throughput regime (scale 12), where the
  // per-level relax work amortizes OPT's barriers and the asynchronous
  // engine's extra speculative relaxations usually cost it the row. The
  // last two are the latency-dominated regime (small scale, fine delta:
  // per-bucket work shrinks toward nothing while OPT still pays one
  // allreduce-fenced epoch per almost-empty bucket) — the strong-scaling
  // limit of docs/ASYNC.md, where killing the barriers is the whole game.
  const std::vector<RowSpec> specs = {{RmatFamily::kRmat1, 12, 25},
                                      {RmatFamily::kRmat2, 12, 25},
                                      {RmatFamily::kRmat1, 12, 4},
                                      {RmatFamily::kRmat1, 9, 4},
                                      {RmatFamily::kRmat1, 8, 2}};
  std::cout << "async_latency: " << kRanks
            << " ranks, cold single-root solves, ASYNC vs OPT\n\n";

  std::vector<RowResult> rows;
  for (const RowSpec& spec : specs) rows.push_back(run_row(spec));

  TextTable t("cold single-root latency: barrier-free ASYNC vs OPT");
  t.set_header({"row", "opt p50 (ms)", "async p50 (ms)", "opt syncs",
                "async syncs", "reduction", "identical"});
  bool identical = true, sync_gate = true, p50_gate = false;
  for (const RowResult& r : rows) {
    t.add_row({std::string(family_name(r.spec.family)) + "-s" +
                   std::to_string(r.spec.scale) + "-d" +
                   std::to_string(r.spec.delta),
               TextTable::num(r.sync_lat.p50 * 1e3, 4),
               TextTable::num(r.async_lat.p50 * 1e3, 4),
               TextTable::num(r.sync_syncs), TextTable::num(r.async_syncs),
               TextTable::num(r.sync_reduction, 1) + "x",
               r.bit_identical ? "yes" : "NO (BUG)"});
    identical = identical && r.bit_identical;
    sync_gate = sync_gate && row_sync_gate(r);
    p50_gate = p50_gate || r.async_p50_wins;
  }
  t.print(std::cout);
  std::cout << "gates: bit-identical " << (identical ? "OK" : "FAIL")
            << ", sync reduction >= " << kSyncReductionBar << "x on RMAT-1 "
            << (sync_gate ? "OK" : "FAIL") << ", async p50 wins somewhere "
            << (p50_gate ? "OK" : "FAIL") << "\n";

  print_paper_note(
      std::cout,
      "The paper's engines are bulk-synchronous: every bucket epoch ends in "
      "an allreduce. This bench measures the asynchronous execution model "
      "layered on the same relax/exchange substrate: speculative monotone "
      "re-relaxation with Safra-style quiescence detection replaces the "
      "barriers, trading a bounded amount of re-done work for latency.");

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  write_report(out, rows, identical, sync_gate, p50_gate);
  std::cout << "wrote " << json_path << "\n";

  const bool pass = identical && sync_gate && p50_gate;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
