// Fig 9: performance of plain Delta-stepping (with edge classification) for
// different Delta values under weak scaling on RMAT-1. The paper: Delta=1
// (Dijkstra) and Delta=inf (Bellman-Ford) are both poor; Delta in [10, 50]
// is the sweet spot.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"

int main() {
  using namespace parsssp;

  struct Algo {
    const char* name;
    SsspOptions options;
  };
  const Algo algos[] = {
      {"Delta=1 (Dijkstra)", SsspOptions::dijkstra()},
      {"Delta=5", SsspOptions::del(5)},
      {"Delta=10", SsspOptions::del(10)},
      {"Delta=25", SsspOptions::del(25)},
      {"Delta=40", SsspOptions::del(40)},
      {"Delta=100", SsspOptions::del(100)},
      {"Delta=inf (BF)", SsspOptions::bellman_ford()},
  };

  WeakScalingConfig cfg;
  cfg.family = RmatFamily::kRmat1;
  cfg.log2_vertices_per_rank = 10;
  cfg.rank_counts = {2, 4, 8, 16};
  cfg.num_roots = 2;

  TextTable t("Fig 9: Delta-stepping GTEPS(model), weak scaling on RMAT-1, "
              "2^10 vertices/rank");
  std::vector<std::string> header{"algorithm"};
  for (const auto r : cfg.rank_counts) {
    header.push_back(std::to_string(r) + " ranks");
  }
  t.set_header(header);

  for (const Algo& a : algos) {
    const auto points = weak_scaling(cfg, a.options);
    std::vector<std::string> row{a.name};
    for (const auto& p : points) {
      row.push_back(TextTable::num(p.summary.mean_model_gteps, 4));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  print_paper_note(std::cout,
                   "Dijkstra (too many buckets) and Bellman-Ford (too much "
                   "work) underperform; intermediate Delta (10-50) wins");
  return 0;
}
