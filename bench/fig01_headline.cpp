// Fig 1 (headline comparison table): the paper's performance summary,
// reproduced at laptop scale on the simulated machine. The literature rows
// are reprinted verbatim for context; the "this repo" rows are measured on
// the largest configuration this harness runs by default.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/bfs_engine.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  TextTable paper("Fig 1 (paper, for reference): published results");
  paper.set_header({"reference", "problem", "vertices", "edges", "GTEPS",
                    "system"});
  paper.add_row({"Bader/Madduri'06", "BFS", "200M", "1B", "0.5",
                 "Cray MTA-2 (40)"});
  paper.add_row({"Checconi'12", "BFS", "2^32", "2^36", "254",
                 "BG/Q 4096 nodes"});
  paper.add_row({"Graph500 Nov'13", "BFS", "2^40", "2^44", "15363",
                 "BG/Q 65536 nodes"});
  paper.add_row({"Madduri'07", "SSSP", "2^28", "2^30", "0.1",
                 "Cray MTA-2 (40)"});
  paper.add_row({"paper (OPT)", "SSSP", "2^35", "2^39", "650",
                 "BG/Q 4096 nodes"});
  paper.add_row({"paper (OPT)", "SSSP", "2^38", "2^42", "3100",
                 "BG/Q 32768 nodes"});
  paper.print(std::cout);
  std::cout << '\n';

  TextTable ours("This repo: OPT on the simulated machine (modeled GTEPS)");
  ours.set_header({"family", "scale", "ranks", "edges", "GTEPS(model)",
                   "GTEPS(wall)", "relaxations", "buckets"});
  struct Cfg {
    RmatFamily family;
    std::uint32_t delta;
  };
  for (const Cfg cfg : {Cfg{RmatFamily::kRmat1, 25u},
                        Cfg{RmatFamily::kRmat2, 40u}}) {
    const std::uint32_t scale = 14;
    const rank_t ranks = 16;
    const CsrGraph g = build_rmat_graph(cfg.family, scale);
    Solver solver(g, {.machine = {.num_ranks = ranks}});
    const auto roots = sample_roots(g, 4, 1);
    const RunSummary s =
        run_roots(solver, SsspOptions::opt(cfg.delta), roots);
    ours.add_row({family_name(cfg.family), std::to_string(scale),
                  std::to_string(ranks), std::to_string(s.edges),
                  TextTable::num(s.mean_model_gteps, 3),
                  TextTable::num(s.edges / s.mean_wall_time_s / 1e9, 3),
                  TextTable::num(s.mean_relaxations, 0),
                  TextTable::num(s.mean_buckets, 1)});
  }
  ours.print(std::cout);
  std::cout << '\n';

  // The paper's Fig 1 observation: "SSSP is only two to five times slower
  // than BFS on the same machine configuration". Reproduce with this
  // repo's direction-optimizing BFS on the identical graph and machine.
  TextTable ratio("BFS vs SSSP on the same machine (modeled GTEPS)");
  ratio.set_header({"family", "BFS", "SSSP (OPT)", "BFS/SSSP"});
  for (const Cfg cfg : {Cfg{RmatFamily::kRmat1, 25u},
                        Cfg{RmatFamily::kRmat2, 40u}}) {
    const CsrGraph g = build_rmat_graph(cfg.family, 14);
    const auto roots = sample_roots(g, 4, 1);
    BfsSolver bfs(g, {.num_ranks = 16});
    Solver sssp(g, {.machine = {.num_ranks = 16}});
    double bfs_gteps = 0;
    double sssp_gteps = 0;
    for (const vid_t root : roots) {
      bfs_gteps += bfs.solve(root).stats.gteps(g.num_undirected_edges());
      sssp_gteps += sssp.solve(root, SsspOptions::opt(cfg.delta))
                        .stats.gteps(g.num_undirected_edges());
    }
    bfs_gteps /= static_cast<double>(roots.size());
    sssp_gteps /= static_cast<double>(roots.size());
    ratio.add_row({family_name(cfg.family), TextTable::num(bfs_gteps, 3),
                   TextTable::num(sssp_gteps, 3),
                   TextTable::num(bfs_gteps / sssp_gteps, 2) + "x"});
  }
  ratio.print(std::cout);
  print_paper_note(std::cout,
                   "SSSP lands within roughly 2-5x of BFS (paper: 650 vs "
                   "1427 GTEPS at 4096 nodes); absolute GTEPS are "
                   "machine-bound — the algorithmic claims are Figs 3-12");
  return 0;
}
