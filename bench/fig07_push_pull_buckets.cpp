// Fig 7: per-bucket push/pull statistics on an R-MAT graph. For each
// bucket the paper reports the long-edge categories under push (self /
// backward / forward — only forward relaxations are useful) and the number
// of requests the pull model would send; some buckets are cheaper pushed,
// others pulled.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  const CsrGraph g = build_rmat_graph(RmatFamily::kRmat1, 13);
  Solver solver(g, {.machine = {.num_ranks = 8}});
  const auto roots = sample_roots(g, 1, 1);

  // Run with forced push so the receiver-side category counters cover every
  // long-phase relaxation; the pull columns are the heuristic's estimates.
  SsspOptions o = SsspOptions::prune(25);
  o.prune_mode = PruneMode::kPushOnly;
  o.collect_bucket_details = true;
  const SsspResult r = solver.solve(roots[0], o);

  TextTable t("Fig 7: per-bucket push vs pull statistics (Prune-25, forced "
              "push, RMAT-1 scale 13)");
  t.set_header({"bucket", "self", "backward", "forward", "push-vol",
                "pull-requests(est)", "cheaper"});
  for (const BucketDetail& b : r.stats.bucket_details) {
    const std::uint64_t push_vol =
        b.self_edges + b.backward_edges + b.forward_edges;
    const std::uint64_t pull_vol = b.pull_volume_estimate;
    t.add_row({std::to_string(b.bucket), TextTable::num(b.self_edges),
               TextTable::num(b.backward_edges),
               TextTable::num(b.forward_edges), TextTable::num(push_vol),
               TextTable::num(pull_vol / 2),
               pull_vol < push_vol ? "pull" : "push"});
  }
  t.print(std::cout);
  print_paper_note(std::cout,
                   "early dense buckets favour push; later buckets (most "
                   "long edges already redundant: self/backward) favour "
                   "pull — no single mode wins everywhere");
  return 0;
}
