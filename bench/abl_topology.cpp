// Ablation: network-topology view of the communication traffic. Blue
// Gene/Q is a 5D torus; total message counts (what the decision heuristic
// minimizes) are a proxy for link traffic, which additionally depends on
// how many hops each message travels. This bench records the full
// (source, destination) message matrix of Del / Prune / OPT runs and
// weights it by torus hop distances, confirming that the pruning gains
// survive — and slightly grow — under a topology-aware metric (random
// vertex placement makes traffic all-to-all, so mean hops multiply).
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"
#include "runtime/topology.hpp"

int main() {
  using namespace parsssp;

  const rank_t ranks = 16;
  const TorusTopology torus = TorusTopology::balanced(ranks, 3);
  std::cout << "torus: ";
  for (const auto d : torus.dims()) std::cout << d << " ";
  std::cout << " diameter " << torus.diameter() << ", mean hops "
            << TextTable::num(torus.mean_hops(), 2) << "\n\n";

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const CsrGraph g = build_rmat_graph(family, 13);
    Solver solver(g, {.machine = {.num_ranks = ranks, .lanes_per_rank = 1,
                                  .record_pair_traffic = true}});
    const vid_t root = sample_roots(g, 1, 1).at(0);

    TextTable t(std::string("topology-weighted traffic, ") +
                family_name(family) + " scale 13, " +
                std::to_string(ranks) + " ranks");
    t.set_header({"algorithm", "messages", "hop-weighted", "mean hops",
                  "vs Del (hop-weighted)"});
    struct Algo {
      const char* name;
      SsspOptions options;
    };
    const Algo algos[] = {
        {"Del-25", SsspOptions::del(25)},
        {"Prune-25", SsspOptions::prune(25)},
        {"OPT-25", SsspOptions::opt(25)},
    };
    double del_weighted = 0;
    for (const Algo& a : algos) {
      solver.solve(root, a.options);
      const auto& matrix = solver.machine().pair_messages();
      std::uint64_t messages = 0;
      for (const auto m : matrix) messages += m;
      const double weighted = torus.weighted_volume(matrix, ranks);
      if (del_weighted == 0) del_weighted = weighted;
      t.add_row({a.name, TextTable::num(messages),
                 TextTable::num(weighted, 0),
                 TextTable::num(weighted / static_cast<double>(messages), 2),
                 TextTable::num(del_weighted / weighted, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  print_paper_note(std::cout,
                   "scattered vertex placement makes relax traffic "
                   "uniformly all-to-all, so hop-weighting scales every "
                   "algorithm by ~mean-hops and pruning's communication "
                   "reduction carries over to link traffic");
  return 0;
}
