// Microbenchmarks (google-benchmark) of the hot kernels: CSR construction,
// view building, bucket scans, pull-request counting, relax application,
// collectives, and the full solve at small scale.
#include <benchmark/benchmark.h>

#include <span>

#include "bench_util/runner.hpp"
#include "core/buckets.hpp"
#include "core/delta_engine.hpp"
#include "core/dist_graph.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "runtime/machine.hpp"
#include "runtime/machine_session.hpp"
#include "runtime/send_buffer_pool.hpp"

namespace {

using namespace parsssp;

const CsrGraph& shared_graph() {
  static const CsrGraph g = build_rmat_graph(RmatFamily::kRmat1, 12);
  return g;
}

void BM_CsrBuild(benchmark::State& state) {
  RmatConfig cfg;
  cfg.scale = static_cast<std::uint32_t>(state.range(0));
  cfg.edge_factor = 16;
  const EdgeList list = generate_rmat(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph::from_edges(list));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(list.num_edges()));
}
BENCHMARK(BM_CsrBuild)->Arg(10)->Arg(12);

void BM_RmatGenerate(benchmark::State& state) {
  RmatConfig cfg;
  cfg.scale = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_rmat(cfg));
  }
}
BENCHMARK(BM_RmatGenerate)->Arg(10)->Arg(12);

void BM_ViewBuild(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  const BlockPartition part(g.num_vertices(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LocalEdgeView::build(g, part, 0, 25));
  }
}
BENCHMARK(BM_ViewBuild);

void BM_BucketScan(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  std::vector<dist_t> dist(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    dist[v] = (v * 37) % 2000;
  }
  const std::vector<char> settled(g.num_vertices(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collect_bucket_members(dist, settled, 3, 25));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_BucketScan);

void BM_CountLongBelow(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  const BlockPartition part(g.num_vertices(), 1);
  const LocalEdgeView view = LocalEdgeView::build(g, part, 0, 25);
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (vid_t v = 0; v < view.num_local(); ++v) {
      total += view.count_long_below(v, 128);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountLongBelow);

void BM_Allreduce(benchmark::State& state) {
  const rank_t ranks = static_cast<rank_t>(state.range(0));
  Machine m({.num_ranks = ranks});
  for (auto _ : state) {
    m.run([](RankCtx& ctx) {
      for (int i = 0; i < 100; ++i) {
        benchmark::DoNotOptimize(
            ctx.allreduce<std::uint64_t>(1, SumOp{}));
      }
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8);

void BM_Exchange(benchmark::State& state) {
  const rank_t ranks = static_cast<rank_t>(state.range(0));
  Machine m({.num_ranks = ranks});
  for (auto _ : state) {
    m.run([ranks](RankCtx& ctx) {
      for (int i = 0; i < 20; ++i) {
        std::vector<std::vector<std::uint64_t>> out(ranks);
        for (rank_t d = 0; d < ranks; ++d) out[d].assign(64, d);
        benchmark::DoNotOptimize(
            ctx.exchange(std::move(out), PhaseKind::kShortPhase));
      }
    });
  }
}
BENCHMARK(BM_Exchange)->Arg(2)->Arg(8);

// --- Relax data path pairs (docs/PERFORMANCE.md) -------------------------
// Each kernel below exists twice: a *Seed variant reproducing the pre-pool
// data path (fresh nested vectors every phase, serial lane merge,
// pack/unpack byte exchange, full unreduced stream) and a *Pooled variant
// running the production path. scripts/perf_smoke.py compares the pairs.

constexpr rank_t kDpRanks = 4;
constexpr int kDpRounds = 20;
constexpr std::uint32_t kDpMsgsPerDest = 4096;

// Deterministic synthetic relax stream with RMAT-like destination skew:
// low vertex ids (hubs) receive many duplicate relaxations per phase, which
// is what sender-side reduction exploits.
RelaxMsg dp_message(rank_t r, std::uint32_t i, vid_t block) {
  const std::uint64_t h = (static_cast<std::uint64_t>(r) * 2654435761u + i) *
                          0x9e3779b97f4a7c15ULL;
  const vid_t v = static_cast<vid_t>((h >> 33) % block) %
                  (1u + static_cast<vid_t>(h % 64) * (block / 64));
  return {v, static_cast<dist_t>(h % 100000), static_cast<vid_t>(i)};
}

void BM_RelaxExchangeSeed(benchmark::State& state) {
  // A persistent session, so per-iteration cost is the data path itself,
  // not 4 thread spawns/joins.
  MachineSession session({.num_ranks = kDpRanks});
  const vid_t block = vid_t{1} << 12;
  for (auto _ : state) {
    session.run([&](RankCtx& ctx) {
      const rank_t r = ctx.rank();
      std::vector<dist_t> dist(block, kInfDist);
      for (int round = 0; round < kDpRounds; ++round) {
        // The seed's shape: nested vectors born and destroyed every phase,
        // then a pack/unpack byte exchange.
        std::vector<std::vector<RelaxMsg>> out(kDpRanks);
        for (rank_t d = 0; d < kDpRanks; ++d) {
          for (std::uint32_t i = 0; i < kDpMsgsPerDest; ++i) {
            out[d].push_back(dp_message(r, i, block));
          }
        }
        const auto in = ctx.exchange(std::move(out), PhaseKind::kShortPhase);
        std::uint64_t improved = 0;
        for (const auto& batch : in) {
          for (const RelaxMsg& msg : batch) {
            if (msg.nd < dist[msg.v]) {
              dist[msg.v] = msg.nd;
              ++improved;
            }
          }
        }
        benchmark::DoNotOptimize(improved);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDpRounds * kDpRanks * kDpRanks * kDpMsgsPerDest);
}
BENCHMARK(BM_RelaxExchangeSeed);

// Pooled counterpart: same emission, zero-copy exchange, no churn. The
// sender-side reducer is deliberately NOT run here — it is a wire-volume
// optimization whose CPU cost/benefit is measured on its own by
// BM_SenderReduce; this pair isolates the buffer-management structure.
void BM_RelaxExchangePooled(benchmark::State& state) {
  MachineSession session({.num_ranks = kDpRanks});
  const vid_t block = vid_t{1} << 12;
  for (auto _ : state) {
    session.run([&](RankCtx& ctx) {
      const rank_t r = ctx.rank();
      std::vector<dist_t> dist(block, kInfDist);
      SendBufferPool<RelaxMsg> pool;
      pool.configure(1, kDpRanks);
      for (int round = 0; round < kDpRounds; ++round) {
        pool.begin_phase();
        for (rank_t d = 0; d < kDpRanks; ++d) {
          for (std::uint32_t i = 0; i < kDpMsgsPerDest; ++i) {
            pool.shard(0, d).push_back(dp_message(r, i, block));
          }
        }
        ctx.exchange_pooled(pool, PhaseKind::kShortPhase);
        std::uint64_t improved = 0;
        for (const auto& batch : pool.incoming()) {
          for (const RelaxMsg& msg : batch) {
            if (msg.nd < dist[msg.v]) {
              dist[msg.v] = msg.nd;
              ++improved;
            }
          }
        }
        benchmark::DoNotOptimize(improved);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDpRounds * kDpRanks * kDpRanks * kDpMsgsPerDest);
}
BENCHMARK(BM_RelaxExchangePooled);

// Receive-side apply in isolation: the seed variant pays the unpack memcpy
// (bytes -> typed vector) the old exchange did before every apply; the
// pooled variant applies straight out of the received buffers.
void BM_RelaxApplySeed(benchmark::State& state) {
  const vid_t block = vid_t{1} << 14;
  std::vector<RelaxMsg> stream;
  for (std::uint32_t i = 0; i < 4 * kDpMsgsPerDest; ++i) {
    stream.push_back(dp_message(0, i, block));
  }
  const auto bytes = ExchangeBoard::pack(std::span<const RelaxMsg>(stream));
  std::vector<dist_t> dist(block, kInfDist);
  for (auto _ : state) {
    const auto batch = ExchangeBoard::unpack<RelaxMsg>(bytes);
    std::uint64_t improved = 0;
    for (const RelaxMsg& msg : batch) {
      if (msg.nd < dist[msg.v]) {
        dist[msg.v] = msg.nd;
        ++improved;
      }
    }
    benchmark::DoNotOptimize(improved);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_RelaxApplySeed);

void BM_RelaxApplyPooled(benchmark::State& state) {
  const vid_t block = vid_t{1} << 14;
  std::vector<RelaxMsg> stream;
  for (std::uint32_t i = 0; i < 4 * kDpMsgsPerDest; ++i) {
    stream.push_back(dp_message(0, i, block));
  }
  std::vector<dist_t> dist(block, kInfDist);
  for (auto _ : state) {
    std::uint64_t improved = 0;
    for (const RelaxMsg& msg : stream) {
      if (msg.nd < dist[msg.v]) {
        dist[msg.v] = msg.nd;
        ++improved;
      }
    }
    benchmark::DoNotOptimize(improved);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_RelaxApplyPooled);

// Sender-side reduction throughput on a duplicate-heavy stream (what the
// engines run per destination before posting).
void BM_SenderReduce(benchmark::State& state) {
  const vid_t block = vid_t{1} << 12;
  std::vector<RelaxMsg> stream;
  for (std::uint32_t i = 0; i < 4 * kDpMsgsPerDest; ++i) {
    stream.push_back(dp_message(1, i, block));
  }
  SenderReducer<dist_t> reducer;
  reducer.ensure(block);
  std::vector<RelaxMsg> scratch;
  for (auto _ : state) {
    scratch = stream;
    reducer.begin_dest();
    reducer.reduce(
        scratch, [](const RelaxMsg& msg) { return msg.v; },
        [](const RelaxMsg& msg) { return msg.nd; });
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_SenderReduce);

// Full solves on the scale-12 graph at 4 ranks, both data paths — the
// end-to-end numbers the acceptance criteria and PERFORMANCE.md quote.
void solve_data_path_bench(benchmark::State& state, DataPath path) {
  const CsrGraph& g = shared_graph();
  Solver solver(g, {.machine = {.num_ranks = kDpRanks}});
  SsspOptions options = SsspOptions::opt(25);
  options.data_path = path;
  options.sender_reduction = path == DataPath::kPooled;
  options.parallel_apply = path == DataPath::kPooled;
  const auto roots = sample_roots(g, 1, 1);
  solver.solve(roots[0], options);  // warm the views
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(roots[0], options));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(g.num_undirected_edges()));
}

void BM_SolveOptSeedPath(benchmark::State& state) {
  solve_data_path_bench(state, DataPath::kReference);
}
BENCHMARK(BM_SolveOptSeedPath);

void BM_SolveOptPooledPath(benchmark::State& state) {
  solve_data_path_bench(state, DataPath::kPooled);
}
BENCHMARK(BM_SolveOptPooledPath);

void BM_SolveOpt(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  Solver solver(g, {.machine = {.num_ranks = 8}});
  const auto roots = sample_roots(g, 1, 1);
  solver.solve(roots[0], SsspOptions::opt(25));  // warm the views
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(roots[0], SsspOptions::opt(25)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(g.num_undirected_edges()));
}
BENCHMARK(BM_SolveOpt);

void BM_SolveDel(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  Solver solver(g, {.machine = {.num_ranks = 8}});
  const auto roots = sample_roots(g, 1, 1);
  solver.solve(roots[0], SsspOptions::del(25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(roots[0], SsspOptions::del(25)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(g.num_undirected_edges()));
}
BENCHMARK(BM_SolveDel);

}  // namespace

BENCHMARK_MAIN();
