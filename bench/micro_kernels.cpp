// Microbenchmarks (google-benchmark) of the hot kernels: CSR construction,
// view building, bucket scans, pull-request counting, relax application,
// collectives, and the full solve at small scale.
#include <benchmark/benchmark.h>

#include "bench_util/runner.hpp"
#include "core/buckets.hpp"
#include "core/dist_graph.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace parsssp;

const CsrGraph& shared_graph() {
  static const CsrGraph g = build_rmat_graph(RmatFamily::kRmat1, 12);
  return g;
}

void BM_CsrBuild(benchmark::State& state) {
  RmatConfig cfg;
  cfg.scale = static_cast<std::uint32_t>(state.range(0));
  cfg.edge_factor = 16;
  const EdgeList list = generate_rmat(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph::from_edges(list));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(list.num_edges()));
}
BENCHMARK(BM_CsrBuild)->Arg(10)->Arg(12);

void BM_RmatGenerate(benchmark::State& state) {
  RmatConfig cfg;
  cfg.scale = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_rmat(cfg));
  }
}
BENCHMARK(BM_RmatGenerate)->Arg(10)->Arg(12);

void BM_ViewBuild(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  const BlockPartition part(g.num_vertices(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LocalEdgeView::build(g, part, 0, 25));
  }
}
BENCHMARK(BM_ViewBuild);

void BM_BucketScan(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  std::vector<dist_t> dist(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    dist[v] = (v * 37) % 2000;
  }
  const std::vector<char> settled(g.num_vertices(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collect_bucket_members(dist, settled, 3, 25));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_BucketScan);

void BM_CountLongBelow(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  const BlockPartition part(g.num_vertices(), 1);
  const LocalEdgeView view = LocalEdgeView::build(g, part, 0, 25);
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (vid_t v = 0; v < view.num_local(); ++v) {
      total += view.count_long_below(v, 128);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountLongBelow);

void BM_Allreduce(benchmark::State& state) {
  const rank_t ranks = static_cast<rank_t>(state.range(0));
  Machine m({.num_ranks = ranks});
  for (auto _ : state) {
    m.run([](RankCtx& ctx) {
      for (int i = 0; i < 100; ++i) {
        benchmark::DoNotOptimize(
            ctx.allreduce<std::uint64_t>(1, SumOp{}));
      }
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(8);

void BM_Exchange(benchmark::State& state) {
  const rank_t ranks = static_cast<rank_t>(state.range(0));
  Machine m({.num_ranks = ranks});
  for (auto _ : state) {
    m.run([ranks](RankCtx& ctx) {
      for (int i = 0; i < 20; ++i) {
        std::vector<std::vector<std::uint64_t>> out(ranks);
        for (rank_t d = 0; d < ranks; ++d) out[d].assign(64, d);
        benchmark::DoNotOptimize(
            ctx.exchange(std::move(out), PhaseKind::kShortPhase));
      }
    });
  }
}
BENCHMARK(BM_Exchange)->Arg(2)->Arg(8);

void BM_SolveOpt(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  Solver solver(g, {.machine = {.num_ranks = 8}});
  const auto roots = sample_roots(g, 1, 1);
  solver.solve(roots[0], SsspOptions::opt(25));  // warm the views
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(roots[0], SsspOptions::opt(25)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(g.num_undirected_edges()));
}
BENCHMARK(BM_SolveOpt);

void BM_SolveDel(benchmark::State& state) {
  const CsrGraph& g = shared_graph();
  Solver solver(g, {.machine = {.num_ranks = 8}});
  const auto roots = sample_roots(g, 1, 1);
  solver.solve(roots[0], SsspOptions::del(25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(roots[0], SsspOptions::del(25)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(g.num_undirected_edges()));
}
BENCHMARK(BM_SolveDel);

}  // namespace

BENCHMARK_MAIN();
