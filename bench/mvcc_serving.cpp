// MVCC serving acceptance benchmark (docs/SNAPSHOTS.md): one Zipf query
// stream replayed three times against engines of identical shape over the
// same starting graph —
//
//   control : no updates (the load floor),
//   mvcc    : update batches interleaved, served concurrently on pinned
//             snapshots (ServeConfig::fence_updates = false, the default),
//   fenced  : the same mixed stream under the PR-5 FIFO fence,
//
// all in one process so the numbers are comparable. Acceptance (exit 0):
//
//   * concurrency: the mvcc run's query-class p99 is within kP99Bar
//     (default 1.2x, argv[2]) of the control run's p99;
//   * zero stale answers: every sampled answer — including the
//     parent-tracking probes interleaved mid-churn — is bit-identical
//     (dist AND parent) to a fresh Solver::solve of the graph version the
//     answer is stamped with, reconstructed by replaying the applied
//     batches on a host mirror; the version-stamped cache's version_misses
//     counter is reported alongside (entries correctly dropped instead of
//     served stale).
//
// Emits BENCH_mvcc_serving.json (argv[1] overrides), consumed by
// scripts/reproduce.sh --mvcc and the CI perf-smoke artifact.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/stats_io.hpp"
#include "bench_util/table.hpp"
#include "core/solver.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "update/dynamic_graph.hpp"

namespace parsssp {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kScale = 12;
constexpr rank_t kRanks = 4;
constexpr std::uint32_t kDelta = 25;
constexpr std::size_t kQueries = 240;
constexpr std::size_t kUpdates = 8;
constexpr std::size_t kOpsPerBatch = 8;
constexpr std::size_t kRootDomain = 48;
constexpr std::size_t kProbes = 16;  ///< parent-tracking exactness probes
constexpr double kDefaultP99Bar = 1.2;

/// Deterministic valid-by-construction update batches: generated against a
/// mirror DynamicGraph that each batch is applied to immediately, so batch
/// i is valid against version i-1 — on the mirror and on every engine that
/// replays the same sequence.
std::vector<EdgeBatch> make_update_batches(DynamicGraph& mirror,
                                           std::mt19937_64& rng) {
  std::vector<EdgeBatch> batches;
  std::uniform_int_distribution<vid_t> pick_vertex(0,
                                                   mirror.num_vertices() - 1);
  std::uniform_int_distribution<weight_t> pick_weight(1, 255);
  while (batches.size() < kUpdates) {
    EdgeBatch batch;
    std::map<std::pair<vid_t, vid_t>, bool> used;  // one op per pair
    while (batch.size() < kOpsPerBatch) {
      const auto roll = rng() % 4;
      vid_t u = pick_vertex(rng);
      vid_t v = pick_vertex(rng);
      if (u == v) continue;
      if (!used.emplace(std::minmax(u, v), true).second) continue;
      const auto w = mirror.find_edge(u, v);
      if (roll == 0) {
        if (w) continue;
        batch.insert_edge(u, v, pick_weight(rng));
      } else if (roll == 1) {
        if (!w) continue;
        batch.delete_edge(u, v);
      } else {
        if (!w) continue;
        batch.update_weight(u, v, pick_weight(rng));
      }
    }
    mirror.apply(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// A parent-tracking answer sampled mid-churn, checked after the replay
/// against a fresh solve of the version it is stamped with.
struct Probe {
  vid_t root = 0;
  std::uint64_t version = 0;
  std::shared_ptr<const QueryAnswer> answer;
};

struct RunReport {
  LatencyStats query;   ///< plain query class (probes excluded)
  LatencyStats update;  ///< update job class
  ServeStats stats;
  std::uint64_t final_version = 0;
  std::vector<Probe> probes;
};

/// Replays the stream (closed loop: every query enqueued at full speed, so
/// fence stalls surface as queueing latency). With updates, batch i is
/// injected after query i * stride, and a parent-tracking probe follows
/// each injection plus evenly spaced extras up to kProbes.
RunReport replay(QueryEngine& engine, const std::vector<QueryEvent>& stream,
                 const SsspOptions& options,
                 const std::vector<EdgeBatch>& updates) {
  SsspOptions probe_options = options;
  probe_options.track_parents = true;

  std::vector<std::future<QueryResult>> futures;
  std::vector<Clock::time_point> submitted;
  std::vector<std::future<UpdateResult>> update_futures;
  std::vector<Clock::time_point> update_submitted;
  std::vector<std::pair<vid_t, std::future<QueryResult>>> probe_futures;
  futures.reserve(stream.size());
  submitted.reserve(stream.size());

  const std::size_t stride =
      updates.empty() ? 0
                      : std::max<std::size_t>(
                            1, stream.size() / (updates.size() + 1));
  const std::size_t probe_stride =
      std::max<std::size_t>(1, stream.size() / (kProbes + 1));

  for (std::size_t qi = 0; qi < stream.size(); ++qi) {
    if (stride != 0 && qi % stride == 0) {
      const std::size_t ui = qi / stride;
      if (ui >= 1 && ui - 1 < updates.size() &&
          update_futures.size() == ui - 1) {
        update_submitted.push_back(Clock::now());
        update_futures.push_back(engine.apply_updates(updates[ui - 1]));
      }
    }
    if (!updates.empty() && qi % probe_stride == 0 &&
        probe_futures.size() < kProbes) {
      const vid_t root = stream[qi].root;
      probe_futures.emplace_back(root, engine.submit(root, probe_options));
    }
    submitted.push_back(Clock::now());
    futures.push_back(engine.submit(stream[qi].root, options));
  }
  for (std::size_t ui = update_futures.size(); ui < updates.size(); ++ui) {
    update_submitted.push_back(Clock::now());
    update_futures.push_back(engine.apply_updates(updates[ui]));
  }

  RunReport report;
  std::vector<double> query_s;
  query_s.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResult r = futures[i].get();
    query_s.push_back(
        std::chrono::duration<double>(r.completed_at - submitted[i]).count());
  }
  std::vector<double> update_s;
  update_s.reserve(update_futures.size());
  for (std::size_t ui = 0; ui < update_futures.size(); ++ui) {
    const UpdateResult ur = update_futures[ui].get();
    report.final_version = std::max(report.final_version, ur.version);
    update_s.push_back(std::chrono::duration<double>(
        ur.completed_at - update_submitted[ui]).count());
  }
  for (auto& [root, fut] : probe_futures) {
    const QueryResult r = fut.get();
    report.probes.push_back(Probe{root, r.version, r.answer});
  }
  report.query = percentile_stats(std::move(query_s));
  if (!update_s.empty()) report.update = percentile_stats(std::move(update_s));
  report.stats = engine.stats();
  return report;
}

/// Checks every probe against a fresh solve of the graph version it is
/// stamped with (mirror replay of the applied batches; dist AND parent
/// must be bit-identical — the MVCC correctness contract). Returns the
/// number of stale (mismatching) answers.
std::size_t validate_probes(const CsrGraph& base,
                            const std::vector<EdgeBatch>& updates,
                            const std::vector<Probe>& probes,
                            const SsspOptions& options) {
  std::vector<Probe> ordered = probes;
  std::sort(ordered.begin(), ordered.end(),
            [](const Probe& a, const Probe& b) { return a.version < b.version; });
  SsspOptions solve_options = options;
  solve_options.track_parents = true;

  DynamicGraph mirror(base);
  std::uint64_t at = 0;
  std::size_t stale = 0;
  std::optional<CsrGraph> frozen;
  std::optional<Solver> solver;
  std::uint64_t frozen_version = ~0ull;
  for (const Probe& p : ordered) {
    while (at < p.version) mirror.apply(updates.at(at++));
    if (frozen_version != p.version) {
      frozen.emplace(mirror.materialize());
      solver.emplace(*frozen, SolverConfig{.machine = {.num_ranks = kRanks}});
      frozen_version = p.version;
    }
    const SsspResult fresh = solver->solve(p.root, solve_options);
    if (p.answer->dist != fresh.dist || p.answer->parent != fresh.parent) {
      ++stale;
      std::fprintf(stderr,
                   "STALE: root %u at version %llu diverges from a fresh "
                   "solve of that version\n",
                   static_cast<unsigned>(p.root),
                   static_cast<unsigned long long>(p.version));
    }
  }
  return stale;
}

void write_report(std::ostream& os, const CsrGraph& g, double p99_bar,
                  const RunReport& control, const RunReport& mvcc,
                  const RunReport& fenced, std::size_t probes_checked,
                  std::size_t stale, bool pass) {
  const auto ratio = [](double num, double den) {
    return den > 0 ? num / den : 0.0;
  };
  JsonWriter w(os);
  w.begin_object();
  w.field("bench", std::string_view{"mvcc_serving"});
  w.field("family", std::string_view{family_name(RmatFamily::kRmat1)});
  w.field("scale", std::uint64_t{kScale});
  w.field("vertices", static_cast<std::uint64_t>(g.num_vertices()));
  w.field("edges", static_cast<std::uint64_t>(g.num_undirected_edges()));
  w.field("ranks", std::uint64_t{kRanks});
  w.field("delta", std::uint64_t{kDelta});
  w.field("queries", std::uint64_t{kQueries});
  w.field("updates", std::uint64_t{kUpdates});
  w.field("ops_per_batch", std::uint64_t{kOpsPerBatch});
  w.field("root_domain", std::uint64_t{kRootDomain});

  w.field("control_query_p50_s", control.query.p50);
  w.field("control_query_p99_s", control.query.p99);
  w.field("mvcc_query_p50_s", mvcc.query.p50);
  w.field("mvcc_query_p99_s", mvcc.query.p99);
  w.field("mvcc_update_p50_s", mvcc.update.p50);
  w.field("mvcc_update_p99_s", mvcc.update.p99);
  w.field("fenced_query_p50_s", fenced.query.p50);
  w.field("fenced_query_p99_s", fenced.query.p99);
  w.field("fenced_update_p50_s", fenced.update.p50);
  w.field("fenced_update_p99_s", fenced.update.p99);

  w.field("mvcc_degradation_p99", ratio(mvcc.query.p99, control.query.p99));
  w.field("fenced_degradation_p99",
          ratio(fenced.query.p99, control.query.p99));
  w.field("p99_bar", p99_bar);

  w.field("mvcc_snapshots_published", mvcc.stats.snapshots_published);
  w.field("mvcc_snapshots_reclaimed", mvcc.stats.snapshots_reclaimed);
  w.field("mvcc_snapshots_live", mvcc.stats.snapshots_live);
  w.field("mvcc_cache_version_misses", mvcc.stats.cache.version_misses);
  w.field("fenced_cache_version_misses", fenced.stats.cache.version_misses);

  w.field("probes_checked", static_cast<std::uint64_t>(probes_checked));
  w.field("stale_answers", static_cast<std::uint64_t>(stale));
  w.field("pass", pass);
  w.end_object();
  os << "\n";
}

}  // namespace
}  // namespace parsssp

int main(int argc, char** argv) {
  using namespace parsssp;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_mvcc_serving.json";
  const double p99_bar = argc > 2 ? std::atof(argv[2]) : kDefaultP99Bar;

  const CsrGraph base =
      strip_self_loops(build_rmat_graph(RmatFamily::kRmat1, kScale));
  std::cout << "mvcc_serving: RMAT-1 scale " << kScale << " ("
            << base.num_vertices() << " vertices, "
            << base.num_undirected_edges() << " edges), " << kRanks
            << " ranks, del(" << kDelta << "), " << kQueries
            << " Zipf queries x3 runs, " << kUpdates << " update batches\n\n";

  const SsspOptions options = SsspOptions::del(kDelta);
  WorkloadConfig workload{.num_queries = kQueries,
                          .rate_qps = 0,
                          .dist = RootDist::kZipf,
                          .zipf_s = 1.2,
                          .num_roots_domain = kRootDomain,
                          .seed = 1};
  const auto stream = make_open_loop_stream(workload, base.num_vertices());

  std::mt19937_64 rng(0xC0FFEEull);
  DynamicGraph gen_mirror(base);
  const std::vector<EdgeBatch> updates = make_update_batches(gen_mirror, rng);

  ServeConfig serve;
  serve.machine.num_ranks = kRanks;
  serve.max_batch = 8;
  serve.batch_window = std::chrono::microseconds(200);
  serve.cache_capacity = 256;

  const auto run = [&](bool with_updates, bool fence) {
    DynamicGraph graph(base);
    ServeConfig config = serve;
    config.fence_updates = fence;
    QueryEngine engine(graph, config);
    return replay(engine, stream, options,
                  with_updates ? updates : std::vector<EdgeBatch>{});
  };
  const RunReport control = run(/*with_updates=*/false, /*fence=*/false);
  const RunReport mvcc = run(/*with_updates=*/true, /*fence=*/false);
  const RunReport fenced = run(/*with_updates=*/true, /*fence=*/true);

  std::size_t stale = validate_probes(base, updates, mvcc.probes, options);
  stale += validate_probes(base, updates, fenced.probes, options);
  const std::size_t probes_checked =
      mvcc.probes.size() + fenced.probes.size();

  const auto ratio = [](double num, double den) {
    return den > 0 ? num / den : 0.0;
  };
  const double mvcc_degradation = ratio(mvcc.query.p99, control.query.p99);

  TextTable t("mixed Zipf stream: query p99 by serving mode");
  t.set_header({"run", "query p50 (ms)", "query p99 (ms)", "update p99 (ms)",
                "p99 vs control"});
  t.add_row({"control (no updates)", TextTable::num(control.query.p50 * 1e3, 4),
             TextTable::num(control.query.p99 * 1e3, 4), "-", "1.0"});
  t.add_row({"mvcc", TextTable::num(mvcc.query.p50 * 1e3, 4),
             TextTable::num(mvcc.query.p99 * 1e3, 4),
             TextTable::num(mvcc.update.p99 * 1e3, 4),
             TextTable::num(mvcc_degradation, 4)});
  t.add_row({"fenced", TextTable::num(fenced.query.p50 * 1e3, 4),
             TextTable::num(fenced.query.p99 * 1e3, 4),
             TextTable::num(fenced.update.p99 * 1e3, 4),
             TextTable::num(ratio(fenced.query.p99, control.query.p99), 4)});
  t.print(std::cout);
  std::cout << "snapshots published/reclaimed (mvcc): "
            << mvcc.stats.snapshots_published << "/"
            << mvcc.stats.snapshots_reclaimed
            << ", cache version misses (mvcc/fenced): "
            << mvcc.stats.cache.version_misses << "/"
            << fenced.stats.cache.version_misses << "\n";
  std::cout << "exactness probes: " << probes_checked << " checked, " << stale
            << " stale (dist+parent vs fresh solve of the stamped version)\n";

  print_paper_note(
      std::cout,
      "Concurrent serving is an addition beyond the paper: the paper solves "
      "static instances; this bench measures the MVCC snapshot layer that "
      "lets queries run against pinned immutable versions while update "
      "batches build the next version, versus fencing the query FIFO.");

  const bool pass = mvcc_degradation <= p99_bar && stale == 0 &&
                    probes_checked > 0;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  write_report(out, base, p99_bar, control, mvcc, fenced, probes_checked,
               stale, pass);
  std::cout << "wrote " << json_path << "\n";

  std::cout << (pass ? "PASS" : "FAIL") << " (mvcc p99 degradation "
            << TextTable::num(mvcc_degradation, 4) << ", bar "
            << TextTable::num(p99_bar, 2) << ")\n";
  return pass ? 0 : 1;
}
