// Ablation (§III-C): variants of the push/pull decision heuristic.
//   1. fixed push / fixed pull (no decision at all),
//   2. volume-only decision (the paper's first heuristic, wrong on ~15% of
//      cases because it ignores load imbalance),
//   3. volume + load term (the paper's final heuristic),
//   4. exact vs expectation request estimators.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  struct Variant {
    const char* name;
    PruneMode mode;
    double lambda;
    EstimatorKind estimator;
  };
  const Variant variants[] = {
      {"push-only", PruneMode::kPushOnly, 0.0, EstimatorKind::kExact},
      {"pull-only", PruneMode::kPullOnly, 0.0, EstimatorKind::kExact},
      {"volume-only", PruneMode::kHeuristic, 0.0, EstimatorKind::kExact},
      {"volume+load", PruneMode::kHeuristic, 1.0, EstimatorKind::kExact},
      {"volume+load, E[req]", PruneMode::kHeuristic, 1.0,
       EstimatorKind::kExpectation},
  };

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const CsrGraph g = build_rmat_graph(family, 13);
    Solver solver(g, {.machine = {.num_ranks = 8}});
    const auto roots = sample_roots(g, 4, 11);

    TextTable t(std::string("decision-heuristic ablation, ") +
                family_name(family) + " scale 13, Prune-25");
    t.set_header({"variant", "relaxations", "model-ms", "GTEPS(model)"});
    for (const Variant& v : variants) {
      SsspOptions o = SsspOptions::prune(25);
      o.prune_mode = v.mode;
      o.load_lambda = v.lambda;
      o.estimator = v.estimator;
      const RunSummary s = run_roots(solver, o, roots);
      t.add_row({v.name, TextTable::num(s.mean_relaxations, 0),
                 TextTable::num(s.mean_model_time_s * 1e3, 3),
                 TextTable::num(s.mean_model_gteps, 4)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  print_paper_note(std::cout,
                   "the adaptive heuristic beats both fixed modes; the load "
                   "term protects against volume-cheap but skew-heavy pull "
                   "buckets; the closed-form estimator tracks the exact one");
  return 0;
}
