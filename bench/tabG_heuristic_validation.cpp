// §IV-G: validation of the push-pull decision heuristic. The paper's
// offline routine enumerates all 2^k push/pull decision sequences for a
// run with k buckets, measures each, and checks the heuristic's sequence is
// (near-)optimal. Reported result: the heuristic made the best sequence of
// decisions on all test cases.
//
// Here "cost" is the modeled machine time, which is exactly what the
// heuristic tries to minimize through its volume + load terms.
#include <algorithm>
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  TextTable t("IV-G: heuristic vs exhaustive push/pull sequences");
  t.set_header({"family", "root", "buckets", "best(ms)", "worst(ms)",
                "heuristic(ms)", "rank of heuristic", "optimal?"});

  std::size_t optimal = 0;
  std::size_t total = 0;
  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const CsrGraph g = build_rmat_graph(family, 11);
    Solver solver(g, {.machine = {.num_ranks = 8}});
    for (const vid_t root : sample_roots(g, 3, 42)) {
      // Hybridization caps the number of delta-stepping buckets, keeping
      // 2^k enumerable — the same setup the paper uses.
      SsspOptions heur = SsspOptions::opt(25);
      const SsspResult hr = solver.solve(root, heur);
      const std::size_t k = hr.stats.pull_decisions.size();

      // Cost of the heuristic's *decision sequence*, measured the same way
      // as every enumerated sequence (forced mode skips the estimation
      // collectives, so comparing hr's own time would penalize the
      // heuristic for the act of deciding).
      auto forced_cost = [&](const std::vector<bool>& seq) {
        SsspOptions forced = SsspOptions::opt(25);
        forced.prune_mode = PruneMode::kForcedSequence;
        forced.forced_pull = seq;
        return solver.solve(root, forced).stats.model_time_s;
      };
      std::vector<bool> heur_seq(hr.stats.pull_decisions.begin(),
                                 hr.stats.pull_decisions.end());
      const double heur_cost = forced_cost(heur_seq);

      std::vector<double> costs;
      double best = heur_cost;
      double worst = heur_cost;
      for (std::uint64_t mask = 0; mask < (1ULL << k); ++mask) {
        std::vector<bool> seq(k, false);
        for (std::size_t b = 0; b < k; ++b) seq[b] = (mask >> b) & 1;
        const double c = forced_cost(seq);
        costs.push_back(c);
        best = std::min(best, c);
        worst = std::max(worst, c);
      }
      std::size_t rank = 1;
      for (const double c : costs) {
        if (c < heur_cost * 0.995) ++rank;
      }
      const bool is_optimal = rank == 1;
      optimal += is_optimal;
      ++total;
      t.add_row({family_name(family), std::to_string(root),
                 std::to_string(k), TextTable::num(best * 1e3, 3),
                 TextTable::num(worst * 1e3, 3),
                 TextTable::num(heur_cost * 1e3, 3),
                 std::to_string(rank) + "/" + std::to_string(costs.size()),
                 is_optimal ? "yes" : "no"});
    }
  }
  t.print(std::cout);
  std::cout << "\noptimal decisions: " << optimal << "/" << total << "\n";
  print_paper_note(std::cout,
                   "the paper's heuristic chose the best sequence on all "
                   "tested configurations; ours should sit at or near rank "
                   "1 of the exhaustive enumeration");
  return 0;
}
