// Fig 8: maximum degree vs. scale for the two R-MAT families. The paper's
// table (scales 28-32) shows RMAT-1's maximum degree in the millions and
// growing fast, RMAT-2's in the tens of thousands — the skew that makes
// load balancing necessary for RMAT-1. The same growth separation appears
// at the scaled-down sizes used here.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/degree_stats.hpp"

int main() {
  using namespace parsssp;

  const std::uint32_t scales[] = {10, 11, 12, 13, 14, 15};

  TextTable t("Fig 8: maximum degree (edge factor 16, weights [1,255])");
  std::vector<std::string> header{"family"};
  for (const auto s : scales) header.push_back("scale " + std::to_string(s));
  t.set_header(header);

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    std::vector<std::string> row{family_name(family)};
    for (const auto scale : scales) {
      const CsrGraph g = build_rmat_graph(family, scale);
      row.push_back(TextTable::num(
          static_cast<std::uint64_t>(max_degree(g))));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  // Paper reference rows (scales 28-32) for the shape comparison.
  std::cout << "\npaper (scales 28-32): RMAT-1: 2.4M 3.8M 5.9M 9.4M 14.4M; "
               "RMAT-2: 31k 41k 55k 72k 95k\n";
  print_paper_note(std::cout,
                   "max degree grows with scale in both families, with "
                   "RMAT-1 one to two orders of magnitude more skewed");
  return 0;
}
