// §IV-H: real-life graphs. The paper compares Del-40 against Opt-40 on
// Friendster, Orkut and LiveJournal (SNAP), reporting roughly a 2x win for
// OPT. Without the SNAP dumps available offline, this bench runs the
// synthetic stand-ins from graph/social_gen.hpp (documented substitution,
// DESIGN.md §2); drop a real SNAP edge list path as argv[1] to run it
// through the same pipeline.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"
#include "graph/snap_io.hpp"
#include "graph/social_gen.hpp"
#include "graph/weights.hpp"

int main(int argc, char** argv) {
  using namespace parsssp;

  TextTable t("IV-H: Del-40 vs Opt-40 on social graphs (modeled GTEPS)");
  t.set_header({"graph", "vertices", "edges", "Del-40", "Opt-40", "speedup",
                "paper Del/Opt"});

  auto run_graph = [&](const std::string& name, const CsrGraph& g,
                       const std::string& paper_ref) {
    Solver solver(g, {.machine = {.num_ranks = 16, .lanes_per_rank = 2}});
    const auto roots = sample_roots(g, 3, 7);
    const RunSummary del = run_roots(solver, SsspOptions::del(40), roots);
    const RunSummary opt =
        run_roots(solver, SsspOptions::lb_opt(40, 128), roots);
    t.add_row({name, std::to_string(g.num_vertices()),
               std::to_string(g.num_undirected_edges()),
               TextTable::num(del.mean_model_gteps, 4),
               TextTable::num(opt.mean_model_gteps, 4),
               TextTable::num(opt.mean_model_gteps / del.mean_model_gteps,
                              2) + "x",
               paper_ref});
  };

  if (argc > 1) {
    // Real SNAP file: unweighted edge list; assign benchmark weights.
    EdgeList list = compact_vertex_ids(load_snap_file(argv[1]));
    assign_uniform_weights(list, {1, 255, 7});
    list.dedup_and_strip_self_loops();
    run_graph(argv[1], CsrGraph::from_edges(list), "-");
  } else {
    for (const SocialGraphKind kind : all_social_graph_kinds()) {
      SocialGraphSpec spec;
      spec.kind = kind;
      spec.scale_down_log2 = 9;
      const SocialGraphInfo info = social_graph_info(spec);
      const CsrGraph g = CsrGraph::from_edges(generate_social_graph(spec));
      run_graph(info.name + "*", g,
                TextTable::num(info.paper_gteps_del40, 1) + "/" +
                    TextTable::num(info.paper_gteps_opt40, 1));
    }
    std::cout << "(* synthetic stand-in, scaled down; see DESIGN.md)\n";
  }
  t.print(std::cout);
  print_paper_note(std::cout,
                   "OPT-40 beats Del-40 by roughly 2x on every social "
                   "graph (paper: 4.3/1.8, 4.6/2.1, 2.2/1.1)");
  return 0;
}
