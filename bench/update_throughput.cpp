// Dynamic-update acceptance benchmark (docs/DYNAMIC.md): small-batch edge
// mutations over RMAT-1, incremental repair vs fresh re-solve.
//
// A DynamicSolver holds the graph; each iteration applies one small mixed
// batch (inserts, deletes, reweights), then answers the same root twice —
// once via repair(prior, batch) and once via a fresh solve() of the mutated
// graph — timing both and asserting the results are bit-identical in dist
// and parent (the repair engine's hard contract). Acceptance: median
// repair latency at least 5x below median fresh-solve latency.
//
// Emits a JSON report (argv[1], default BENCH_update_throughput.json);
// exit code 0 iff identity held on every iteration and the speedup bar is
// met.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/stats_io.hpp"
#include "bench_util/table.hpp"
#include "serve/workload.hpp"
#include "update/dynamic_solver.hpp"

namespace parsssp {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kScale = 13;
constexpr rank_t kRanks = 8;
constexpr std::uint32_t kDelta = 25;
constexpr int kWarmup = 3;
constexpr int kMeasured = 24;
constexpr std::size_t kOpsPerBatch = 8;
constexpr double kSpeedupBar = 5.0;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic mixed batch: ~half reweights, a quarter deletes, a quarter
/// inserts, all valid by construction against the current graph.
EdgeBatch make_batch(const DynamicGraph& g, std::mt19937_64& rng) {
  EdgeBatch batch;
  std::uniform_int_distribution<vid_t> pick_vertex(0, g.num_vertices() - 1);
  std::uniform_int_distribution<weight_t> pick_weight(1, 255);
  const auto pick_edge = [&](vid_t& u, vid_t& v, weight_t& w) {
    for (;;) {
      u = pick_vertex(rng);
      const std::vector<Arc> arcs = g.arcs_of(u);
      if (arcs.empty()) continue;
      std::uniform_int_distribution<std::size_t> pick(0, arcs.size() - 1);
      const Arc& a = arcs[pick(rng)];
      v = a.to;
      w = a.w;
      return;
    }
  };
  while (batch.size() < kOpsPerBatch) {
    const auto roll = rng() % 4;
    vid_t u, v;
    weight_t w;
    if (roll == 0) {
      // Insert a fresh edge.
      do {
        u = pick_vertex(rng);
        v = pick_vertex(rng);
      } while (u == v || g.has_edge(u, v));
      batch.insert_edge(u, v, pick_weight(rng));
    } else if (roll == 1) {
      pick_edge(u, v, w);
      batch.delete_edge(u, v);
    } else {
      pick_edge(u, v, w);
      batch.update_weight(u, v, pick_weight(rng));
    }
    // The batch validates against the evolving graph: drop collisions with
    // this batch's own earlier ops by probing a dry-run apply later; here
    // the cheap guard is enough — distinct ops rarely hit the same pair at
    // this scale, and apply() would reject an invalid sequence loudly.
  }
  return batch;
}

struct Results {
  std::size_t iterations = 0;
  std::size_t ops = 0;
  bool identical = true;
  bool planner_only_seen = false;  ///< a repair that skipped the sweep
  LatencyStats repair;
  LatencyStats fresh;
  double speedup_median = 0;
  double speedup_mean = 0;
  std::uint64_t final_version = 0;
  RepairStats last_plan;
};

Results run(DynamicSolver& solver, vid_t root, const SsspOptions& options) {
  Results out;
  std::mt19937_64 rng(0xD15EA5Eu);
  SsspResult prior = solver.solve(root, options);

  std::vector<double> repair_s;
  std::vector<double> fresh_s;
  for (int it = 0; it < kWarmup + kMeasured; ++it) {
    EdgeBatch batch;
    AppliedBatch applied;
    // A randomly drawn batch can collide with itself (two ops on one
    // pair); such a draw is simply redrawn — apply() is atomic, so a
    // rejected batch leaves nothing behind.
    for (;;) {
      batch = make_batch(solver.graph(), rng);
      try {
        applied = solver.apply(batch);
        break;
      } catch (const std::invalid_argument&) {
        continue;
      }
    }
    out.ops += applied.ops.size();

    const std::span<const AppliedBatch> batches(&applied, 1);
    const auto t0 = Clock::now();
    SsspResult repaired = solver.repair(root, prior, batches, options);
    const double repair_elapsed = seconds_since(t0);

    const auto t1 = Clock::now();
    SsspResult fresh = solver.solve(root, options);
    const double fresh_elapsed = seconds_since(t1);

    if (repaired.dist != fresh.dist || repaired.parent != fresh.parent) {
      out.identical = false;
    }
    if (!solver.last_repair_stats().swept) out.planner_only_seen = true;
    if (it >= kWarmup) {
      repair_s.push_back(repair_elapsed);
      fresh_s.push_back(fresh_elapsed);
      ++out.iterations;
    }
    prior = std::move(repaired);
  }
  out.repair = percentile_stats(std::move(repair_s));
  out.fresh = percentile_stats(std::move(fresh_s));
  out.speedup_median =
      out.repair.p50 > 0 ? out.fresh.p50 / out.repair.p50 : 0.0;
  out.speedup_mean =
      out.repair.mean > 0 ? out.fresh.mean / out.repair.mean : 0.0;
  out.final_version = solver.version();
  out.last_plan = solver.last_repair_stats();
  return out;
}

void write_report(std::ostream& os, const DynamicGraph& g, const Results& r) {
  JsonWriter w(os);
  w.begin_object();
  w.field("bench", std::string_view{"update_throughput"});
  w.field("family", std::string_view{family_name(RmatFamily::kRmat1)});
  w.field("scale", std::uint64_t{kScale});
  w.field("vertices", static_cast<std::uint64_t>(g.num_vertices()));
  w.field("edges", static_cast<std::uint64_t>(g.num_undirected_edges()));
  w.field("ranks", std::uint64_t{kRanks});
  w.field("delta", std::uint64_t{kDelta});
  w.field("iterations", static_cast<std::uint64_t>(r.iterations));
  w.field("ops_per_batch", std::uint64_t{kOpsPerBatch});
  w.field("ops_total", static_cast<std::uint64_t>(r.ops));
  w.field("final_graph_version", r.final_version);
  w.field("repair_p50_s", r.repair.p50);
  w.field("repair_mean_s", r.repair.mean);
  w.field("fresh_p50_s", r.fresh.p50);
  w.field("fresh_mean_s", r.fresh.mean);
  w.field("speedup_median", r.speedup_median);
  w.field("speedup_mean", r.speedup_mean);
  w.field("speedup_bar", kSpeedupBar);
  w.field("bit_identical", r.identical);
  w.field("pass", r.identical && r.speedup_median >= kSpeedupBar);
  w.end_object();
  os << "\n";
}

}  // namespace
}  // namespace parsssp

int main(int argc, char** argv) {
  using namespace parsssp;
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_update_throughput.json";

  CsrGraph base = strip_self_loops(build_rmat_graph(RmatFamily::kRmat1, kScale));
  std::cout << "update_throughput: RMAT-1 scale " << kScale << " ("
            << base.num_vertices() << " vertices, "
            << base.num_undirected_edges() << " edges), " << kRanks
            << " ranks, del(" << kDelta << ") + parents\n\n";

  DynamicSolverConfig config;
  config.machine.num_ranks = kRanks;
  DynamicSolver solver(std::move(base), config);

  // The repair path requires the shortest-path tree.
  SsspOptions options = SsspOptions::del(kDelta);
  options.track_parents = true;

  vid_t root = 0;
  while (solver.graph().degree(root) == 0) ++root;

  const Results r = run(solver, root, options);

  TextTable t("small-batch updates: incremental repair vs fresh solve");
  t.set_header({"path", "p50 (ms)", "mean (ms)"});
  t.add_row({"fresh solve", TextTable::num(r.fresh.p50 * 1e3, 4),
             TextTable::num(r.fresh.mean * 1e3, 4)});
  t.add_row({"incremental repair", TextTable::num(r.repair.p50 * 1e3, 4),
             TextTable::num(r.repair.mean * 1e3, 4)});
  t.print(std::cout);
  std::cout << "median speedup: " << TextTable::num(r.speedup_median, 2)
            << "x (bar " << TextTable::num(kSpeedupBar, 1) << "x), "
            << r.iterations << " iterations, " << r.ops << " ops, dist+parent "
            << (r.identical ? "bit-identical" : "MISMATCH (BUG)") << "\n";

  print_paper_note(
      std::cout,
      "Dynamic updates are an addition beyond the paper: the paper solves "
      "static instances; this bench measures the incremental-repair layer "
      "(invalidation planning + seeded Delta-stepping sweep) that answers "
      "the same query after small graph mutations without a full re-solve.");

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  write_report(out, solver.graph(), r);
  std::cout << "wrote " << json_path << "\n";

  const bool pass = r.identical && r.speedup_median >= kSpeedupBar;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
