// Fig 10: RMAT-1 analysis — (a) GTEPS of Del/Prune/OPT, (b) BktTime vs
// OtherTime breakdown, (c) relaxations per rank, (d) bucket counts,
// (e) OPT across Deltas without load balancing, (f) LB-OPT.
//
// Paper shapes on RMAT-1: pruning gives ~5x on relaxation time; hybrid
// removes the bucket overhead; OPT without LB scales poorly (degree skew);
// LB restores near-perfect weak scaling (2-8x gain).
#include <iostream>

#include "family_analysis.hpp"

int main() {
  parsssp::bench::FamilyAnalysisConfig cfg;
  cfg.family = parsssp::RmatFamily::kRmat1;
  cfg.delta = 25;
  parsssp::bench::run_family_analysis(cfg);
  parsssp::print_paper_note(
      std::cout,
      "RMAT-1: Prune ~5-7x fewer relaxations than Del; OPT collapses "
      "buckets to a handful; LB-OPT beats OPT thanks to heavy-hub lane "
      "splitting");
  return 0;
}
