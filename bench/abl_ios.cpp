// Ablation (§III-A): the inner/outer-short (IOS) heuristic. The paper
// reports ~10% fewer short-edge relaxations on the benchmark graphs; this
// bench measures the reduction per family and Delta.
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  TextTable t("IOS ablation: short-edge relaxations with and without IOS");
  t.set_header({"family", "delta", "short relax (no IOS)",
                "short relax (IOS)", "reduction"});

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const CsrGraph g = build_rmat_graph(family, 13);
    Solver solver(g, {.machine = {.num_ranks = 8}});
    const auto roots = sample_roots(g, 4, 3);
    for (const std::uint32_t delta : {25u, 40u, 100u}) {
      SsspOptions base = SsspOptions::prune(delta);
      base.prune_mode = PruneMode::kPushOnly;  // isolate the short phases
      SsspOptions no_ios = base;
      no_ios.ios = false;

      double with_ios = 0;
      double without = 0;
      for (const vid_t root : roots) {
        with_ios += static_cast<double>(
            solver.solve(root, base).stats.short_relaxations);
        without += static_cast<double>(
            solver.solve(root, no_ios).stats.short_relaxations);
      }
      t.add_row({family_name(family), std::to_string(delta),
                 TextTable::num(without / roots.size(), 0),
                 TextTable::num(with_ios / roots.size(), 0),
                 TextTable::num(100.0 * (1.0 - with_ios / without), 1) +
                     "%"});
    }
  }
  t.print(std::cout);
  print_paper_note(std::cout,
                   "IOS only ever removes short-edge relaxations (paper: "
                   "~10% at scale 30+; the effect is larger here because at "
                   "small scale a bucket's width is a big fraction of the "
                   "distance range, so many short relaxations are outer)");
  return 0;
}
